//! # monoculture-hids
//!
//! A full reproduction of *“Impact of IT Monoculture on Behavioral End Host
//! Intrusion Detection”* (Barman, Chandrashekar, Taft, Faloutsos, Huang,
//! Giroire — ACM SIGCOMM WREN 2009), built as a workspace of reusable
//! crates. This facade re-exports each layer's public API:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`netpkt`] | `netpkt` | wire formats (Ethernet/IPv4/TCP/UDP/DNS/ICMP) + pcap I/O |
//! | [`flowtab`] | `flowtab` | flow reconstruction and the Table-1 feature extractor |
//! | [`tailstats`] | `tailstats` | empirical distributions, quantiles, k-means, metrics |
//! | [`synthgen`] | `synthgen` | the calibrated synthetic enterprise + Storm zombie |
//! | [`hids`] | `hids-core` | threshold heuristics, grouping policies, evaluation |
//! | [`attacksim`] | `attacksim` | naive / mimicry / replay attacker models |
//! | [`itconsole`] | `itconsole` | alert batching, central console, sentinels |
//! | [`faultsim`] | `faultsim` | seeded fault injection: byte, telemetry, batch faults |
//! | [`experiments`] | `experiments` | every paper figure/table as a function |
//!
//! ## Quickstart
//!
//! ```
//! use monoculture_hids::prelude::*;
//!
//! // A small synthetic enterprise: 20 users, 2 weeks of 15-minute bins.
//! let corpus = Corpus::generate(CorpusConfig { n_users: 20, n_weeks: 2, ..Default::default() });
//!
//! // Train week 0, test week 1, for the num-TCP-connections feature.
//! let ds = corpus.dataset(FeatureKind::TcpConnections, 0);
//!
//! // The monoculture policy vs per-host configuration.
//! let cfg = EvalConfig { w: 0.4, sweep: ds.default_sweep() };
//! let homog = evaluate_policy(&ds, &Policy { grouping: Grouping::Homogeneous,   heuristic: ThresholdHeuristic::P99 }, &cfg);
//! let full  = evaluate_policy(&ds, &Policy { grouping: Grouping::FullDiversity, heuristic: ThresholdHeuristic::P99 }, &cfg);
//! assert!(full.mean_utility() >= homog.mean_utility());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use attacksim;
pub use experiments;
pub use faultsim;
pub use flowtab;
pub use hids_core as hids;
pub use itconsole;
pub use netpkt;
pub use synthgen;
pub use tailstats;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use attacksim::{
        detection_curve, evasion_budget, hidden_traffic, replay_population, NaiveAttack,
    };
    pub use experiments::{Corpus, CorpusConfig};
    pub use faultsim::FaultPlan;
    pub use flowtab::{
        extract_features, FeatureCounts, FeatureKind, FeatureSeries, FlowExtractor, FlowRecord,
        Windowing,
    };
    pub use hids_core::{
        degraded::evaluate_policy_degraded, eval::evaluate_policy, Alert, AttackSweep, Detector,
        EvalConfig, FeatureDataset, Grouping, PartialMethod, Policy, ThresholdHeuristic,
    };
    pub use itconsole::{best_users, AlertBatcher, CentralConsole, SentinelConfig};
    pub use synthgen::{
        generate_traces, storm_week_series, Population, PopulationConfig, StormConfig, UserProfile,
    };
    pub use tailstats::{EmpiricalDist, FiveNumber};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_an_end_to_end_path() {
        let corpus = Corpus::generate(CorpusConfig {
            n_users: 5,
            n_weeks: 2,
            ..Default::default()
        });
        let ds = corpus.dataset(FeatureKind::UdpConnections, 0);
        let cfg = EvalConfig {
            w: 0.4,
            sweep: ds.default_sweep(),
        };
        let eval = evaluate_policy(
            &ds,
            &Policy {
                grouping: Grouping::Partial(PartialMethod::EIGHT_PARTIAL),
                heuristic: ThresholdHeuristic::P99,
            },
            &cfg,
        );
        assert_eq!(eval.users.len(), 5);
    }
}
