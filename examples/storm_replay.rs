//! Storm-zombie replay — the paper's Figure 5 real-attack evaluation,
//! plus the collaborative sentinel-detection extension from its §7.
//!
//! ```sh
//! cargo run --release --example storm_replay
//! ```

use experiments::{fig5, Corpus, CorpusConfig};
use flowtab::FeatureKind;
use hids_core::{Grouping, Policy, ThresholdHeuristic};
use itconsole::{sentinel_consensus, SentinelConfig};
use synthgen::{storm_week_series, StormConfig};

fn main() {
    let corpus = Corpus::generate(CorpusConfig {
        n_users: 150,
        n_weeks: 2,
        ..Default::default()
    });
    let storm = StormConfig::default();

    // The replay scatter: FP vs detection per user, per policy.
    let r = fig5::run(&corpus, 0, &storm);
    let wpw = corpus.config.windowing().windows_per_week() as f64;
    println!("{}", fig5::summary_table(&r, wpw).render());

    // Qualitative reading, matching the paper's discussion of Fig. 5(a):
    let homog = &r.scatters[0];
    let full = &r.scatters[1];
    println!(
        "homogeneous: FP spans {:.1} decades across users; diversity pins median FP at {:.4}",
        homog.fp_span_decades(wpw),
        full.median_fp()
    );

    // §7 extension — collaborative detection: the 10 most sensitive users
    // (lowest distinct-connection thresholds) vote per window; a quorum
    // broadcasts an advisory that covers users whose own detectors missed.
    let feature = FeatureKind::DistinctConnections;
    let ds = corpus.dataset(feature, 0);
    let thresholds = Policy {
        grouping: Grouping::FullDiversity,
        heuristic: ThresholdHeuristic::P99,
    }
    .configure(&ds.train)
    .thresholds;

    let zombie = storm_week_series(&storm, corpus.config.windowing(), 0);
    let zombie_counts = zombie.feature(feature);
    let alarm_matrix: Vec<Vec<bool>> = ds
        .test_counts
        .iter()
        .zip(&thresholds)
        .map(|(counts, &t)| {
            counts
                .iter()
                .enumerate()
                .map(|(w, &g)| (g + zombie_counts[w % zombie_counts.len()]) as f64 > t)
                .collect()
        })
        .collect();

    let config = SentinelConfig {
        n_sentinels: 10,
        quorum: 3,
    };
    let advisories = sentinel_consensus(&alarm_matrix, &thresholds, &config);
    let attack_windows = zombie_counts.iter().filter(|&&b| b > 0).count();
    println!(
        "sentinel consensus ({} sentinels, quorum {}): advisories in {} of {} attacked windows ({:.0}%)",
        config.n_sentinels,
        config.quorum,
        advisories.len(),
        attack_windows,
        100.0 * advisories.len() as f64 / attack_windows as f64
    );

    // How much does the advisory help the weakest individual detectors?
    let solo_worst = r.scatters[1]
        .points
        .iter()
        .map(|p| p.detection)
        .fold(f64::INFINITY, f64::min);
    println!(
        "weakest individual detector catches {:.0}% of attack windows alone; \
         with advisories every user is covered in {:.0}% of them",
        100.0 * solo_worst,
        100.0 * advisories.len() as f64 / attack_windows as f64
    );
}
