//! Quickstart: generate a small enterprise, configure the three policies,
//! and compare every user's false-positive / false-negative balance.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use monoculture_hids::prelude::*;

fn main() {
    // 1. A synthetic enterprise: 60 users, two weeks of 15-minute windows.
    //    (The paper's full population is 350 users / 5 weeks — see the
    //    `repro` binary for the complete reproduction.)
    let corpus = Corpus::generate(CorpusConfig {
        n_users: 60,
        n_weeks: 2,
        ..Default::default()
    });
    println!(
        "generated {} users x {} weeks ({} windows/week)",
        corpus.n_users(),
        corpus.config.n_weeks,
        corpus.config.windowing().windows_per_week()
    );

    // 2. Train on week 0, test on week 1, tracking num-TCP-connections.
    let ds = corpus.dataset(FeatureKind::TcpConnections, 0);
    println!(
        "largest per-window value any user produced: {}",
        ds.max_observed()
    );

    // 3. Configure and evaluate the three enterprise policies.
    let cfg = EvalConfig {
        w: 0.4, // the paper's Figure-3(a) false-negative weight
        sweep: ds.default_sweep(),
    };
    println!("\n{:>16} {:>10} {:>10} {:>10} {:>12}", "policy", "mean U", "mean FP", "mean FN", "alarms/week");
    for (name, grouping) in [
        ("homogeneous", Grouping::Homogeneous),
        ("full-diversity", Grouping::FullDiversity),
        ("8-partial", Grouping::Partial(PartialMethod::EIGHT_PARTIAL)),
    ] {
        let eval = evaluate_policy(
            &ds,
            &Policy {
                grouping,
                heuristic: ThresholdHeuristic::P99,
            },
            &cfg,
        );
        let n = eval.users.len() as f64;
        let fp = eval.users.iter().map(|u| u.fp).sum::<f64>() / n;
        let fnr = eval.users.iter().map(|u| u.fn_rate).sum::<f64>() / n;
        println!(
            "{:>16} {:>10.4} {:>10.4} {:>10.4} {:>12}",
            name,
            eval.mean_utility(),
            fp,
            fnr,
            eval.total_false_alarms()
        );
    }

    // 4. The monoculture's hidden cost: who actually suffers?
    let homog = evaluate_policy(
        &ds,
        &Policy {
            grouping: Grouping::Homogeneous,
            heuristic: ThresholdHeuristic::P99,
        },
        &cfg,
    );
    let full = evaluate_policy(
        &ds,
        &Policy {
            grouping: Grouping::FullDiversity,
            heuristic: ThresholdHeuristic::P99,
        },
        &cfg,
    );
    let improved = homog
        .users
        .iter()
        .zip(&full.users)
        .filter(|(h, f)| f.utility > h.utility)
        .count();
    println!(
        "\n{improved}/{} users see strictly better utility under full diversity",
        corpus.n_users()
    );
    let light_fn_homog: Vec<f64> = homog
        .users
        .iter()
        .zip(&corpus.population.users)
        .filter(|(_, p)| !p.heavy)
        .map(|(u, _)| u.fn_rate)
        .collect();
    let light_fn_full: Vec<f64> = full
        .users
        .iter()
        .zip(&corpus.population.users)
        .filter(|(_, p)| !p.heavy)
        .map(|(u, _)| u.fn_rate)
        .collect();
    println!(
        "light/medium users' missed-detection rate: homogeneous {:.3} vs full diversity {:.3}",
        light_fn_homog.iter().sum::<f64>() / light_fn_homog.len() as f64,
        light_fn_full.iter().sum::<f64>() / light_fn_full.len() as f64,
    );
}
