//! Export a synthetic user's week to a pcap file that Wireshark, tcpdump
//! or Zeek can open — the bridge for evaluating *other* HIDS tools on the
//! same calibrated population.
//!
//! ```sh
//! cargo run --release --example export_trace -- [user_id] [out.pcap]
//! ```

use flowtab::Windowing;
use synthgen::{export_user_week_to_file, Population, PopulationConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let user_id: usize = args
        .next()
        .map(|a| a.parse().expect("user_id must be an integer"))
        .unwrap_or(42);
    let out = args.next().unwrap_or_else(|| "user_week.pcap".to_string());

    let pop = Population::sample(PopulationConfig::default());
    let profile = pop
        .users
        .get(user_id)
        .unwrap_or_else(|| panic!("user_id must be < {}", pop.users.len()));

    println!(
        "user {user_id}: heavy={} tcp-level={:.0} udp-level={:.0} dns-level={:.0}",
        profile.heavy, profile.levels.tcp, profile.levels.udp, profile.levels.dns
    );

    let t0 = std::time::Instant::now();
    let stats = export_user_week_to_file(
        std::path::Path::new(&out),
        profile,
        pop.config.seed,
        0,
        pop.config.weekly_trend,
        Windowing::FIFTEEN_MIN,
    )
    .expect("pcap export");

    println!(
        "wrote {out}: {} windows ({} empty, {} oversized), {} flows, {} frames in {:.1}s",
        stats.windows,
        stats.empty_windows,
        stats.oversized_windows,
        stats.flows,
        stats.frames,
        t0.elapsed().as_secs_f64()
    );
    let size = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    println!("capture size: {:.1} MiB", size as f64 / (1024.0 * 1024.0));
    println!("open it with: wireshark {out}   (or: tcpdump -nr {out} | head)");
}
