//! The faithful measurement path, end to end:
//!
//! generated window counts → flow records → **real packets** → pcap file →
//! re-parse → flow reconstruction → feature extraction → identical counts.
//!
//! This is the `windump`+Bro pipeline the paper's data collection used,
//! exercised on synthetic traffic. It proves the population-scale
//! experiments (which run at count level for speed) measure the same thing
//! the packet path would.
//!
//! ```sh
//! cargo run --release --example pcap_pipeline
//! ```

use flowtab::{
    extract_features, DnsTracker, Endpoint, FeatureKind, FlowExtractor, FlowTableConfig,
    Windowing,
};
use netpkt::{
    EtherType, EthernetFrame, IpProtocol, Ipv4Packet, LinkType, PcapPacket, PcapReader,
    PcapWriter, UdpDatagram,
};
use synthgen::{
    render_flows_to_frames, render_window_flows, stream_rng, user_week_series, Population,
    PopulationConfig,
};

fn main() {
    let pop = Population::sample(PopulationConfig {
        n_users: 3,
        ..Default::default()
    });
    let user = &pop.users[1];
    let windowing = Windowing::FIFTEEN_MIN;

    // Generate one week at count level and pick a busy morning window.
    let week = user_week_series(user, pop.config.seed, 0, windowing);
    let (window_idx, counts) = week
        .windows
        .iter()
        .enumerate()
        .filter(|(_, c)| {
            let total: u64 = FeatureKind::ALL.iter().map(|&k| c.get(k)).sum();
            (30..5000).contains(&total)
        })
        .max_by_key(|(_, c)| c.get(FeatureKind::TcpConnections))
        .expect("a busy window exists");
    println!("user {} window {window_idx}:", user.id);
    for k in FeatureKind::ALL {
        println!("  {:26} {}", k.name(), counts.get(k));
    }

    // Render to flow records, then to real frames.
    let mut rng = stream_rng(7, user.id, 0);
    let flows = render_window_flows(user, counts, window_idx, windowing, &mut rng);
    let frames = render_flows_to_frames(&flows, &mut rng);
    println!(
        "\nrendered {} flows into {} frames",
        flows.len(),
        frames.len()
    );

    // Write a pcap capture (in memory; swap for a file to open in Wireshark).
    let mut writer = PcapWriter::new(Vec::new(), LinkType::Ethernet).expect("pcap header");
    for f in &frames {
        writer
            .write_packet(&PcapPacket {
                ts_sec: f.ts as u32,
                ts_usec: ((f.ts.fract()) * 1e6) as u32,
                data: f.frame.clone(),
            })
            .expect("pcap record");
    }
    let capture = writer.finish().expect("flush");
    println!("pcap capture: {} bytes", capture.len());

    // Read it back and run the measurement pipeline — including the
    // Bro-style DNS transaction matcher on the side.
    let mut reader = PcapReader::new(&capture[..]).expect("valid pcap");
    let mut extractor = FlowExtractor::new(FlowTableConfig::default());
    let mut dns = DnsTracker::new(5.0);
    while let Some(pkt) = reader.next_packet().expect("pcap read") {
        if let Ok(eth) = EthernetFrame::parse(&pkt.data[..]) {
            if eth.ethertype() == EtherType::Ipv4 {
                if let Ok(ip) = Ipv4Packet::parse(eth.payload()) {
                    if ip.protocol() == IpProtocol::Udp {
                        if let Ok(udp) = UdpDatagram::parse(ip.payload()) {
                            if udp.dst_port() == 53 {
                                let client = Endpoint::new(ip.src(), udp.src_port());
                                dns.observe(pkt.timestamp(), client, true, udp.payload());
                            } else if udp.src_port() == 53 {
                                let client = Endpoint::new(ip.dst(), udp.dst_port());
                                dns.observe(pkt.timestamp(), client, false, udp.payload());
                            }
                        }
                    }
                }
            }
        }
        extractor.push_pcap(&pkt).expect("rendered frames parse");
    }
    let (transactions, dns_stats) = dns.finish();
    println!(
        "DNS transactions: {} matched, failure rate {:.1}%, loss rate {:.1}%",
        transactions.len(),
        dns_stats.failure_rate() * 100.0,
        dns_stats.loss_rate() * 100.0
    );
    if let Some(tx) = transactions.iter().find(|t| t.response_ts.is_some()) {
        println!(
            "  e.g. {} -> answered in {:.0} ms",
            tx.name,
            tx.latency().unwrap_or(0.0) * 1000.0
        );
    }
    let stats = extractor.stats();
    println!(
        "re-parsed {} frames ({} accepted, {} skipped)",
        stats.frames, stats.accepted, stats.skipped
    );
    let records = extractor.finish();
    println!("reconstructed {} flows", records.len());

    let extracted = extract_features(&records, user.addr, windowing, window_idx + 1);
    println!("\nre-extracted features vs generated:");
    let mut all_equal = true;
    for k in FeatureKind::ALL {
        let got = extracted.windows[window_idx].get(k);
        let expect = counts.get(k);
        println!(
            "  {:26} {:>8} {:>8} {}",
            k.name(),
            expect,
            got,
            if got == expect { "ok" } else { "MISMATCH" }
        );
        all_equal &= got == expect;
    }
    assert!(all_equal, "packet path must reproduce the generated counts");
    println!("\npacket path == count path: verified");
}
