//! Attacker vs policy duel — the paper's Figure 4 workflow.
//!
//! A botmaster controls a zombie on every host. The naive variant injects
//! a flat load and we sweep its size; the resourceful variant profiles each
//! host and injects the largest load that still evades with 90% confidence.
//!
//! ```sh
//! cargo run --release --example attacker_duel
//! ```

use experiments::{fig4, Corpus, CorpusConfig};
use flowtab::FeatureKind;

fn main() {
    let corpus = Corpus::generate(CorpusConfig {
        n_users: 150,
        n_weeks: 2,
        ..Default::default()
    });
    let feature = FeatureKind::TcpConnections;

    // --- Naive attacker: detection curves (Fig. 4(a)) ---
    let a = fig4::run_a(&corpus, feature, 0, 64);
    println!("{}", fig4::table_a(&a).render());

    // Where does each policy reach 90% population detection?
    println!("attack size at which 90% of hosts alarm:");
    for (p, curve) in fig4::POLICIES.iter().zip(&a.curves) {
        let at = a
            .sizes
            .iter()
            .zip(curve)
            .find(|(_, &f)| f >= 0.9)
            .map(|(b, _)| format!("{b:.0}"))
            .unwrap_or_else(|| "never".to_string());
        println!("  {:>16}: {at}", p.0);
    }

    // --- Resourceful attacker: hidden-traffic budgets (Fig. 4(b)) ---
    let b = fig4::run_b(&corpus, feature, 0, 0.9);
    println!("\n{}", fig4::table_b(&b).render());
    let medians: Vec<f64> = b.summaries.iter().map(|s| s.median).collect();
    println!(
        "median hidden traffic: homogeneous {:.0} -> full diversity {:.0} ({:.0}% reduction)",
        medians[0],
        medians[1],
        100.0 * (1.0 - medians[1] / medians[0].max(1.0))
    );

    // Aggregate DDoS capacity: what the whole botnet can hide.
    let totals: Vec<u64> = b.budgets.iter().map(|v| v.iter().sum()).collect();
    println!(
        "total undetected DDoS capacity across {} zombies: homogeneous {} conns/window vs full diversity {}",
        corpus.n_users(),
        totals[0],
        totals[1]
    );
}
