//! Policy comparison across the false-negative weight `w` — the workflow
//! behind the paper's Figure 3, with a tunable population.
//!
//! ```sh
//! cargo run --release --example policy_comparison -- [n_users] [seed]
//! ```

use experiments::{fig3, Corpus, CorpusConfig};
use flowtab::FeatureKind;

fn main() {
    let mut args = std::env::args().skip(1);
    let n_users: usize = args
        .next()
        .map(|a| a.parse().expect("n_users must be an integer"))
        .unwrap_or(120);
    let seed: u64 = args
        .next()
        .map(|a| a.parse().expect("seed must be an integer"))
        .unwrap_or(0xC0FFEE);

    let corpus = Corpus::generate(CorpusConfig {
        n_users,
        n_weeks: 4, // two train->test splits, as in the paper
        seed,
        ..Default::default()
    });

    // Figure 3(a): per-user utility boxplots at w = 0.4 under the
    // utility-maximising heuristic.
    let a = fig3::run_a(&corpus, FeatureKind::TcpConnections, 0.4);
    println!("{}", fig3::table_a(&a).render());
    for b in &a.boxes {
        println!("{:>16}: {}", b.policy, b.summary.describe());
    }

    // Figure 3(b): mean utility vs w under the operators' p99 heuristic.
    let b = fig3::run_b(&corpus, FeatureKind::TcpConnections, &fig3::paper_weights());
    println!("\n{}", fig3::table_b(&b).render());

    // The paper's headline: the diversity gain grows with w.
    let gap_low = b.means[1][0] - b.means[0][0];
    let gap_high = b.means[1][8] - b.means[0][8];
    println!(
        "diversity-over-monoculture utility gap: {:.4} at w=0.1 -> {:.4} at w=0.9 ({}x)",
        gap_low,
        gap_high,
        (gap_high / gap_low.max(1e-9)).round()
    );
}
