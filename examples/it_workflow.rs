//! The complete IT-operations loop, end to end:
//!
//! 1. hosts ship training distributions to the console,
//! 2. the console configures a policy and cuts a versioned bundle,
//! 3. hosts deploy the bundle,
//! 4. a compliance audit verifies the fleet (with one tampered host),
//! 5. a test week runs: alerts are batched, coalesced, rate-limited and
//!    accounted centrally,
//! 6. sentinel consensus turns diverse thresholds into fleet-wide
//!    advisories during a Storm infection.
//!
//! ```sh
//! cargo run --release --example it_workflow
//! ```

use flowtab::FeatureKind;
use hids_core::{Grouping, PartialMethod, Policy, PolicyBundle, ThresholdHeuristic};
use itconsole::{audit, coalesce, sentinel_consensus, AlertBatcher, CentralConsole, RateLimiter, SentinelConfig};
use monoculture_hids::prelude::*;
use synthgen::{storm_week_series, StormConfig};

fn main() {
    let corpus = Corpus::generate(CorpusConfig {
        n_users: 80,
        n_weeks: 2,
        ..Default::default()
    });
    let feature = FeatureKind::DistinctConnections;
    let ds = corpus.dataset(feature, 0);

    // 1-2. Configure the 8-partial policy and cut a bundle.
    let policy = Policy {
        grouping: Grouping::Partial(PartialMethod::EIGHT_PARTIAL),
        heuristic: ThresholdHeuristic::P99,
    };
    let outcome = policy.configure(&ds.train);
    let bundle = PolicyBundle::from_outcome(7, feature, &outcome);
    println!(
        "bundle v{} covers {} hosts, checksum {:016x}, {} bytes as text",
        bundle.version,
        bundle.n_hosts(),
        bundle.checksum(),
        bundle.to_text().len()
    );

    // 3. Deploy — and tamper with one host to give the audit work.
    let mut detectors = bundle.deploy();
    detectors[13].set_threshold(feature, 999_999.0);

    // 4. Compliance audit.
    let report = audit(&detectors, &outcome, feature, 0.0);
    println!(
        "audit: {} hosts checked, {} deviations ({}); deviation rate {:.1}%",
        report.audited,
        report.deviations.len(),
        report
            .deviations
            .first()
            .map(|d| format!("host {} deployed {:?}", d.user_index, d.deployed))
            .unwrap_or_default(),
        report.deviation_rate() * 100.0
    );
    detectors[13].set_threshold(feature, outcome.thresholds[13]); // remediate

    // 5. Run the test week through batching -> coalescing -> rate limit ->
    //    console.
    let console = CentralConsole::new(corpus.config.windowing().windows_per_week());
    let mut all_alerts = Vec::new();
    for (user, det) in detectors.iter().enumerate() {
        let mut batcher = AlertBatcher::new(96);
        for (w, counts) in corpus.series(user, 1).windows.iter().enumerate() {
            for alert in det.evaluate(w, counts) {
                batcher.push(alert);
            }
        }
        for batch in batcher.flush() {
            console.ingest_batch(&batch);
            all_alerts.extend(batch);
        }
    }
    all_alerts.sort_by_key(|a| (a.user, a.window));
    let lines = coalesce(&all_alerts, 1);
    let mut limiter = RateLimiter::new(20.0, 0.25);
    let queued = lines
        .iter()
        .filter(|l| limiter.admit(l.user, l.first_window))
        .count();
    let stats = console.stats();
    println!(
        "test week: {} raw alerts -> {} coalesced lines -> {} queued ({} rate-limited); top talker: host {:?}",
        stats.total_alerts,
        lines.len(),
        queued,
        limiter.suppressed(),
        stats.top_talkers(1).first().map(|t| t.0)
    );

    // 6. Storm hits the fleet: sentinels raise advisories.
    let zombie = storm_week_series(&StormConfig::default(), corpus.config.windowing(), 0);
    let zombie_counts = zombie.feature(feature);
    let alarm_matrix: Vec<Vec<bool>> = corpus
        .weeks
        .iter()
        .enumerate()
        .map(|(user, weeks)| {
            let t = outcome.thresholds[user];
            weeks[1]
                .feature(feature)
                .iter()
                .enumerate()
                .map(|(w, &g)| (g + zombie_counts[w % zombie_counts.len()]) as f64 > t)
                .collect()
        })
        .collect();
    let advisories = sentinel_consensus(
        &alarm_matrix,
        &outcome.thresholds,
        &SentinelConfig::default(),
    );
    let attacked = zombie_counts.iter().filter(|&&b| b > 0).count();
    println!(
        "storm week: advisories cover {}/{} attacked windows ({:.0}%)",
        advisories.len(),
        attacked,
        100.0 * advisories.len() as f64 / attacked as f64
    );
}
