//! Multi-node fleet clustering: consistent-hash sharding over a lossy
//! wire, heartbeat failure detection, and journaled handoff — with the
//! same determinism contract as a single daemon.
//!
//! This module promotes the in-process shard boundary of
//! [`crate::daemon`] to a *failure* boundary: a coordinator routes
//! per-host window batches to N worker nodes over an in-process simulated
//! transport carrying `CLW1` frames ([`crate::wire`]), each node running
//! its own [`Daemon`] with its own WAL and snapshots in its own
//! directory. Nodes die — silently (a seeded
//! [`faultsim::ClusterKillPoint::Node`]) or together with the whole
//! process (a [`faultsim::KillPoint`] shared across every WAL in the
//! simulation) — and the cluster must converge to the *same final
//! per-host table* as an uninterrupted single-node run.
//!
//! The design, piece by piece:
//!
//! * **Assignment** is consistent-hash ([`HashRing`]) over the original
//!   membership, plus an explicit override table for hosts moved off dead
//!   nodes. Every assignment change is one [`AssignEvent`] appended to a
//!   dedicated journal (`cluster.wal`, `WLR1` discipline via
//!   [`WalWriter::append_raw`]) *before* it takes effect in memory, and
//!   periodically folded into a `CSN1` snapshot ([`ClusterSnapshot`],
//!   atomic tmp+rename, newest-valid-wins). Recovery replays snapshot +
//!   journal suffix; the epoch guard in [`AssignState::apply`] makes
//!   replay idempotent. The journal is never truncated, so a damaged
//!   newest snapshot falls back to an older one plus a longer replay.
//! * **Failure detection** is missed-heartbeat timeout: nodes beacon
//!   every `heartbeat_interval` ticks, and a node unheard-of for more
//!   than `heartbeat_timeout` ticks is journaled dead
//!   ([`AssignEvent::NodeDead`]). Its hosts go *dark* — reported by
//!   [`Cluster::dark_hosts`] and accounted through
//!   `hids_core::degraded` coverage by the harness — until the next tick
//!   journals the [`AssignEvent::Rebalance`] that moves them to
//!   survivors. Death is permanent; a falsely-declared node is fenced
//!   out by epoch checks and excluded from the final merge.
//! * **Delivery** is at-least-once: the coordinator's source retransmits
//!   unacknowledged batches on the decorrelated-jitter backoff of
//!   `itconsole::delivery`, nodes suppress duplicates by per-host
//!   sequence number, and acks are fenced by the assignment epoch they
//!   were sent under, so an ack that raced a handoff cannot mark work
//!   done on the wrong node. On handoff the moved host restarts from
//!   sequence 1 on its new owner: each host's final state is a pure
//!   function of its in-order applied batch prefix, which is what makes
//!   the N-node, kill-swept table byte-identical to the 1-node one.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

use faultsim::{LinkFaults, LinkSim};
use hids_metrics::Registry;

use crate::codec::{crc32, put_u32, put_u64, CodecError, Reader, WindowBatch};
use crate::daemon::{Completion, Daemon, DaemonConfig, DaemonError, RecoveryReport};
use crate::queue::Admit;
use crate::state::HostState;
use crate::wal::{KillSwitch, TailDefect, WalWriter};
use crate::wire::{frame_msg, ClusterMsg, WireDecoder, WireStats};

/// Magic for cluster assignment snapshots.
pub const CLUSTER_SNAP_MAGIC: [u8; 4] = *b"CSN1";

/// Sanity bound on decoded membership/override list lengths.
const MAX_ASSIGN_ENTRIES: u32 = 1 << 24;

/// SplitMix64 finalizer — the ring's point/key mixer.
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A consistent-hash ring: each node contributes `vnodes` points, a host
/// belongs to the first point clockwise of its own hash. Removing a node
/// removes only that node's points, so only *its* hosts move — the
/// property that bounds handoff traffic to the dead node's share.
#[derive(Debug, Clone)]
pub struct HashRing {
    points: Vec<(u64, u32)>,
}

impl HashRing {
    /// Build the ring for `nodes`, each with `vnodes` virtual points.
    pub fn new(nodes: &[u32], vnodes: u32) -> Self {
        let mut points = Vec::with_capacity(nodes.len() * vnodes as usize);
        for &n in nodes {
            for r in 0..vnodes {
                points.push((mix64((u64::from(n) << 32) | u64::from(r)), n));
            }
        }
        points.sort_unstable();
        Self { points }
    }

    /// The node owning `host`, or `None` for an empty ring.
    pub fn owner(&self, host: u32) -> Option<u32> {
        if self.points.is_empty() {
            return None;
        }
        let h = mix64(0x686F_7374 ^ (u64::from(host) << 16));
        let idx = self.points.partition_point(|&(p, _)| p < h);
        let (_, node) = self.points[idx % self.points.len()];
        Some(node)
    }
}

/// One durable assignment transition, journaled before it takes effect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssignEvent {
    /// The cluster was created with this membership. First record of
    /// every journal; epoch 0.
    Bootstrap {
        /// Number of nodes (ids `0..n_nodes`).
        n_nodes: u32,
        /// Virtual points per node on the ring.
        vnodes: u32,
    },
    /// A node was declared dead by heartbeat timeout. Its hosts are dark
    /// until the following [`AssignEvent::Rebalance`].
    NodeDead {
        /// The epoch this transition creates (strictly increasing).
        epoch: u32,
        /// The dead node.
        node: u32,
    },
    /// The dead node's hosts were reassigned to survivors. This is the
    /// *atomic* handoff record: either the whole move is durable or none
    /// of it is — there is no half-moved host.
    Rebalance {
        /// The epoch this transition creates (strictly increasing).
        epoch: u32,
        /// The node the hosts are moving off.
        from: u32,
        /// `(host, new_owner)` pairs, in ascending host order.
        moved: Vec<(u32, u32)>,
    },
}

impl AssignEvent {
    /// Serialise into `out`: tag byte + body.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            AssignEvent::Bootstrap { n_nodes, vnodes } => {
                out.push(0);
                put_u32(out, *n_nodes);
                put_u32(out, *vnodes);
            }
            AssignEvent::NodeDead { epoch, node } => {
                out.push(1);
                put_u32(out, *epoch);
                put_u32(out, *node);
            }
            AssignEvent::Rebalance { epoch, from, moved } => {
                out.push(2);
                put_u32(out, *epoch);
                put_u32(out, *from);
                put_u32(out, moved.len() as u32);
                for (host, to) in moved {
                    put_u32(out, *host);
                    put_u32(out, *to);
                }
            }
        }
    }

    /// Decode one event; must consume `buf` exactly.
    pub fn decode(buf: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(buf);
        let ev = match r.u8()? {
            0 => AssignEvent::Bootstrap {
                n_nodes: r.u32()?,
                vnodes: r.u32()?,
            },
            1 => AssignEvent::NodeDead {
                epoch: r.u32()?,
                node: r.u32()?,
            },
            2 => {
                let epoch = r.u32()?;
                let from = r.u32()?;
                let count = r.u32()?;
                if count > MAX_ASSIGN_ENTRIES {
                    return Err(CodecError::ImplausibleLength);
                }
                let mut moved = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    moved.push((r.u32()?, r.u32()?));
                }
                AssignEvent::Rebalance { epoch, from, moved }
            }
            _ => return Err(CodecError::BadDiscriminant),
        };
        r.finish()?;
        Ok(ev)
    }
}

/// A point-in-time copy of [`AssignState`], written with the same
/// atomic-rename, keep-two, newest-valid-wins discipline as daemon
/// snapshots. Unlike the daemon's WAL, the cluster journal is *not*
/// truncated when a snapshot lands: a damaged newest snapshot falls back
/// to an older one and replays a longer journal suffix instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSnapshot {
    /// Monotone snapshot sequence number (also in the filename).
    pub seq: u64,
    /// Assignment epoch at capture.
    pub epoch: u32,
    /// Original membership size.
    pub n_nodes: u32,
    /// Virtual points per node.
    pub vnodes: u32,
    /// Nodes still live.
    pub live: Vec<u32>,
    /// Nodes declared dead but not yet rebalanced.
    pub pending_dead: Vec<u32>,
    /// `(host, node, epoch)` override rows for moved hosts.
    pub overrides: Vec<(u32, u32, u32)>,
}

impl ClusterSnapshot {
    /// Serialise: magic | payload len | payload CRC | payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        put_u64(&mut p, self.seq);
        put_u32(&mut p, self.epoch);
        put_u32(&mut p, self.n_nodes);
        put_u32(&mut p, self.vnodes);
        put_u32(&mut p, self.live.len() as u32);
        for &n in &self.live {
            put_u32(&mut p, n);
        }
        put_u32(&mut p, self.pending_dead.len() as u32);
        for &n in &self.pending_dead {
            put_u32(&mut p, n);
        }
        put_u32(&mut p, self.overrides.len() as u32);
        for &(h, n, e) in &self.overrides {
            put_u32(&mut p, h);
            put_u32(&mut p, n);
            put_u32(&mut p, e);
        }
        let mut out = Vec::with_capacity(12 + p.len());
        out.extend_from_slice(&CLUSTER_SNAP_MAGIC);
        out.extend_from_slice(&(p.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&p).to_le_bytes());
        out.extend_from_slice(&p);
        out
    }

    /// Decode and verify one snapshot file image.
    pub fn decode(bytes: &[u8]) -> Result<Self, TailDefect> {
        if bytes.len() < 12 {
            return Err(TailDefect::ShortHeader);
        }
        if bytes[..4] != CLUSTER_SNAP_MAGIC {
            return Err(TailDefect::BadMagic);
        }
        let len = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if len > crate::snapshot::MAX_SNAP_PAYLOAD {
            return Err(TailDefect::ImplausibleLength);
        }
        let crc = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        let payload = &bytes[12..];
        if payload.len() != len as usize {
            return Err(TailDefect::ShortPayload);
        }
        if crc32(payload) != crc {
            return Err(TailDefect::CrcMismatch);
        }
        Self::decode_payload(payload).map_err(TailDefect::Undecodable)
    }

    fn decode_payload(payload: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(payload);
        let seq = r.u64()?;
        let epoch = r.u32()?;
        let n_nodes = r.u32()?;
        let vnodes = r.u32()?;
        let read_list = |r: &mut Reader<'_>| -> Result<Vec<u32>, CodecError> {
            let count = r.u32()?;
            if count > MAX_ASSIGN_ENTRIES {
                return Err(CodecError::ImplausibleLength);
            }
            (0..count).map(|_| r.u32()).collect()
        };
        let live = read_list(&mut r)?;
        let pending_dead = read_list(&mut r)?;
        let count = r.u32()?;
        if count > MAX_ASSIGN_ENTRIES {
            return Err(CodecError::ImplausibleLength);
        }
        let mut overrides = Vec::with_capacity(count as usize);
        for _ in 0..count {
            overrides.push((r.u32()?, r.u32()?, r.u32()?));
        }
        r.finish()?;
        Ok(Self {
            seq,
            epoch,
            n_nodes,
            vnodes,
            live,
            pending_dead,
            overrides,
        })
    }
}

/// Filename for cluster snapshot `seq` (sorts lexicographically).
pub fn cluster_snapshot_filename(seq: u64) -> String {
    format!("cluster-snap-{seq:012}.bin")
}

/// List `(seq, path)` of cluster snapshot files in `dir`, ascending.
pub fn list_cluster_snapshots(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(stem) = name
            .strip_prefix("cluster-snap-")
            .and_then(|s| s.strip_suffix(".bin"))
        {
            if let Ok(seq) = stem.parse::<u64>() {
                out.push((seq, entry.path()));
            }
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// Write `snap` atomically (tmp + rename) and prune to the newest two.
pub fn write_cluster_snapshot(dir: &Path, snap: &ClusterSnapshot) -> std::io::Result<PathBuf> {
    let tmp = dir.join(".cluster-snap.tmp");
    fs::write(&tmp, snap.encode())?;
    let path = dir.join(cluster_snapshot_filename(snap.seq));
    fs::rename(&tmp, &path)?;
    let all = list_cluster_snapshots(dir)?;
    if all.len() > 2 {
        for (_, old) in &all[..all.len() - 2] {
            fs::remove_file(old)?;
        }
    }
    Ok(path)
}

/// Load the newest decodable cluster snapshot, counting damaged newer
/// ones that had to be skipped.
pub fn load_latest_cluster_snapshot(
    dir: &Path,
) -> std::io::Result<(Option<ClusterSnapshot>, u32)> {
    let mut discarded = 0u32;
    for (_, path) in list_cluster_snapshots(dir)?.into_iter().rev() {
        let bytes = fs::read(&path)?;
        match ClusterSnapshot::decode(&bytes) {
            Ok(s) => return Ok((Some(s), discarded)),
            Err(_) => discarded += 1,
        }
    }
    Ok((None, discarded))
}

/// The replicated assignment state machine: who owns which host, at
/// which epoch. Pure function of the applied [`AssignEvent`] sequence.
#[derive(Debug, Clone)]
pub struct AssignState {
    /// Original membership size (node ids are `0..n_nodes`).
    pub n_nodes: u32,
    /// Virtual points per node.
    pub vnodes: u32,
    /// Epoch of the last applied transition (0 = bootstrap).
    pub epoch: u32,
    /// Nodes still live.
    pub live: BTreeSet<u32>,
    /// Nodes declared dead whose hosts have not been rebalanced yet —
    /// those hosts are dark.
    pub pending_dead: BTreeSet<u32>,
    /// `host → (owner, epoch assigned)` for hosts moved off dead nodes.
    pub overrides: BTreeMap<u32, (u32, u32)>,
    ring: HashRing,
}

impl AssignState {
    /// The bootstrap assignment: all nodes live, no overrides.
    pub fn new(n_nodes: u32, vnodes: u32) -> Self {
        let all: Vec<u32> = (0..n_nodes).collect();
        Self {
            n_nodes,
            vnodes,
            epoch: 0,
            live: all.iter().copied().collect(),
            pending_dead: BTreeSet::new(),
            overrides: BTreeMap::new(),
            ring: HashRing::new(&all, vnodes),
        }
    }

    /// Rebuild from a snapshot.
    pub fn from_snapshot(snap: &ClusterSnapshot) -> Self {
        let all: Vec<u32> = (0..snap.n_nodes).collect();
        Self {
            n_nodes: snap.n_nodes,
            vnodes: snap.vnodes,
            epoch: snap.epoch,
            live: snap.live.iter().copied().collect(),
            pending_dead: snap.pending_dead.iter().copied().collect(),
            overrides: snap
                .overrides
                .iter()
                .map(|&(h, n, e)| (h, (n, e)))
                .collect(),
            ring: HashRing::new(&all, snap.vnodes),
        }
    }

    /// Capture into a snapshot with the given sequence number.
    pub fn to_snapshot(&self, seq: u64) -> ClusterSnapshot {
        ClusterSnapshot {
            seq,
            epoch: self.epoch,
            n_nodes: self.n_nodes,
            vnodes: self.vnodes,
            live: self.live.iter().copied().collect(),
            pending_dead: self.pending_dead.iter().copied().collect(),
            overrides: self
                .overrides
                .iter()
                .map(|(&h, &(n, e))| (h, n, e))
                .collect(),
        }
    }

    /// Current owner of `host` (may be a dead or pending-dead node — the
    /// caller decides whether that makes the host routable or dark).
    pub fn owner(&self, host: u32) -> u32 {
        if let Some(&(node, _)) = self.overrides.get(&host) {
            return node;
        }
        self.ring.owner(host).unwrap_or(0)
    }

    /// The epoch under which `host` was last (re)assigned — the fence
    /// value stamped on outgoing batches and checked on incoming acks.
    pub fn host_epoch(&self, host: u32) -> u32 {
        self.overrides.get(&host).map(|&(_, e)| e).unwrap_or(0)
    }

    /// Apply one journaled transition. Transitions carry the epoch they
    /// create; anything at or below the current epoch is a replay
    /// duplicate and is ignored, which makes snapshot + full-journal
    /// replay idempotent.
    pub fn apply(&mut self, ev: &AssignEvent) {
        match ev {
            AssignEvent::Bootstrap { n_nodes, vnodes } => {
                if self.epoch == 0 {
                    *self = Self::new(*n_nodes, *vnodes);
                }
            }
            AssignEvent::NodeDead { epoch, node } => {
                if *epoch > self.epoch {
                    self.epoch = *epoch;
                    self.live.remove(node);
                    self.pending_dead.insert(*node);
                }
            }
            AssignEvent::Rebalance { epoch, from, moved } => {
                if *epoch > self.epoch {
                    self.epoch = *epoch;
                    self.pending_dead.remove(from);
                    for &(host, to) in moved {
                        self.overrides.insert(host, (to, *epoch));
                    }
                }
            }
        }
    }
}

/// Cluster tunables.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of worker nodes (ids `0..n_nodes`).
    pub n_nodes: u32,
    /// Virtual points per node on the consistent-hash ring.
    pub vnodes: u32,
    /// Nodes send a heartbeat every this many ticks.
    pub heartbeat_interval: u64,
    /// A live node unheard-of for more than this many ticks is declared
    /// dead. Must exceed `heartbeat_interval + latency` or a healthy
    /// cluster declares itself dead.
    pub heartbeat_timeout: u64,
    /// Base one-way frame latency in ticks.
    pub latency: u64,
    /// Per-node daemon configuration.
    pub node: DaemonConfig,
    /// Wire fault mix (both directions).
    pub link: LinkFaults,
    /// Master seed for the per-direction link fault streams.
    pub link_seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            n_nodes: 2,
            vnodes: 64,
            heartbeat_interval: 4,
            heartbeat_timeout: 16,
            latency: 1,
            node: DaemonConfig::default(),
            link: LinkFaults::none(),
            link_seed: 0x11A7_C0DE,
        }
    }
}

/// Validate `cfg`, mirroring the daemon's config validation.
pub fn validate_cluster(cfg: &ClusterConfig) -> Result<(), DaemonError> {
    if cfg.n_nodes < 1 {
        return Err(DaemonError::Config("n_nodes must be >= 1"));
    }
    if cfg.n_nodes > 4096 {
        return Err(DaemonError::Config("n_nodes must be <= 4096"));
    }
    if cfg.vnodes < 1 {
        return Err(DaemonError::Config("vnodes must be >= 1"));
    }
    if cfg.heartbeat_interval < 1 {
        return Err(DaemonError::Config("heartbeat_interval must be >= 1"));
    }
    if cfg.latency < 1 {
        return Err(DaemonError::Config("latency must be >= 1"));
    }
    if cfg.heartbeat_timeout <= cfg.heartbeat_interval + cfg.latency {
        return Err(DaemonError::Config(
            "heartbeat_timeout must exceed heartbeat_interval + latency",
        ));
    }
    Ok(())
}

/// Ticks a decoder may stay blocked on an incomplete frame before the
/// pending header is declared corrupt and resynced past. The transport
/// delivers frames atomically, so any cross-tick starvation is already
/// proof of a forged length; a small allowance keeps the policy safely
/// below every heartbeat-timeout margin (worst-case per-corruption gap
/// is this many ticks, vs. a default timeout of 16).
const DECODER_STALL_TICKS: u64 = 2;

/// The cluster-level kill switch: one shared process [`KillSwitch`]
/// metering every WAL byte and applied batch in the simulation (node
/// WALs *and* the cluster journal — so a byte-offset kill can land inside
/// a rebalance record), plus a schedule of silent single-node deaths
/// metered in cumulative cluster ticks (monotone across process
/// restarts, so a node kill survives an unrelated crash-recovery cycle).
#[derive(Debug)]
pub struct ClusterKillSwitch {
    /// The shared process death switch.
    pub process: KillSwitch,
    kills: Vec<(u32, u64)>,
    fired: Vec<bool>,
    ticks: u64,
}

impl ClusterKillSwitch {
    /// No deaths of either kind.
    pub fn none() -> Self {
        Self::new(Vec::new())
    }

    /// Arm the given `(node, at_tick)` silent deaths. The process switch
    /// starts disarmed; arm it via `self.process.rearm(..)`.
    pub fn new(kills: Vec<(u32, u64)>) -> Self {
        let fired = vec![false; kills.len()];
        Self {
            process: KillSwitch::none(),
            kills,
            fired,
            ticks: 0,
        }
    }

    /// Cumulative cluster ticks across every process lifetime.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// True when the given node's silent death has already fired — such
    /// a node must not be reopened after a process restart.
    pub fn node_is_dead(&self, node: u32) -> bool {
        self.kills
            .iter()
            .zip(&self.fired)
            .any(|(&(n, _), &f)| f && n == node)
    }

    /// Advance the cumulative clock and return the nodes whose death is
    /// due this tick (marking them fired).
    fn tick_and_due(&mut self) -> Vec<u32> {
        self.ticks += 1;
        let mut due = Vec::new();
        for (i, &(node, at)) in self.kills.iter().enumerate() {
            if !self.fired[i] && at <= self.ticks {
                self.fired[i] = true;
                due.push(node);
            }
        }
        due
    }
}

/// What cluster recovery found on open.
#[derive(Debug, Default)]
pub struct ClusterRecovery {
    /// Sequence of the snapshot recovered from, if any.
    pub snapshot_seq: Option<u64>,
    /// Damaged newer snapshots skipped to reach it.
    pub snapshots_discarded: u32,
    /// Assignment events replayed from the journal.
    pub journal_events: u64,
    /// Torn/corrupt bytes truncated from the journal tail.
    pub journal_torn_bytes: u64,
    /// Per-node daemon recovery reports for reopened nodes.
    pub node_reports: Vec<(u32, RecoveryReport)>,
}

/// One completed handoff, surfaced so the source can rewind the moved
/// hosts to sequence 1 and withdraw any in-flight batches for them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandoffNotice {
    /// Epoch the rebalance created.
    pub epoch: u32,
    /// The node the hosts moved off.
    pub from: u32,
    /// `(host, new_owner)` pairs.
    pub moved: Vec<(u32, u32)>,
}

/// One observed dark window: a node was declared dead and these hosts
/// were unowned until the rebalance landed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DarkEpisode {
    /// Cumulative cluster tick of the death declaration.
    pub at_tick: u64,
    /// The dead node.
    pub node: u32,
    /// The hosts that went dark.
    pub hosts: Vec<u32>,
}

/// Operational counters for one cluster lifetime (telemetry, not part of
/// the determinism contract — a kill-swept run reports different counts
/// than a clean one; it is the final host table that must match).
#[derive(Debug, Default, Clone, Copy)]
pub struct ClusterStats {
    /// Batches routed onto the wire.
    pub batches_sent: u64,
    /// Batches refused because the owner was dead or pending-dead.
    pub unroutable: u64,
    /// Acks accepted (owner and epoch both current).
    pub acks_accepted: u64,
    /// Acks fenced off (stale epoch, stale owner, or non-live sender).
    pub acks_stale: u64,
    /// Heartbeats accepted from live nodes.
    pub heartbeats_received: u64,
    /// Heartbeats from nodes already declared dead.
    pub heartbeats_stale: u64,
    /// Nodes declared dead by heartbeat timeout.
    pub node_deaths: u64,
    /// Silent node kills fired this lifetime.
    pub node_kills: u64,
    /// Rebalances journaled.
    pub rebalances: u64,
    /// Hosts moved by rebalances.
    pub hosts_moved: u64,
    /// Assignment events appended to the journal.
    pub journal_events: u64,
    /// Frames sent coordinator → nodes.
    pub frames_down: u64,
    /// Frames sent nodes → coordinator.
    pub frames_up: u64,
}

/// In-flight frames on one simulated link direction, delivered in
/// `(due_tick, send_order)` order — reordering happens only through the
/// seeded extra delays of [`LinkSim`], never through iteration order.
#[derive(Debug, Default)]
struct Pipe {
    q: Vec<(u64, u64, Vec<u8>)>,
}

impl Pipe {
    fn sched(&mut self, due: u64, order: u64, bytes: Vec<u8>) {
        self.q.push((due, order, bytes));
    }

    fn pop_due(&mut self, now: u64) -> Vec<Vec<u8>> {
        let mut due: Vec<(u64, u64, Vec<u8>)> = Vec::new();
        let mut rest: Vec<(u64, u64, Vec<u8>)> = Vec::new();
        for item in std::mem::take(&mut self.q) {
            if item.0 <= now {
                due.push(item);
            } else {
                rest.push(item);
            }
        }
        self.q = rest;
        due.sort_by_key(|&(d, o, _)| (d, o));
        due.into_iter().map(|(_, _, b)| b).collect()
    }
}

/// One worker node: a daemon in its own directory plus its wire decoder
/// and heartbeat clock.
struct NodeSim {
    id: u32,
    daemon: Daemon,
    decoder: WireDecoder,
    ticks: u64,
    /// `(host, seq) → epoch` of the last offered batch, echoed in acks.
    pending_epochs: BTreeMap<(u32, u64), u32>,
}

/// The coordinator plus its N simulated nodes and links.
pub struct Cluster {
    cfg: ClusterConfig,
    dir: PathBuf,
    assign: AssignState,
    journal: WalWriter,
    next_snap_seq: u64,
    hosts_universe: Vec<u32>,
    nodes: Vec<Option<NodeSim>>,
    node_pipes: Vec<Pipe>,
    coord_pipe: Pipe,
    coord_decoder: WireDecoder,
    links_down: Vec<LinkSim>,
    links_up: Vec<LinkSim>,
    last_seen: BTreeMap<u32, u64>,
    now: u64,
    send_order: u64,
    completions: Vec<Completion>,
    handoffs: Vec<HandoffNotice>,
    dark_episodes: Vec<DarkEpisode>,
    wire_base: WireStats,
    stats: ClusterStats,
}

impl Cluster {
    /// Open (creating or recovering) a cluster rooted at `dir`.
    ///
    /// `hosts` is the full host universe — needed to enumerate a dead
    /// node's hosts for rebalance. `kill` is consulted for the bootstrap
    /// journal append and for which nodes died silently in earlier
    /// lifetimes (those are not reopened; the heartbeat detector will
    /// re-declare them dead if the journal does not already say so).
    pub fn open(
        dir: &Path,
        cfg: ClusterConfig,
        hosts: &[u32],
        kill: &mut ClusterKillSwitch,
    ) -> Result<(Self, ClusterRecovery), DaemonError> {
        validate_cluster(&cfg)?;
        fs::create_dir_all(dir)?;

        let mut recovery = ClusterRecovery::default();
        let (snap, discarded) = load_latest_cluster_snapshot(dir)?;
        recovery.snapshots_discarded = discarded;
        let mut next_snap_seq = 1;
        let mut assign = match &snap {
            Some(s) => {
                if s.n_nodes != cfg.n_nodes {
                    return Err(DaemonError::Config(
                        "cluster directory was created with a different n_nodes",
                    ));
                }
                recovery.snapshot_seq = Some(s.seq);
                next_snap_seq = s.seq + 1;
                AssignState::from_snapshot(s)
            }
            None => AssignState::new(cfg.n_nodes, cfg.vnodes),
        };

        let (mut journal, replay) = WalWriter::open_raw(&dir.join("cluster.wal"))?;
        recovery.journal_torn_bytes = replay.torn_bytes;
        let fresh = snap.is_none() && replay.payloads.is_empty();
        for payload in &replay.payloads {
            // A CRC-valid but undecodable event is only possible with
            // deliberate corruption; stop replaying there, like a torn
            // tail.
            let Ok(ev) = AssignEvent::decode(payload) else {
                break;
            };
            if let AssignEvent::Bootstrap { n_nodes, .. } = &ev {
                if *n_nodes != cfg.n_nodes {
                    return Err(DaemonError::Config(
                        "cluster journal was created with a different n_nodes",
                    ));
                }
            }
            recovery.journal_events += 1;
            assign.apply(&ev);
        }

        if fresh {
            let ev = AssignEvent::Bootstrap {
                n_nodes: cfg.n_nodes,
                vnodes: cfg.vnodes,
            };
            let mut payload = Vec::new();
            ev.encode(&mut payload);
            match journal.append_raw(&payload, &mut kill.process)? {
                crate::wal::AppendOutcome::Appended => {}
                crate::wal::AppendOutcome::Killed => return Err(DaemonError::Killed),
            }
            write_cluster_snapshot(dir, &assign.to_snapshot(next_snap_seq))?;
            next_snap_seq += 1;
        }

        let mut nodes: Vec<Option<NodeSim>> = Vec::with_capacity(cfg.n_nodes as usize);
        for i in 0..cfg.n_nodes {
            if assign.live.contains(&i) && !kill.node_is_dead(i) {
                let node_dir = dir.join(format!("node-{i:03}"));
                let (daemon, report) = Daemon::open(&node_dir, cfg.node)?;
                recovery.node_reports.push((i, report));
                nodes.push(Some(NodeSim {
                    id: i,
                    daemon,
                    decoder: WireDecoder::new(),
                    ticks: 0,
                    pending_epochs: BTreeMap::new(),
                }));
            } else {
                nodes.push(None);
            }
        }

        let links_down = (0..cfg.n_nodes)
            .map(|i| LinkSim::new(cfg.link, mix64(cfg.link_seed ^ (u64::from(i) * 2))))
            .collect();
        let links_up = (0..cfg.n_nodes)
            .map(|i| LinkSim::new(cfg.link, mix64(cfg.link_seed ^ (u64::from(i) * 2 + 1))))
            .collect();
        let node_pipes = (0..cfg.n_nodes).map(|_| Pipe::default()).collect();
        let last_seen = assign.live.iter().map(|&n| (n, 0)).collect();

        let cluster = Self {
            cfg,
            dir: dir.to_path_buf(),
            assign,
            journal,
            next_snap_seq,
            hosts_universe: hosts.to_vec(),
            nodes,
            node_pipes,
            coord_pipe: Pipe::default(),
            coord_decoder: WireDecoder::new(),
            links_down,
            links_up,
            last_seen,
            now: 0,
            send_order: 0,
            completions: Vec::new(),
            handoffs: Vec::new(),
            dark_episodes: Vec::new(),
            wire_base: WireStats::default(),
            stats: ClusterStats::default(),
        };
        Ok((cluster, recovery))
    }

    fn append_event(
        &mut self,
        ev: &AssignEvent,
        kill: &mut ClusterKillSwitch,
    ) -> Result<(), DaemonError> {
        let mut payload = Vec::new();
        ev.encode(&mut payload);
        match self.journal.append_raw(&payload, &mut kill.process)? {
            crate::wal::AppendOutcome::Appended => {
                self.stats.journal_events += 1;
                Ok(())
            }
            crate::wal::AppendOutcome::Killed => Err(DaemonError::Killed),
        }
    }

    fn send_down(&mut self, node: u32, frame: &[u8]) {
        self.stats.frames_down += 1;
        let latency = self.cfg.latency;
        for (extra, bytes) in self.links_down[node as usize].transmit(frame) {
            self.send_order += 1;
            self.node_pipes[node as usize].sched(self.now + latency + extra, self.send_order, bytes);
        }
    }

    fn send_up(&mut self, node: u32, frame: &[u8]) {
        self.stats.frames_up += 1;
        let latency = self.cfg.latency;
        for (extra, bytes) in self.links_up[node as usize].transmit(frame) {
            self.send_order += 1;
            self.coord_pipe.sched(self.now + latency + extra, self.send_order, bytes);
        }
    }

    /// Route one batch to its host's current owner. Returns `false` when
    /// the owner is dead or pending-dead (the host is dark; the source
    /// must retry after rebalance) — otherwise the batch is on the wire,
    /// which is *not* delivery: only an ack completes it.
    pub fn transmit(&mut self, batch: &WindowBatch) -> bool {
        let owner = self.assign.owner(batch.host);
        if !self.assign.live.contains(&owner) {
            self.stats.unroutable += 1;
            return false;
        }
        let msg = ClusterMsg::Batch {
            node: owner,
            epoch: self.assign.host_epoch(batch.host),
            batch: batch.clone(),
        };
        let frame = frame_msg(&msg);
        self.stats.batches_sent += 1;
        self.send_down(owner, &frame);
        true
    }

    /// Advance the whole cluster one tick: fire due silent node kills,
    /// complete at most one pending rebalance, run every node (deliver
    /// frames, tick its daemon, collect acks and heartbeats), process the
    /// coordinator's inbox, and run heartbeat-timeout detection.
    /// [`DaemonError::Killed`] means the simulated process died — drop
    /// this instance and recover via [`Cluster::open`].
    pub fn tick(&mut self, kill: &mut ClusterKillSwitch) -> Result<(), DaemonError> {
        self.now += 1;
        for n in kill.tick_and_due() {
            self.kill_node_silently(n);
        }
        self.maybe_rebalance(kill)?;
        self.run_nodes(kill)?;
        self.process_coordinator_inbox();
        self.detect_timeouts(kill)?;
        Ok(())
    }

    fn kill_node_silently(&mut self, node: u32) {
        let idx = node as usize;
        if idx >= self.nodes.len() {
            return;
        }
        if let Some(n) = self.nodes[idx].take() {
            self.fold_wire_stats(n.decoder.stats());
            self.stats.node_kills += 1;
        }
    }

    fn fold_wire_stats(&mut self, s: WireStats) {
        self.wire_base.frames_decoded += s.frames_decoded;
        self.wire_base.resyncs += s.resyncs;
        self.wire_base.skipped_bytes += s.skipped_bytes;
    }

    /// Complete one pending handoff: journal the atomic rebalance record,
    /// apply it, snapshot, and surface the notice. One per tick, so a
    /// death and its rebalance never share a tick — the dark window is
    /// always observable.
    fn maybe_rebalance(&mut self, kill: &mut ClusterKillSwitch) -> Result<(), DaemonError> {
        let Some(&from) = self.assign.pending_dead.iter().next() else {
            return Ok(());
        };
        if self.assign.live.is_empty() {
            // Total loss: nothing to rebalance onto. Hosts stay dark.
            return Ok(());
        }
        let moved_hosts: Vec<u32> = self
            .hosts_universe
            .iter()
            .copied()
            .filter(|&h| self.assign.owner(h) == from)
            .collect();
        let live: Vec<u32> = self.assign.live.iter().copied().collect();
        let ring = HashRing::new(&live, self.cfg.vnodes);
        let moved: Vec<(u32, u32)> = moved_hosts
            .into_iter()
            .map(|h| (h, ring.owner(h).unwrap_or(live[0])))
            .collect();
        let ev = AssignEvent::Rebalance {
            epoch: self.assign.epoch + 1,
            from,
            moved: moved.clone(),
        };
        self.append_event(&ev, kill)?;
        self.assign.apply(&ev);
        write_cluster_snapshot(&self.dir, &self.assign.to_snapshot(self.next_snap_seq))?;
        self.next_snap_seq += 1;
        self.stats.rebalances += 1;
        self.stats.hosts_moved += moved.len() as u64;
        self.handoffs.push(HandoffNotice {
            epoch: self.assign.epoch,
            from,
            moved,
        });
        Ok(())
    }

    fn run_nodes(&mut self, kill: &mut ClusterKillSwitch) -> Result<(), DaemonError> {
        for i in 0..self.nodes.len() {
            let frames_in = self.node_pipes[i].pop_due(self.now);
            let hb_interval = self.cfg.heartbeat_interval;
            let out_frames = {
                let Some(node) = self.nodes[i].as_mut() else {
                    continue;
                };
                for f in &frames_in {
                    node.decoder.push(f);
                }
                loop {
                    while let Some(msg) = node.decoder.next() {
                        let ClusterMsg::Batch { node: dest, epoch, batch } = msg else {
                            continue; // acks/heartbeats never flow downstream
                        };
                        if dest != node.id {
                            continue;
                        }
                        if node.daemon.shard_busy(batch.host) {
                            continue; // dropped: the source's ARQ will retry
                        }
                        let key = (batch.host, batch.seq);
                        match node.daemon.offer(batch) {
                            Admit::Overflow => {} // dropped: ARQ will retry
                            _ => {
                                node.pending_epochs.insert(key, epoch);
                            }
                        }
                    }
                    // A corrupted length field must not block the batch
                    // stream behind a frame that will never complete.
                    if !node.decoder.expire_stalled(DECODER_STALL_TICKS) {
                        break;
                    }
                }
                node.daemon.tick(&mut kill.process)?;
                let mut out: Vec<Vec<u8>> = Vec::new();
                for c in node.daemon.take_completions() {
                    let epoch = node
                        .pending_epochs
                        .get(&(c.host, c.seq))
                        .copied()
                        .unwrap_or(0);
                    out.push(frame_msg(&ClusterMsg::Ack {
                        node: node.id,
                        epoch,
                        host: c.host,
                        seq: c.seq,
                        disposition: c.disposition,
                    }));
                }
                node.ticks += 1;
                if node.ticks % hb_interval == 0 {
                    out.push(frame_msg(&ClusterMsg::Heartbeat {
                        node: node.id,
                        ticks: node.ticks,
                    }));
                }
                out
            };
            for f in out_frames {
                self.send_up(i as u32, &f);
            }
        }
        Ok(())
    }

    fn process_coordinator_inbox(&mut self) {
        for f in self.coord_pipe.pop_due(self.now) {
            self.coord_decoder.push(&f);
        }
        loop {
            while let Some(msg) = self.coord_decoder.next() {
                self.handle_upstream(msg);
            }
            // The upstream decoder is shared by every node's acks and
            // heartbeats; a single bit-flipped length field would
            // otherwise swallow all of them for thousands of ticks and
            // let the timeout detector declare the whole fleet dead.
            if !self.coord_decoder.expire_stalled(DECODER_STALL_TICKS) {
                break;
            }
        }
    }

    fn handle_upstream(&mut self, msg: ClusterMsg) {
        {
            match msg {
                ClusterMsg::Ack {
                    node,
                    epoch,
                    host,
                    seq,
                    disposition,
                } => {
                    let live = self.assign.live.contains(&node);
                    let current =
                        self.assign.owner(host) == node && self.assign.host_epoch(host) == epoch;
                    if live && current {
                        self.stats.acks_accepted += 1;
                        self.last_seen.insert(node, self.now);
                        self.completions.push(Completion {
                            host,
                            seq,
                            disposition,
                        });
                    } else {
                        self.stats.acks_stale += 1;
                    }
                }
                ClusterMsg::Heartbeat { node, .. } => {
                    if self.assign.live.contains(&node) {
                        self.stats.heartbeats_received += 1;
                        self.last_seen.insert(node, self.now);
                    } else {
                        self.stats.heartbeats_stale += 1;
                    }
                }
                ClusterMsg::Batch { .. } => {} // never flows upstream
            }
        }
    }

    fn detect_timeouts(&mut self, kill: &mut ClusterKillSwitch) -> Result<(), DaemonError> {
        let timeout = self.cfg.heartbeat_timeout;
        let overdue: Vec<u32> = self
            .assign
            .live
            .iter()
            .copied()
            .filter(|n| {
                let seen = self.last_seen.get(n).copied().unwrap_or(0);
                self.now.saturating_sub(seen) > timeout
            })
            .collect();
        for node in overdue {
            let ev = AssignEvent::NodeDead {
                epoch: self.assign.epoch + 1,
                node,
            };
            // Journal first: if the append is torn by a kill, recovery
            // sees a live node and simply re-detects the timeout.
            self.append_event(&ev, kill)?;
            self.assign.apply(&ev);
            self.stats.node_deaths += 1;
            let dark: Vec<u32> = self
                .hosts_universe
                .iter()
                .copied()
                .filter(|&h| self.assign.owner(h) == node)
                .collect();
            self.dark_episodes.push(DarkEpisode {
                at_tick: kill.ticks(),
                node,
                hosts: dark,
            });
        }
        Ok(())
    }

    /// Completions accepted since the last call (epoch-fenced; may
    /// contain duplicates when the wire duplicated an ack — the source's
    /// cursor logic must be idempotent, as it already is for redelivery).
    pub fn take_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Handoffs completed since the last call. The source must rewind
    /// each moved host to sequence 1 and withdraw its in-flight batches:
    /// the new owner has none of the host's history, and per-host
    /// sequence numbers only deduplicate at or below the high-water mark.
    pub fn take_handoffs(&mut self) -> Vec<HandoffNotice> {
        std::mem::take(&mut self.handoffs)
    }

    /// Dark windows observed since the last call.
    pub fn take_dark_episodes(&mut self) -> Vec<DarkEpisode> {
        std::mem::take(&mut self.dark_episodes)
    }

    /// Hosts currently dark: owned by a declared-dead node whose
    /// rebalance has not landed yet.
    pub fn dark_hosts(&self) -> Vec<u32> {
        self.hosts_universe
            .iter()
            .copied()
            .filter(|&h| self.assign.pending_dead.contains(&self.assign.owner(h)))
            .collect()
    }

    /// True when no handoff is pending and every live node's queues are
    /// drained — the cluster-side half of quiescence (the source still
    /// owns "no batch unacknowledged").
    pub fn settled(&self) -> bool {
        self.assign.pending_dead.is_empty()
            && self
                .nodes
                .iter()
                .enumerate()
                .filter(|(i, _)| self.assign.live.contains(&(*i as u32)))
                .all(|(_, n)| n.as_ref().map(|n| n.daemon.queued_total() == 0).unwrap_or(true))
    }

    /// The merged final host table over *live* nodes only. Dead and
    /// fenced-out nodes are excluded: every host's authoritative state
    /// lives on its current owner, which replayed the host from sequence
    /// 1 if it ever moved.
    pub fn hosts(&self) -> BTreeMap<u32, HostState> {
        let mut out = BTreeMap::new();
        for (i, slot) in self.nodes.iter().enumerate() {
            if !self.assign.live.contains(&(i as u32)) {
                continue;
            }
            if let Some(node) = slot {
                for (h, st) in node.daemon.hosts() {
                    out.insert(h, st.clone());
                }
            }
        }
        out
    }

    /// The current assignment state (read-only).
    pub fn assign(&self) -> &AssignState {
        &self.assign
    }

    /// Operational counters for this lifetime.
    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }

    /// Aggregate wire-decoder statistics: coordinator + every node,
    /// including nodes that died mid-lifetime.
    pub fn wire_stats(&self) -> WireStats {
        let mut s = self.wire_base;
        let fold = |s: &mut WireStats, o: WireStats| {
            s.frames_decoded += o.frames_decoded;
            s.resyncs += o.resyncs;
            s.skipped_bytes += o.skipped_bytes;
        };
        fold(&mut s, self.coord_decoder.stats());
        for node in self.nodes.iter().flatten() {
            fold(&mut s, node.decoder.stats());
        }
        s
    }

    /// Aggregate link-fault accounting over every link direction.
    pub fn link_log(&self) -> faultsim::LinkFaultLog {
        let mut log = faultsim::LinkFaultLog::default();
        for l in self.links_down.iter().chain(&self.links_up) {
            log.frames += l.log.frames;
            log.dropped += l.log.dropped;
            log.duplicated += l.log.duplicated;
            log.reordered += l.log.reordered;
            log.corrupted += l.log.corrupted;
        }
        log
    }

    /// Virtual-clock position of this lifetime.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Sum of queued batches across live nodes.
    pub fn queued_total(&self) -> u64 {
        self.nodes
            .iter()
            .flatten()
            .map(|n| n.daemon.queued_total())
            .sum()
    }

    /// Export the `fleetd_cluster_*` operational families into `reg`.
    /// These are telemetry, not part of the determinism contract.
    pub fn export_metrics(&self, reg: &mut Registry) {
        reg.register_gauge("fleetd_cluster_nodes", "Nodes by membership state");
        let dead = self.cfg.n_nodes as i64
            - self.assign.live.len() as i64
            - self.assign.pending_dead.len() as i64;
        reg.gauge_set(
            "fleetd_cluster_nodes",
            &[("state", "live")],
            self.assign.live.len() as i64,
        );
        reg.gauge_set(
            "fleetd_cluster_nodes",
            &[("state", "pending_dead")],
            self.assign.pending_dead.len() as i64,
        );
        reg.gauge_set("fleetd_cluster_nodes", &[("state", "dead")], dead);
        reg.register_gauge("fleetd_cluster_epoch", "Current assignment epoch");
        reg.gauge_set("fleetd_cluster_epoch", &[], i64::from(self.assign.epoch));
        reg.register_gauge(
            "fleetd_cluster_dark_hosts",
            "Hosts owned by a declared-dead node awaiting rebalance",
        );
        reg.gauge_set(
            "fleetd_cluster_dark_hosts",
            &[],
            self.dark_hosts().len() as i64,
        );

        reg.register_counter(
            "fleetd_cluster_batches_total",
            "Batches offered to the wire, by routing outcome",
        );
        reg.counter_add(
            "fleetd_cluster_batches_total",
            &[("outcome", "sent")],
            self.stats.batches_sent,
        );
        reg.counter_add(
            "fleetd_cluster_batches_total",
            &[("outcome", "unroutable")],
            self.stats.unroutable,
        );
        reg.register_counter(
            "fleetd_cluster_acks_total",
            "Acks received, by fencing outcome",
        );
        reg.counter_add(
            "fleetd_cluster_acks_total",
            &[("outcome", "accepted")],
            self.stats.acks_accepted,
        );
        reg.counter_add(
            "fleetd_cluster_acks_total",
            &[("outcome", "stale")],
            self.stats.acks_stale,
        );
        reg.register_counter(
            "fleetd_cluster_heartbeats_total",
            "Heartbeats received, by sender liveness",
        );
        reg.counter_add(
            "fleetd_cluster_heartbeats_total",
            &[("outcome", "accepted")],
            self.stats.heartbeats_received,
        );
        reg.counter_add(
            "fleetd_cluster_heartbeats_total",
            &[("outcome", "stale")],
            self.stats.heartbeats_stale,
        );
        reg.register_counter(
            "fleetd_cluster_node_deaths_total",
            "Nodes declared dead, by cause",
        );
        reg.counter_add(
            "fleetd_cluster_node_deaths_total",
            &[("cause", "heartbeat_timeout")],
            self.stats.node_deaths,
        );
        reg.register_counter(
            "fleetd_cluster_handoffs_total",
            "Rebalances journaled after node deaths",
        );
        reg.counter_add("fleetd_cluster_handoffs_total", &[], self.stats.rebalances);
        reg.register_counter(
            "fleetd_cluster_hosts_moved_total",
            "Hosts reassigned to survivors by rebalances",
        );
        reg.counter_add(
            "fleetd_cluster_hosts_moved_total",
            &[],
            self.stats.hosts_moved,
        );
        reg.register_counter(
            "fleetd_cluster_journal_events_total",
            "Assignment events appended to the cluster journal",
        );
        reg.counter_add(
            "fleetd_cluster_journal_events_total",
            &[],
            self.stats.journal_events,
        );

        reg.register_counter(
            "fleetd_cluster_wire_frames_total",
            "Frames transmitted, by direction",
        );
        reg.counter_add(
            "fleetd_cluster_wire_frames_total",
            &[("direction", "down")],
            self.stats.frames_down,
        );
        reg.counter_add(
            "fleetd_cluster_wire_frames_total",
            &[("direction", "up")],
            self.stats.frames_up,
        );
        let ws = self.wire_stats();
        reg.register_counter(
            "fleetd_cluster_wire_resyncs_total",
            "Decoder resynchronisations after corrupt frames",
        );
        reg.counter_add("fleetd_cluster_wire_resyncs_total", &[], ws.resyncs);
        reg.register_counter(
            "fleetd_cluster_wire_skipped_bytes_total",
            "Bytes skipped while scanning for the next frame magic",
        );
        reg.counter_add(
            "fleetd_cluster_wire_skipped_bytes_total",
            &[],
            ws.skipped_bytes,
        );
        let ll = self.link_log();
        reg.register_counter(
            "fleetd_cluster_link_faults_total",
            "Injected link faults, by class",
        );
        for (class, v) in [
            ("dropped", ll.dropped),
            ("duplicated", ll.duplicated),
            ("reordered", ll.reordered),
            ("corrupted", ll.corrupted),
        ] {
            reg.counter_add("fleetd_cluster_link_faults_total", &[("class", class)], v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Week;
    use crate::wal::frame_raw;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmpdir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "fleetd-cluster-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn ring_is_deterministic_and_covers_all_nodes() {
        let nodes: Vec<u32> = (0..4).collect();
        let a = HashRing::new(&nodes, 64);
        let b = HashRing::new(&nodes, 64);
        let mut seen = BTreeSet::new();
        for h in 0..256u32 {
            let o = a.owner(h);
            assert_eq!(o, b.owner(h));
            if let Some(o) = o {
                seen.insert(o);
            }
        }
        assert_eq!(seen.len(), 4, "every node should own some hosts");
        assert_eq!(HashRing::new(&[], 64).owner(7), None);
    }

    #[test]
    fn removing_a_node_moves_only_its_hosts() {
        let all: Vec<u32> = (0..4).collect();
        let full = HashRing::new(&all, 64);
        let survivors: Vec<u32> = all.iter().copied().filter(|&n| n != 2).collect();
        let reduced = HashRing::new(&survivors, 64);
        for h in 0..512u32 {
            let before = full.owner(h);
            let after = reduced.owner(h);
            if before != Some(2) {
                assert_eq!(before, after, "host {h} moved without cause");
            } else {
                assert_ne!(after, Some(2), "host {h} still on the dead node");
            }
        }
    }

    #[test]
    fn assign_events_roundtrip() {
        let evs = [
            AssignEvent::Bootstrap { n_nodes: 4, vnodes: 64 },
            AssignEvent::NodeDead { epoch: 1, node: 2 },
            AssignEvent::Rebalance {
                epoch: 2,
                from: 2,
                moved: vec![(7, 0), (9, 3), (11, 1)],
            },
        ];
        for ev in &evs {
            let mut buf = Vec::new();
            ev.encode(&mut buf);
            assert_eq!(&AssignEvent::decode(&buf).expect("roundtrip"), ev);
        }
        assert!(AssignEvent::decode(&[9, 0, 0]).is_err());
    }

    #[test]
    fn snapshot_roundtrips_and_rejects_damage() {
        let snap = ClusterSnapshot {
            seq: 3,
            epoch: 2,
            n_nodes: 4,
            vnodes: 64,
            live: vec![0, 1, 3],
            pending_dead: vec![],
            overrides: vec![(7, 0, 2), (9, 3, 2)],
        };
        let bytes = snap.encode();
        assert_eq!(ClusterSnapshot::decode(&bytes).expect("roundtrip"), snap);
        let mut bad = bytes.clone();
        bad[20] ^= 0xFF;
        assert!(ClusterSnapshot::decode(&bad).is_err());
        assert!(ClusterSnapshot::decode(&bytes[..8]).is_err());
    }

    #[test]
    fn apply_is_idempotent_under_replay() {
        let mut a = AssignState::new(4, 64);
        let dead = AssignEvent::NodeDead { epoch: 1, node: 1 };
        let reb = AssignEvent::Rebalance {
            epoch: 2,
            from: 1,
            moved: vec![(5, 0)],
        };
        a.apply(&dead);
        a.apply(&reb);
        let snapshot_state = a.clone();
        // Full-journal replay over recovered state must be a no-op.
        a.apply(&AssignEvent::Bootstrap { n_nodes: 4, vnodes: 64 });
        a.apply(&dead);
        a.apply(&reb);
        assert_eq!(a.epoch, snapshot_state.epoch);
        assert_eq!(a.live, snapshot_state.live);
        assert_eq!(a.overrides, snapshot_state.overrides);
        assert_eq!(a.owner(5), 0);
        assert_eq!(a.host_epoch(5), 2);
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let ok = ClusterConfig::default();
        assert!(validate_cluster(&ok).is_ok());
        for bad in [
            ClusterConfig { n_nodes: 0, ..ok },
            ClusterConfig { vnodes: 0, ..ok },
            ClusterConfig { heartbeat_interval: 0, ..ok },
            ClusterConfig { latency: 0, ..ok },
            ClusterConfig {
                heartbeat_timeout: 5,
                heartbeat_interval: 4,
                latency: 1,
                ..ok
            },
        ] {
            assert!(validate_cluster(&bad).is_err(), "{bad:?} should be rejected");
        }
    }

    fn batch(host: u32, seq: u64, week: Week, start: u32) -> WindowBatch {
        WindowBatch {
            host,
            seq,
            week,
            start,
            counts: vec![1 + u64::from(host), 2, 3],
            poison: false,
        }
    }

    /// Drive `batches` (per-host, in seq order) to quiescence through a
    /// cluster with clean links and no kills, returning the final table.
    fn drive_clean(dir: &Path, cfg: ClusterConfig, hosts: &[u32]) -> BTreeMap<u32, HostState> {
        let mut kill = ClusterKillSwitch::none();
        let (mut cluster, _) = Cluster::open(dir, cfg, hosts, &mut kill).expect("open");
        let per_host: Vec<Vec<WindowBatch>> = hosts
            .iter()
            .map(|&h| {
                vec![
                    batch(h, 1, Week::Train, 0),
                    batch(h, 2, Week::Train, 3),
                    batch(h, 3, Week::Test, 0),
                ]
            })
            .collect();
        let mut cursor = vec![0usize; hosts.len()];
        let mut in_flight = vec![false; hosts.len()];
        for _round in 0..10_000 {
            for (i, list) in per_host.iter().enumerate() {
                if !in_flight[i] && cursor[i] < list.len() {
                    in_flight[i] = cluster.transmit(&list[cursor[i]]);
                }
            }
            cluster.tick(&mut kill).expect("tick");
            for c in cluster.take_completions() {
                let i = hosts.iter().position(|&h| h == c.host).expect("known host");
                if cursor[i] < per_host[i].len() && per_host[i][cursor[i]].seq == c.seq {
                    cursor[i] += 1;
                }
                in_flight[i] = false;
            }
            for h in cluster.take_handoffs() {
                for (host, _) in h.moved {
                    let i = hosts.iter().position(|&x| x == host).expect("known host");
                    cursor[i] = 0;
                    in_flight[i] = false;
                }
            }
            let done = cursor
                .iter()
                .zip(&per_host)
                .all(|(&c, l)| c == l.len());
            if done && cluster.settled() {
                break;
            }
        }
        cluster.hosts()
    }

    #[test]
    fn two_node_table_matches_single_node() {
        let hosts: Vec<u32> = (0..6).collect();
        let one = drive_clean(
            &tmpdir("n1"),
            ClusterConfig {
                n_nodes: 1,
                ..ClusterConfig::default()
            },
            &hosts,
        );
        let two = drive_clean(&tmpdir("n2"), ClusterConfig::default(), &hosts);
        assert_eq!(one.len(), hosts.len());
        assert_eq!(one, two, "final tables must be node-count invariant");
    }

    #[test]
    fn silent_node_kill_goes_dark_then_rebalances_to_same_table() {
        let hosts: Vec<u32> = (0..6).collect();
        let baseline = drive_clean(
            &tmpdir("kill-ref"),
            ClusterConfig::default(),
            &hosts,
        );

        let dir = tmpdir("kill");
        let cfg = ClusterConfig::default();
        let mut kill = ClusterKillSwitch::new(vec![(1, 3)]);
        let (mut cluster, _) = Cluster::open(&dir, cfg, &hosts, &mut kill).expect("open");
        let per_host: Vec<Vec<WindowBatch>> = hosts
            .iter()
            .map(|&h| {
                vec![
                    batch(h, 1, Week::Train, 0),
                    batch(h, 2, Week::Train, 3),
                    batch(h, 3, Week::Test, 0),
                ]
            })
            .collect();
        let mut cursor = vec![0usize; hosts.len()];
        let mut in_flight: Vec<Option<u64>> = vec![None; hosts.len()];
        let mut saw_dark = false;
        let mut episodes = Vec::new();
        for _round in 0..20_000 {
            for (i, list) in per_host.iter().enumerate() {
                if in_flight[i].is_none() && cursor[i] < list.len() {
                    let b = &list[cursor[i]];
                    // Unroutable (dark) or routed — either way retry until
                    // acked; the wire may eat routed copies too.
                    cluster.transmit(b);
                    in_flight[i] = Some(b.seq);
                }
            }
            cluster.tick(&mut kill).expect("tick");
            if !cluster.dark_hosts().is_empty() {
                saw_dark = true;
            }
            for c in cluster.take_completions() {
                let i = c.host as usize;
                if in_flight[i] == Some(c.seq) {
                    in_flight[i] = None;
                }
                if cursor[i] < per_host[i].len() && per_host[i][cursor[i]].seq == c.seq {
                    cursor[i] += 1;
                }
            }
            for h in cluster.take_handoffs() {
                for (host, _) in h.moved {
                    cursor[host as usize] = 0;
                    in_flight[host as usize] = None;
                }
            }
            episodes.extend(cluster.take_dark_episodes());
            // Dark-host sends never complete: clear their in-flight mark
            // so the next round retries (stop-and-wait ARQ in miniature).
            for (i, f) in in_flight.iter_mut().enumerate() {
                if f.is_some() && cluster.dark_hosts().contains(&(i as u32)) {
                    *f = None;
                }
            }
            let done = cursor.iter().zip(&per_host).all(|(&c, l)| c == l.len());
            if done && cluster.settled() {
                break;
            }
        }
        assert!(saw_dark, "the dead node's hosts must be observably dark");
        assert_eq!(episodes.len(), 1, "exactly one dark episode");
        assert_eq!(episodes[0].node, 1);
        assert!(!episodes[0].hosts.is_empty());
        assert!(cluster.assign().pending_dead.is_empty());
        assert!(!cluster.assign().live.contains(&1));
        assert_eq!(
            cluster.hosts(),
            baseline,
            "post-rebalance table must match the clean run"
        );
        assert!(cluster.stats().node_deaths >= 1);
        assert!(cluster.stats().rebalances >= 1);
    }

    #[test]
    fn torn_snapshot_and_torn_rebalance_recover_to_pre_handoff_assignment() {
        // Satellite 3, coordinator-level: the newest snapshot is damaged
        // AND the journal tail is torn inside the rebalance record. The
        // recovered assignment must be the pre-handoff one (node dead,
        // hosts dark, no overrides) — never a half-moved host.
        let dir = tmpdir("torn");
        fs::create_dir_all(&dir).expect("mkdir");
        let cfg = ClusterConfig {
            n_nodes: 4,
            ..ClusterConfig::default()
        };

        let mut pre = AssignState::new(4, cfg.vnodes);
        let dead = AssignEvent::NodeDead { epoch: 1, node: 2 };
        pre.apply(&dead);
        let moved: Vec<(u32, u32)> = (0..64u32)
            .filter(|&h| pre.owner(h) == 2)
            .map(|h| (h, 0))
            .collect();
        assert!(!moved.is_empty(), "node 2 must own some hosts");
        let reb = AssignEvent::Rebalance {
            epoch: 2,
            from: 2,
            moved,
        };

        // Journal: bootstrap + nodedead intact, rebalance torn mid-record.
        let mut journal = Vec::new();
        for ev in [
            AssignEvent::Bootstrap { n_nodes: 4, vnodes: cfg.vnodes },
            dead.clone(),
        ] {
            let mut p = Vec::new();
            ev.encode(&mut p);
            journal.extend_from_slice(&frame_raw(&p));
        }
        let mut p = Vec::new();
        reb.encode(&mut p);
        let reb_frame = frame_raw(&p);
        journal.extend_from_slice(&reb_frame[..reb_frame.len() / 2]);
        fs::write(dir.join("cluster.wal"), &journal).expect("write journal");

        // Snapshots: seq 1 (pre-handoff) valid, seq 2 (post-handoff)
        // newest but corrupt.
        write_cluster_snapshot(&dir, &pre.to_snapshot(1)).expect("snap 1");
        let mut post = pre.clone();
        post.apply(&reb);
        let mut snap2 = post.to_snapshot(2).encode();
        let mid = snap2.len() / 2;
        snap2[mid] ^= 0xFF;
        fs::write(dir.join(cluster_snapshot_filename(2)), &snap2).expect("snap 2");

        let hosts: Vec<u32> = (0..64).collect();
        let mut kill = ClusterKillSwitch::none();
        let (cluster, recovery) = Cluster::open(&dir, cfg, &hosts, &mut kill).expect("open");
        assert_eq!(recovery.snapshot_seq, Some(1), "damaged newest skipped");
        assert_eq!(recovery.snapshots_discarded, 1);
        assert!(recovery.journal_torn_bytes > 0, "torn rebalance truncated");
        let a = cluster.assign();
        assert_eq!(a.epoch, 1, "pre-handoff epoch");
        assert!(a.pending_dead.contains(&2), "death survived recovery");
        assert!(a.overrides.is_empty(), "no half-moved host");
        for h in 0..64u32 {
            if pre.owner(h) == 2 {
                assert!(cluster.dark_hosts().contains(&h), "host {h} must be dark");
            }
        }
    }

    #[test]
    fn cluster_metrics_families_are_exported() {
        let dir = tmpdir("metrics");
        let hosts: Vec<u32> = (0..4).collect();
        let mut kill = ClusterKillSwitch::none();
        let (mut cluster, _) =
            Cluster::open(&dir, ClusterConfig::default(), &hosts, &mut kill).expect("open");
        cluster.transmit(&batch(0, 1, Week::Train, 0));
        for _ in 0..8 {
            cluster.tick(&mut kill).expect("tick");
        }
        let mut reg = Registry::new();
        cluster.export_metrics(&mut reg);
        let text = reg.render(hids_metrics::RenderOptions::deterministic());
        for family in [
            "fleetd_cluster_nodes",
            "fleetd_cluster_epoch",
            "fleetd_cluster_dark_hosts",
            "fleetd_cluster_batches_total",
            "fleetd_cluster_acks_total",
            "fleetd_cluster_heartbeats_total",
            "fleetd_cluster_node_deaths_total",
            "fleetd_cluster_handoffs_total",
            "fleetd_cluster_hosts_moved_total",
            "fleetd_cluster_journal_events_total",
            "fleetd_cluster_wire_frames_total",
            "fleetd_cluster_wire_resyncs_total",
            "fleetd_cluster_wire_skipped_bytes_total",
            "fleetd_cluster_link_faults_total",
        ] {
            assert!(
                text.contains(&format!("# TYPE {family} ")),
                "missing family {family}"
            );
        }
    }
}
