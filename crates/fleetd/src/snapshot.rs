//! Snapshot checkpointing: periodic full-state images that bound WAL
//! replay time.
//!
//! A snapshot is a single CRC-framed file:
//!
//! ```text
//! "FSN1" (4B) | payload_len u32 LE | crc32(payload) u32 LE | payload
//! ```
//!
//! and the payload is the complete sharded host table (sequence numbers,
//! train/test accumulators, fitted thresholds, live alarm counts) plus the
//! snapshot's own monotone sequence number. Writes are atomic at the
//! filesystem level — payload goes to `snap.tmp`, then a rename installs
//! it as `snap-<seq>.bin` — so a crash mid-write leaves either the old
//! snapshots or the new one, never a half-written current snapshot. The
//! two most recent snapshots are kept; recovery walks them newest-first
//! and loads the first one whose CRC and structure verify, counting the
//! rest as discarded. A valid snapshot makes every WAL frame written
//! before it redundant, so the daemon truncates the log right after a
//! successful install.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use hids_core::{SketchAccumulator, WindowAccumulator};
use tailstats::KllSketch;

use crate::codec::{crc32, put_f64, put_u32, put_u64, CodecError, Reader};
use crate::epoch::{decode_epoch, encode_epoch, EpochState};
use crate::state::{HostState, ShardState};

/// Snapshot file magic: "FSN1".
pub const SNAP_MAGIC: [u8; 4] = *b"FSN1";
/// Sanity bound on the snapshot payload (1 GiB).
pub const MAX_SNAP_PAYLOAD: u32 = 1 << 30;

/// A decoded snapshot: the daemon's full durable state at a checkpoint.
#[derive(Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Monotone snapshot sequence number (also embedded in the filename).
    pub seq: u64,
    /// Windows per week the daemon was configured with when it wrote
    /// this image (recovery cross-checks it against the current config).
    pub n_windows: u32,
    /// Full host table, merged across shards.
    pub hosts: BTreeMap<u32, HostState>,
    /// Rollout lifecycle state (current candidate + epoch history) as of
    /// this checkpoint.
    pub epoch: EpochState,
    /// Shards the control plane had drained as of this checkpoint
    /// (sorted, deduplicated). Drains are journaled commands, so the set
    /// must survive restarts the same way epoch state does.
    pub drained: Vec<u32>,
}

/// Why a snapshot file was rejected during recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotDefect {
    /// File shorter than the fixed header.
    ShortHeader,
    /// Magic was not [`SNAP_MAGIC`].
    BadMagic,
    /// Declared payload length exceeds [`MAX_SNAP_PAYLOAD`] or the file.
    BadLength,
    /// CRC over the payload did not match.
    CrcMismatch,
    /// Payload failed structural decode.
    Undecodable(CodecError),
}

fn encode_accumulator(out: &mut Vec<u8>, acc: &WindowAccumulator) {
    put_u32(out, acc.len() as u32);
    for (w, c) in acc.iter() {
        put_u32(out, w);
        put_u64(out, c);
    }
}

fn decode_accumulator(r: &mut Reader<'_>) -> Result<WindowAccumulator, CodecError> {
    let n = r.u32()?;
    if n > MAX_SNAP_PAYLOAD / 12 {
        return Err(CodecError::ImplausibleLength);
    }
    let mut acc = WindowAccumulator::new();
    for _ in 0..n {
        let w = r.u32()?;
        let c = r.u64()?;
        acc.insert(w, c);
    }
    Ok(acc)
}

/// Flag byte + (bitmap words, opaque sketch image) when present. Exact-mode
/// hosts write a single 0 byte, so snapshots taken without
/// `sketch_eps` differ from the pre-sketch format only by two zero bytes
/// per host.
fn encode_sketch(out: &mut Vec<u8>, acc: &Option<SketchAccumulator>) {
    match acc {
        None => out.push(0),
        Some(a) => {
            out.push(1);
            put_u32(out, a.seen_words().len() as u32);
            for &w in a.seen_words() {
                put_u64(out, w);
            }
            let img = a.sketch().to_bytes();
            put_u32(out, img.len() as u32);
            out.extend_from_slice(&img);
        }
    }
}

fn decode_sketch(r: &mut Reader<'_>) -> Result<Option<SketchAccumulator>, CodecError> {
    match r.u8()? {
        0 => Ok(None),
        1 => {
            let n_words = r.u32()?;
            if n_words > MAX_SNAP_PAYLOAD / 8 {
                return Err(CodecError::ImplausibleLength);
            }
            let mut seen = Vec::with_capacity(n_words as usize);
            for _ in 0..n_words {
                seen.push(r.u64()?);
            }
            let img_len = r.u32()?;
            if img_len > MAX_SNAP_PAYLOAD {
                return Err(CodecError::ImplausibleLength);
            }
            let img = r.bytes(img_len as usize)?;
            let sketch = KllSketch::from_bytes(img).map_err(|_| CodecError::BadDiscriminant)?;
            Ok(Some(SketchAccumulator::from_parts(seen, sketch)))
        }
        _ => Err(CodecError::BadDiscriminant),
    }
}

impl Snapshot {
    /// Serialise to the framed on-disk byte form.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        put_u64(&mut payload, self.seq);
        put_u32(&mut payload, self.n_windows);
        put_u32(&mut payload, self.hosts.len() as u32);
        for (&host, st) in &self.hosts {
            put_u32(&mut payload, host);
            put_u64(&mut payload, st.last_seq);
            put_u64(&mut payload, st.live_alarms);
            match st.threshold {
                Some(t) => {
                    payload.push(1);
                    put_f64(&mut payload, t);
                }
                None => payload.push(0),
            }
            match st.promoted {
                Some((from, t)) => {
                    payload.push(1);
                    put_u32(&mut payload, from);
                    put_f64(&mut payload, t);
                }
                None => payload.push(0),
            }
            match st.pinned {
                Some(t) => {
                    payload.push(1);
                    put_f64(&mut payload, t);
                }
                None => payload.push(0),
            }
            encode_accumulator(&mut payload, &st.train);
            encode_accumulator(&mut payload, &st.test);
            encode_sketch(&mut payload, &st.train_sketch);
            encode_sketch(&mut payload, &st.test_sketch);
        }
        encode_epoch(&mut payload, &self.epoch);
        put_u32(&mut payload, self.drained.len() as u32);
        for &s in &self.drained {
            put_u32(&mut payload, s);
        }
        let mut out = Vec::with_capacity(12 + payload.len());
        out.extend_from_slice(&SNAP_MAGIC);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Parse a framed snapshot, verifying magic, length and CRC first.
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotDefect> {
        if bytes.len() < 12 {
            return Err(SnapshotDefect::ShortHeader);
        }
        if bytes[..4] != SNAP_MAGIC {
            return Err(SnapshotDefect::BadMagic);
        }
        let len = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if len > MAX_SNAP_PAYLOAD || bytes.len() != 12 + len as usize {
            return Err(SnapshotDefect::BadLength);
        }
        let crc = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        let payload = &bytes[12..];
        if crc32(payload) != crc {
            return Err(SnapshotDefect::CrcMismatch);
        }
        Self::decode_payload(payload).map_err(SnapshotDefect::Undecodable)
    }

    fn decode_payload(payload: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(payload);
        let seq = r.u64()?;
        let n_windows = r.u32()?;
        let n_hosts = r.u32()?;
        if n_hosts > MAX_SNAP_PAYLOAD / 24 {
            return Err(CodecError::ImplausibleLength);
        }
        let mut hosts = BTreeMap::new();
        for _ in 0..n_hosts {
            let host = r.u32()?;
            let last_seq = r.u64()?;
            let live_alarms = r.u64()?;
            let threshold = match r.u8()? {
                0 => None,
                1 => Some(r.f64()?),
                _ => return Err(CodecError::BadDiscriminant),
            };
            let promoted = match r.u8()? {
                0 => None,
                1 => Some((r.u32()?, r.f64()?)),
                _ => return Err(CodecError::BadDiscriminant),
            };
            let pinned = match r.u8()? {
                0 => None,
                1 => Some(r.f64()?),
                _ => return Err(CodecError::BadDiscriminant),
            };
            let train = decode_accumulator(&mut r)?;
            let test = decode_accumulator(&mut r)?;
            let train_sketch = decode_sketch(&mut r)?;
            let test_sketch = decode_sketch(&mut r)?;
            hosts.insert(
                host,
                HostState {
                    last_seq,
                    train,
                    test,
                    train_sketch,
                    test_sketch,
                    threshold,
                    live_alarms,
                    promoted,
                    pinned,
                },
            );
        }
        let epoch = decode_epoch(&mut r)?;
        let n_drained = r.u32()?;
        if n_drained > MAX_SNAP_PAYLOAD / 4 {
            return Err(CodecError::ImplausibleLength);
        }
        let mut drained = Vec::with_capacity(n_drained as usize);
        for _ in 0..n_drained {
            drained.push(r.u32()?);
        }
        r.finish()?;
        Ok(Self {
            seq,
            n_windows,
            hosts,
            epoch,
            drained,
        })
    }

    /// Build a snapshot image from live shard tables plus rollout state.
    pub fn from_shards(seq: u64, n_windows: u32, shards: &[ShardState], epoch: &EpochState) -> Self {
        let mut hosts = BTreeMap::new();
        for shard in shards {
            for (&h, st) in &shard.hosts {
                hosts.insert(h, st.clone());
            }
        }
        Self {
            seq,
            n_windows,
            hosts,
            epoch: epoch.clone(),
            drained: Vec::new(),
        }
    }
}

/// Filename for snapshot `seq` inside the daemon directory.
pub fn snapshot_filename(seq: u64) -> String {
    format!("snap-{seq:012}.bin")
}

fn parse_snapshot_filename(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("snap-")?.strip_suffix(".bin")?;
    if rest.len() != 12 || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    rest.parse().ok()
}

/// Snapshot files present in `dir`, newest first.
pub fn list_snapshots(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut found = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        if let Some(seq) = name.to_str().and_then(parse_snapshot_filename) {
            found.push((seq, entry.path()));
        }
    }
    found.sort_by_key(|&(seq, _)| std::cmp::Reverse(seq));
    Ok(found)
}

/// Atomically install a snapshot in `dir` (tmp + rename), then prune so
/// only the two newest remain. Returns the installed path.
pub fn write_snapshot(dir: &Path, snap: &Snapshot) -> std::io::Result<PathBuf> {
    let tmp = dir.join("snap.tmp");
    fs::write(&tmp, snap.encode())?;
    let path = dir.join(snapshot_filename(snap.seq));
    fs::rename(&tmp, &path)?;
    for (old_seq, old_path) in list_snapshots(dir)?.into_iter().skip(2) {
        let _ = old_seq;
        fs::remove_file(old_path)?;
    }
    Ok(path)
}

/// Load the newest snapshot in `dir` that verifies, counting how many
/// newer-but-damaged images were skipped. `Ok(None)` means no snapshot
/// exists at all (cold start).
pub fn load_latest(dir: &Path) -> std::io::Result<(Option<Snapshot>, u32)> {
    let mut discarded = 0u32;
    for (_, path) in list_snapshots(dir)? {
        let bytes = fs::read(&path)?;
        match Snapshot::decode(&bytes) {
            Ok(snap) => return Ok((Some(snap), discarded)),
            Err(_) => discarded += 1,
        }
    }
    Ok((None, discarded))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::{CandidateState, EpochOutcome, EpochRecord, GateStats};

    fn sample() -> Snapshot {
        let mut hosts = BTreeMap::new();
        let mut train = WindowAccumulator::new();
        train.insert(0, 4);
        train.insert(5, 9);
        let mut test = WindowAccumulator::new();
        test.insert(2, 100);
        hosts.insert(
            3,
            HostState {
                last_seq: 11,
                train,
                test,
                threshold: Some(8.5),
                live_alarms: 1,
                promoted: Some((300, 12.25)),
                pinned: Some(5.75),
                ..Default::default()
            },
        );
        hosts.insert(
            9,
            HostState {
                last_seq: 2,
                threshold: None,
                ..Default::default()
            },
        );
        // A sketch-mode host: its accumulators are bounded sketches.
        let mut train_sk = SketchAccumulator::new(0.01);
        train_sk.insert(0, 7);
        train_sk.insert(41, 3);
        let mut test_sk = SketchAccumulator::new(0.01);
        test_sk.insert(650, 99);
        hosts.insert(
            12,
            HostState {
                last_seq: 5,
                threshold: Some(6.0),
                live_alarms: 1,
                train_sketch: Some(train_sk),
                test_sketch: Some(test_sk),
                ..Default::default()
            },
        );
        let mut thresholds = BTreeMap::new();
        thresholds.insert(3, 12.25);
        let epoch = EpochState {
            last_epoch: 2,
            candidate: Some(CandidateState {
                epoch: 2,
                soak_start: 200,
                soak_end: 300,
                thresholds,
                expected_windows: 100,
                stats: GateStats {
                    windows: 40,
                    incumbent_alarms: 3,
                    candidate_alarms: 2,
                    sheds: 1,
                },
            }),
            history: vec![EpochRecord {
                epoch: 1,
                outcome: EpochOutcome::Promoted,
                stats: GateStats::default(),
                expected_windows: 50,
            }],
        };
        Snapshot {
            seq: 7,
            n_windows: 672,
            hosts,
            epoch,
            drained: vec![0, 2],
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "fleetd-snap-{}-{}-{}",
            tag,
            std::process::id(),
            n
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn snapshot_roundtrips() {
        let s = sample();
        assert_eq!(Snapshot::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn any_single_byte_corruption_is_detected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(
                Snapshot::decode(&bad).is_err(),
                "flip at byte {i} must not verify"
            );
        }
    }

    #[test]
    fn keeps_only_two_newest_and_loads_latest_valid() {
        let dir = tmpdir("prune");
        for seq in 1..=4 {
            let snap = Snapshot { seq, ..sample() };
            write_snapshot(&dir, &snap).unwrap();
        }
        let listed = list_snapshots(&dir).unwrap();
        assert_eq!(
            listed.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![4, 3]
        );
        // Damage the newest: recovery must fall back to seq 3 and report
        // one discarded image.
        let newest = &listed[0].1;
        let mut bytes = fs::read(newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(newest, &bytes).unwrap();
        let (loaded, discarded) = load_latest(&dir).unwrap();
        assert_eq!(loaded.unwrap().seq, 3);
        assert_eq!(discarded, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cold_start_is_none_not_error() {
        let dir = tmpdir("cold");
        let (loaded, discarded) = load_latest(&dir).unwrap();
        assert!(loaded.is_none());
        assert_eq!(discarded, 0);
        // Stray files that merely look snapshot-ish are ignored.
        fs::write(dir.join("snap-xyz.bin"), b"junk").unwrap();
        fs::write(dir.join("wal.bin"), b"junk").unwrap();
        let (loaded, discarded) = load_latest(&dir).unwrap();
        assert!(loaded.is_none());
        assert_eq!(discarded, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn from_shards_merges_in_host_order() {
        let mut s0 = ShardState::default();
        let mut s1 = ShardState::default();
        s0.hosts.insert(2, HostState::default());
        s1.hosts.insert(1, HostState::default());
        let snap = Snapshot::from_shards(5, 672, &[s0, s1], &EpochState::default());
        assert_eq!(snap.hosts.keys().copied().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(snap.seq, 5);
    }
}
