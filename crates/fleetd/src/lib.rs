//! # fleetd — crash-safe streaming evaluation daemon
//!
//! The batch pipeline in `experiments` evaluates a finished corpus; a
//! production deployment of the paper's console model instead receives
//! per-host window batches continuously, and the machine running the
//! evaluation crashes, gets overloaded, and meets malformed input. This
//! crate is the long-running side: a sharded in-memory host table kept
//! crash-safe by a write-ahead log and periodic snapshots, supervised so
//! one bad batch cannot take the fleet evaluation down, and protected
//! from overload by watermark backpressure with accounted load shedding.
//!
//! The layering, bottom-up:
//!
//! * [`codec`] — little-endian field codec, `WindowBatch`, IEEE CRC-32;
//! * [`wal`] — CRC-framed append-only log with torn-tail recovery and the
//!   cooperative [`KillSwitch`](wal::KillSwitch) used by crash-injection
//!   harnesses;
//! * [`snapshot`] — atomic (tmp+rename) full-state checkpoints, newest
//!   valid image wins, keep-two retention;
//! * [`state`] — per-host accumulators with seq-deduped idempotent apply;
//! * [`epoch`] — versioned threshold epochs: WAL-journaled canary
//!   rollouts with shadow evaluation, health gates, and O(1) bitwise
//!   rollback;
//! * [`queue`] — bounded per-shard FIFOs with high/low watermark
//!   hysteresis and staleness shedding;
//! * [`supervisor`] — panic containment, exponential-backoff worker
//!   restart, poison-batch quarantine, circuit breaker;
//! * [`daemon`] — the virtual-clock event loop composing all of the
//!   above, with a conservation law over every admitted batch;
//! * [`control`] — the live control plane: a fully-validated hot-reload
//!   config ([`FleetConfig`](control::FleetConfig), reject-and-keep-old)
//!   and journaled operator commands (`force-rollback`, `pin-threshold`,
//!   `drain-shard`, `undrain-shard`) that ride the WAL and survive any
//!   crash fully-applied-or-not-applied;
//! * [`admin`] — a zero-dependency single-threaded HTTP/1.0 admin
//!   endpoint (off by default) serving Prometheus text, a state JSON
//!   document, config reloads, and operator commands, total against
//!   hostile input;
//! * [`ingest`] — the wire-facing front-end: panic-free syslog/CEF and
//!   DNS datagram parsing with sanitization, per-source token-bucket
//!   flood control, and a `received = accepted + shed + malformed`
//!   conservation law of its own;
//! * [`wire`] — the `CLW1` cluster wire protocol: CRC-framed
//!   batch/ack/heartbeat messages with a resynchronizing,
//!   bounded-allocation stream decoder;
//! * [`cluster`] — coordinator + N worker nodes over a simulated lossy
//!   wire: consistent-hash assignment, heartbeat failure detection,
//!   journaled rebalance, and a deterministic merged host table.
//!
//! The contract the root `tests/daemon.rs` suite enforces: kill the
//! daemon at *any* batch boundary or WAL byte offset (including torn
//! mid-frame writes), restart it, redeliver unacknowledged work, and the
//! final per-host evaluation outputs are byte-identical to a run that
//! was never interrupted. The root `tests/cluster.rs` suite extends the
//! same contract across node counts, seeded node kills, and wire faults.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admin;
pub mod cluster;
pub mod codec;
pub mod control;
pub mod daemon;
pub mod epoch;
pub mod ingest;
pub mod queue;
pub mod snapshot;
pub mod state;
pub mod supervisor;
pub mod wal;
pub mod wire;

pub use cluster::{
    AssignEvent, AssignState, Cluster, ClusterConfig, ClusterKillSwitch, ClusterRecovery,
    ClusterSnapshot, ClusterStats, DarkEpisode, HandoffNotice, HashRing,
};
pub use admin::{AdminConfig, AdminHandler, AdminServer, DaemonControl};
pub use codec::{Week, WindowBatch};
pub use control::{check_config, ControlCommand, ControlStats, FleetConfig};
pub use daemon::{
    Completion, Daemon, DaemonConfig, DaemonError, DaemonStats, Disposition, RecoveryReport,
};
pub use epoch::{
    EpochOutcome, EpochRecord, EpochState, GateStats, HealthGate, Phase, RollbackReason,
    RolloutConfig, RolloutEvent,
};
pub use ingest::{
    decode_batch_datagram, encode_batch_datagram, encode_dns_datagram, sanitize, CefEvent,
    IngestConfig, IngestOutcome, IngestStats, Ingestor, Lane, LaneStats, SyslogMsg,
};
pub use queue::{Admit, QueueConfig};
pub use snapshot::Snapshot;
pub use state::{ApplyConfig, ApplyError, ApplyOutcome, HostState};
pub use supervisor::{SupervisorConfig, WorkerStatus};
pub use wal::{KillSwitch, WalRecord, WalWriter};
pub use wire::{ClusterMsg, WireDecoder, WireStats};
