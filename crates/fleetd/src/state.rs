//! Per-host in-memory state and the batch apply path.
//!
//! Apply is the one mutation in the daemon and it is built to be safely
//! repeatable, because crash recovery *will* repeat it: the WAL replays
//! batches already in memory at snapshot time, and at-least-once delivery
//! resends batches whose completions were lost. Two mechanisms make the
//! repetition invisible:
//!
//! * per-host monotone `seq` dedupe — a batch at or below the host's
//!   high-water mark is a [`ApplyOutcome::Duplicate`], applied zero times;
//! * first-write-wins window accumulation
//!   ([`hids_core::WindowAccumulator`]) — even a batch that *does* re-run
//!   (crash between memory apply and WAL append, then redelivery into a
//!   recovered state that never saw it) lands on exactly the same windows.
//!
//! Poison batches trip a panic *before* any mutation, so a quarantined
//! batch leaves no partial state behind and — because the panic fires
//! before the WAL append too — can never enter the log and re-kill
//! recovery.

use std::collections::BTreeMap;

use hids_core::{SketchAccumulator, WindowAccumulator};

use crate::codec::{Week, WindowBatch};
use crate::epoch::GateStats;

/// Tunables the apply path needs.
#[derive(Debug, Clone, Copy)]
pub struct ApplyConfig {
    /// Windows per week; batches must fit inside `[0, n_windows)`.
    pub n_windows: u32,
    /// Quantile of the host's own training distribution used as its live
    /// alarm threshold (the paper's per-host baseline policy).
    pub threshold_q: f64,
    /// `Some(eps)` switches per-host accumulation to bounded-memory
    /// [`SketchAccumulator`]s with rank-error budget `eps` — the
    /// million-host mode. `None` (the default everywhere) keeps the
    /// original exact [`WindowAccumulator`] path bit-for-bit unchanged,
    /// including the snapshot byte format.
    pub sketch_eps: Option<f64>,
}

/// Everything the daemon tracks for one host.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HostState {
    /// Highest batch sequence number applied (0 = none yet).
    pub last_seq: u64,
    /// Training-week window counts accumulated so far (exact mode).
    pub train: WindowAccumulator,
    /// Test-week window counts accumulated so far (exact mode).
    pub test: WindowAccumulator,
    /// Training-week sketch, populated only when
    /// [`ApplyConfig::sketch_eps`] is set; `None` in exact mode so the
    /// exact path's state (and its `PartialEq`/snapshot image) is
    /// untouched.
    pub train_sketch: Option<SketchAccumulator>,
    /// Test-week sketch (sketch mode only; see
    /// [`HostState::train_sketch`]).
    pub test_sketch: Option<SketchAccumulator>,
    /// Live alarm threshold, fit from the training accumulator when the
    /// first test-week batch arrives (None until then, or if the training
    /// accumulator was still empty at that point).
    pub threshold: Option<f64>,
    /// Alarms raised online: test windows whose count strictly exceeded
    /// the effective threshold at the moment they were first applied.
    pub live_alarms: u64,
    /// Promoted-epoch override as `(effective_from, threshold)`: windows
    /// at or after `effective_from` alarm against this threshold instead
    /// of the incumbent [`HostState::threshold`]. Written only by a
    /// promoted rollout; a rolled-back rollout leaves it `None`, which is
    /// what makes rollback bitwise-exact.
    pub promoted: Option<(u32, f64)>,
    /// Operator-pinned threshold override (the control plane's
    /// `pin-threshold` command). Pins outrank both the incumbent and any
    /// promoted epoch — an operator decision beats the automation — and
    /// are journaled as WAL command records, so crash recovery replays
    /// them at exactly the point in the batch stream where they landed.
    pub pinned: Option<f64>,
}

/// Shadow-evaluation context for one batch apply during a canary soak:
/// count, per fresh soak-span test window, what the incumbent did and
/// what the candidate threshold *would* have done.
#[derive(Debug)]
pub struct ShadowCtx<'a> {
    /// First soak window index (inclusive).
    pub soak_start: u32,
    /// One past the last soak window index.
    pub soak_end: u32,
    /// Candidate threshold for this batch's host.
    pub candidate: f64,
    /// Counters to accumulate into.
    pub stats: &'a mut GateStats,
}

/// Result of a successful (non-panicking) apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyOutcome {
    /// State advanced; the batch must now be made durable.
    Applied,
    /// Sequence number at or below the high-water mark; nothing changed.
    Duplicate,
}

/// A structurally invalid batch (bad input, not a crash).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyError {
    /// `start + counts.len()` exceeds the configured week length.
    WindowOutOfRange {
        /// First window index past the end of the week.
        end: u64,
        /// Configured windows per week.
        n_windows: u32,
    },
}

impl core::fmt::Display for ApplyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ApplyError::WindowOutOfRange { end, n_windows } => write!(
                f,
                "batch windows end at {end} but weeks have {n_windows} windows"
            ),
        }
    }
}

impl std::error::Error for ApplyError {}

/// The deliberate crash a poison batch triggers, standing in for the
/// malformed-input bug class. Lives behind the one `panic!` the crate
/// allows; everything else returns `Result`.
#[allow(clippy::panic)]
fn poison_trip(batch: &WindowBatch) -> ! {
    panic!(
        "poison batch tripped worker (host {}, seq {})",
        batch.host, batch.seq
    );
}

impl HostState {
    /// The threshold window `w` alarms against: an operator pin if one is
    /// set, otherwise the promoted override once `w` reaches its
    /// activation boundary, otherwise the incumbent.
    pub fn effective_threshold(&self, w: u32) -> Option<f64> {
        if let Some(t) = self.pinned {
            return Some(t);
        }
        match self.promoted {
            Some((from, t)) if w >= from => Some(t),
            _ => self.threshold,
        }
    }

    /// Bytes of bounded sketch state this host holds (window bitmaps plus
    /// sketch buffers); 0 in exact mode. The per-host memory figure the
    /// million-host sizing argument is about.
    pub fn sketch_state_bytes(&self) -> usize {
        let one = |a: &Option<SketchAccumulator>| {
            a.as_ref().map_or(0, |a| {
                a.seen_words().len() * 8 + a.sketch().state_bytes() as usize
            })
        };
        one(&self.train_sketch) + one(&self.test_sketch)
    }

    /// Apply one batch. Panics only on poison batches (callers run this
    /// under `catch_unwind`); returns `Duplicate` without mutating when
    /// the sequence number is stale.
    pub fn apply(
        &mut self,
        batch: &WindowBatch,
        cfg: &ApplyConfig,
    ) -> Result<ApplyOutcome, ApplyError> {
        self.apply_shadowed(batch, cfg, None)
    }

    /// [`HostState::apply`], additionally shadow-evaluating a candidate
    /// threshold over fresh soak-span test windows when `shadow` is set.
    pub fn apply_shadowed(
        &mut self,
        batch: &WindowBatch,
        cfg: &ApplyConfig,
        mut shadow: Option<&mut ShadowCtx<'_>>,
    ) -> Result<ApplyOutcome, ApplyError> {
        if batch.seq <= self.last_seq {
            return Ok(ApplyOutcome::Duplicate);
        }
        if batch.poison {
            poison_trip(batch);
        }
        let end = u64::from(batch.start) + batch.counts.len() as u64;
        if end > u64::from(cfg.n_windows) {
            return Err(ApplyError::WindowOutOfRange {
                end,
                n_windows: cfg.n_windows,
            });
        }

        // Fit the live threshold the moment the host transitions into its
        // test week: the training accumulator as-of-now is the baseline.
        // Replay and redelivery preserve the original apply order per
        // host, so this fit sees the same data every time.
        if batch.week == Week::Test && self.threshold.is_none() {
            self.threshold = match cfg.sketch_eps {
                None => self.train.dist().map(|d| d.quantile(cfg.threshold_q)),
                Some(_) => self
                    .train_sketch
                    .as_ref()
                    .and_then(SketchAccumulator::source)
                    .map(|s| s.quantile(cfg.threshold_q)),
            };
        }

        match batch.week {
            Week::Train => {
                if let Some(eps) = cfg.sketch_eps {
                    let acc = self
                        .train_sketch
                        .get_or_insert_with(|| SketchAccumulator::new(eps));
                    for (i, &c) in batch.counts.iter().enumerate() {
                        acc.insert(batch.start + i as u32, c);
                    }
                } else {
                    for (i, &c) in batch.counts.iter().enumerate() {
                        self.train.insert(batch.start + i as u32, c);
                    }
                }
            }
            Week::Test => {
                for (i, &c) in batch.counts.iter().enumerate() {
                    let w = batch.start + i as u32;
                    // Count an alarm only when the window is genuinely
                    // new: re-applied overlaps must not double-alarm.
                    // The sketch accumulator's window bitmap provides the
                    // same first-write-wins guarantee in sketch mode.
                    let fresh = match cfg.sketch_eps {
                        None => self.test.insert(w, c),
                        Some(eps) => self
                            .test_sketch
                            .get_or_insert_with(|| SketchAccumulator::new(eps))
                            .insert(w, c),
                    };
                    if fresh {
                        let incumbent_alarm = self
                            .effective_threshold(w)
                            .is_some_and(|t| c as f64 > t);
                        if incumbent_alarm {
                            self.live_alarms += 1;
                        }
                        if let Some(ctx) = shadow.as_deref_mut() {
                            if w >= ctx.soak_start && w < ctx.soak_end {
                                ctx.stats.windows += 1;
                                if incumbent_alarm {
                                    ctx.stats.incumbent_alarms += 1;
                                }
                                if c as f64 > ctx.candidate {
                                    ctx.stats.candidate_alarms += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
        self.last_seq = batch.seq;
        Ok(ApplyOutcome::Applied)
    }
}

/// One shard's slice of the host table.
#[derive(Debug, Default)]
pub struct ShardState {
    /// Hosts owned by this shard, keyed by host id (ordered for
    /// deterministic iteration).
    pub hosts: BTreeMap<u32, HostState>,
}

impl ShardState {
    /// Apply a batch to its host (creating the host on first contact).
    pub fn apply(
        &mut self,
        batch: &WindowBatch,
        cfg: &ApplyConfig,
    ) -> Result<ApplyOutcome, ApplyError> {
        self.hosts.entry(batch.host).or_default().apply(batch, cfg)
    }

    /// [`ShardState::apply`] with shadow evaluation of a candidate
    /// threshold (see [`HostState::apply_shadowed`]).
    pub fn apply_shadowed(
        &mut self,
        batch: &WindowBatch,
        cfg: &ApplyConfig,
        shadow: Option<&mut ShadowCtx<'_>>,
    ) -> Result<ApplyOutcome, ApplyError> {
        self.hosts
            .entry(batch.host)
            .or_default()
            .apply_shadowed(batch, cfg, shadow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ApplyConfig {
        ApplyConfig {
            n_windows: 8,
            threshold_q: 0.99,
            sketch_eps: None,
        }
    }

    fn sketch_cfg() -> ApplyConfig {
        ApplyConfig {
            sketch_eps: Some(0.001),
            ..cfg()
        }
    }

    fn b(seq: u64, week: Week, start: u32, counts: &[u64]) -> WindowBatch {
        WindowBatch {
            host: 1,
            seq,
            week,
            start,
            counts: counts.to_vec(),
            poison: false,
        }
    }

    #[test]
    fn stale_seq_is_duplicate_and_mutates_nothing() {
        let mut h = HostState::default();
        assert_eq!(
            h.apply(&b(3, Week::Train, 0, &[1, 2]), &cfg()).unwrap(),
            ApplyOutcome::Applied
        );
        let before = h.clone();
        for seq in [1, 2, 3] {
            assert_eq!(
                h.apply(&b(seq, Week::Train, 4, &[9, 9]), &cfg()).unwrap(),
                ApplyOutcome::Duplicate
            );
        }
        assert_eq!(h, before);
    }

    #[test]
    fn threshold_fits_on_first_test_batch_then_freezes() {
        let mut h = HostState::default();
        h.apply(&b(1, Week::Train, 0, &[0, 0, 0, 0, 0, 0, 0, 10]), &cfg())
            .unwrap();
        h.apply(&b(2, Week::Test, 0, &[100]), &cfg()).unwrap();
        let t = h.threshold.expect("threshold fit at test transition");
        assert_eq!(h.live_alarms, 1, "100 > q99 of the training week");
        // More training data after the transition must not refit.
        h.apply(&b(3, Week::Train, 4, &[0, 0, 0, 0]), &cfg()).unwrap();
        let t2 = h.threshold.unwrap();
        assert_eq!(t.to_bits(), t2.to_bits());
    }

    #[test]
    fn alarms_only_count_fresh_windows() {
        let mut h = HostState::default();
        h.apply(&b(1, Week::Train, 0, &[1; 8]), &cfg()).unwrap();
        h.apply(&b(2, Week::Test, 0, &[100, 100]), &cfg()).unwrap();
        assert_eq!(h.live_alarms, 2);
        // Overlapping re-send under a *new* seq: windows already present,
        // so no new alarms even though counts exceed the threshold.
        h.apply(&b(3, Week::Test, 0, &[100, 100]), &cfg()).unwrap();
        assert_eq!(h.live_alarms, 2);
    }

    #[test]
    fn out_of_range_batch_is_rejected_without_mutation() {
        let mut h = HostState::default();
        let err = h.apply(&b(1, Week::Train, 6, &[1, 2, 3]), &cfg()).unwrap_err();
        assert_eq!(
            err,
            ApplyError::WindowOutOfRange { end: 9, n_windows: 8 }
        );
        assert_eq!(h, HostState::default());
    }

    #[test]
    fn poison_panics_before_any_mutation() {
        let mut h = HostState::default();
        h.apply(&b(1, Week::Train, 0, &[5]), &cfg()).unwrap();
        let before = h.clone();
        let poison = WindowBatch {
            poison: true,
            ..b(2, Week::Test, 0, &[9])
        };
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = h.apply(&poison, &cfg());
        }));
        assert!(r.is_err());
        assert_eq!(h, before, "poison trip must leave state untouched");
        // A duplicate-seq poison batch never trips: dedupe runs first.
        let stale_poison = WindowBatch {
            poison: true,
            ..b(1, Week::Train, 0, &[9])
        };
        assert_eq!(
            h.apply(&stale_poison, &cfg()).unwrap(),
            ApplyOutcome::Duplicate
        );
    }

    #[test]
    fn promoted_override_activates_at_its_boundary() {
        let mut h = HostState::default();
        h.apply(&b(1, Week::Train, 0, &[1; 8]), &cfg()).unwrap();
        h.apply(&b(2, Week::Test, 0, &[100, 100]), &cfg()).unwrap();
        assert_eq!(h.live_alarms, 2, "incumbent alarms before promotion");
        h.promoted = Some((4, 1000.0));
        // Windows 2,3 are before the activation boundary: incumbent rules.
        h.apply(&b(3, Week::Test, 2, &[100, 100]), &cfg()).unwrap();
        assert_eq!(h.live_alarms, 4);
        // Windows 4,5 are at/after the boundary: promoted threshold rules.
        h.apply(&b(4, Week::Test, 4, &[100, 100]), &cfg()).unwrap();
        assert_eq!(h.live_alarms, 4, "promoted threshold silences these");
        assert_eq!(h.effective_threshold(3), h.threshold);
        assert_eq!(h.effective_threshold(4), Some(1000.0));
    }

    #[test]
    fn shadow_counts_only_fresh_soak_windows() {
        let mut h = HostState::default();
        h.apply(&b(1, Week::Train, 0, &[1; 8]), &cfg()).unwrap();
        let mut stats = GateStats::default();
        let mut ctx = ShadowCtx {
            soak_start: 2,
            soak_end: 6,
            candidate: 1000.0,
            stats: &mut stats,
        };
        h.apply_shadowed(&b(2, Week::Test, 0, &[100; 6]), &cfg(), Some(&mut ctx))
            .unwrap();
        // Windows 0..6 applied; soak spans 2..6 → 4 shadow windows, all
        // incumbent alarms, none under the high candidate.
        assert_eq!(
            stats,
            GateStats {
                windows: 4,
                incumbent_alarms: 4,
                candidate_alarms: 0,
                sheds: 0,
            }
        );
        assert_eq!(h.live_alarms, 6, "shadow never changes live alarms");
        // Overlapping re-send: no fresh windows, shadow untouched.
        let mut ctx = ShadowCtx {
            soak_start: 2,
            soak_end: 6,
            candidate: 1000.0,
            stats: &mut stats,
        };
        h.apply_shadowed(&b(3, Week::Test, 0, &[100; 6]), &cfg(), Some(&mut ctx))
            .unwrap();
        assert_eq!(stats.windows, 4);
    }

    #[test]
    fn sketch_mode_matches_exact_threshold_and_alarms_when_uncompacted() {
        // At eps = 0.001 the sketch buffers hold far more than 8 samples,
        // so no compaction occurs and the fitted threshold must be
        // bit-identical to the exact path's.
        let mut exact = HostState::default();
        let mut sk = HostState::default();
        let train: Vec<u64> = vec![0, 1, 2, 3, 4, 5, 6, 100];
        exact.apply(&b(1, Week::Train, 0, &train), &cfg()).unwrap();
        sk.apply(&b(1, Week::Train, 0, &train), &sketch_cfg())
            .unwrap();
        exact.apply(&b(2, Week::Test, 0, &[50, 200]), &cfg()).unwrap();
        sk.apply(&b(2, Week::Test, 0, &[50, 200]), &sketch_cfg())
            .unwrap();
        let te = exact.threshold.expect("exact threshold");
        let ts = sk.threshold.expect("sketch threshold");
        assert_eq!(te.to_bits(), ts.to_bits());
        assert_eq!(exact.live_alarms, sk.live_alarms);
        // Exact accumulators stay untouched in sketch mode: that is the
        // bounded-memory claim.
        assert!(sk.train.is_empty() && sk.test.is_empty());
        assert!(sk.sketch_state_bytes() > 0);
        assert_eq!(exact.sketch_state_bytes(), 0);
    }

    #[test]
    fn sketch_mode_alarms_only_count_fresh_windows() {
        let mut h = HostState::default();
        h.apply(&b(1, Week::Train, 0, &[1; 8]), &sketch_cfg()).unwrap();
        h.apply(&b(2, Week::Test, 0, &[100, 100]), &sketch_cfg())
            .unwrap();
        assert_eq!(h.live_alarms, 2);
        // Overlapping re-send under a new seq: the sketch accumulator's
        // bitmap suppresses both the alarms and the duplicate samples.
        h.apply(&b(3, Week::Test, 0, &[100, 100]), &sketch_cfg())
            .unwrap();
        assert_eq!(h.live_alarms, 2);
        assert_eq!(h.test_sketch.as_ref().unwrap().len(), 2);
    }

    #[test]
    fn shard_routes_by_host_and_creates_on_first_contact() {
        let mut s = ShardState::default();
        let mut batch = b(1, Week::Train, 0, &[1]);
        batch.host = 42;
        s.apply(&batch, &cfg()).unwrap();
        assert_eq!(s.hosts.len(), 1);
        assert_eq!(s.hosts[&42].last_seq, 1);
    }
}
