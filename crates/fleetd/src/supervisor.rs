//! Shard worker supervision: panic containment, backoff restart, poison
//! quarantine, and the circuit breaker.
//!
//! Each shard's worker is a logical unit of failure. The daemon runs
//! every apply under `catch_unwind`; a panic is charged to both the
//! *batch* that triggered it and the *worker* that ran it:
//!
//! * The batch gets a strike. At `quarantine_strikes` strikes it is
//!   parked with a `Quarantined` completion — a poison batch must not be
//!   retried forever, and quarantining it converts a crash loop into an
//!   accounted coverage gap.
//! * The worker restarts under exponential backoff
//!   (`backoff_base << consecutive_panics`, capped), so a persistently
//!   crashing shard backs away from the queue instead of spinning. A
//!   successful apply resets the streak.
//! * At `breaker_failures` consecutive panics the circuit breaker trips
//!   and the shard goes [`WorkerStatus::Dark`]: its queue is shed, future
//!   offers are shed on arrival, and its hosts surface downstream as
//!   coverage loss for `hids_core::degraded` to account — the daemon
//!   keeps serving every other shard.

/// Supervision tunables.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// Backoff after the first panic in a streak, in ticks.
    pub backoff_base: u64,
    /// Cap on the backoff left-shift (`backoff_base << min(streak-1, cap)`).
    pub backoff_cap_exp: u32,
    /// Panics charged to one batch before it is quarantined.
    pub quarantine_strikes: u32,
    /// Consecutive worker panics before the breaker trips the shard dark.
    pub breaker_failures: u32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            backoff_base: 2,
            backoff_cap_exp: 6,
            quarantine_strikes: 2,
            breaker_failures: 8,
        }
    }
}

/// Lifecycle state of one shard worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerStatus {
    /// Processing its queue.
    Running,
    /// Restarting; resumes when the virtual clock reaches `until`.
    Backoff {
        /// Tick at which the worker re-enters [`WorkerStatus::Running`].
        until: u64,
    },
    /// Circuit breaker tripped; the shard is out of service for the rest
    /// of this process lifetime (a restart clears it).
    Dark,
}

/// Supervision bookkeeping for one shard worker.
#[derive(Debug)]
pub struct Worker {
    /// Current lifecycle state.
    pub status: WorkerStatus,
    /// Panics since the last successful apply.
    pub consecutive_panics: u32,
    /// Total restarts over this process lifetime.
    pub restarts: u64,
}

impl Worker {
    /// A fresh, running worker.
    pub fn new() -> Self {
        Self {
            status: WorkerStatus::Running,
            consecutive_panics: 0,
            restarts: 0,
        }
    }

    /// Whether the worker may process work at `tick` (also promotes an
    /// expired backoff back to running).
    pub fn poll_running(&mut self, tick: u64) -> bool {
        match self.status {
            WorkerStatus::Running => true,
            WorkerStatus::Backoff { until } if tick >= until => {
                self.status = WorkerStatus::Running;
                true
            }
            _ => false,
        }
    }

    /// Record a successful apply: the panic streak ends.
    pub fn note_success(&mut self) {
        self.consecutive_panics = 0;
    }

    /// Record a panic at `tick`. Returns `true` when this panic trips the
    /// circuit breaker (caller sheds the queue); otherwise the worker is
    /// in backoff until the returned status says so.
    pub fn note_panic(&mut self, tick: u64, cfg: &SupervisorConfig) -> bool {
        self.consecutive_panics += 1;
        self.restarts += 1;
        if self.consecutive_panics >= cfg.breaker_failures {
            self.status = WorkerStatus::Dark;
            return true;
        }
        let exp = (self.consecutive_panics - 1).min(cfg.backoff_cap_exp);
        let delay = cfg.backoff_base << exp;
        self.status = WorkerStatus::Backoff {
            until: tick + delay,
        };
        false
    }

    /// Whether the breaker has tripped.
    pub fn is_dark(&self) -> bool {
        self.status == WorkerStatus::Dark
    }
}

impl Default for Worker {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SupervisorConfig {
        SupervisorConfig {
            backoff_base: 2,
            backoff_cap_exp: 3,
            quarantine_strikes: 2,
            breaker_failures: 4,
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut w = Worker::new();
        let c = cfg();
        // Streak 1..3 → delays 2, 4, 8; streak capped at shift 3.
        assert!(!w.note_panic(100, &c));
        assert_eq!(w.status, WorkerStatus::Backoff { until: 102 });
        assert!(!w.note_panic(102, &c));
        assert_eq!(w.status, WorkerStatus::Backoff { until: 106 });
        assert!(!w.note_panic(106, &c));
        assert_eq!(w.status, WorkerStatus::Backoff { until: 114 });
        assert_eq!(w.restarts, 3);
    }

    #[test]
    fn success_resets_the_streak() {
        let mut w = Worker::new();
        let c = cfg();
        w.note_panic(0, &c);
        w.note_panic(10, &c);
        w.note_success();
        assert_eq!(w.consecutive_panics, 0);
        // Next panic starts from base backoff again.
        w.note_panic(20, &c);
        assert_eq!(w.status, WorkerStatus::Backoff { until: 22 });
    }

    #[test]
    fn breaker_trips_at_threshold() {
        let mut w = Worker::new();
        let c = cfg();
        for _ in 0..3 {
            assert!(!w.note_panic(0, &c));
        }
        assert!(w.note_panic(0, &c), "fourth consecutive panic trips");
        assert!(w.is_dark());
        // Dark is terminal for this lifetime: polling never resurrects.
        assert!(!w.poll_running(u64::MAX));
    }

    #[test]
    fn poll_promotes_expired_backoff() {
        let mut w = Worker::new();
        w.note_panic(10, &cfg());
        assert!(!w.poll_running(11));
        assert!(w.poll_running(12));
        assert_eq!(w.status, WorkerStatus::Running);
    }
}
