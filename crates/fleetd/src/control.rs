//! The live control plane: validated hot-reload configuration and
//! journaled operator commands.
//!
//! Two halves, with deliberately different durability stories:
//!
//! * **[`FleetConfig`]** — a total, line-oriented `key = value` parser
//!   over every daemon *and* harness knob, with one shared validator
//!   ([`check_config`] plus the harness-side checks in
//!   [`FleetConfig::validate`]). The CLI flags of `repro` and the admin
//!   endpoint's `POST /reload` both route through it, so there is exactly
//!   one range-checked source of truth. A reload is **reject-and-keep-
//!   old**: validation (and the structural-change check in
//!   `Daemon::reload`) runs against the *candidate* config while the old
//!   generation stays live; only a fully valid candidate bumps the
//!   generation. Config is *not* journaled — the config file itself is
//!   the durable source, and the generation counter restarts at 1 on
//!   every process start.
//!
//! * **[`ControlCommand`]** — operator actions (`force-rollback`,
//!   `pin-threshold`, `drain-shard`, `undrain-shard`) that mutate durable
//!   daemon state. These are journaled as first-class WAL records (tag 2,
//!   next to batches and rollout transitions) *before* any in-memory
//!   effect, and replayed through the same apply function on recovery —
//!   so a crash at any byte of the command record, or between apply and
//!   acknowledgement, recovers to fully-applied or not-applied, never
//!   half. The root `tests/control.rs` kill sweep is the witness.

use crate::codec::{put_f64, put_u32, CodecError, Reader};
use crate::daemon::DaemonConfig;

/// A journaled operator command.
///
/// Commands are idempotent by construction (re-pinning the same value,
/// re-draining a drained shard, and rolling back an absent candidate all
/// converge), so an orchestrator that cannot tell whether a command
/// landed before a crash can safely re-issue it after recovery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ControlCommand {
    /// Abort the in-flight canary rollout; the incumbent thresholds
    /// stand, and the epoch is recorded as rolled back with reason
    /// `operator`.
    ForceRollback,
    /// Pin `host`'s alarm threshold to `t`, outranking both the
    /// incumbent and any promoted epoch until unpinned by a later pin.
    PinThreshold {
        /// Host whose threshold is pinned.
        host: u32,
        /// The pinned threshold value (must be finite).
        t: f64,
    },
    /// Stop admitting new batches to shard `shard`; already-queued work
    /// still drains. Sources see `Admit::Overflow` and retry later.
    DrainShard {
        /// Shard index to drain.
        shard: u32,
    },
    /// Resume admission on shard `shard`.
    UndrainShard {
        /// Shard index to undrain.
        shard: u32,
    },
}

impl ControlCommand {
    /// Stable label for metrics/events.
    pub fn name(&self) -> &'static str {
        match self {
            ControlCommand::ForceRollback => "force-rollback",
            ControlCommand::PinThreshold { .. } => "pin-threshold",
            ControlCommand::DrainShard { .. } => "drain-shard",
            ControlCommand::UndrainShard { .. } => "undrain-shard",
        }
    }

    /// Serialise into `out` (tag byte + body), the WAL record body form.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ControlCommand::ForceRollback => out.push(0),
            ControlCommand::PinThreshold { host, t } => {
                out.push(1);
                put_u32(out, *host);
                put_f64(out, *t);
            }
            ControlCommand::DrainShard { shard } => {
                out.push(2);
                put_u32(out, *shard);
            }
            ControlCommand::UndrainShard { shard } => {
                out.push(3);
                put_u32(out, *shard);
            }
        }
    }

    /// Deserialise from exactly `buf` (trailing bytes are an error).
    pub fn decode(buf: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(buf);
        let cmd = match r.u8()? {
            0 => ControlCommand::ForceRollback,
            1 => ControlCommand::PinThreshold {
                host: r.u32()?,
                t: r.f64()?,
            },
            2 => ControlCommand::DrainShard { shard: r.u32()? },
            3 => ControlCommand::UndrainShard { shard: r.u32()? },
            _ => return Err(CodecError::BadDiscriminant),
        };
        r.finish()?;
        Ok(cmd)
    }

    /// Parse the operator text grammar (one command per line):
    ///
    /// ```text
    /// force-rollback
    /// pin-threshold <host> <threshold>
    /// drain-shard <shard>
    /// undrain-shard <shard>
    /// ```
    ///
    /// Total: any input yields `Ok` or a diagnostic `Err`, never a panic.
    pub fn parse(line: &str) -> Result<Self, String> {
        let mut parts = line.split_whitespace();
        let verb = parts.next().ok_or_else(|| "empty command".to_string())?;
        let cmd = match verb {
            "force-rollback" => ControlCommand::ForceRollback,
            "pin-threshold" => {
                let host = parse_arg::<u32>(parts.next(), "pin-threshold", "host")?;
                let t = parse_arg::<f64>(parts.next(), "pin-threshold", "threshold")?;
                if !t.is_finite() {
                    return Err("pin-threshold value must be finite".to_string());
                }
                ControlCommand::PinThreshold { host, t }
            }
            "drain-shard" => ControlCommand::DrainShard {
                shard: parse_arg::<u32>(parts.next(), "drain-shard", "shard")?,
            },
            "undrain-shard" => ControlCommand::UndrainShard {
                shard: parse_arg::<u32>(parts.next(), "undrain-shard", "shard")?,
            },
            other => return Err(format!("unknown command: {other}")),
        };
        if parts.next().is_some() {
            return Err(format!("trailing arguments after {verb}"));
        }
        Ok(cmd)
    }
}

fn parse_arg<T: core::str::FromStr>(
    raw: Option<&str>,
    verb: &str,
    what: &str,
) -> Result<T, String> {
    let raw = raw.ok_or_else(|| format!("{verb} needs a {what} argument"))?;
    raw.parse()
        .map_err(|_| format!("{verb}: bad {what} {raw:?}"))
}

/// Control-plane counters over one daemon lifetime (exported as the
/// `control_*` metric families).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ControlStats {
    /// Hot reloads accepted (each bumped the config generation).
    pub reloads_applied: u64,
    /// Hot reloads rejected with the old generation kept live.
    pub reloads_rejected: u64,
    /// `force-rollback` commands journaled and applied.
    pub force_rollbacks: u64,
    /// `pin-threshold` commands journaled and applied.
    pub pins: u64,
    /// `drain-shard` commands journaled and applied.
    pub drains: u64,
    /// `undrain-shard` commands journaled and applied.
    pub undrains: u64,
}

impl ControlStats {
    /// Commands journaled and applied, across kinds.
    pub fn commands_applied(&self) -> u64 {
        self.force_rollbacks + self.pins + self.drains + self.undrains
    }
}

/// Validate a [`DaemonConfig`]: the single source of truth shared by
/// `Daemon::open`, `Daemon::reload`, the [`FleetConfig`] parser, and the
/// `repro` CLI flags. `Err` carries the first failing range check.
pub fn check_config(cfg: &DaemonConfig) -> Result<(), &'static str> {
    if cfg.n_shards == 0 {
        return Err("n_shards must be nonzero");
    }
    if cfg.n_windows == 0 {
        return Err("n_windows must be nonzero");
    }
    if !(cfg.threshold_q > 0.0 && cfg.threshold_q <= 1.0) {
        return Err("threshold_q must be in (0, 1]");
    }
    if let Some(eps) = cfg.sketch_eps {
        if !(eps > 0.0 && eps < 1.0) {
            return Err("sketch_eps must be in (0, 1)");
        }
    }
    if cfg.snapshot_every == 0 {
        return Err("snapshot_every must be nonzero");
    }
    if cfg.queue.quantum == 0 {
        return Err("queue.quantum must be nonzero");
    }
    if cfg.queue.high == 0 || cfg.queue.high > cfg.queue.capacity {
        return Err("queue.high must be in 1..=queue.capacity");
    }
    if cfg.queue.low >= cfg.queue.high {
        return Err("queue.low must be below queue.high");
    }
    if cfg.supervisor.quarantine_strikes == 0 {
        return Err("quarantine_strikes must be nonzero");
    }
    if cfg.supervisor.breaker_failures == 0 {
        return Err("breaker_failures must be nonzero");
    }
    if cfg.rollout.canary_shards == 0 {
        return Err("rollout.canary_shards must be nonzero");
    }
    let gate = &cfg.rollout.gate;
    if !(gate.max_fp_increase >= 0.0 && gate.max_alarm_drop >= 0.0) {
        return Err("rollout gate alarm-delta bounds must be nonnegative");
    }
    if !(gate.min_coverage > 0.0 && gate.min_coverage <= 1.0) {
        return Err("rollout.gate.min_coverage must be in (0, 1]");
    }
    if !(gate.max_shed_rate >= 0.0 && gate.max_shed_rate <= 1.0) {
        return Err("rollout.gate.max_shed_rate must be in [0, 1]");
    }
    Ok(())
}

/// The full fleet configuration: the daemon's tunables plus the harness/
/// delivery knobs the `repro` scenarios share, all behind one validator.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Daemon-side configuration (validated by [`check_config`]).
    pub daemon: DaemonConfig,
    /// At-least-once delivery: attempts per batch before giving up.
    pub delivery_attempts: u32,
    /// Delivery retry backoff base (virtual ticks).
    pub delivery_backoff: u64,
    /// Ingest token-bucket refill rate (events per tick per source).
    pub ingest_rate: u64,
    /// Ingest token-bucket burst capacity.
    pub ingest_burst: u64,
    /// Admin endpoint TCP port; `None` (the default) keeps the endpoint
    /// off. Port 0 is rejected — the OS would pick an arbitrary port and
    /// the operator could never know where the plane lives.
    pub admin_port: Option<u16>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            daemon: DaemonConfig::default(),
            delivery_attempts: 40,
            delivery_backoff: 1,
            ingest_rate: 16,
            ingest_burst: 64,
            admin_port: None,
        }
    }
}

impl FleetConfig {
    /// Set one `key` to a textual `value`, with the same key grammar the
    /// file parser uses. Total: unknown keys and malformed values are
    /// diagnostics, never panics. Range checks run in
    /// [`FleetConfig::validate`], not here, so cross-field rules see the
    /// whole candidate config.
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), String> {
        fn num<T: core::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
            value
                .parse()
                .map_err(|_| format!("bad value for {key}: {value:?}"))
        }
        match key {
            "n_shards" => self.daemon.n_shards = num(key, value)?,
            "n_windows" => self.daemon.n_windows = num(key, value)?,
            "threshold_q" => self.daemon.threshold_q = num(key, value)?,
            "snapshot_every" => self.daemon.snapshot_every = num(key, value)?,
            "sketch_eps" => {
                self.daemon.sketch_eps = match value {
                    "none" => None,
                    v => Some(num(key, v)?),
                }
            }
            "queue.capacity" => self.daemon.queue.capacity = num(key, value)?,
            "queue.high" => self.daemon.queue.high = num(key, value)?,
            "queue.low" => self.daemon.queue.low = num(key, value)?,
            "queue.shed_after" => self.daemon.queue.shed_after = num(key, value)?,
            "queue.quantum" => self.daemon.queue.quantum = num(key, value)?,
            "supervisor.backoff_base" => self.daemon.supervisor.backoff_base = num(key, value)?,
            "supervisor.backoff_cap_exp" => {
                self.daemon.supervisor.backoff_cap_exp = num(key, value)?
            }
            "supervisor.quarantine_strikes" => {
                self.daemon.supervisor.quarantine_strikes = num(key, value)?
            }
            "supervisor.breaker_failures" => {
                self.daemon.supervisor.breaker_failures = num(key, value)?
            }
            "rollout.canary_shards" => self.daemon.rollout.canary_shards = num(key, value)?,
            "rollout.gate.max_fp_increase" => {
                self.daemon.rollout.gate.max_fp_increase = num(key, value)?
            }
            "rollout.gate.max_alarm_drop" => {
                self.daemon.rollout.gate.max_alarm_drop = num(key, value)?
            }
            "rollout.gate.min_coverage" => {
                self.daemon.rollout.gate.min_coverage = num(key, value)?
            }
            "rollout.gate.max_shed_rate" => {
                self.daemon.rollout.gate.max_shed_rate = num(key, value)?
            }
            "delivery_attempts" => self.delivery_attempts = num(key, value)?,
            "delivery_backoff" => self.delivery_backoff = num(key, value)?,
            "ingest_rate" => self.ingest_rate = num(key, value)?,
            "ingest_burst" => self.ingest_burst = num(key, value)?,
            "admin_port" => {
                self.admin_port = match value {
                    "none" => None,
                    v => Some(num(key, v)?),
                }
            }
            other => return Err(format!("unknown config key: {other}")),
        }
        Ok(())
    }

    /// Parse the line-oriented config format: `key = value` per line,
    /// `#` comments, blank lines ignored. Starts from the defaults, so a
    /// file only names what it changes. Duplicate and unknown keys are
    /// errors (a typo must not silently fall back to a default), and the
    /// whole candidate is validated before it is returned — a caller
    /// holding a live config can only ever swap in a fully valid one.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut cfg = Self::default();
        let mut seen: Vec<String> = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected key = value", i + 1))?;
            let (key, value) = (key.trim(), value.trim());
            if key.is_empty() || value.is_empty() {
                return Err(format!("line {}: expected key = value", i + 1));
            }
            if seen.iter().any(|k| k == key) {
                return Err(format!("line {}: duplicate key {key}", i + 1));
            }
            cfg.set(key, value)
                .map_err(|e| format!("line {}: {e}", i + 1))?;
            seen.push(key.to_string());
        }
        cfg.validate()?;
        Ok(cfg)
    }

    /// Validate every field and cross-field rule: the daemon half through
    /// [`check_config`], then the harness knobs.
    pub fn validate(&self) -> Result<(), String> {
        check_config(&self.daemon).map_err(|e| e.to_string())?;
        if self.delivery_attempts == 0 {
            return Err("delivery_attempts must be nonzero".to_string());
        }
        if self.delivery_backoff == 0 {
            return Err("delivery_backoff must be nonzero".to_string());
        }
        if self.ingest_rate == 0 {
            return Err("ingest_rate must be nonzero".to_string());
        }
        if self.ingest_burst == 0 {
            return Err("ingest_burst must be nonzero".to_string());
        }
        if self.admin_port == Some(0) {
            return Err("admin_port must be nonzero (or none)".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_roundtrip_binary_and_text() {
        for (line, cmd) in [
            ("force-rollback", ControlCommand::ForceRollback),
            (
                "pin-threshold 7 12.5",
                ControlCommand::PinThreshold { host: 7, t: 12.5 },
            ),
            ("drain-shard 3", ControlCommand::DrainShard { shard: 3 }),
            ("undrain-shard 3", ControlCommand::UndrainShard { shard: 3 }),
        ] {
            assert_eq!(ControlCommand::parse(line).unwrap(), cmd);
            let mut buf = Vec::new();
            cmd.encode(&mut buf);
            assert_eq!(ControlCommand::decode(&buf).unwrap(), cmd);
        }
    }

    #[test]
    fn command_decode_is_total() {
        let mut buf = Vec::new();
        ControlCommand::PinThreshold { host: 1, t: 2.0 }.encode(&mut buf);
        for cut in 0..buf.len() {
            assert!(ControlCommand::decode(&buf[..cut]).is_err(), "cut {cut}");
        }
        buf.push(0);
        assert_eq!(
            ControlCommand::decode(&buf),
            Err(CodecError::TrailingBytes)
        );
        assert!(ControlCommand::decode(&[9]).is_err(), "bad tag");
    }

    #[test]
    fn command_text_grammar_rejects_garbage() {
        for bad in [
            "",
            "  ",
            "explode",
            "pin-threshold",
            "pin-threshold 1",
            "pin-threshold x 2.0",
            "pin-threshold 1 nan",
            "pin-threshold 1 inf",
            "pin-threshold 1 2.0 extra",
            "drain-shard",
            "drain-shard -1",
            "force-rollback now",
        ] {
            assert!(ControlCommand::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn config_file_roundtrip_and_defaults() {
        let cfg = FleetConfig::parse(
            "# fleet config\n\
             n_shards = 8\n\
             snapshot_every = 32   # live-appliable\n\
             queue.capacity = 512\n\
             queue.high = 300\n\
             queue.low = 100\n\
             rollout.gate.min_coverage = 0.8\n\
             admin_port = 9900\n",
        )
        .unwrap();
        assert_eq!(cfg.daemon.n_shards, 8);
        assert_eq!(cfg.daemon.snapshot_every, 32);
        assert_eq!(cfg.daemon.queue.capacity, 512);
        assert_eq!(cfg.daemon.rollout.gate.min_coverage, 0.8);
        assert_eq!(cfg.admin_port, Some(9900));
        // Untouched keys keep their defaults.
        assert_eq!(cfg.daemon.n_windows, DaemonConfig::default().n_windows);
        assert_eq!(cfg.delivery_attempts, 40);
    }

    #[test]
    fn config_parser_rejects_malformed_input() {
        for (text, needle) in [
            ("n_shards", "expected key = value"),
            ("= 4", "expected key = value"),
            ("n_shards =", "expected key = value"),
            ("warp_factor = 9", "unknown config key"),
            ("n_shards = banana", "bad value"),
            ("n_shards = 4\nn_shards = 8", "duplicate key"),
            ("n_shards = 0", "n_shards must be nonzero"),
            ("threshold_q = 1.5", "threshold_q must be in (0, 1]"),
            ("queue.low = 9999", "queue.low must be below queue.high"),
            ("admin_port = 0", "admin_port must be nonzero"),
            ("delivery_attempts = 0", "delivery_attempts must be nonzero"),
            ("ingest_rate = 0", "ingest_rate must be nonzero"),
            ("sketch_eps = 2.0", "sketch_eps must be in (0, 1)"),
        ] {
            let err = FleetConfig::parse(text).unwrap_err();
            assert!(err.contains(needle), "{text:?} -> {err:?}");
        }
    }

    #[test]
    fn parser_is_total_over_hostile_text() {
        for hostile in [
            "\u{0}\u{0}\u{0}",
            "= = = =",
            "a=\u{7f}\u{1b}[31m",
            "n_shards = 99999999999999999999999999",
            "queue.capacity = -3",
            "####\n\n\n = \n",
            "admin_port = 65536",
        ] {
            let _ = FleetConfig::parse(hostile); // must not panic
        }
    }

    #[test]
    fn check_config_matches_daemon_validation() {
        assert!(check_config(&DaemonConfig::default()).is_ok());
        let mut bad = DaemonConfig::default();
        bad.queue.quantum = 0;
        assert_eq!(check_config(&bad), Err("queue.quantum must be nonzero"));
    }
}
