//! Deterministic binary codec for the daemon's durable artifacts.
//!
//! Both the write-ahead log and the snapshot files are built from the same
//! primitives: little-endian fixed-width integers and an IEEE CRC-32 over
//! the payload. Everything here is hand-rolled — no serializer dependency
//! — because the framing must be byte-stable across versions of anything
//! but this file, and because recovery needs precise control over how a
//! torn or bit-rotted suffix decodes (it must fail loudly at the frame
//! layer, never panic in the middle of a field read).

use itconsole::Payload;
use serde::Serialize;

/// Which week of the train/test pair a batch belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Week {
    /// Training week (thresholds are fit on this data).
    Train,
    /// Test week (scored against the fitted thresholds).
    Test,
}

/// One host's contiguous run of per-window feature counts — the daemon's
/// unit of ingest, durability, acknowledgement and retry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct WindowBatch {
    /// Host that produced the windows.
    pub host: u32,
    /// Per-host monotone sequence number, starting at 1. The daemon
    /// applies a batch at most once: a batch whose `seq` is not greater
    /// than the host's high-water mark is acknowledged as a duplicate.
    pub seq: u64,
    /// Which week the windows belong to.
    pub week: Week,
    /// Index of the first window in `counts` within its week.
    pub start: u32,
    /// Per-window feature counts, consecutive from `start`.
    pub counts: Vec<u64>,
    /// Fault-injection marker: a poison batch panics the shard worker
    /// that applies it (standing in for the malformed input that killed a
    /// real agent). Set only by `faultsim`-driven tests and experiments.
    pub poison: bool,
}

impl Payload for WindowBatch {
    fn units(&self) -> u64 {
        self.counts.len() as u64
    }
}

/// Why a byte buffer failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// Buffer ended before the declared structure did.
    Truncated,
    /// A declared length is beyond the sanity bound.
    ImplausibleLength,
    /// An enum discriminant has no meaning.
    BadDiscriminant,
    /// Trailing bytes after a complete structure.
    TrailingBytes,
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "buffer ends mid-structure"),
            CodecError::ImplausibleLength => write!(f, "declared length fails sanity bound"),
            CodecError::BadDiscriminant => write!(f, "unknown enum discriminant"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after structure"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Upper bound on the window count a single batch may declare. Real weeks
/// are 672 fifteen-minute windows; anything near `u32::MAX` is a forged
/// length, and rejecting it here keeps a corrupt-but-CRC-colliding record
/// from asking for a multi-GiB allocation.
pub const MAX_BATCH_WINDOWS: u32 = 1 << 20;

/// A little-endian cursor over an immutable byte buffer.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading `buf` from the beginning.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read an `f64` stored as its little-endian bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read `n` raw bytes (opaque nested payloads, e.g. sketch images).
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Fail unless every byte has been consumed.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes)
        }
    }
}

/// Append a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` as its little-endian bit pattern.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

impl WindowBatch {
    /// Serialise into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.host);
        put_u64(out, self.seq);
        out.push(match self.week {
            Week::Train => 0,
            Week::Test => 1,
        });
        out.push(u8::from(self.poison));
        put_u32(out, self.start);
        put_u32(out, self.counts.len() as u32);
        for &c in &self.counts {
            put_u64(out, c);
        }
    }

    /// Deserialise from exactly `buf` (trailing bytes are an error).
    pub fn decode(buf: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(buf);
        let host = r.u32()?;
        let seq = r.u64()?;
        let week = match r.u8()? {
            0 => Week::Train,
            1 => Week::Test,
            _ => return Err(CodecError::BadDiscriminant),
        };
        let poison = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(CodecError::BadDiscriminant),
        };
        let start = r.u32()?;
        let n = r.u32()?;
        if n > MAX_BATCH_WINDOWS {
            return Err(CodecError::ImplausibleLength);
        }
        let mut counts = Vec::with_capacity(n as usize);
        for _ in 0..n {
            counts.push(r.u64()?);
        }
        r.finish()?;
        Ok(Self {
            host,
            seq,
            week,
            start,
            counts,
            poison,
        })
    }
}

/// IEEE CRC-32 (the pcap/zip polynomial), table-driven, table built at
/// compile time.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WindowBatch {
        WindowBatch {
            host: 42,
            seq: 7,
            week: Week::Test,
            start: 96,
            counts: vec![0, 3, 1_000_000, u64::MAX],
            poison: false,
        }
    }

    #[test]
    fn batch_roundtrips() {
        let b = sample();
        let mut buf = Vec::new();
        b.encode(&mut buf);
        assert_eq!(WindowBatch::decode(&buf).unwrap(), b);
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let b = sample();
        let mut buf = Vec::new();
        b.encode(&mut buf);
        for cut in 0..buf.len() {
            assert!(
                WindowBatch::decode(&buf[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = Vec::new();
        sample().encode(&mut buf);
        buf.push(0);
        assert_eq!(WindowBatch::decode(&buf), Err(CodecError::TrailingBytes));
    }

    #[test]
    fn forged_length_rejected_without_allocation() {
        let mut buf = Vec::new();
        WindowBatch {
            counts: vec![],
            ..sample()
        }
        .encode(&mut buf);
        // Forge the count field (last 4 bytes of the empty-counts layout).
        let len_off = buf.len() - 4;
        buf[len_off..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            WindowBatch::decode(&buf),
            Err(CodecError::ImplausibleLength)
        );
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn units_counts_windows() {
        use itconsole::Payload;
        assert_eq!(sample().units(), 4);
    }
}
