//! Bounded per-shard ingest queues with watermark backpressure.
//!
//! Overload protection is two-layered and entirely deterministic:
//!
//! * **Backpressure** — each queue carries a high/low watermark pair with
//!   hysteresis. Filling to the high watermark latches the queue *busy*;
//!   it stays busy until draining to the low watermark. A well-behaved
//!   source ([`itconsole::DeliveryQueue`] in the harness) stops sending to
//!   a busy shard, which bounds queue memory at the high watermark.
//! * **Load shedding** — a batch that sits queued longer than `shed_after`
//!   virtual ticks is dropped *at dequeue* with an accounted
//!   `ShedOverload` completion. Stale work is worth less than fresh work
//!   in an alarm pipeline, and shedding it deterministically (by queue
//!   order and age, never by wall clock) keeps overloaded runs exactly
//!   reproducible.
//!
//! The hard `capacity` backstop only matters for sources that ignore
//! backpressure; admission then fails outright with [`Admit::Overflow`].

use std::collections::VecDeque;

use crate::codec::WindowBatch;

/// Queue sizing and shedding parameters.
#[derive(Debug, Clone, Copy)]
pub struct QueueConfig {
    /// Hard bound on queued batches; admissions beyond it overflow.
    pub capacity: usize,
    /// Busy latch sets at this depth (backpressure asserted).
    pub high: usize,
    /// Busy latch clears at this depth.
    pub low: usize,
    /// Batches older than this many ticks are shed at dequeue.
    pub shed_after: u64,
    /// Batches each running worker may process per tick.
    pub quantum: usize,
}

impl Default for QueueConfig {
    fn default() -> Self {
        Self {
            capacity: 256,
            high: 192,
            low: 64,
            shed_after: 64,
            quantum: 4,
        }
    }
}

/// Admission verdict for one offered batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// Queued; shard below its high watermark.
    Queued,
    /// Queued, but the shard is (now) busy — stop sending until it
    /// drains. The batch itself was accepted.
    Backpressure,
    /// Hard capacity hit; the batch was NOT accepted.
    Overflow,
}

/// One shard's bounded FIFO of pending batches.
#[derive(Debug)]
pub struct ShardQueue {
    cfg: QueueConfig,
    items: VecDeque<(u64, WindowBatch)>,
    busy: bool,
    /// Deepest the queue has ever been (for the memory-bound assertion).
    pub max_depth: usize,
}

impl ShardQueue {
    /// An empty queue with the given sizing.
    pub fn new(cfg: QueueConfig) -> Self {
        Self {
            cfg,
            items: VecDeque::new(),
            busy: false,
            max_depth: 0,
        }
    }

    /// Pending batches.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the busy latch is set (source should pause).
    pub fn busy(&self) -> bool {
        self.busy
    }

    /// Offer a batch at virtual time `tick`.
    pub fn offer(&mut self, tick: u64, batch: WindowBatch) -> Admit {
        if self.items.len() >= self.cfg.capacity {
            return Admit::Overflow;
        }
        self.items.push_back((tick, batch));
        self.max_depth = self.max_depth.max(self.items.len());
        if self.items.len() >= self.cfg.high {
            self.busy = true;
        }
        if self.busy {
            Admit::Backpressure
        } else {
            Admit::Queued
        }
    }

    /// Pop the oldest batch, classifying it as fresh or stale. Clears the
    /// busy latch when the drain reaches the low watermark.
    pub fn pop(&mut self, tick: u64) -> Option<Popped> {
        let (enq, batch) = self.items.pop_front()?;
        if self.items.len() <= self.cfg.low {
            self.busy = false;
        }
        let age = tick.saturating_sub(enq);
        if age > self.cfg.shed_after {
            Some(Popped::Stale(batch))
        } else {
            Some(Popped::Fresh(enq, batch))
        }
    }

    /// Push a batch back to the front (retry after a worker panic),
    /// preserving its original enqueue tick so its shed deadline still
    /// stands.
    pub fn push_front(&mut self, enq: u64, batch: WindowBatch) {
        self.items.push_front((enq, batch));
        self.max_depth = self.max_depth.max(self.items.len());
        if self.items.len() >= self.cfg.high {
            self.busy = true;
        }
    }

    /// Take every pending batch (a shard going dark sheds its queue).
    pub fn drain_all(&mut self) -> Vec<WindowBatch> {
        self.busy = false;
        self.items.drain(..).map(|(_, b)| b).collect()
    }
}

/// What [`ShardQueue::pop`] handed back.
#[derive(Debug)]
pub enum Popped {
    /// Within the freshness deadline; apply it. Carries the enqueue tick
    /// for potential re-queue on panic.
    Fresh(u64, WindowBatch),
    /// Past the shed deadline; account it as shed, do not apply.
    Stale(WindowBatch),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Week;

    fn cfg() -> QueueConfig {
        QueueConfig {
            capacity: 8,
            high: 5,
            low: 2,
            shed_after: 10,
            quantum: 4,
        }
    }

    fn batch(seq: u64) -> WindowBatch {
        WindowBatch {
            host: 1,
            seq,
            week: Week::Train,
            start: 0,
            counts: vec![seq],
            poison: false,
        }
    }

    #[test]
    fn watermark_hysteresis_latches_and_clears() {
        let mut q = ShardQueue::new(cfg());
        for seq in 1..=4 {
            assert_eq!(q.offer(0, batch(seq)), Admit::Queued);
        }
        // Fifth admission reaches the high watermark.
        assert_eq!(q.offer(0, batch(5)), Admit::Backpressure);
        assert!(q.busy());
        // Still busy below high but above low.
        q.pop(0);
        q.pop(0);
        assert!(q.busy());
        // Draining to low clears the latch.
        q.pop(0);
        assert!(!q.busy());
        assert_eq!(q.offer(0, batch(6)), Admit::Queued);
    }

    #[test]
    fn overflow_rejects_without_enqueueing() {
        let mut q = ShardQueue::new(cfg());
        for seq in 1..=8 {
            assert_ne!(q.offer(0, batch(seq)), Admit::Overflow);
        }
        assert_eq!(q.offer(0, batch(9)), Admit::Overflow);
        assert_eq!(q.len(), 8);
        assert_eq!(q.max_depth, 8);
    }

    #[test]
    fn stale_batches_are_classified_at_pop() {
        let mut q = ShardQueue::new(cfg());
        q.offer(0, batch(1));
        q.offer(5, batch(2));
        // tick 11: batch 1 is 11 ticks old (> 10, stale), batch 2 is 6
        // ticks old (fresh).
        match q.pop(11) {
            Some(Popped::Stale(b)) => assert_eq!(b.seq, 1),
            other => panic!("expected stale, got {other:?}"),
        }
        match q.pop(11) {
            Some(Popped::Fresh(enq, b)) => {
                assert_eq!(enq, 5);
                assert_eq!(b.seq, 2);
            }
            other => panic!("expected fresh, got {other:?}"),
        }
    }

    #[test]
    fn push_front_preserves_shed_deadline() {
        let mut q = ShardQueue::new(cfg());
        q.offer(0, batch(1));
        match q.pop(3) {
            Some(Popped::Fresh(enq, b)) => q.push_front(enq, b),
            other => panic!("expected fresh, got {other:?}"),
        }
        // Original enqueue tick 0 still governs: stale at tick 11.
        match q.pop(11) {
            Some(Popped::Stale(b)) => assert_eq!(b.seq, 1),
            other => panic!("expected stale, got {other:?}"),
        }
    }

    #[test]
    fn drain_all_empties_and_unlatches() {
        let mut q = ShardQueue::new(cfg());
        for seq in 1..=6 {
            q.offer(0, batch(seq));
        }
        assert!(q.busy());
        let drained = q.drain_all();
        assert_eq!(drained.len(), 6);
        assert!(q.is_empty());
        assert!(!q.busy());
    }
}
