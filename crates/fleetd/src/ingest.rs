//! Wire-facing telemetry ingest plane: syslog/CEF and DNS datagrams in,
//! [`WindowBatch`] stream out.
//!
//! Everything upstream of the daemon so far has been synthetic: the
//! experiments build `WindowBatch` values in memory and offer them
//! directly. A deployed collector instead listens on UDP and receives
//! whatever the fleet — and whoever is squatting on the fleet's network —
//! chooses to send: RFC 5424 syslog envelopes carrying CEF alert events,
//! RFC 1035 DNS queries for the distinct-contacts feature, and arbitrary
//! hostile bytes. This module is that front-end, hardened end to end:
//!
//! * **Total-function parsing.** Every byte sequence maps to either a
//!   decoded value or a [`DecodeError`] tagged with the layer that
//!   rejected it ([`Layer::Syslog`], [`Layer::Cef`], [`Layer::Dns`]).
//!   There is no `unwrap`/`panic!` on input-derived data; the crate-level
//!   clippy gate (`-D clippy::unwrap_used -D clippy::panic`) enforces it.
//! * **Sanitization before interpretation.** Control bytes and ANSI
//!   escape sequences are stripped and the datagram is length-bounded
//!   *before* any field is examined, so log-viewer escape injection and
//!   pathological field lengths die at the boundary. [`sanitize`] is
//!   idempotent — sanitizing sanitized text is the identity.
//! * **Per-source flood control.** A deterministic integer token bucket
//!   per source sheds over-rate datagrams *with accounting*: the
//!   conservation law `received = accepted + shed + malformed` is
//!   checkable at any time via [`IngestStats::conservation_holds`], and a
//!   source that sheds past a threshold latches a flood flag plus an
//!   audit event. Shed batches mean missing windows, which the existing
//!   `hids_core::degraded` coverage accounting turns into
//!   `LowCoverage`/`Dark` verdicts — nothing disappears silently.
//! * **Determinism.** Given the same (tick, source, payload) sequence the
//!   ingest plane makes byte-identical decisions; at severity zero the
//!   accepted batch stream is exactly the encoded stream, so the hosts
//!   CSV downstream is byte-identical to the synthetic-batch path.

use std::collections::{BTreeMap, BTreeSet};

use hids_metrics::{EventRing, Registry};
use netpkt::dns::DNS_HEADER_LEN;
use netpkt::{fold_name, swar, DecodeError, DnsHeader, DnsQuestion, Layer};

use std::borrow::Cow;

use crate::codec::{Week, WindowBatch, MAX_BATCH_WINDOWS};

/// Which listener a datagram arrived on.
///
/// A real collector binds two sockets — syslog/CEF on 514, DNS telemetry
/// on a mirror of port 53 — and the socket a datagram arrives on decides
/// which parser sees it. The simulation carries the same distinction as
/// an explicit lane tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// RFC 5424 syslog envelope carrying a CEF window-batch event.
    Syslog,
    /// RFC 1035 DNS message feeding the distinct-contacts feature.
    Dns,
}

impl Lane {
    /// Stable lower-case label used in metrics.
    pub fn name(self) -> &'static str {
        match self {
            Lane::Syslog => "syslog",
            Lane::Dns => "dns",
        }
    }

    fn index(self) -> usize {
        match self {
            Lane::Syslog => 0,
            Lane::Dns => 1,
        }
    }
}

/// Tuning for the ingest plane. All knobs are deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestConfig {
    /// Token-bucket refill per source per tick. `0` disables rate
    /// limiting entirely (every datagram is admitted to the parser).
    pub rate_per_tick: u64,
    /// Token-bucket capacity per source; also the initial fill. Ignored
    /// when `rate_per_tick` is zero.
    pub burst: u64,
    /// Once a single source has shed this many datagrams its flood flag
    /// latches and an `ingest/flood_latched` event is recorded. `0`
    /// latches on the first shed.
    pub flood_latch_after: u64,
    /// Datagrams longer than this are truncated by [`sanitize`] before
    /// parsing (characters, post-strip).
    pub max_datagram_len: usize,
    /// Syslog header fields / CEF header fields and extension keys
    /// longer than this are rejected with `BadLength` rather than
    /// truncated.
    pub max_field_len: usize,
    /// CEF extension *values* longer than this are rejected with
    /// `BadLength`. Separate from `max_field_len` because the `counts`
    /// value legitimately carries a whole batch of numbers.
    pub max_value_len: usize,
    /// More CEF `key=value` extensions than this is a `BadLength`.
    pub max_extensions: usize,
    /// DNS lane: ticks per feature window when bucketing distinct
    /// contacts. Must be ≥ 1 (0 is treated as 1).
    pub ticks_per_window: u64,
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            rate_per_tick: 16,
            burst: 64,
            flood_latch_after: 32,
            max_datagram_len: 8192,
            max_field_len: 256,
            max_value_len: 4096,
            max_extensions: 64,
            ticks_per_window: 1,
        }
    }
}

/// What became of one datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestOutcome {
    /// Syslog lane: a well-formed window batch, ready for the daemon.
    Batch(WindowBatch),
    /// DNS lane: a query for `name` (case-folded) landed in feature
    /// window `window`; `novel` is true the first time this source
    /// queries this name within that window.
    Dns {
        /// Feature window index (`tick / ticks_per_window`).
        window: u32,
        /// Queried name after [`fold_name`].
        name: String,
        /// First sighting of this (source, window, name) triple.
        novel: bool,
    },
    /// Rate limiter dropped the datagram before parsing.
    Shed,
    /// The parser rejected the datagram; the layer says where.
    Malformed(DecodeError),
}

/// Per-lane disposition counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Datagrams offered on this lane.
    pub received: u64,
    /// Datagrams that decoded to a usable value.
    pub accepted: u64,
    /// Datagrams dropped by the rate limiter.
    pub shed: u64,
    /// Datagrams rejected by a parser.
    pub malformed: u64,
}

/// Ingest-plane counters. The conservation law over every datagram —
/// `received = accepted + shed + malformed` — is the load-bearing
/// invariant: a datagram may be dropped, but never unaccounted for.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Total datagrams offered.
    pub received: u64,
    /// Datagrams that decoded to a usable value.
    pub accepted: u64,
    /// Datagrams dropped by the rate limiter (still accounted).
    pub shed: u64,
    /// Datagrams rejected by a parser.
    pub malformed: u64,
    /// Per-lane breakdown (`[syslog, dns]`).
    pub lanes: [LaneStats; 2],
    /// Malformed datagrams by rejecting layer (dense by [`Layer::index`]).
    pub malformed_by_layer: [u64; Layer::ALL.len()],
    /// DNS queries accepted.
    pub dns_queries: u64,
    /// DNS queries that were the first sighting of their
    /// (source, window, name) triple.
    pub dns_novel: u64,
    /// Sources whose flood flag has latched.
    pub flood_latched: u64,
}

impl IngestStats {
    /// The ingest conservation law: every received datagram is accepted,
    /// shed, or malformed — nothing vanishes.
    pub fn conservation_holds(&self) -> bool {
        self.received == self.accepted + self.shed + self.malformed
            && self
                .lanes
                .iter()
                .all(|l| l.received == l.accepted + l.shed + l.malformed)
    }

    /// Malformed count for one layer.
    pub fn malformed_at(&self, layer: Layer) -> u64 {
        self.malformed_by_layer[layer.index()]
    }
}

/// Deterministic per-source token-bucket state.
#[derive(Debug, Clone, Copy)]
struct SourceState {
    tokens: u64,
    last_tick: u64,
    shed: u64,
    latched: bool,
}

/// The ingest plane: feed datagrams in via [`Ingestor::ingest`], collect
/// accepted [`WindowBatch`]es from the outcomes, and read DNS
/// distinct-contact windows back out via [`Ingestor::dns_window_batch`].
#[derive(Debug)]
pub struct Ingestor {
    config: IngestConfig,
    sources: BTreeMap<u32, SourceState>,
    /// source → window → distinct folded names seen.
    dns: BTreeMap<u32, BTreeMap<u32, BTreeSet<String>>>,
    stats: IngestStats,
    events: EventRing,
}

impl Ingestor {
    /// Create an ingest plane with the given tuning.
    pub fn new(config: IngestConfig) -> Self {
        Self {
            config,
            sources: BTreeMap::new(),
            dns: BTreeMap::new(),
            stats: IngestStats::default(),
            events: EventRing::new(256),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// The configuration this plane was built with.
    pub fn config(&self) -> IngestConfig {
        self.config
    }

    /// Audit events (flood latches) recorded so far.
    pub fn events(&self) -> &EventRing {
        &self.events
    }

    /// True if `source` has latched its flood flag.
    pub fn is_flood_latched(&self, source: u32) -> bool {
        self.sources.get(&source).is_some_and(|s| s.latched)
    }

    /// Offer one datagram that arrived at virtual time `tick` from
    /// transport-identified `source` on `lane`.
    ///
    /// The source id comes from the transport (socket address), not from
    /// datagram content — flood control must not trust bytes the flooder
    /// controls. Ticks may arrive out of order per source; a tick earlier
    /// than the source's last simply earns no refill.
    pub fn ingest(&mut self, tick: u64, source: u32, lane: Lane, payload: &[u8]) -> IngestOutcome {
        self.stats.received += 1;
        self.stats.lanes[lane.index()].received += 1;
        if !self.admit(tick, source) {
            self.stats.shed += 1;
            self.stats.lanes[lane.index()].shed += 1;
            return IngestOutcome::Shed;
        }
        let outcome = match lane {
            Lane::Syslog => decode_batch_datagram(payload, &self.config).map(IngestOutcome::Batch),
            Lane::Dns => self.ingest_dns(tick, source, payload),
        };
        match outcome {
            Ok(o) => {
                self.stats.accepted += 1;
                self.stats.lanes[lane.index()].accepted += 1;
                o
            }
            Err(e) => {
                self.stats.malformed += 1;
                self.stats.lanes[lane.index()].malformed += 1;
                self.stats.malformed_by_layer[e.layer.index()] += 1;
                IngestOutcome::Malformed(e)
            }
        }
    }

    /// Token-bucket admission for one datagram. Deterministic: integer
    /// arithmetic only, refill `rate × Δtick` capped at `burst`.
    fn admit(&mut self, tick: u64, source: u32) -> bool {
        if self.config.rate_per_tick == 0 {
            return true;
        }
        let state = self.sources.entry(source).or_insert(SourceState {
            tokens: self.config.burst,
            last_tick: tick,
            shed: 0,
            latched: false,
        });
        let dt = tick.saturating_sub(state.last_tick);
        state.tokens = state
            .tokens
            .saturating_add(self.config.rate_per_tick.saturating_mul(dt))
            .min(self.config.burst);
        state.last_tick = state.last_tick.max(tick);
        if state.tokens >= 1 {
            state.tokens -= 1;
            return true;
        }
        state.shed += 1;
        if !state.latched && state.shed > self.config.flood_latch_after {
            state.latched = true;
            self.stats.flood_latched += 1;
            self.events.push(
                "ingest",
                "flood_latched",
                &[
                    ("source", &source.to_string()),
                    ("tick", &tick.to_string()),
                    ("shed", &state.shed.to_string()),
                ],
            );
        }
        false
    }

    fn ingest_dns(
        &mut self,
        tick: u64,
        source: u32,
        payload: &[u8],
    ) -> Result<IngestOutcome, DecodeError> {
        let header = DnsHeader::parse(payload).map_err(|e| e.at(Layer::Dns))?;
        if header.qdcount == 0 {
            return Err(netpkt::Error::Malformed.at(Layer::Dns));
        }
        let (question, _) =
            DnsQuestion::parse(payload, DNS_HEADER_LEN).map_err(|e| e.at(Layer::Dns))?;
        let name = fold_name(&question.name);
        let ticks_per_window = self.config.ticks_per_window.max(1);
        let window = u32::try_from(tick / ticks_per_window).unwrap_or(u32::MAX);
        let novel = self
            .dns
            .entry(source)
            .or_default()
            .entry(window)
            .or_default()
            .insert(name.clone());
        self.stats.dns_queries += 1;
        if novel {
            self.stats.dns_novel += 1;
        }
        Ok(IngestOutcome::Dns {
            window,
            name,
            novel,
        })
    }

    /// Distinct-contact counts for one source, as `(window, count)` pairs
    /// in window order.
    pub fn dns_distinct(&self, source: u32) -> Vec<(u32, u64)> {
        self.dns
            .get(&source)
            .map(|windows| {
                windows
                    .iter()
                    .map(|(&w, names)| (w, names.len() as u64))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Package one source's DNS distinct-contact windows as a
    /// [`WindowBatch`] (dense from window 0 through the last observed
    /// window; windows with no queries count zero). Returns `None` if the
    /// source has no accepted DNS traffic.
    pub fn dns_window_batch(&self, source: u32, seq: u64, week: Week) -> Option<WindowBatch> {
        let windows = self.dns.get(&source)?;
        let (&last, _) = windows.iter().next_back()?;
        let mut counts = vec![0u64; last as usize + 1];
        for (&w, names) in windows {
            if let Some(slot) = counts.get_mut(w as usize) {
                *slot = names.len() as u64;
            }
        }
        Some(WindowBatch {
            host: source,
            seq,
            week,
            start: 0,
            counts,
            poison: false,
        })
    }

    /// Export `ingest_*` metric families and audit events into `registry`.
    pub fn export_metrics(&self, registry: &mut Registry) {
        registry.register_counter(
            "ingest_datagrams_total",
            "Datagrams offered to the ingest plane by lane and disposition",
        );
        for lane in [Lane::Syslog, Lane::Dns] {
            let l = self.stats.lanes[lane.index()];
            for (disposition, value) in [
                ("accepted", l.accepted),
                ("shed", l.shed),
                ("malformed", l.malformed),
            ] {
                registry.counter_add(
                    "ingest_datagrams_total",
                    &[("lane", lane.name()), ("disposition", disposition)],
                    value,
                );
            }
        }
        registry.register_counter(
            "ingest_malformed_total",
            "Parser-rejected datagrams by the layer that rejected them",
        );
        for layer in Layer::ALL {
            let v = self.stats.malformed_by_layer[layer.index()];
            if v > 0 {
                registry.counter_add("ingest_malformed_total", &[("layer", layer.name())], v);
            }
        }
        registry.register_gauge(
            "ingest_sources",
            "Sources seen by the rate limiter, by flood state",
        );
        let latched = self.sources.values().filter(|s| s.latched).count() as i64;
        registry.gauge_set(
            "ingest_sources",
            &[("state", "active")],
            self.sources.len() as i64 - latched,
        );
        registry.gauge_set("ingest_sources", &[("state", "latched")], latched);
        registry.register_counter(
            "ingest_dns_names_total",
            "Accepted DNS queries, total and first-sighting-per-window",
        );
        registry.counter_add(
            "ingest_dns_names_total",
            &[("kind", "queries")],
            self.stats.dns_queries,
        );
        registry.counter_add(
            "ingest_dns_names_total",
            &[("kind", "novel")],
            self.stats.dns_novel,
        );
        registry.merge_events(&self.events);
    }
}

// ---------------------------------------------------------------------------
// Sanitization
// ---------------------------------------------------------------------------

/// Strip control bytes and ANSI escape sequences, then bound the length.
///
/// Telemetry fields end up in terminals, log viewers and CSV reports;
/// a hostile agent that embeds `ESC [ 2 J` or a NUL can corrupt every one
/// of those surfaces. This strips all Unicode control characters (which
/// covers NUL, 0x01–0x1F, DEL and C1), swallows whole CSI sequences
/// (`ESC [ … final-byte`) and whole OSC sequences (`ESC ] … BEL`/`ST`)
/// rather than leaving their parameter bytes behind, and truncates to
/// `max_len` characters. A bare or truncated `ESC` is dropped alone and
/// the byte after it is re-examined normally.
///
/// Idempotent: `sanitize(&sanitize(s, n), n) == sanitize(s, n)` for all
/// inputs — the output contains nothing left to strip and is already
/// within bounds.
///
/// Scan-first fast path: well-formed telemetry — the overwhelmingly
/// common case — contains nothing to strip, so the input is checked
/// before anything is copied and clean text is returned borrowed
/// ([`Cow::Borrowed`]), allocation-free. Only dirty input pays for the
/// rebuild. Both the identity scan and the rebuild classify bytes a
/// machine word at a time ([`netpkt::swar`]); the per-character scalar
/// implementation is retained in [`oracle`] and the pair is held
/// byte-identical — including the `Cow` borrow/own decision — by
/// differential proptests here and in `tests/ingest.rs`.
pub fn sanitize(input: &str, max_len: usize) -> Cow<'_, str> {
    if sanitize_is_identity(input, max_len) {
        return Cow::Borrowed(input);
    }
    Cow::Owned(sanitize_rebuild(input, max_len))
}

/// Would [`sanitize`] return `input` unchanged? True iff the input holds
/// no Unicode control character (Cc: NUL–0x1F, DEL, C1 — which covers
/// the ESC opening any ANSI sequence) and is within `max_len` chars.
///
/// One SWAR pass: scan for C0/DEL/`0xC2` bytes (`0xC2` is the only lead
/// byte that can open a C1 control in UTF-8), then bound the length —
/// char count can only be needed when the byte count exceeds `max_len`.
fn sanitize_is_identity(input: &str, max_len: usize) -> bool {
    let bytes = input.as_bytes();
    let mut i = 0usize;
    while let Some(off) = swar::find_c0_del_or_c1_lead(&bytes[i..]) {
        let p = i + off;
        if bytes[p] != 0xc2 {
            return false; // C0 control or DEL
        }
        // Valid UTF-8 guarantees a continuation byte after a C2 lead;
        // continuations 0x80..=0x9F are the C1 controls.
        match bytes.get(p + 1) {
            Some(&next) if next >= 0xa0 => i = p + 2,
            _ => return false,
        }
    }
    bytes.len() <= max_len || swar::count_utf8_chars(bytes) <= max_len
}

/// The dirty-path rebuild behind [`sanitize`]: copy maximal printable-
/// ASCII runs in bulk, falling back to per-character work only at the
/// bytes that need it (controls, escape sequences, non-ASCII).
///
/// Accumulates raw bytes and validates once at the end — every byte
/// appended is either printable ASCII or a whole `char` encoding, so
/// the final UTF-8 check is a formality (the lossy fallback only keeps
/// the function total), and the hot loop skips the per-slice char
/// boundary checks that `&str` pushes would repeat on every segment.
fn sanitize_rebuild(input: &str, max_len: usize) -> String {
    let finish = |out: Vec<u8>| {
        String::from_utf8(out)
            .unwrap_or_else(|e| String::from_utf8_lossy(&e.into_bytes()).into_owned())
    };
    let bytes = input.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(input.len().min(max_len.saturating_mul(4)));
    let mut kept = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        // Bulk-copy the maximal printable-ASCII run starting at `i`
        // (within a run, one byte is one char, so the length bound is a
        // byte bound).
        let run = swar::find_non_printable(&bytes[i..]).unwrap_or(bytes.len() - i);
        if run > 0 {
            let take = run.min(max_len - kept);
            out.extend_from_slice(&bytes[i..i + take]);
            kept += take;
            if kept == max_len {
                // Nothing past the bound can reach the output.
                return finish(out);
            }
            i += run;
            continue;
        }
        let b = bytes[i];
        if b == 0x1b {
            i = match bytes.get(i + 1) {
                // CSI: ESC '[' parameter/intermediate bytes, swallowed
                // through the final byte in 0x40–0x7E (to end of input
                // if truncated).
                Some(b'[') => match swar::find_ascii_range(&bytes[i + 2..], 0x40, 0x7e) {
                    Some(f) => i + 2 + f + 1,
                    None => bytes.len(),
                },
                // OSC: ESC ']' payload, swallowed through BEL or ST
                // (ESC '\'); a bare ESC inside the payload terminates
                // the OSC and is re-examined as a fresh escape.
                Some(b']') => match swar::find_byte2(&bytes[i + 2..], 0x07, 0x1b) {
                    None => bytes.len(),
                    Some(off) => {
                        let t = i + 2 + off;
                        if bytes[t] == 0x07 {
                            t + 1
                        } else {
                            match bytes.get(t + 1) {
                                Some(b'\\') => t + 2, // ST consumed
                                _ => t,               // re-examine the ESC
                            }
                        }
                    }
                },
                // Bare or truncated ESC: drop it alone.
                _ => i + 1,
            };
            continue;
        }
        if b < 0x20 || b == 0x7f {
            i += 1; // C0 control or DEL: dropped
            continue;
        }
        // Non-ASCII: decode one char to separate C1 controls (dropped)
        // from printable text (kept). `i` is always a char boundary; the
        // else branch is unreachable and only keeps the loop total.
        let Some(c) = input[i..].chars().next() else {
            break;
        };
        if !c.is_control() {
            if kept >= max_len {
                break;
            }
            let mut buf = [0u8; 4];
            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
            kept += 1;
        }
        i += c.len_utf8();
    }
    finish(out)
}

// ---------------------------------------------------------------------------
// Syslog (RFC 5424) envelope
// ---------------------------------------------------------------------------

/// A decoded RFC 5424 envelope (header fields opaque, message extracted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyslogMsg {
    /// Priority value (facility × 8 + severity), 0–191.
    pub pri: u16,
    /// HOSTNAME field (sanitized, opaque).
    pub hostname: String,
    /// APP-NAME field (sanitized, opaque).
    pub app: String,
    /// The free-form MSG part — for the batch lane, a CEF event.
    pub msg: String,
}

fn syslog_err(kind: netpkt::Error) -> DecodeError {
    kind.at(Layer::Syslog)
}

fn next_field(rest: &str, max_field_len: usize) -> Result<(&str, &str), DecodeError> {
    // SWAR split on the next space; the delimiter is ASCII, so the byte
    // index is a char boundary.
    let sp = swar::find_byte(rest.as_bytes(), b' ').ok_or(syslog_err(netpkt::Error::Truncated {
        needed: 1,
        got: 0,
    }))?;
    let field = &rest[..sp];
    if field.is_empty() {
        return Err(syslog_err(netpkt::Error::Malformed));
    }
    if field.len() > max_field_len {
        return Err(syslog_err(netpkt::Error::BadLength));
    }
    Ok((field, &rest[sp + 1..]))
}

/// Parse a sanitized RFC 5424 syslog line: `<PRI>1 TIMESTAMP HOSTNAME
/// APP-NAME PROCID MSGID STRUCTURED-DATA MSG`.
///
/// Header fields other than PRI and VERSION are treated as opaque tokens
/// (bounded by `max_field_len`); STRUCTURED-DATA is accepted either as
/// the nil token `-` or a bracketed block with `\]` escapes. Total
/// function: any input is either a [`SyslogMsg`] or a
/// [`DecodeError`] at [`Layer::Syslog`].
pub fn parse_syslog(line: &str, max_field_len: usize) -> Result<SyslogMsg, DecodeError> {
    let (pri, hostname, app, msg) = parse_syslog_ref(line, max_field_len)?;
    Ok(SyslogMsg {
        pri,
        hostname: hostname.to_string(),
        app: app.to_string(),
        msg: msg.to_string(),
    })
}

/// Borrowed core of [`parse_syslog`]: `(pri, hostname, app, msg)` as
/// slices of `line`. The decode hot path uses this directly so the MSG
/// part — the entire CEF event — is never copied.
fn parse_syslog_ref(
    line: &str,
    max_field_len: usize,
) -> Result<(u16, &str, &str, &str), DecodeError> {
    let rest = line
        .strip_prefix('<')
        .ok_or(syslog_err(netpkt::Error::Malformed))?;
    let (pri_str, rest) = rest
        .split_once('>')
        .ok_or(syslog_err(netpkt::Error::Malformed))?;
    if pri_str.is_empty()
        || pri_str.len() > 3
        || !pri_str.bytes().all(|b| b.is_ascii_digit())
        || (pri_str.len() > 1 && pri_str.starts_with('0'))
    {
        return Err(syslog_err(netpkt::Error::Malformed));
    }
    let pri: u16 = pri_str
        .parse()
        .map_err(|_| syslog_err(netpkt::Error::Malformed))?;
    if pri > 191 {
        return Err(syslog_err(netpkt::Error::Malformed));
    }
    let (version, rest) = next_field(rest, max_field_len)?;
    if version != "1" {
        return Err(syslog_err(netpkt::Error::Unsupported));
    }
    let (_timestamp, rest) = next_field(rest, max_field_len)?;
    let (hostname, rest) = next_field(rest, max_field_len)?;
    let (app, rest) = next_field(rest, max_field_len)?;
    let (_procid, rest) = next_field(rest, max_field_len)?;
    let (_msgid, rest) = next_field(rest, max_field_len)?;
    let msg = skip_structured_data(rest)?;
    Ok((pri, hostname, app, msg))
}

/// Consume the STRUCTURED-DATA element and return the MSG that follows.
fn skip_structured_data(rest: &str) -> Result<&str, DecodeError> {
    if let Some(msg) = rest.strip_prefix("- ") {
        return Ok(msg);
    }
    if rest == "-" {
        return Ok("");
    }
    if !rest.starts_with('[') {
        return Err(syslog_err(netpkt::Error::Malformed));
    }
    // One or more [..] blocks; ']' may be escaped as '\]' inside.
    let mut chars = rest.char_indices();
    let mut depth_open = false;
    let mut esc = false;
    let mut end = None;
    for (i, c) in chars.by_ref() {
        if esc {
            esc = false;
            continue;
        }
        match c {
            '\\' => esc = true,
            '[' if !depth_open => depth_open = true,
            ']' if depth_open => {
                depth_open = false;
                end = Some(i);
            }
            ' ' if !depth_open => {
                // first space after the final ']' — MSG starts past it
                return match end {
                    Some(_) => Ok(rest.get(i + 1..).unwrap_or("")),
                    None => Err(syslog_err(netpkt::Error::Malformed)),
                };
            }
            _ => {}
        }
    }
    // Structured data ran to end of line: legal, empty MSG.
    if depth_open || end.is_none() {
        return Err(syslog_err(netpkt::Error::Malformed));
    }
    Ok("")
}

// ---------------------------------------------------------------------------
// CEF event
// ---------------------------------------------------------------------------

/// A decoded CEF event: seven header fields plus `key=value` extensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CefEvent {
    /// CEF format version (only 0 and 1 are accepted).
    pub version: u8,
    /// Device vendor (unescaped).
    pub vendor: String,
    /// Device product (unescaped).
    pub product: String,
    /// Device version (unescaped).
    pub device_version: String,
    /// Signature id (unescaped).
    pub sig_id: String,
    /// Human-readable event name (unescaped).
    pub name: String,
    /// Severity field (opaque).
    pub severity: String,
    /// Extension key/value pairs, in wire order, unescaped.
    pub extensions: Vec<(String, String)>,
}

fn cef_err(kind: netpkt::Error) -> DecodeError {
    kind.at(Layer::Cef)
}

/// Split the 7 `|`-separated CEF header fields (honoring `\|` and `\\`)
/// and return them plus the raw extension string.
///
/// SWAR scan: jump from one `\`/`|` to the next a word at a time and
/// bulk-copy everything between. Escape and delimiter bytes are ASCII,
/// so every reported index is a char boundary.
fn split_cef_header(rest: &str) -> Result<(Vec<String>, &str), DecodeError> {
    let bytes = rest.as_bytes();
    let mut fields = Vec::with_capacity(7);
    let mut cur = String::new();
    let mut seg = 0usize; // start of the pending clean segment
    let mut i = 0usize;
    while let Some(off) = swar::find_byte2(&bytes[i..], b'\\', b'|') {
        let p = i + off;
        if bytes[p] == b'|' {
            if cur.is_empty() {
                fields.push(rest[seg..p].to_string());
            } else {
                cur.push_str(&rest[seg..p]);
                fields.push(std::mem::take(&mut cur));
            }
            if fields.len() == 7 {
                return Ok((fields, rest.get(p + 1..).unwrap_or("")));
            }
            i = p + 1;
        } else {
            // Escape: the char after the backslash is taken verbatim.
            cur.push_str(&rest[seg..p]);
            match rest[p + 1..].chars().next() {
                Some(c) => {
                    cur.push(c);
                    i = p + 1 + c.len_utf8();
                }
                // Trailing lone backslash: the scan ends mid-field, same
                // as the scalar loop running out of input with esc set.
                None => i = bytes.len(),
            }
        }
        seg = i;
    }
    Err(cef_err(netpkt::Error::Truncated {
        needed: 7,
        got: fields.len(),
    }))
}

/// Unescape a CEF extension value: `\\` → `\`, `\=` → `=`. A trailing
/// lone backslash is malformed.
///
/// Zero-copy fast path: a value with no backslash — every value the
/// honest encoder emits for the batch lane — is returned borrowed.
fn unescape_ext(s: &str) -> Result<Cow<'_, str>, DecodeError> {
    let bytes = s.as_bytes();
    let Some(first) = swar::find_byte(bytes, b'\\') else {
        return Ok(Cow::Borrowed(s));
    };
    let mut out = String::with_capacity(s.len());
    out.push_str(&s[..first]);
    let mut i = first;
    loop {
        // bytes[i] is a backslash: take the next char verbatim.
        match s[i + 1..].chars().next() {
            None => return Err(cef_err(netpkt::Error::Malformed)),
            Some(c) => {
                out.push(c);
                i += 1 + c.len_utf8();
            }
        }
        match swar::find_byte(&bytes[i..], b'\\') {
            None => {
                out.push_str(&s[i..]);
                return Ok(Cow::Owned(out));
            }
            Some(off) => {
                out.push_str(&s[i..i + off]);
                i += off;
            }
        }
    }
}

/// Parse a sanitized CEF event string (`CEF:version|…|extensions`).
///
/// Escape-aware throughout: `\|` and `\\` in header fields, `\=` and
/// `\\` in extension values. Extension count is bounded by
/// `max_extensions`, header fields and keys by `max_field_len`, values
/// by `max_value_len`. Total function.
pub fn parse_cef(
    msg: &str,
    max_field_len: usize,
    max_value_len: usize,
    max_extensions: usize,
) -> Result<CefEvent, DecodeError> {
    let rest = msg
        .strip_prefix("CEF:")
        .ok_or(cef_err(netpkt::Error::Malformed))?;
    let (fields, ext_raw) = split_cef_header(rest)?;
    let mut it = fields.into_iter();
    let version_str = it.next().unwrap_or_default();
    let version: u8 = version_str
        .parse()
        .map_err(|_| cef_err(netpkt::Error::Malformed))?;
    if version > 1 {
        return Err(cef_err(netpkt::Error::Unsupported));
    }
    let vendor = it.next().unwrap_or_default();
    let product = it.next().unwrap_or_default();
    let device_version = it.next().unwrap_or_default();
    let sig_id = it.next().unwrap_or_default();
    let name = it.next().unwrap_or_default();
    let severity = it.next().unwrap_or_default();
    for f in [&vendor, &product, &device_version, &sig_id, &name, &severity] {
        if f.len() > max_field_len {
            return Err(cef_err(netpkt::Error::BadLength));
        }
    }
    let mut extensions = Vec::new();
    for token in ext_raw.split(' ').filter(|t| !t.is_empty()) {
        if extensions.len() >= max_extensions {
            return Err(cef_err(netpkt::Error::BadLength));
        }
        let eq = find_unescaped_eq(token).ok_or(cef_err(netpkt::Error::Malformed))?;
        let key = token.get(..eq).unwrap_or_default();
        let value_raw = token.get(eq + 1..).unwrap_or_default();
        if key.is_empty() {
            return Err(cef_err(netpkt::Error::Malformed));
        }
        if key.len() > max_field_len || value_raw.len() > max_value_len {
            return Err(cef_err(netpkt::Error::BadLength));
        }
        let value = unescape_ext(value_raw)?;
        extensions.push((key.to_string(), value.into_owned()));
    }
    Ok(CefEvent {
        version,
        vendor,
        product,
        device_version,
        sig_id,
        name,
        severity,
        extensions,
    })
}

/// Byte index of the first `=` not preceded by an odd run of `\`.
///
/// SWAR scan: jump from one `\`/`=` to the next a word at a time.
fn find_unescaped_eq(token: &str) -> Option<usize> {
    let bytes = token.as_bytes();
    let mut i = 0usize;
    while let Some(off) = swar::find_byte2(&bytes[i..], b'\\', b'=') {
        let p = i + off;
        if bytes[p] == b'=' {
            return Some(p);
        }
        // Skip the backslash and the char it escapes; a trailing lone
        // backslash leaves nothing to scan.
        i = p + 1 + token[p + 1..].chars().next().map_or(0, |c| c.len_utf8());
    }
    None
}

// ---------------------------------------------------------------------------
// CEF extensions → WindowBatch
// ---------------------------------------------------------------------------

/// Map a decoded CEF event's extensions onto a [`WindowBatch`].
///
/// Required keys: `host` (u32), `seq` (u64 ≥ 1), `week` (`train`|`test`),
/// `start` (u32), `counts` (non-empty comma-separated u64 list, at most
/// [`MAX_BATCH_WINDOWS`] long). Optional: `poison` (`1` marks the batch).
/// Unknown keys are ignored for forward compatibility.
pub fn batch_from_cef(event: &CefEvent) -> Result<WindowBatch, DecodeError> {
    let mut host = None;
    let mut seq = None;
    let mut week = None;
    let mut start = None;
    let mut counts: Option<Vec<u64>> = None;
    let mut poison = false;
    for (key, value) in &event.extensions {
        match key.as_str() {
            "host" => host = Some(parse_u32(value)?),
            "seq" => seq = Some(parse_u64(value)?),
            "week" => {
                week = Some(match value.as_str() {
                    "train" => Week::Train,
                    "test" => Week::Test,
                    _ => return Err(cef_err(netpkt::Error::Malformed)),
                })
            }
            "start" => start = Some(parse_u32(value)?),
            "counts" => {
                let parsed = parse_counts(value)?;
                if parsed.len() > MAX_BATCH_WINDOWS as usize {
                    return Err(cef_err(netpkt::Error::BadLength));
                }
                counts = Some(parsed);
            }
            "poison" => poison = value == "1",
            _ => {}
        }
    }
    let (Some(host), Some(seq), Some(week), Some(start), Some(counts)) =
        (host, seq, week, start, counts)
    else {
        return Err(cef_err(netpkt::Error::Malformed));
    };
    if seq == 0 || counts.is_empty() {
        return Err(cef_err(netpkt::Error::Malformed));
    }
    Ok(WindowBatch {
        host,
        seq,
        week,
        start,
        counts,
        poison,
    })
}

/// Fused single-pass parse of a comma-separated `u64` list. Equivalent
/// to `value.split(',').map(parse_u64).collect()` — an empty piece
/// (including an empty value or a trailing comma), a non-digit byte, or
/// overflow is malformed at the first offending byte, which yields the
/// same `Result` as the split-then-parse composition since every
/// failure mode maps to the same error. Avoids the per-piece iterator
/// and call overhead on the hottest value in the batch datagram
/// (`counts` carries one number per window, ~100 pieces).
fn parse_counts(value: &str) -> Result<Vec<u64>, DecodeError> {
    let bytes = value.as_bytes();
    let mut counts = Vec::with_capacity(bytes.len() / 2 + 1);
    let mut v: u64 = 0;
    let mut digits = 0usize;
    for &b in bytes {
        if b == b',' {
            if digits == 0 {
                return Err(cef_err(netpkt::Error::Malformed));
            }
            counts.push(v);
            v = 0;
            digits = 0;
        } else {
            let d = b.wrapping_sub(b'0');
            if d > 9 {
                return Err(cef_err(netpkt::Error::Malformed));
            }
            v = v
                .checked_mul(10)
                .and_then(|v| v.checked_add(u64::from(d)))
                .ok_or(cef_err(netpkt::Error::Malformed))?;
            digits += 1;
        }
    }
    if digits == 0 {
        return Err(cef_err(netpkt::Error::Malformed));
    }
    counts.push(v);
    Ok(counts)
}

/// Single-pass unsigned decimal parse: digits only, overflow is
/// malformed. Replaces the check-then-`parse` double scan on the hot
/// path; [`oracle::parse_num`] keeps the two-pass original as the
/// differential oracle.
fn parse_u64(s: &str) -> Result<u64, DecodeError> {
    let bytes = s.as_bytes();
    if bytes.is_empty() {
        return Err(cef_err(netpkt::Error::Malformed));
    }
    let mut v: u64 = 0;
    for &b in bytes {
        let d = b.wrapping_sub(b'0');
        if d > 9 {
            return Err(cef_err(netpkt::Error::Malformed));
        }
        v = v
            .checked_mul(10)
            .and_then(|v| v.checked_add(u64::from(d)))
            .ok_or(cef_err(netpkt::Error::Malformed))?;
    }
    Ok(v)
}

/// [`parse_u64`] narrowed to `u32`; out-of-range is malformed.
fn parse_u32(s: &str) -> Result<u32, DecodeError> {
    u32::try_from(parse_u64(s)?).map_err(|_| cef_err(netpkt::Error::Malformed))
}

/// Decode one syslog-lane datagram end to end: UTF-8 (lossy) → sanitize
/// → RFC 5424 envelope → CEF event → [`WindowBatch`]. Total function —
/// the core of the no-panic guarantee for the batch lane.
pub fn decode_batch_datagram(
    payload: &[u8],
    config: &IngestConfig,
) -> Result<WindowBatch, DecodeError> {
    let text = String::from_utf8_lossy(payload);
    let clean = sanitize(&text, config.max_datagram_len);
    let (_pri, _hostname, _app, msg) = parse_syslog_ref(&clean, config.max_field_len)?;
    let event = parse_cef(
        msg,
        config.max_field_len,
        config.max_value_len,
        config.max_extensions,
    )?;
    batch_from_cef(&event)
}

// ---------------------------------------------------------------------------
// Encoders (the honest agent's side, used by harnesses and tests)
// ---------------------------------------------------------------------------

/// Escape a CEF header field: `\` → `\\`, `|` → `\|`.
pub fn escape_cef_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if c == '\\' || c == '|' {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

/// Escape a CEF extension value: `\` → `\\`, `=` → `\=`.
pub fn escape_cef_ext(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if c == '\\' || c == '=' {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

/// Encode a [`WindowBatch`] as the syslog/CEF datagram an agent would
/// send. Round-trips exactly: `decode_batch_datagram(&encode_batch_datagram(b,
/// ..), &config) == Ok(b)` for any valid batch within config bounds.
pub fn encode_batch_datagram(batch: &WindowBatch, hostname: &str, app: &str) -> Vec<u8> {
    let counts = batch
        .counts
        .iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let week = match batch.week {
        Week::Train => "train",
        Week::Test => "test",
    };
    let poison = if batch.poison { " poison=1" } else { "" };
    format!(
        "<134>1 - {} {} - - - CEF:0|hids|fleetd|1|batch|window batch|3|host={} seq={} week={} start={} counts={}{}",
        escape_cef_field(hostname).replace(' ', "-"),
        escape_cef_field(app).replace(' ', "-"),
        batch.host, batch.seq, week, batch.start, counts, poison,
    )
    .into_bytes()
}

/// Encode a DNS A query for `name` as a wire-format RFC 1035 message —
/// the DNS lane's honest input. Fails (as the underlying emitter does)
/// on names that are not valid presentation format.
pub fn encode_dns_datagram(id: u16, name: &str) -> Result<Vec<u8>, DecodeError> {
    let mut buf = vec![0u8; DNS_HEADER_LEN + name.len() + 2 + 4 + 16];
    let len = netpkt::dns::emit_query(&mut buf, id, name, netpkt::DnsRecordType::A)
        .map_err(|e| e.at(Layer::Dns))?;
    buf.truncate(len);
    Ok(buf)
}

// ---------------------------------------------------------------------------
// Scalar oracles
// ---------------------------------------------------------------------------

/// Reference byte/char-at-a-time implementations of every SWAR hot loop
/// in this module, retained as differential-test oracles.
///
/// Each function is the pre-SWAR scalar implementation (plus the OSC
/// swallow and `saturating_mul` capacity fixes, which are semantic and
/// apply to both sides). The proptest suites in this module's tests and
/// in `tests/ingest.rs` hold every SWAR path byte-identical to its
/// oracle on arbitrary input — including the `Cow` borrow/own decision
/// for [`sanitize`] and [`super::unescape_ext`]'s zero-copy fast path.
/// Nothing here runs on the hot path.
pub mod oracle {
    use super::*;

    /// Scalar [`super::sanitize`]: char-at-a-time strip/swallow/truncate.
    pub fn sanitize(input: &str, max_len: usize) -> Cow<'_, str> {
        if sanitize_is_identity(input, max_len) {
            return Cow::Borrowed(input);
        }
        let mut out = String::with_capacity(input.len().min(max_len.saturating_mul(4)));
        let mut kept = 0usize;
        let mut chars = input.chars();
        while let Some(c) = chars.next() {
            if c == '\u{1b}' {
                let mut rest = chars.clone();
                match rest.next() {
                    // CSI: swallow through the final byte in 0x40–0x7E.
                    Some('[') => {
                        for d in rest.by_ref() {
                            if ('\u{40}'..='\u{7e}').contains(&d) {
                                break;
                            }
                        }
                        chars = rest;
                    }
                    // OSC: swallow through BEL or ST (ESC '\'); a bare
                    // ESC in the payload terminates the OSC and is
                    // re-examined as a fresh escape.
                    Some(']') => {
                        loop {
                            let mut ahead = rest.clone();
                            match ahead.next() {
                                None | Some('\u{7}') => {
                                    rest = ahead;
                                    break;
                                }
                                Some('\u{1b}') => {
                                    let mut st = ahead.clone();
                                    if st.next() == Some('\\') {
                                        rest = st;
                                    }
                                    break;
                                }
                                Some(_) => rest = ahead,
                            }
                        }
                        chars = rest;
                    }
                    // Bare or truncated ESC: drop it alone.
                    _ => {}
                }
                continue;
            }
            if c.is_control() {
                continue;
            }
            if kept >= max_len {
                break;
            }
            out.push(c);
            kept += 1;
        }
        Cow::Owned(out)
    }

    /// Scalar [`super::sanitize`] identity check.
    pub fn sanitize_is_identity(input: &str, max_len: usize) -> bool {
        let bytes = input.as_bytes();
        if bytes.len() <= max_len && bytes.iter().all(|b| (0x20..0x7f).contains(b)) {
            return true;
        }
        let mut count = 0usize;
        for c in input.chars() {
            if c.is_control() {
                return false;
            }
            count += 1;
            if count > max_len {
                return false;
            }
        }
        true
    }

    /// Scalar [`super::next_field`]: `split_once` on the next space.
    pub fn next_field(rest: &str, max_field_len: usize) -> Result<(&str, &str), DecodeError> {
        let (field, rest) = rest
            .split_once(' ')
            .ok_or(syslog_err(netpkt::Error::Truncated { needed: 1, got: 0 }))?;
        if field.is_empty() {
            return Err(syslog_err(netpkt::Error::Malformed));
        }
        if field.len() > max_field_len {
            return Err(syslog_err(netpkt::Error::BadLength));
        }
        Ok((field, rest))
    }

    /// Scalar [`super::split_cef_header`]: char-at-a-time with an
    /// explicit escape flag.
    pub fn split_cef_header(rest: &str) -> Result<(Vec<String>, &str), DecodeError> {
        let mut fields = Vec::with_capacity(7);
        let mut cur = String::new();
        let mut esc = false;
        for (i, c) in rest.char_indices() {
            if esc {
                cur.push(c);
                esc = false;
                continue;
            }
            match c {
                '\\' => esc = true,
                '|' => {
                    fields.push(std::mem::take(&mut cur));
                    if fields.len() == 7 {
                        return Ok((fields, rest.get(i + 1..).unwrap_or("")));
                    }
                }
                _ => cur.push(c),
            }
        }
        Err(cef_err(netpkt::Error::Truncated {
            needed: 7,
            got: fields.len(),
        }))
    }

    /// Scalar [`super::unescape_ext`]: char-at-a-time with an escape
    /// flag. Always allocates (the SWAR side's `Cow::Borrowed` decision
    /// is checked separately: it must borrow exactly when the input has
    /// no backslash).
    pub fn unescape_ext(s: &str) -> Result<String, DecodeError> {
        let mut out = String::with_capacity(s.len());
        let mut esc = false;
        for c in s.chars() {
            if esc {
                out.push(c);
                esc = false;
            } else if c == '\\' {
                esc = true;
            } else {
                out.push(c);
            }
        }
        if esc {
            return Err(cef_err(netpkt::Error::Malformed));
        }
        Ok(out)
    }

    /// Scalar [`super::find_unescaped_eq`].
    pub fn find_unescaped_eq(token: &str) -> Option<usize> {
        let mut esc = false;
        for (i, c) in token.char_indices() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' => esc = true,
                '=' => return Some(i),
                _ => {}
            }
        }
        None
    }

    /// Scalar check-then-`parse` number parse (the pre-SWAR
    /// [`super::parse_u64`]/[`super::parse_u32`]).
    pub fn parse_num<T: core::str::FromStr>(s: &str) -> Result<T, DecodeError> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
            return Err(cef_err(netpkt::Error::Malformed));
        }
        s.parse().map_err(|_| cef_err(netpkt::Error::Malformed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> IngestConfig {
        IngestConfig::default()
    }

    fn sample_batch() -> WindowBatch {
        WindowBatch {
            host: 42,
            seq: 7,
            week: Week::Test,
            start: 96,
            counts: vec![0, 3, 1, 999],
            poison: false,
        }
    }

    #[test]
    fn batch_datagram_round_trips() {
        let b = sample_batch();
        let wire = encode_batch_datagram(&b, "host042", "hids-agent");
        assert_eq!(decode_batch_datagram(&wire, &cfg()), Ok(b));
    }

    #[test]
    fn poison_flag_round_trips() {
        let mut b = sample_batch();
        b.poison = true;
        let wire = encode_batch_datagram(&b, "h", "a");
        assert_eq!(decode_batch_datagram(&wire, &cfg()).map(|d| d.poison), Ok(true));
    }

    #[test]
    fn sanitize_strips_controls_and_ansi() {
        assert_eq!(sanitize("a\x00b\x1b[31mred\x1b[0mc\x7fd", 100), "abredcd");
        assert_eq!(sanitize("\x1b", 100), "");
        assert_eq!(sanitize("\x1b[2J", 100), "");
        // Truncated CSI at end of input swallows to the end.
        assert_eq!(sanitize("x\x1b[12;3", 100), "x");
    }

    #[test]
    fn sanitize_borrows_clean_input_and_copies_dirty() {
        // Clean printable ASCII within bounds: zero-copy.
        assert!(matches!(sanitize("plain telemetry 123", 100), Cow::Borrowed(_)));
        // Clean non-ASCII within bounds: zero-copy via the char scan.
        assert!(matches!(sanitize("héllo wörld", 100), Cow::Borrowed(_)));
        // Control bytes, CSI sequences, or overlength force the rebuild.
        assert!(matches!(sanitize("a\x00b", 100), Cow::Owned(_)));
        assert!(matches!(sanitize("\x1b[31mred", 100), Cow::Owned(_)));
        assert!(matches!(sanitize("too long", 3), Cow::Owned(_)));
        // The fast path must not change the result.
        assert_eq!(sanitize("plain telemetry 123", 100), "plain telemetry 123");
        assert_eq!(sanitize("too long", 3), "too");
    }

    #[test]
    fn sanitize_is_idempotent_and_bounded() {
        for s in ["héllo\x1b[1mworld", "\x00\x01\x02", "plain", "\x1b[K\x1b[K"] {
            let once = sanitize(s, 5);
            assert!(once.chars().count() <= 5);
            assert_eq!(sanitize(&once, 5), once);
        }
    }

    #[test]
    fn syslog_rejects_bad_pri_and_version() {
        let c = cfg();
        assert!(parse_syslog("no angle bracket", c.max_field_len).is_err());
        assert!(parse_syslog("<192>1 - h a - - - m", c.max_field_len).is_err());
        assert!(parse_syslog("<1x>1 - h a - - - m", c.max_field_len).is_err());
        assert!(parse_syslog("<007>1 - h a - - - m", c.max_field_len).is_err());
        let e = parse_syslog("<13>2 - h a - - - m", c.max_field_len).unwrap_err();
        assert_eq!(e.layer, Layer::Syslog);
        assert_eq!(e.kind, netpkt::Error::Unsupported);
    }

    #[test]
    fn syslog_accepts_structured_data_block() {
        let m = parse_syslog(
            "<34>1 - mach app 77 ID [ex@1 k=\"v\\]x\"] the msg",
            256,
        )
        .unwrap();
        assert_eq!(m.hostname, "mach");
        assert_eq!(m.app, "app");
        assert_eq!(m.msg, "the msg");
    }

    #[test]
    fn syslog_bounds_field_lengths() {
        let long = "h".repeat(300);
        let line = format!("<13>1 - {long} app - - - m");
        let e = parse_syslog(&line, 256).unwrap_err();
        assert_eq!(e.kind, netpkt::Error::BadLength);
    }

    #[test]
    fn cef_escaping_round_trips_header_fields() {
        let msg = format!(
            "CEF:0|{}|p|1|sig|{}|3|host=1 seq=1 week=train start=0 counts=1",
            escape_cef_field("acme|corp"),
            escape_cef_field("pipes \\ and | bars"),
        );
        let ev = parse_cef(&msg, 256, 4096, 64).unwrap();
        assert_eq!(ev.vendor, "acme|corp");
        assert_eq!(ev.name, "pipes \\ and | bars");
    }

    #[test]
    fn cef_rejects_bogus_escaping_and_short_headers() {
        assert!(parse_cef("CEF:0|a|b|c", 256, 4096, 64).is_err());
        assert!(parse_cef("notcef", 256, 4096, 64).is_err());
        // trailing lone backslash in an extension value
        let msg = "CEF:0|v|p|1|s|n|3|host=1 seq=1 week=train start=0 counts=1 bad=x\\";
        assert!(parse_cef(msg, 256, 4096, 64).is_err());
        // extension token without '='
        let msg = "CEF:0|v|p|1|s|n|3|host=1 orphan";
        assert!(parse_cef(msg, 256, 4096, 64).is_err());
    }

    #[test]
    fn cef_bounds_extension_count_and_lengths() {
        let many: String = (0..70).map(|i| format!("k{i}=1 ")).collect();
        let msg = format!("CEF:0|v|p|1|s|n|3|{many}");
        let e = parse_cef(&msg, 256, 4096, 64).unwrap_err();
        assert_eq!(e.kind, netpkt::Error::BadLength);
        let long_val = format!("CEF:0|v|p|1|s|n|3|k={}", "x".repeat(5000));
        assert!(parse_cef(&long_val, 256, 4096, 64).is_err());
        let long_key = format!("CEF:0|v|p|1|s|n|3|{}=1", "k".repeat(300));
        assert!(parse_cef(&long_key, 256, 4096, 64).is_err());
        // A value within the (larger) value bound but over the field
        // bound is fine: `counts` legitimately needs the headroom.
        let wide_val = format!("CEF:0|v|p|1|s|n|3|k={}", "x".repeat(300));
        assert!(parse_cef(&wide_val, 256, 4096, 64).is_ok());
    }

    #[test]
    fn batch_mapping_rejects_missing_and_bad_fields() {
        let parse = |ext: &str| {
            let msg = format!("CEF:0|v|p|1|s|n|3|{ext}");
            parse_cef(&msg, 256, 4096, 64).and_then(|e| batch_from_cef(&e))
        };
        assert!(parse("host=1 seq=1 week=train start=0 counts=1,2").is_ok());
        assert!(parse("seq=1 week=train start=0 counts=1").is_err()); // no host
        assert!(parse("host=1 seq=0 week=train start=0 counts=1").is_err()); // seq 0
        assert!(parse("host=1 seq=1 week=lunar start=0 counts=1").is_err());
        assert!(parse("host=1 seq=1 week=train start=0 counts=").is_err());
        assert!(parse("host=1 seq=1 week=train start=0 counts=1,-2").is_err());
        assert!(parse("host=99999999999 seq=1 week=train start=0 counts=1").is_err());
    }

    #[test]
    fn token_bucket_sheds_deterministically_and_latches() {
        let config = IngestConfig {
            rate_per_tick: 1,
            burst: 2,
            flood_latch_after: 3,
            ..IngestConfig::default()
        };
        let mut ing = Ingestor::new(config);
        let wire = encode_batch_datagram(&sample_batch(), "h", "a");
        // 8 datagrams at tick 0 from one source: 2 admitted (burst), 6 shed.
        let outcomes: Vec<bool> = (0..8)
            .map(|_| {
                !matches!(
                    ing.ingest(0, 5, Lane::Syslog, &wire),
                    IngestOutcome::Shed
                )
            })
            .collect();
        assert_eq!(outcomes, [true, true, false, false, false, false, false, false]);
        assert!(ing.is_flood_latched(5));
        let stats = ing.stats();
        assert_eq!(stats.shed, 6);
        assert_eq!(stats.flood_latched, 1);
        assert!(stats.conservation_holds());
        // A tick later one token refills.
        assert!(!matches!(
            ing.ingest(1, 5, Lane::Syslog, &wire),
            IngestOutcome::Shed
        ));
        // An unrelated source is unaffected.
        assert!(!matches!(
            ing.ingest(0, 6, Lane::Syslog, &wire),
            IngestOutcome::Shed
        ));
        assert!(ing.stats().conservation_holds());
    }

    #[test]
    fn rate_zero_disables_limiting() {
        let config = IngestConfig {
            rate_per_tick: 0,
            ..IngestConfig::default()
        };
        let mut ing = Ingestor::new(config);
        let wire = encode_batch_datagram(&sample_batch(), "h", "a");
        for _ in 0..1000 {
            assert!(matches!(
                ing.ingest(0, 1, Lane::Syslog, &wire),
                IngestOutcome::Batch(_)
            ));
        }
        assert_eq!(ing.stats().shed, 0);
    }

    #[test]
    fn dns_lane_counts_distinct_case_folded_names() {
        let mut ing = Ingestor::new(IngestConfig {
            rate_per_tick: 0,
            ticks_per_window: 10,
            ..IngestConfig::default()
        });
        for (tick, name) in [
            (0, "FOO.example"),
            (1, "foo.EXAMPLE"),
            (2, "bar.example"),
            (15, "foo.example"),
        ] {
            let wire = encode_dns_datagram(1, name).unwrap();
            let out = ing.ingest(tick, 9, Lane::Dns, &wire);
            assert!(matches!(out, IngestOutcome::Dns { .. }), "{out:?}");
        }
        // Window 0: {foo.example, bar.example}; window 1: {foo.example}.
        assert_eq!(ing.dns_distinct(9), vec![(0, 2), (1, 1)]);
        let batch = ing.dns_window_batch(9, 1, Week::Train).unwrap();
        assert_eq!(batch.counts, vec![2, 1]);
        assert_eq!(batch.host, 9);
        let stats = ing.stats();
        assert_eq!(stats.dns_queries, 4);
        assert_eq!(stats.dns_novel, 3);
    }

    #[test]
    fn dns_lane_rejects_garbage() {
        let mut ing = Ingestor::new(IngestConfig {
            rate_per_tick: 0,
            ..IngestConfig::default()
        });
        for bad in [&[][..], &[0u8; 5][..], &[0xff; 40][..]] {
            match ing.ingest(0, 1, Lane::Dns, bad) {
                IngestOutcome::Malformed(e) => assert_eq!(e.layer, Layer::Dns),
                other => panic!("expected malformed, got {other:?}"),
            }
        }
        let stats = ing.stats();
        assert_eq!(stats.malformed, 3);
        assert_eq!(stats.malformed_at(Layer::Dns), 3);
        assert!(stats.conservation_holds());
    }

    #[test]
    fn metrics_export_names_and_values() {
        let mut ing = Ingestor::new(IngestConfig {
            rate_per_tick: 1,
            burst: 1,
            flood_latch_after: 0,
            ..IngestConfig::default()
        });
        let wire = encode_batch_datagram(&sample_batch(), "h", "a");
        ing.ingest(0, 1, Lane::Syslog, &wire);
        ing.ingest(0, 1, Lane::Syslog, &wire); // shed + latch
        ing.ingest(0, 2, Lane::Syslog, b"garbage");
        let mut reg = Registry::new();
        ing.export_metrics(&mut reg);
        assert_eq!(
            reg.counter_value(
                "ingest_datagrams_total",
                &[("lane", "syslog"), ("disposition", "accepted")]
            ),
            1
        );
        assert_eq!(
            reg.counter_value(
                "ingest_datagrams_total",
                &[("lane", "syslog"), ("disposition", "shed")]
            ),
            1
        );
        assert_eq!(
            reg.counter_value("ingest_malformed_total", &[("layer", "syslog")]),
            1
        );
        assert_eq!(reg.gauge_value("ingest_sources", &[("state", "latched")]), 1);
        assert!(reg.events().events().any(|e| e.name == "flood_latched"));
    }

    #[test]
    fn sanitize_swallows_osc_sequences() {
        // BEL-terminated: payload must not leak into sanitized output.
        assert_eq!(sanitize("a\u{1b}]0;evil title\u{7}b", 100), "ab");
        // ST-terminated (ESC '\').
        assert_eq!(sanitize("a\u{1b}]8;;http://x\u{1b}\\b", 100), "ab");
        // Truncated OSC swallows to end of input.
        assert_eq!(sanitize("a\u{1b}]0;half", 100), "a");
        // A bare ESC inside the payload terminates the OSC; the CSI that
        // follows is swallowed on re-examination.
        assert_eq!(sanitize("a\u{1b}]0;x\u{1b}[2Jb", 100), "ab");
        // Idempotence holds over OSC-bearing input.
        for s in ["\u{1b}]0;t\u{7}x", "\u{1b}]no-term", "\u{1b}]a\u{1b}\\z", "\u{1b}]a\u{1b}z"] {
            let once = sanitize(s, 50);
            assert_eq!(sanitize(&once, 50), once.clone(), "idempotence on {s:?}");
        }
    }

    #[test]
    fn sanitize_scratch_capacity_boundary() {
        // `max_len * 4` overflowed in debug builds for max_len near
        // usize::MAX; saturating_mul keeps the dirty path total.
        let dirty = "x\u{1b}[31my";
        assert_eq!(sanitize(dirty, usize::MAX), "xy");
        assert_eq!(sanitize(dirty, usize::MAX / 4 + 1), "xy");
        assert_eq!(oracle::sanitize(dirty, usize::MAX), "xy");
        assert_eq!(oracle::sanitize(dirty, usize::MAX / 4 + 1), "xy");
    }

    #[test]
    fn sanitize_truncated_escape_boundaries_pinned() {
        // Bare ESC at end of input: dropped alone.
        assert_eq!(sanitize("abc\u{1b}", 100), "abc");
        assert_eq!(sanitize("\u{1b}", 100), "");
        // ESC followed by a non-introducer: the ESC is dropped and the
        // following char is re-examined (kept — not double-consumed,
        // not skipped).
        assert_eq!(sanitize("\u{1b}A", 100), "A");
        assert_eq!(sanitize("abc\u{1b}Az", 100), "abcAz");
        assert_eq!(sanitize("\u{1b}\u{1b}A", 100), "A");
        // ESC '[' at end: a truncated CSI swallows to end of input.
        assert_eq!(sanitize("abc\u{1b}[", 100), "abc");
        // The oracle implements the same spec at every boundary.
        for s in ["abc\u{1b}", "\u{1b}A", "abc\u{1b}[", "\u{1b}]", "\u{1b}"] {
            assert_eq!(oracle::sanitize(s, 100), sanitize(s, 100), "oracle divergence on {s:?}");
        }
    }

    /// Escape-heavy text mixing C0/C1 controls, ANSI introducers, CEF
    /// metacharacters and multi-byte chars — the shared fuel for the
    /// SWAR-vs-oracle differential suites. Repeated entries weight the
    /// interesting bytes.
    const HOSTILE_TEXT: &str = "[\u{0}-\u{9f}\u{1b}\u{1b}\u{1b}\u{1b}\u{1b}\u{7}\u{7}\
         \\[\\[\\[\\]\\]\\]\\\\\\\\\\\\||||====    ;;09AZaz\u{7f}\u{9b}\u{e9}\u{4e16}]{0,48}";

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        #[test]
        fn swar_sanitize_matches_oracle(s in HOSTILE_TEXT, max_len in 0usize..64) {
            let swar_out = sanitize(&s, max_len);
            let oracle_out = oracle::sanitize(&s, max_len);
            // Byte-identical output AND the same Cow borrow/own decision.
            prop_assert_eq!(
                matches!(swar_out, Cow::Borrowed(_)),
                matches!(oracle_out, Cow::Borrowed(_)),
                "Cow decision diverged on {:?}", s
            );
            prop_assert_eq!(&swar_out, &oracle_out, "output diverged on {:?}", s);
            // And the SWAR path stays idempotent.
            prop_assert_eq!(sanitize(&swar_out, max_len), swar_out.clone());
        }

        #[test]
        fn swar_identity_matches_oracle(s in HOSTILE_TEXT, max_len in 0usize..64) {
            prop_assert_eq!(
                sanitize_is_identity(&s, max_len),
                oracle::sanitize_is_identity(&s, max_len)
            );
        }

        #[test]
        fn swar_next_field_matches_oracle(s in HOSTILE_TEXT, max_field_len in 0usize..32) {
            prop_assert_eq!(
                next_field(&s, max_field_len),
                oracle::next_field(&s, max_field_len)
            );
        }

        #[test]
        fn swar_split_cef_header_matches_oracle(s in HOSTILE_TEXT) {
            prop_assert_eq!(split_cef_header(&s), oracle::split_cef_header(&s));
        }

        #[test]
        fn swar_unescape_ext_matches_oracle(s in HOSTILE_TEXT) {
            let swar_out = unescape_ext(&s);
            let oracle_out = oracle::unescape_ext(&s);
            match (&swar_out, &oracle_out) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(a.as_ref(), b.as_str());
                    // Zero-copy exactly when there is nothing to unescape.
                    prop_assert_eq!(
                        matches!(a, Cow::Borrowed(_)),
                        !s.contains('\\'),
                        "borrow decision diverged on {:?}", s
                    );
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                _ => prop_assert!(false, "Ok/Err diverged on {:?}", s),
            }
        }

        #[test]
        fn swar_find_unescaped_eq_matches_oracle(s in HOSTILE_TEXT) {
            prop_assert_eq!(find_unescaped_eq(&s), oracle::find_unescaped_eq(&s));
        }

        #[test]
        fn swar_parse_num_matches_oracle(s in "[0-9a+ ]{0,24}") {
            prop_assert_eq!(parse_u64(&s), oracle::parse_num::<u64>(&s));
            prop_assert_eq!(parse_u32(&s), oracle::parse_num::<u32>(&s));
        }

        #[test]
        fn fused_parse_counts_matches_split_composition(s in "[0-9,a ]{0,32}") {
            let oracle: Result<Vec<u64>, DecodeError> =
                s.split(',').map(|p| oracle::parse_num::<u64>(p)).collect();
            prop_assert_eq!(parse_counts(&s), oracle);
        }

        #[test]
        fn fused_parse_counts_matches_on_overflow_shapes(s in "[0-9]{0,24}(,[0-9]{0,24}){0,3}") {
            let oracle: Result<Vec<u64>, DecodeError> =
                s.split(',').map(|p| oracle::parse_num::<u64>(p)).collect();
            prop_assert_eq!(parse_counts(&s), oracle);
        }

        #[test]
        fn swar_syslog_parse_matches_scalar_composition(s in HOSTILE_TEXT) {
            // The borrowed hot-path parse and the owning public parse
            // must agree on every input.
            let via_ref = parse_syslog_ref(&s, 32).map(|(pri, h, a, m)| SyslogMsg {
                pri,
                hostname: h.to_string(),
                app: a.to_string(),
                msg: m.to_string(),
            });
            prop_assert_eq!(via_ref, parse_syslog(&s, 32));
        }
    }

    #[test]
    fn hostile_corpus_never_panics_and_is_accounted() {
        let corpus: Vec<Vec<u8>> = vec![
            b"".to_vec(),
            b"<".to_vec(),
            b"<>1 - - - - - -".to_vec(),
            b"<13>1".to_vec(),
            b"<13>1 - h a - - - CEF:0|".to_vec(),
            b"\x00\x01\x02\x03".to_vec(),
            vec![0xff; 4096],
            b"<13>1 - \x1b[2Jhost app - - - CEF:0|v|p|1|s|n|3|host=1".to_vec(),
            encode_batch_datagram(&sample_batch(), "h", "a")[..20].to_vec(),
        ];
        let mut ing = Ingestor::new(IngestConfig {
            rate_per_tick: 0,
            ..IngestConfig::default()
        });
        for (i, payload) in corpus.iter().enumerate() {
            let out = ing.ingest(i as u64, 1, Lane::Syslog, payload);
            assert!(
                matches!(out, IngestOutcome::Malformed(_)),
                "corpus[{i}] unexpectedly decoded: {out:?}"
            );
        }
        assert!(ing.stats().conservation_holds());
    }
}
