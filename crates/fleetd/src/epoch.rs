//! Versioned threshold epochs: canary rollout, health gates, rollback.
//!
//! A refit (driven by `hids_core::drift` through the `itconsole::rollout`
//! planner) produces a **candidate threshold set**. The daemon never
//! swaps it in atomically; it stages it:
//!
//! ```text
//!            Begin (WAL)                   Promote (WAL)
//!   Idle ────────────────▶ Canary ────────────────────────▶ Idle
//!                            │       gates pass: candidate
//!                            │       activates fleet-wide for
//!                            │       windows ≥ soak_end
//!                            │
//!                            │       Rollback (WAL)
//!                            └────────────────────────────▶ Idle
//!                                    any gate fails: candidate
//!                                    discarded, incumbent stands
//! ```
//!
//! During Canary the candidate is **shadow-evaluated**: canary shards
//! keep alarming on the incumbent threshold while counting, per fresh
//! test window inside the soak span `[soak_start, soak_end)`, what the
//! candidate *would* have done. Rollback is therefore O(1) and bitwise
//! exact — the incumbent was never touched — and a rolled-back run's
//! per-host outputs are byte-identical to a run that never attempted the
//! rollout. Promotion activates the candidate only for windows at or
//! after `soak_end` (the daemon's admission barrier guarantees no such
//! window was applied earlier), which keeps every alarm a pure function
//! of `(host stream, decision)` regardless of delivery interleaving or
//! crash/restart timing.
//!
//! All three transitions are journaled as first-class WAL records,
//! interleaved in order with the batch records, so crash recovery
//! reconstructs the exact phase — and a decision that was made durable is
//! *replayed*, never re-derived, while a decision lost to a torn write is
//! re-derived from the identical replayed gate inputs.

use std::collections::BTreeMap;

use crate::codec::{put_f64, put_u32, put_u64, CodecError, Reader};

/// Sanity bound on candidate-set size in decoded records.
const MAX_CANDIDATE_HOSTS: u32 = 1 << 20;

/// Rollout tunables carried in the daemon config.
#[derive(Debug, Clone, Copy)]
pub struct RolloutConfig {
    /// Number of canary shards (shards `0..canary_shards`, clamped to the
    /// shard count). The cohort is a pure function of configuration, so
    /// every run — and every recovery of a run — canaries the same hosts.
    pub canary_shards: usize,
    /// Health gates a candidate must pass to be promoted.
    pub gate: HealthGate,
}

impl Default for RolloutConfig {
    fn default() -> Self {
        Self {
            canary_shards: 1,
            gate: HealthGate::default(),
        }
    }
}

/// Promotion health gates, all evaluated over the canary soak span.
#[derive(Debug, Clone, Copy)]
pub struct HealthGate {
    /// Maximum tolerated increase of the candidate's alarm rate over the
    /// incumbent's (alarms per soak window). A candidate noisier than
    /// this would flood the console fleet-wide: rolled back.
    pub max_fp_increase: f64,
    /// Maximum tolerated *drop* of the candidate's alarm rate below the
    /// incumbent's. A candidate that silences windows the incumbent
    /// alarms on is the signature of a poisoned (inflated) refit —
    /// exactly what a boiling-frog attacker wants promoted: rolled back.
    pub max_alarm_drop: f64,
    /// Minimum fraction of expected soak windows actually observed
    /// (quarantines and sheds erode this).
    pub min_coverage: f64,
    /// Maximum fraction of expected soak windows lost to shedding or
    /// quarantine on the canary cohort.
    pub max_shed_rate: f64,
}

impl Default for HealthGate {
    fn default() -> Self {
        Self {
            max_fp_increase: 0.05,
            max_alarm_drop: 0.05,
            min_coverage: 0.9,
            max_shed_rate: 0.1,
        }
    }
}

/// Why a candidate was rolled back. Gates are evaluated in this order
/// and the first failure is recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RollbackReason {
    /// Fewer soak windows observed than `min_coverage` requires.
    LowCoverage,
    /// Too many soak windows shed or quarantined on the canary cohort.
    ShedRate,
    /// Candidate alarm rate exceeded the incumbent's by more than
    /// `max_fp_increase`.
    FpIncrease,
    /// Candidate alarm rate fell below the incumbent's by more than
    /// `max_alarm_drop` (poisoned-refit signature).
    AlarmDrop,
    /// An operator forced the rollback via the control plane
    /// (`force-rollback`); no gate failed.
    Operator,
}

impl core::fmt::Display for RollbackReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RollbackReason::LowCoverage => write!(f, "low-coverage"),
            RollbackReason::ShedRate => write!(f, "shed-rate"),
            RollbackReason::FpIncrease => write!(f, "fp-increase"),
            RollbackReason::AlarmDrop => write!(f, "alarm-drop"),
            RollbackReason::Operator => write!(f, "operator"),
        }
    }
}

impl RollbackReason {
    fn code(self) -> u8 {
        match self {
            RollbackReason::LowCoverage => 0,
            RollbackReason::ShedRate => 1,
            RollbackReason::FpIncrease => 2,
            RollbackReason::AlarmDrop => 3,
            RollbackReason::Operator => 4,
        }
    }

    fn from_code(c: u8) -> Result<Self, CodecError> {
        Ok(match c {
            0 => RollbackReason::LowCoverage,
            1 => RollbackReason::ShedRate,
            2 => RollbackReason::FpIncrease,
            3 => RollbackReason::AlarmDrop,
            4 => RollbackReason::Operator,
            _ => return Err(CodecError::BadDiscriminant),
        })
    }
}

impl HealthGate {
    /// Evaluate the gates over completed soak statistics. `Ok(())` means
    /// promote; `Err` carries the first failing gate.
    pub fn decide(&self, stats: &GateStats, expected_windows: u64) -> Result<(), RollbackReason> {
        let expected = (expected_windows.max(1)) as f64;
        let observed = stats.windows as f64;
        if observed / expected < self.min_coverage {
            return Err(RollbackReason::LowCoverage);
        }
        if stats.sheds as f64 / expected > self.max_shed_rate {
            return Err(RollbackReason::ShedRate);
        }
        let per_window = observed.max(1.0);
        let inc = stats.incumbent_alarms as f64 / per_window;
        let cand = stats.candidate_alarms as f64 / per_window;
        if cand - inc > self.max_fp_increase {
            return Err(RollbackReason::FpIncrease);
        }
        if inc - cand > self.max_alarm_drop {
            return Err(RollbackReason::AlarmDrop);
        }
        Ok(())
    }
}

/// Shadow-evaluation counters accumulated over the canary soak span.
///
/// The alarm counters are pure functions of the fresh test windows
/// applied on canary shards inside the span, so WAL replay reconstructs
/// them exactly; `sheds` additionally counts soak windows lost to
/// quarantine or shedding (snapshot-durable, and re-counted when the
/// losing batch is redelivered after a crash).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GateStats {
    /// Fresh soak-span test windows applied on canary shards.
    pub windows: u64,
    /// Of those, windows the incumbent threshold alarmed on.
    pub incumbent_alarms: u64,
    /// Of those, windows the candidate threshold would alarm on.
    pub candidate_alarms: u64,
    /// Soak-span windows lost to shedding or quarantine on the cohort.
    pub sheds: u64,
}

/// The in-flight candidate during a Canary phase.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateState {
    /// Epoch this candidate would become.
    pub epoch: u32,
    /// First test-window index of the soak span.
    pub soak_start: u32,
    /// One past the last test-window index of the soak span; also the
    /// activation boundary on promotion.
    pub soak_end: u32,
    /// Candidate per-host thresholds.
    pub thresholds: BTreeMap<u32, f64>,
    /// Soak windows the gate expects: candidate hosts on canary shards ×
    /// span length. Pure function of `(thresholds, config)`.
    pub expected_windows: u64,
    /// Shadow counters so far.
    pub stats: GateStats,
}

impl CandidateState {
    /// Whether every expected soak window has been accounted for
    /// (observed or lost) and the gate can be evaluated.
    pub fn soak_complete(&self) -> bool {
        self.expected_windows > 0 && self.stats.windows + self.stats.sheds >= self.expected_windows
    }
}

/// Rollout phase, derived from whether a candidate is in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// No rollout in progress; the incumbent thresholds stand.
    Idle,
    /// A candidate is shadow-soaking on the canary cohort.
    Canary,
}

/// How one epoch concluded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EpochOutcome {
    /// Gates passed; the candidate became the fleet threshold set.
    Promoted,
    /// A gate failed; the incumbent stands.
    RolledBack(RollbackReason),
}

/// One concluded epoch in the daemon's history.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// The epoch number.
    pub epoch: u32,
    /// Promotion or rollback (with reason).
    pub outcome: EpochOutcome,
    /// Final gate inputs at decision time.
    pub stats: GateStats,
    /// Soak windows the gate expected.
    pub expected_windows: u64,
}

/// The daemon's durable rollout state: current candidate plus history.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct EpochState {
    /// Highest epoch number ever begun (0 = none).
    pub last_epoch: u32,
    /// In-flight candidate, if a rollout is in progress.
    pub candidate: Option<CandidateState>,
    /// Concluded epochs, oldest first.
    pub history: Vec<EpochRecord>,
}

impl EpochState {
    /// Current phase.
    pub fn phase(&self) -> Phase {
        if self.candidate.is_some() {
            Phase::Canary
        } else {
            Phase::Idle
        }
    }
}

/// A WAL-journaled rollout transition. These interleave with batch
/// records in the main log so replay reconstructs the exact order of
/// state mutations relative to batch applies.
#[derive(Debug, Clone, PartialEq)]
pub enum RolloutEvent {
    /// Canary start: candidate thresholds and the soak span.
    Begin {
        /// Epoch being attempted.
        epoch: u32,
        /// First soak window index.
        soak_start: u32,
        /// One past the last soak window index / activation boundary.
        soak_end: u32,
        /// Candidate per-host thresholds.
        thresholds: BTreeMap<u32, f64>,
    },
    /// Gates passed; candidate activates for windows ≥ its `soak_end`.
    Promote {
        /// Epoch promoted.
        epoch: u32,
    },
    /// A gate failed; candidate discarded.
    Rollback {
        /// Epoch rolled back.
        epoch: u32,
        /// The failing gate.
        reason: RollbackReason,
    },
}

impl RolloutEvent {
    /// Serialise into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RolloutEvent::Begin {
                epoch,
                soak_start,
                soak_end,
                thresholds,
            } => {
                out.push(0);
                put_u32(out, *epoch);
                put_u32(out, *soak_start);
                put_u32(out, *soak_end);
                put_u32(out, thresholds.len() as u32);
                for (&h, &t) in thresholds {
                    put_u32(out, h);
                    put_f64(out, t);
                }
            }
            RolloutEvent::Promote { epoch } => {
                out.push(1);
                put_u32(out, *epoch);
            }
            RolloutEvent::Rollback { epoch, reason } => {
                out.push(2);
                put_u32(out, *epoch);
                out.push(reason.code());
            }
        }
    }

    /// Deserialise from exactly `buf` (trailing bytes are an error).
    pub fn decode(buf: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(buf);
        let ev = match r.u8()? {
            0 => {
                let epoch = r.u32()?;
                let soak_start = r.u32()?;
                let soak_end = r.u32()?;
                let n = r.u32()?;
                if n > MAX_CANDIDATE_HOSTS {
                    return Err(CodecError::ImplausibleLength);
                }
                let mut thresholds = BTreeMap::new();
                for _ in 0..n {
                    let h = r.u32()?;
                    let t = r.f64()?;
                    thresholds.insert(h, t);
                }
                RolloutEvent::Begin {
                    epoch,
                    soak_start,
                    soak_end,
                    thresholds,
                }
            }
            1 => RolloutEvent::Promote { epoch: r.u32()? },
            2 => RolloutEvent::Rollback {
                epoch: r.u32()?,
                reason: RollbackReason::from_code(r.u8()?)?,
            },
            _ => return Err(CodecError::BadDiscriminant),
        };
        r.finish()?;
        Ok(ev)
    }
}

fn encode_gate_stats(out: &mut Vec<u8>, s: &GateStats) {
    put_u64(out, s.windows);
    put_u64(out, s.incumbent_alarms);
    put_u64(out, s.candidate_alarms);
    put_u64(out, s.sheds);
}

fn decode_gate_stats(r: &mut Reader<'_>) -> Result<GateStats, CodecError> {
    Ok(GateStats {
        windows: r.u64()?,
        incumbent_alarms: r.u64()?,
        candidate_alarms: r.u64()?,
        sheds: r.u64()?,
    })
}

/// Serialise an [`EpochState`] into a snapshot payload.
pub fn encode_epoch(out: &mut Vec<u8>, e: &EpochState) {
    put_u32(out, e.last_epoch);
    match &e.candidate {
        None => out.push(0),
        Some(c) => {
            out.push(1);
            put_u32(out, c.epoch);
            put_u32(out, c.soak_start);
            put_u32(out, c.soak_end);
            put_u32(out, c.thresholds.len() as u32);
            for (&h, &t) in &c.thresholds {
                put_u32(out, h);
                put_f64(out, t);
            }
            put_u64(out, c.expected_windows);
            encode_gate_stats(out, &c.stats);
        }
    }
    put_u32(out, e.history.len() as u32);
    for rec in &e.history {
        put_u32(out, rec.epoch);
        match rec.outcome {
            EpochOutcome::Promoted => out.push(0),
            EpochOutcome::RolledBack(reason) => {
                out.push(1);
                out.push(reason.code());
            }
        }
        encode_gate_stats(out, &rec.stats);
        put_u64(out, rec.expected_windows);
    }
}

/// Deserialise an [`EpochState`] from a snapshot payload.
pub fn decode_epoch(r: &mut Reader<'_>) -> Result<EpochState, CodecError> {
    let last_epoch = r.u32()?;
    let candidate = match r.u8()? {
        0 => None,
        1 => {
            let epoch = r.u32()?;
            let soak_start = r.u32()?;
            let soak_end = r.u32()?;
            let n = r.u32()?;
            if n > MAX_CANDIDATE_HOSTS {
                return Err(CodecError::ImplausibleLength);
            }
            let mut thresholds = BTreeMap::new();
            for _ in 0..n {
                let h = r.u32()?;
                let t = r.f64()?;
                thresholds.insert(h, t);
            }
            let expected_windows = r.u64()?;
            let stats = decode_gate_stats(r)?;
            Some(CandidateState {
                epoch,
                soak_start,
                soak_end,
                thresholds,
                expected_windows,
                stats,
            })
        }
        _ => return Err(CodecError::BadDiscriminant),
    };
    let n_hist = r.u32()?;
    if n_hist > MAX_CANDIDATE_HOSTS {
        return Err(CodecError::ImplausibleLength);
    }
    let mut history = Vec::with_capacity(n_hist as usize);
    for _ in 0..n_hist {
        let epoch = r.u32()?;
        let outcome = match r.u8()? {
            0 => EpochOutcome::Promoted,
            1 => EpochOutcome::RolledBack(RollbackReason::from_code(r.u8()?)?),
            _ => return Err(CodecError::BadDiscriminant),
        };
        let stats = decode_gate_stats(r)?;
        let expected_windows = r.u64()?;
        history.push(EpochRecord {
            epoch,
            outcome,
            stats,
            expected_windows,
        });
    }
    Ok(EpochState {
        last_epoch,
        candidate,
        history,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_event() -> RolloutEvent {
        let mut thresholds = BTreeMap::new();
        thresholds.insert(0, 12.5);
        thresholds.insert(7, 99.0);
        RolloutEvent::Begin {
            epoch: 3,
            soak_start: 100,
            soak_end: 220,
            thresholds,
        }
    }

    #[test]
    fn events_roundtrip() {
        for ev in [
            sample_event(),
            RolloutEvent::Promote { epoch: 3 },
            RolloutEvent::Rollback {
                epoch: 4,
                reason: RollbackReason::AlarmDrop,
            },
            RolloutEvent::Rollback {
                epoch: 5,
                reason: RollbackReason::Operator,
            },
        ] {
            let mut buf = Vec::new();
            ev.encode(&mut buf);
            assert_eq!(RolloutEvent::decode(&buf).unwrap(), ev);
        }
    }

    #[test]
    fn event_truncation_is_detected() {
        let mut buf = Vec::new();
        sample_event().encode(&mut buf);
        for cut in 0..buf.len() {
            assert!(RolloutEvent::decode(&buf[..cut]).is_err(), "cut {cut}");
        }
        buf.push(0);
        assert_eq!(RolloutEvent::decode(&buf), Err(CodecError::TrailingBytes));
    }

    #[test]
    fn epoch_state_roundtrips() {
        let mut thresholds = BTreeMap::new();
        thresholds.insert(2, 40.0);
        let e = EpochState {
            last_epoch: 5,
            candidate: Some(CandidateState {
                epoch: 5,
                soak_start: 10,
                soak_end: 50,
                thresholds,
                expected_windows: 40,
                stats: GateStats {
                    windows: 17,
                    incumbent_alarms: 2,
                    candidate_alarms: 1,
                    sheds: 3,
                },
            }),
            history: vec![
                EpochRecord {
                    epoch: 3,
                    outcome: EpochOutcome::Promoted,
                    stats: GateStats::default(),
                    expected_windows: 12,
                },
                EpochRecord {
                    epoch: 4,
                    outcome: EpochOutcome::RolledBack(RollbackReason::FpIncrease),
                    stats: GateStats {
                        windows: 9,
                        incumbent_alarms: 0,
                        candidate_alarms: 4,
                        sheds: 0,
                    },
                    expected_windows: 9,
                },
            ],
        };
        let mut buf = Vec::new();
        encode_epoch(&mut buf, &e);
        let mut r = Reader::new(&buf);
        let back = decode_epoch(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, e);
        assert_eq!(back.phase(), Phase::Canary);
        assert_eq!(EpochState::default().phase(), Phase::Idle);
    }

    #[test]
    fn gate_ordering_and_verdicts() {
        let gate = HealthGate::default();
        let ok = GateStats {
            windows: 100,
            incumbent_alarms: 2,
            candidate_alarms: 3,
            sheds: 0,
        };
        assert_eq!(gate.decide(&ok, 100), Ok(()));
        // Coverage failure wins over everything else.
        let sparse = GateStats { windows: 10, ..ok };
        assert_eq!(gate.decide(&sparse, 100), Err(RollbackReason::LowCoverage));
        let shed = GateStats { windows: 95, sheds: 20, ..ok };
        assert_eq!(gate.decide(&shed, 100), Err(RollbackReason::ShedRate));
        let noisy = GateStats {
            windows: 100,
            incumbent_alarms: 1,
            candidate_alarms: 30,
            sheds: 0,
        };
        assert_eq!(gate.decide(&noisy, 100), Err(RollbackReason::FpIncrease));
        let silenced = GateStats {
            windows: 100,
            incumbent_alarms: 30,
            candidate_alarms: 1,
            sheds: 0,
        };
        assert_eq!(gate.decide(&silenced, 100), Err(RollbackReason::AlarmDrop));
    }

    #[test]
    fn soak_completion_counts_losses() {
        let mut c = CandidateState {
            epoch: 1,
            soak_start: 0,
            soak_end: 10,
            thresholds: BTreeMap::new(),
            expected_windows: 10,
            stats: GateStats::default(),
        };
        assert!(!c.soak_complete());
        c.stats.windows = 7;
        c.stats.sheds = 2;
        assert!(!c.soak_complete());
        c.stats.sheds = 3;
        assert!(c.soak_complete());
    }
}
