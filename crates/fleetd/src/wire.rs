//! Cluster wire protocol: length-prefixed, CRC-framed messages between
//! the coordinator and worker nodes, with a resynchronizing streaming
//! decoder hardened against adversarial length prefixes.
//!
//! The frame layout reuses the `WLR1` framing discipline of the WAL
//! (magic, little-endian payload length, CRC-32 over the payload) under a
//! distinct magic so a wire capture can never be mistaken for a journal
//! file:
//!
//! ```text
//! "CLW1" (4B) | payload_len u32 LE | crc32(payload) u32 LE | payload
//! ```
//!
//! where the payload is one tag byte (0 = batch, 1 = ack, 2 = heartbeat)
//! followed by the message body. Unlike the WAL — where the first defect
//! ends replay, because everything behind it is a torn tail from a single
//! writer — the wire is a *stream under active corruption*: a flipped
//! byte must cost one frame, not the connection. [`WireDecoder`] therefore
//! resynchronizes: on any framing defect it skips forward to the next
//! candidate magic and keeps decoding, counting every skipped byte.
//!
//! Hardening against adversarial length prefixes: the decoder never
//! allocates from a declared length. A length field larger than
//! [`MAX_WIRE_PAYLOAD`] is a framing defect (resync), and a plausible
//! length merely *waits* for that many bytes to actually arrive — memory
//! is bounded by bytes genuinely received, never by what a forged header
//! promises. The structural decoders below inherit the same rule (a
//! batch's window count is checked against `MAX_BATCH_WINDOWS` before any
//! allocation).

use crate::codec::{crc32, put_u32, put_u64, CodecError, Reader, WindowBatch};
use crate::daemon::Disposition;

/// Wire frame magic: "CLW1" (CLuster Wire v1).
pub const WIRE_MAGIC: [u8; 4] = *b"CLW1";
/// Fixed bytes before the payload: magic + len + crc.
pub const WIRE_HEADER_LEN: usize = 12;
/// Sanity bound on a wire payload. Cluster messages are small (a batch is
/// at most a week of windows); a larger declared length means the length
/// field itself is damaged or hostile, and is treated as a framing defect
/// rather than an allocation request.
pub const MAX_WIRE_PAYLOAD: u32 = 1 << 20;

/// One coordinator↔node message.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterMsg {
    /// Coordinator → node: apply this batch. `epoch` is the assignment
    /// epoch under which the destination owned the batch's host when the
    /// frame was sent; the node echoes it in the ack so the coordinator
    /// can fence acks that raced a handoff.
    Batch {
        /// Destination node id.
        node: u32,
        /// Assignment epoch of the batch's host at send time.
        epoch: u32,
        /// The window batch itself.
        batch: WindowBatch,
    },
    /// Node → coordinator: a batch resolved with this disposition.
    Ack {
        /// Source node id.
        node: u32,
        /// Assignment epoch echoed from the triggering [`ClusterMsg::Batch`].
        epoch: u32,
        /// Host the batch belonged to.
        host: u32,
        /// The batch's sequence number.
        seq: u64,
        /// Terminal disposition (see [`Disposition`]).
        disposition: Disposition,
    },
    /// Node → coordinator: liveness beacon.
    Heartbeat {
        /// Source node id.
        node: u32,
        /// Node-local tick counter at send time (monotone per lifetime;
        /// operational telemetry, not part of any determinism contract).
        ticks: u64,
    },
}

fn disposition_code(d: Disposition) -> u8 {
    match d {
        Disposition::Applied => 0,
        Disposition::Duplicate => 1,
        Disposition::Quarantined => 2,
        Disposition::ShedOverload => 3,
        Disposition::ShedDark => 4,
        Disposition::Rejected => 5,
    }
}

fn disposition_from_code(code: u8) -> Result<Disposition, CodecError> {
    Ok(match code {
        0 => Disposition::Applied,
        1 => Disposition::Duplicate,
        2 => Disposition::Quarantined,
        3 => Disposition::ShedOverload,
        4 => Disposition::ShedDark,
        5 => Disposition::Rejected,
        _ => return Err(CodecError::BadDiscriminant),
    })
}

impl ClusterMsg {
    /// Serialise into `out`: tag byte + message body.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ClusterMsg::Batch { node, epoch, batch } => {
                out.push(0);
                put_u32(out, *node);
                put_u32(out, *epoch);
                batch.encode(out);
            }
            ClusterMsg::Ack {
                node,
                epoch,
                host,
                seq,
                disposition,
            } => {
                out.push(1);
                put_u32(out, *node);
                put_u32(out, *epoch);
                put_u32(out, *host);
                put_u64(out, *seq);
                out.push(disposition_code(*disposition));
            }
            ClusterMsg::Heartbeat { node, ticks } => {
                out.push(2);
                put_u32(out, *node);
                put_u64(out, *ticks);
            }
        }
    }

    /// Deserialise from exactly `buf`.
    pub fn decode(buf: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(buf);
        match r.u8()? {
            0 => {
                let node = r.u32()?;
                let epoch = r.u32()?;
                let batch = WindowBatch::decode(r.bytes(r.remaining())?)?;
                Ok(ClusterMsg::Batch { node, epoch, batch })
            }
            1 => {
                let node = r.u32()?;
                let epoch = r.u32()?;
                let host = r.u32()?;
                let seq = r.u64()?;
                let disposition = disposition_from_code(r.u8()?)?;
                r.finish()?;
                Ok(ClusterMsg::Ack {
                    node,
                    epoch,
                    host,
                    seq,
                    disposition,
                })
            }
            2 => {
                let node = r.u32()?;
                let ticks = r.u64()?;
                r.finish()?;
                Ok(ClusterMsg::Heartbeat { node, ticks })
            }
            _ => Err(CodecError::BadDiscriminant),
        }
    }
}

/// Build the on-wire frame for one message.
pub fn frame_msg(msg: &ClusterMsg) -> Vec<u8> {
    let mut payload = Vec::new();
    msg.encode(&mut payload);
    let mut frame = Vec::with_capacity(WIRE_HEADER_LEN + payload.len());
    frame.extend_from_slice(&WIRE_MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Decoder counters (operational telemetry; exported under
/// `fleetd_cluster_wire_*`, outside the determinism contract).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Frames decoded into messages.
    pub frames_decoded: u64,
    /// Resynchronization events (one per framing/structural defect).
    pub resyncs: u64,
    /// Bytes skipped while hunting for the next magic.
    pub skipped_bytes: u64,
}

/// Streaming frame decoder with resync-on-defect.
///
/// Feed arbitrary byte chunks with [`WireDecoder::push`] and drain
/// messages with [`WireDecoder::next`]. Corrupt frames (bad magic,
/// implausible length, CRC mismatch, undecodable payload) cost exactly
/// the bytes up to the next candidate magic. Memory is bounded by
/// unconsumed received bytes: the consumed prefix is compacted on every
/// push, and no allocation is ever sized from a declared length field.
#[derive(Debug, Default)]
pub struct WireDecoder {
    buf: Vec<u8>,
    pos: usize,
    stats: WireStats,
    stall_age: u64,
}

impl WireDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append received bytes, compacting the already-consumed prefix so
    /// the buffer never retains decoded frames.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Decode the next complete, valid message, resynchronizing past any
    /// defects. Returns `None` when the buffer holds no complete frame
    /// (more bytes must arrive).
    pub fn next(&mut self) -> Option<ClusterMsg> {
        loop {
            let rest = &self.buf[self.pos..];
            if rest.len() < WIRE_HEADER_LEN {
                return None;
            }
            if rest[..4] != WIRE_MAGIC {
                self.resync();
                continue;
            }
            let len = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
            if len > MAX_WIRE_PAYLOAD {
                // A forged length is a defect, not an allocation request.
                self.resync();
                continue;
            }
            let total = WIRE_HEADER_LEN + len as usize;
            if rest.len() < total {
                // Plausible length, payload not fully here yet: wait for
                // real bytes instead of trusting the prefix. If the
                // length was a lie, later traffic completes the span and
                // the CRC check below rejects it.
                return None;
            }
            let crc = u32::from_le_bytes([rest[8], rest[9], rest[10], rest[11]]);
            let payload = &rest[WIRE_HEADER_LEN..total];
            if crc32(payload) != crc {
                self.resync();
                continue;
            }
            match ClusterMsg::decode(payload) {
                Ok(msg) => {
                    self.pos += total;
                    self.stats.frames_decoded += 1;
                    return Some(msg);
                }
                Err(_) => {
                    self.resync();
                    continue;
                }
            }
        }
    }

    /// Skip one byte, then scan to the next candidate magic (or to within
    /// a partial magic of the buffer end, where more bytes must arrive).
    fn resync(&mut self) {
        self.stats.resyncs += 1;
        let start = self.pos;
        self.pos += 1;
        while self.buf.len() - self.pos >= 4 {
            if self.buf[self.pos..self.pos + 4] == WIRE_MAGIC {
                break;
            }
            self.pos += 1;
        }
        self.stats.skipped_bytes += (self.pos - start) as u64;
    }

    /// True when decode is blocked mid-frame: a plausible header at the
    /// read position declares more payload than has arrived, so
    /// [`WireDecoder::next`] returns `None` while real frames behind the
    /// hungry header sit swallowed as its phantom payload.
    pub fn starved(&self) -> bool {
        let rest = &self.buf[self.pos..];
        if rest.len() < WIRE_HEADER_LEN || rest[..4] != WIRE_MAGIC {
            return false;
        }
        let len = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        len <= MAX_WIRE_PAYLOAD && rest.len() < WIRE_HEADER_LEN + len as usize
    }

    /// Tick the starvation clock; call once per transport tick after
    /// draining [`WireDecoder::next`]. A frame that stays incomplete for
    /// more than `max_age` consecutive ticks is declared corrupt: its
    /// header is resynced past, releasing anything it had swallowed
    /// (drain `next` again when this returns `true`).
    ///
    /// Without this, one bit-flip in a length field head-of-line-blocks
    /// the whole stream for as long as the declared payload takes to
    /// "arrive" — on a trickle link that is thousands of ticks of
    /// heartbeat starvation, enough to declare every healthy sender dead.
    /// On a transport that delivers frames atomically, any cross-tick
    /// starvation is already proof of corruption.
    pub fn expire_stalled(&mut self, max_age: u64) -> bool {
        if !self.starved() {
            self.stall_age = 0;
            return false;
        }
        self.stall_age += 1;
        if self.stall_age <= max_age {
            return false;
        }
        self.stall_age = 0;
        self.resync();
        true
    }

    /// Unconsumed bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decoder counters so far.
    pub fn stats(&self) -> WireStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Week;

    fn msg_batch(host: u32, seq: u64) -> ClusterMsg {
        ClusterMsg::Batch {
            node: 2,
            epoch: 7,
            batch: WindowBatch {
                host,
                seq,
                week: Week::Train,
                start: 4,
                counts: vec![1, 2, 3],
                poison: false,
            },
        }
    }

    #[test]
    fn every_message_kind_roundtrips() {
        let msgs = [
            msg_batch(9, 3),
            ClusterMsg::Ack {
                node: 1,
                epoch: 5,
                host: 9,
                seq: 3,
                disposition: Disposition::Applied,
            },
            ClusterMsg::Heartbeat { node: 3, ticks: 41 },
        ];
        let mut dec = WireDecoder::new();
        for m in &msgs {
            dec.push(&frame_msg(m));
        }
        for m in &msgs {
            assert_eq!(dec.next().as_ref(), Some(m));
        }
        assert_eq!(dec.next(), None);
        assert_eq!(dec.stats().resyncs, 0);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn all_dispositions_roundtrip() {
        for d in [
            Disposition::Applied,
            Disposition::Duplicate,
            Disposition::Quarantined,
            Disposition::ShedOverload,
            Disposition::ShedDark,
            Disposition::Rejected,
        ] {
            let m = ClusterMsg::Ack {
                node: 0,
                epoch: 0,
                host: 1,
                seq: 1,
                disposition: d,
            };
            let mut payload = Vec::new();
            m.encode(&mut payload);
            assert_eq!(ClusterMsg::decode(&payload).unwrap(), m);
        }
        assert!(disposition_from_code(6).is_err());
    }

    #[test]
    fn corrupt_frame_costs_one_frame_not_the_stream() {
        let a = frame_msg(&msg_batch(1, 1));
        let mut b = frame_msg(&msg_batch(2, 1));
        let c = frame_msg(&msg_batch(3, 1));
        b[WIRE_HEADER_LEN + 2] ^= 0xFF; // corrupt payload of the middle frame
        let mut dec = WireDecoder::new();
        dec.push(&a);
        dec.push(&b);
        dec.push(&c);
        assert_eq!(dec.next(), Some(msg_batch(1, 1)));
        assert_eq!(dec.next(), Some(msg_batch(3, 1)), "decoder must resync past frame b");
        assert_eq!(dec.next(), None);
        assert!(dec.stats().resyncs >= 1);
        assert!(dec.stats().skipped_bytes as usize >= b.len() - 4);
    }

    #[test]
    fn forged_huge_length_does_not_allocate_or_stall() {
        // Header declares u32::MAX payload bytes; decoder must treat it
        // as a defect and resync to the real frame behind it.
        let mut evil = Vec::new();
        evil.extend_from_slice(&WIRE_MAGIC);
        evil.extend_from_slice(&u32::MAX.to_le_bytes());
        evil.extend_from_slice(&0u32.to_le_bytes());
        let good = frame_msg(&ClusterMsg::Heartbeat { node: 0, ticks: 1 });
        let mut dec = WireDecoder::new();
        dec.push(&evil);
        dec.push(&good);
        assert_eq!(dec.next(), Some(ClusterMsg::Heartbeat { node: 0, ticks: 1 }));
        assert!(dec.buffered() < WIRE_HEADER_LEN);
    }

    #[test]
    fn plausible_length_waits_for_real_bytes() {
        let frame = frame_msg(&msg_batch(5, 2));
        let mut dec = WireDecoder::new();
        // Feed the frame one byte at a time: no message until complete,
        // and the buffer never exceeds what was actually received.
        for (i, b) in frame.iter().enumerate() {
            dec.push(&[*b]);
            assert!(dec.buffered() <= i + 1);
            if i + 1 < frame.len() {
                assert_eq!(dec.next(), None, "byte {i}");
            }
        }
        assert_eq!(dec.next(), Some(msg_batch(5, 2)));
    }

    #[test]
    fn pure_garbage_is_skipped_with_accounting() {
        let garbage: Vec<u8> = (0u32..4096).map(|i| (i.wrapping_mul(31) % 251) as u8).collect();
        let good = frame_msg(&ClusterMsg::Heartbeat { node: 7, ticks: 9 });
        let mut dec = WireDecoder::new();
        dec.push(&garbage);
        dec.push(&good);
        assert_eq!(dec.next(), Some(ClusterMsg::Heartbeat { node: 7, ticks: 9 }));
        let s = dec.stats();
        assert_eq!(s.frames_decoded, 1);
        assert!(s.skipped_bytes >= garbage.len() as u64 - 4);
    }

    #[test]
    fn stall_expiry_releases_frames_swallowed_by_a_hungry_header() {
        let good = frame_msg(&ClusterMsg::Heartbeat { node: 1, ticks: 5 });
        // A frame whose length field took a bit-flip in flight: still
        // plausible (< MAX_WIRE_PAYLOAD), so the decoder legitimately
        // waits — and the good frame behind it reads as phantom payload.
        let mut hungry = frame_msg(&ClusterMsg::Heartbeat { node: 0, ticks: 4 });
        hungry[6] ^= 0x04; // len 30 -> 262_174
        let mut dec = WireDecoder::new();
        dec.push(&hungry);
        dec.push(&good);
        assert_eq!(dec.next(), None);
        assert!(dec.starved());
        // Two quiet ticks of allowance, then the header is condemned.
        assert!(!dec.expire_stalled(2));
        assert_eq!(dec.next(), None);
        assert!(!dec.expire_stalled(2));
        assert!(dec.expire_stalled(2), "third starved tick must expire");
        assert_eq!(dec.next(), Some(ClusterMsg::Heartbeat { node: 1, ticks: 5 }));
        assert!(!dec.starved());
        assert!(!dec.expire_stalled(2), "clock must reset after recovery");
        assert!(dec.stats().resyncs >= 1);
    }
}
