//! Write-ahead log: length-prefixed, CRC-framed records with torn-tail
//! recovery.
//!
//! Every applied batch is framed and appended before its completion is
//! acknowledged, so a crash after the append loses nothing, and a crash
//! before (or during) it loses only work the source will redeliver.
//! Threshold-rollout transitions (canary start, promote, rollback) are
//! journaled as a second record kind in the *same* log, interleaved in
//! order with the batches, so replay reconstructs rollout state changes
//! at exactly the point in the batch stream where they happened. The
//! frame layout is
//!
//! ```text
//! "WLR1" (4B) | payload_len u32 LE | crc32(payload) u32 LE | payload
//! ```
//!
//! where the payload is one tag byte (0 = window batch, 1 = rollout
//! event, 2 = operator command) followed by the record body.
//!
//! Replay walks frames from the start and stops at the first defect —
//! truncated header, bad magic, implausible length, short payload, or CRC
//! mismatch. Everything before the defect is intact (CRC-verified);
//! everything from it onward is a torn tail from a crash mid-append and is
//! truncated away with a warning count, never an error. A kill mid-frame
//! therefore costs at most one un-acked batch, which redelivery restores.
//!
//! Crash injection is cooperative: [`KillSwitch`] meters every byte the
//! writer intends to append across the *lifetime* of a scenario (surviving
//! restarts and snapshot-triggered truncations, which reset the file but
//! not the meter), so a seeded schedule can name "die 3 bytes into the
//! frame that crosses lifetime offset 40 000" and hit it reproducibly.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use faultsim::KillPoint;

use crate::codec::{crc32, CodecError, WindowBatch};
use crate::control::ControlCommand;
use crate::epoch::RolloutEvent;

/// Frame magic: "WLR1".
pub const WAL_MAGIC: [u8; 4] = *b"WLR1";
/// Fixed bytes before the payload: magic + len + crc.
pub const WAL_HEADER_LEN: usize = 12;
/// Sanity bound on a frame payload; larger declared lengths mean the
/// length field itself is damaged.
pub const MAX_FRAME_PAYLOAD: u32 = 1 << 24;

/// One journaled record: an applied batch, a rollout transition, or an
/// operator command.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A durably applied window batch (payload tag 0).
    Batch(WindowBatch),
    /// A rollout state transition (payload tag 1).
    Rollout(RolloutEvent),
    /// An operator command from the control plane (payload tag 2),
    /// journaled before it takes effect so recovery replays it at
    /// exactly its point in the batch stream.
    Command(ControlCommand),
}

impl WalRecord {
    /// Serialise into `out`: tag byte + record body.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::Batch(b) => {
                out.push(0);
                b.encode(out);
            }
            WalRecord::Rollout(ev) => {
                out.push(1);
                ev.encode(out);
            }
            WalRecord::Command(cmd) => {
                out.push(2);
                cmd.encode(out);
            }
        }
    }

    /// Deserialise from exactly `buf`.
    pub fn decode(buf: &[u8]) -> Result<Self, CodecError> {
        let (&tag, body) = buf.split_first().ok_or(CodecError::Truncated)?;
        match tag {
            0 => Ok(WalRecord::Batch(WindowBatch::decode(body)?)),
            1 => Ok(WalRecord::Rollout(RolloutEvent::decode(body)?)),
            2 => Ok(WalRecord::Command(ControlCommand::decode(body)?)),
            _ => Err(CodecError::BadDiscriminant),
        }
    }
}

/// Cooperative crash injector threaded through the daemon.
///
/// Owned by the harness, not the daemon, so its byte/batch meters span
/// restarts: re-open the daemon with the same switch (re-armed or not) and
/// offsets keep counting from where the previous incarnation died.
#[derive(Debug)]
pub struct KillSwitch {
    point: Option<KillPoint>,
    fired: bool,
    /// Lifetime bytes the WAL writer has attempted to append.
    wal_bytes: u64,
    /// Lifetime batches applied (and acked, unless suppressed by a kill).
    applied: u64,
    /// Lifetime rollout transition records made durable.
    rollout_events: u64,
    /// Lifetime operator-command records made durable.
    commands: u64,
}

/// What an append attempt should do, as decided by the [`KillSwitch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillVerdict {
    /// Write the whole frame.
    Proceed,
    /// Write only the first `torn` bytes of the frame, then die.
    Kill {
        /// Bytes of the frame to leave behind as a torn tail.
        torn: u32,
    },
}

impl KillSwitch {
    /// A switch that never fires (production behavior).
    pub fn none() -> Self {
        Self {
            point: None,
            fired: false,
            wal_bytes: 0,
            applied: 0,
            rollout_events: 0,
            commands: 0,
        }
    }

    /// A switch armed with one kill point.
    pub fn armed(point: KillPoint) -> Self {
        Self {
            point: Some(point),
            ..Self::none()
        }
    }

    /// Re-arm (or disarm, with `None`) while keeping the lifetime meters,
    /// so multi-kill scenarios keep a single coherent byte timeline.
    pub fn rearm(&mut self, point: Option<KillPoint>) {
        self.point = point;
        self.fired = false;
    }

    /// Whether the armed point has fired.
    pub fn fired(&self) -> bool {
        self.fired
    }

    /// Lifetime WAL bytes metered so far.
    pub fn wal_bytes(&self) -> u64 {
        self.wal_bytes
    }

    /// Lifetime applied batches metered so far.
    pub fn applied_batches(&self) -> u64 {
        self.applied
    }

    /// Lifetime rollout transition records metered so far.
    pub fn rollout_events(&self) -> u64 {
        self.rollout_events
    }

    /// Lifetime operator-command records metered so far.
    pub fn commands(&self) -> u64 {
        self.commands
    }

    /// Meter an intended append of `frame_len` bytes and decide whether
    /// the writer dies inside it.
    pub(crate) fn before_wal_append(&mut self, frame_len: u64) -> KillVerdict {
        let start = self.wal_bytes;
        let verdict = match self.point {
            Some(KillPoint::AtWalByte { offset, torn })
                if !self.fired && start <= offset && offset < start + frame_len =>
            {
                self.fired = true;
                // Leave strictly less than the whole frame so the tail is
                // genuinely torn (a complete frame would just be a valid
                // record).
                let torn = torn.min((frame_len - 1) as u32);
                KillVerdict::Kill { torn }
            }
            _ => KillVerdict::Proceed,
        };
        self.wal_bytes += match verdict {
            KillVerdict::Proceed => frame_len,
            KillVerdict::Kill { torn } => u64::from(torn),
        };
        verdict
    }

    /// Meter one applied batch; returns `true` when the daemon must die
    /// now, with this batch's completion suppressed (it was durably
    /// applied but never acked — redelivery must resolve to a duplicate).
    pub(crate) fn after_batch_applied(&mut self) -> bool {
        self.applied += 1;
        match self.point {
            Some(KillPoint::AfterBatches(n)) if !self.fired && self.applied >= n => {
                self.fired = true;
                true
            }
            _ => false,
        }
    }

    /// Meter one durable rollout transition record; returns `true` when
    /// the daemon must die now, after the record is on disk but before
    /// the in-memory state machine observes success (recovery must replay
    /// the durable transition and converge to the same epoch state).
    pub(crate) fn after_rollout_event(&mut self) -> bool {
        self.rollout_events += 1;
        match self.point {
            Some(KillPoint::AfterRolloutEvents(n)) if !self.fired && self.rollout_events >= u64::from(n) => {
                self.fired = true;
                true
            }
            _ => false,
        }
    }

    /// Meter one durable operator-command record; returns `true` when the
    /// daemon must die now — after the command is on disk and applied,
    /// but before the caller is acknowledged. Recovery must replay the
    /// durable command and converge to the same state (the "kill between
    /// apply and ack" class of the control-plane sweep).
    pub(crate) fn after_command(&mut self) -> bool {
        self.commands += 1;
        match self.point {
            Some(KillPoint::AfterCommands(n)) if !self.fired && self.commands >= u64::from(n) => {
                self.fired = true;
                true
            }
            _ => false,
        }
    }
}

/// What replay recovered from an existing WAL file.
#[derive(Debug)]
pub struct WalReplay {
    /// CRC-verified records, in append order.
    pub records: Vec<WalRecord>,
    /// File length after truncating the torn tail.
    pub valid_bytes: u64,
    /// Bytes discarded as a torn / corrupt tail (0 for a clean log).
    pub torn_bytes: u64,
    /// Why the walk stopped early, if it did.
    pub tail_defect: Option<TailDefect>,
}

/// What raw replay recovered: CRC-verified frame payloads with no
/// structural interpretation (the caller owns the payload grammar — the
/// cluster's assignment journal uses this).
#[derive(Debug)]
pub struct RawReplay {
    /// CRC-verified payloads, in append order.
    pub payloads: Vec<Vec<u8>>,
    /// File length after truncating the torn tail.
    pub valid_bytes: u64,
    /// Bytes discarded as a torn / corrupt tail (0 for a clean log).
    pub torn_bytes: u64,
    /// Why the walk stopped early, if it did.
    pub tail_defect: Option<TailDefect>,
}

/// The defect that terminated a replay walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailDefect {
    /// Fewer than [`WAL_HEADER_LEN`] bytes remained.
    ShortHeader,
    /// Frame magic was not [`WAL_MAGIC`].
    BadMagic,
    /// Declared payload length exceeded [`MAX_FRAME_PAYLOAD`].
    ImplausibleLength,
    /// Payload extended past end of file.
    ShortPayload,
    /// CRC over the payload did not match the header.
    CrcMismatch,
    /// Payload passed CRC but failed structural decode (only possible
    /// with deliberate corruption that preserves the CRC).
    Undecodable(CodecError),
}

/// Append-only WAL writer over one file.
#[derive(Debug)]
pub struct WalWriter {
    path: PathBuf,
    file: File,
    len: u64,
}

/// Outcome of [`WalWriter::append`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendOutcome {
    /// Frame fully written.
    Appended,
    /// The kill switch fired mid-frame; the process must now "die".
    Killed,
}

/// Frame an arbitrary already-encoded payload with the `WLR1` header
/// (magic, length, CRC). This is the framing discipline itself, exposed
/// so other journals — the cluster coordinator's assignment log, the
/// cluster wire protocol — can reuse it without inventing a second,
/// subtly different frame grammar.
pub fn frame_raw(payload: &[u8]) -> Vec<u8> {
    frame_payload(payload)
}

/// Frame an already-encoded record payload.
fn frame_payload(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(WAL_HEADER_LEN + payload.len());
    frame.extend_from_slice(&WAL_MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Build the on-disk frame for one batch record.
pub fn frame_batch(batch: &WindowBatch) -> Vec<u8> {
    let mut payload = vec![0u8];
    batch.encode(&mut payload);
    frame_payload(&payload)
}

/// Build the on-disk frame for one rollout transition record.
pub fn frame_rollout(ev: &RolloutEvent) -> Vec<u8> {
    let mut payload = vec![1u8];
    ev.encode(&mut payload);
    frame_payload(&payload)
}

/// Build the on-disk frame for one operator-command record.
pub fn frame_command(cmd: &ControlCommand) -> Vec<u8> {
    let mut payload = vec![2u8];
    cmd.encode(&mut payload);
    frame_payload(&payload)
}

/// Walk the `WLR1` frames of `bytes` at the framing level only, returning
/// each CRC-verified payload together with the byte offset one past its
/// frame, the length of the valid prefix, and the defect (if any) that
/// stopped the walk. Structural interpretation of the payloads is the
/// caller's job — this is the piece the cluster journal shares with the
/// daemon WAL. Pure function; file truncation is also the caller's job.
pub fn scan_raw_frames(bytes: &[u8]) -> (Vec<(u64, Vec<u8>)>, u64, Option<TailDefect>) {
    let mut payloads = Vec::new();
    let mut pos = 0usize;
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            return (payloads, pos as u64, None);
        }
        if rest.len() < WAL_HEADER_LEN {
            return (payloads, pos as u64, Some(TailDefect::ShortHeader));
        }
        if rest[..4] != WAL_MAGIC {
            return (payloads, pos as u64, Some(TailDefect::BadMagic));
        }
        let len = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len > MAX_FRAME_PAYLOAD {
            return (payloads, pos as u64, Some(TailDefect::ImplausibleLength));
        }
        let crc = u32::from_le_bytes([rest[8], rest[9], rest[10], rest[11]]);
        let total = WAL_HEADER_LEN + len as usize;
        if rest.len() < total {
            return (payloads, pos as u64, Some(TailDefect::ShortPayload));
        }
        let payload = &rest[WAL_HEADER_LEN..total];
        if crc32(payload) != crc {
            return (payloads, pos as u64, Some(TailDefect::CrcMismatch));
        }
        pos += total;
        payloads.push((pos as u64, payload.to_vec()));
    }
}

/// Walk the frames of `bytes`, returning the recovered records, the
/// length of the valid prefix, and the defect (if any) that stopped the
/// walk. Pure function — file truncation is the caller's job.
pub fn scan_frames(bytes: &[u8]) -> (Vec<WalRecord>, u64, Option<TailDefect>) {
    let (payloads, valid, defect) = scan_raw_frames(bytes);
    let mut records = Vec::with_capacity(payloads.len());
    let mut prev_end = 0u64;
    for (end, payload) in payloads {
        match WalRecord::decode(&payload) {
            Ok(r) => records.push(r),
            Err(e) => {
                // A frame that passes CRC but fails structural decode is
                // only possible with deliberate corruption; truncate from
                // the frame's start like any other tail defect.
                return (records, prev_end, Some(TailDefect::Undecodable(e)));
            }
        }
        prev_end = end;
    }
    (records, valid, defect)
}

impl WalWriter {
    /// Open (creating if absent) the WAL at `path`, replay its valid
    /// prefix, truncate any torn tail, and position the writer at the end
    /// of the valid prefix.
    pub fn open(path: &Path) -> std::io::Result<(Self, WalReplay)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (records, valid_bytes, tail_defect) = scan_frames(&bytes);
        let torn_bytes = bytes.len() as u64 - valid_bytes;
        if torn_bytes > 0 {
            file.set_len(valid_bytes)?;
        }
        file.seek(SeekFrom::Start(valid_bytes))?;
        let replay = WalReplay {
            records,
            valid_bytes,
            torn_bytes,
            tail_defect,
        };
        Ok((
            Self {
                path: path.to_path_buf(),
                file,
                len: valid_bytes,
            },
            replay,
        ))
    }

    /// Open (creating if absent) the log at `path` like [`WalWriter::open`],
    /// but replay at the framing level only: payloads are returned
    /// CRC-verified and uninterpreted. Use this for logs whose record
    /// grammar is not [`WalRecord`] — opening such a log with
    /// [`WalWriter::open`] would mis-decode the first record as a batch
    /// and truncate the whole file as an undecodable tail.
    pub fn open_raw(path: &Path) -> std::io::Result<(Self, RawReplay)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (ends, valid_bytes, tail_defect) = scan_raw_frames(&bytes);
        let torn_bytes = bytes.len() as u64 - valid_bytes;
        if torn_bytes > 0 {
            file.set_len(valid_bytes)?;
        }
        file.seek(SeekFrom::Start(valid_bytes))?;
        let replay = RawReplay {
            payloads: ends.into_iter().map(|(_, p)| p).collect(),
            valid_bytes,
            torn_bytes,
            tail_defect,
        };
        Ok((
            Self {
                path: path.to_path_buf(),
                file,
                len: valid_bytes,
            },
            replay,
        ))
    }

    /// Current file length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no frames.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Path this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Frame `batch` and append it, consulting `kill` for a mid-frame
    /// crash. On [`AppendOutcome::Killed`] the torn prefix has been
    /// flushed and the caller must treat the process as dead.
    pub fn append_batch(
        &mut self,
        batch: &WindowBatch,
        kill: &mut KillSwitch,
    ) -> std::io::Result<AppendOutcome> {
        self.append_frame(frame_batch(batch), kill)
    }

    /// Frame a rollout transition and append it, consulting `kill` for a
    /// mid-frame crash.
    pub fn append_rollout(
        &mut self,
        ev: &RolloutEvent,
        kill: &mut KillSwitch,
    ) -> std::io::Result<AppendOutcome> {
        self.append_frame(frame_rollout(ev), kill)
    }

    /// Frame an operator command and append it, consulting `kill` for a
    /// mid-frame crash. The command must be journaled before any
    /// in-memory effect (the same write-ahead discipline as batches).
    pub fn append_command(
        &mut self,
        cmd: &ControlCommand,
        kill: &mut KillSwitch,
    ) -> std::io::Result<AppendOutcome> {
        self.append_frame(frame_command(cmd), kill)
    }

    /// Frame an arbitrary pre-encoded payload and append it, consulting
    /// `kill` for a mid-frame crash. The payload's structure is the
    /// caller's contract (the cluster journal appends assignment events
    /// through this); the framing, CRC, torn-tail, and kill-switch
    /// discipline is identical to the batch/rollout paths — one byte
    /// meter covers every append in the process.
    pub fn append_raw(
        &mut self,
        payload: &[u8],
        kill: &mut KillSwitch,
    ) -> std::io::Result<AppendOutcome> {
        self.append_frame(frame_payload(payload), kill)
    }

    fn append_frame(
        &mut self,
        frame: Vec<u8>,
        kill: &mut KillSwitch,
    ) -> std::io::Result<AppendOutcome> {
        match kill.before_wal_append(frame.len() as u64) {
            KillVerdict::Proceed => {
                self.file.write_all(&frame)?;
                self.file.flush()?;
                self.len += frame.len() as u64;
                Ok(AppendOutcome::Appended)
            }
            KillVerdict::Kill { torn } => {
                self.file.write_all(&frame[..torn as usize])?;
                self.file.flush()?;
                self.len += u64::from(torn);
                Ok(AppendOutcome::Killed)
            }
        }
    }

    /// Discard all frames (called right after a snapshot makes them
    /// redundant).
    pub fn reset(&mut self) -> std::io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.len = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Week;

    fn batch(host: u32, seq: u64, counts: &[u64]) -> WindowBatch {
        WindowBatch {
            host,
            seq,
            week: Week::Train,
            start: 0,
            counts: counts.to_vec(),
            poison: false,
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "fleetd-wal-{}-{}-{}",
            tag,
            std::process::id(),
            n
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_replay_roundtrip() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("wal.bin");
        let batches = vec![batch(1, 1, &[5, 6]), batch(2, 1, &[]), batch(1, 2, &[9])];
        {
            let (mut w, replay) = WalWriter::open(&path).unwrap();
            assert!(replay.records.is_empty());
            let mut kill = KillSwitch::none();
            for b in &batches {
                assert_eq!(w.append_batch(b, &mut kill).unwrap(), AppendOutcome::Appended);
            }
        }
        let (_, replay) = WalWriter::open(&path).unwrap();
        let expected: Vec<WalRecord> = batches.into_iter().map(WalRecord::Batch).collect();
        assert_eq!(replay.records, expected);
        assert_eq!(replay.torn_bytes, 0);
        assert!(replay.tail_defect.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rollout_records_interleave_with_batches_in_order() {
        let dir = tmpdir("rollout");
        let path = dir.join("wal.bin");
        let ev = RolloutEvent::Promote { epoch: 2 };
        {
            let (mut w, _) = WalWriter::open(&path).unwrap();
            let mut kill = KillSwitch::none();
            w.append_batch(&batch(1, 1, &[3]), &mut kill).unwrap();
            w.append_rollout(&ev, &mut kill).unwrap();
            w.append_batch(&batch(1, 2, &[4]), &mut kill).unwrap();
        }
        let (_, replay) = WalWriter::open(&path).unwrap();
        assert_eq!(
            replay.records,
            vec![
                WalRecord::Batch(batch(1, 1, &[3])),
                WalRecord::Rollout(ev),
                WalRecord::Batch(batch(1, 2, &[4])),
            ]
        );
        assert!(replay.tail_defect.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn command_records_interleave_and_roundtrip() {
        let dir = tmpdir("command");
        let path = dir.join("wal.bin");
        let cmd = ControlCommand::PinThreshold { host: 4, t: 7.25 };
        {
            let (mut w, _) = WalWriter::open(&path).unwrap();
            let mut kill = KillSwitch::none();
            w.append_batch(&batch(1, 1, &[3]), &mut kill).unwrap();
            w.append_command(&cmd, &mut kill).unwrap();
            w.append_command(&ControlCommand::DrainShard { shard: 1 }, &mut kill)
                .unwrap();
        }
        let (_, replay) = WalWriter::open(&path).unwrap();
        assert_eq!(
            replay.records,
            vec![
                WalRecord::Batch(batch(1, 1, &[3])),
                WalRecord::Command(cmd),
                WalRecord::Command(ControlCommand::DrainShard { shard: 1 }),
            ]
        );
        assert!(replay.tail_defect.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kill_switch_fires_after_commands() {
        let mut kill = KillSwitch::armed(KillPoint::AfterCommands(2));
        assert!(!kill.after_command());
        assert!(kill.after_command());
        assert!(kill.fired());
        assert_eq!(kill.commands(), 2);
        // Re-arming keeps the lifetime meter, like the other counters.
        kill.rearm(Some(KillPoint::AfterCommands(3)));
        assert!(kill.after_command());
        assert_eq!(kill.commands(), 3);
    }

    #[test]
    fn every_torn_prefix_recovers_the_full_frames_before_it() {
        // Write 3 frames, then re-create the file truncated at every
        // possible byte length; replay must always return exactly the
        // frames wholly inside the prefix.
        let frames: Vec<Vec<u8>> = [batch(1, 1, &[1]), batch(2, 1, &[2, 3]), batch(3, 1, &[])]
            .iter()
            .map(frame_batch)
            .collect();
        let mut all = Vec::new();
        let mut boundaries = vec![0usize];
        for f in &frames {
            all.extend_from_slice(f);
            boundaries.push(all.len());
        }
        for cut in 0..=all.len() {
            let (records, valid, defect) = scan_frames(&all[..cut]);
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(records.len(), whole, "cut {cut}");
            assert_eq!(valid as usize, boundaries[whole], "cut {cut}");
            let at_boundary = boundaries.contains(&cut);
            assert_eq!(defect.is_none(), at_boundary, "cut {cut}");
        }
    }

    #[test]
    fn corrupt_byte_in_payload_truncates_from_that_frame() {
        let frames: Vec<Vec<u8>> = [batch(1, 1, &[1, 2, 3]), batch(2, 1, &[4])]
            .iter()
            .map(frame_batch)
            .collect();
        let mut all = frames.concat();
        // Flip a payload byte inside frame 0.
        all[WAL_HEADER_LEN + 2] ^= 0xFF;
        let (records, valid, defect) = scan_frames(&all);
        assert!(records.is_empty());
        assert_eq!(valid, 0);
        assert_eq!(defect, Some(TailDefect::CrcMismatch));
    }

    #[test]
    fn open_truncates_torn_tail_on_disk() {
        let dir = tmpdir("truncate");
        let path = dir.join("wal.bin");
        let good = frame_batch(&batch(7, 1, &[11, 12]));
        let torn = &frame_batch(&batch(7, 2, &[13]))[..5];
        let mut bytes = good.clone();
        bytes.extend_from_slice(torn);
        std::fs::write(&path, &bytes).unwrap();

        let (w, replay) = WalWriter::open(&path).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.torn_bytes, torn.len() as u64);
        assert_eq!(replay.tail_defect, Some(TailDefect::ShortHeader));
        assert_eq!(w.len(), good.len() as u64);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            good.len() as u64,
            "torn tail must be physically truncated"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kill_switch_tears_the_crossing_frame() {
        let dir = tmpdir("kill");
        let path = dir.join("wal.bin");
        let b1 = batch(1, 1, &[1]);
        let b2 = batch(1, 2, &[2]);
        let f1_len = frame_batch(&b1).len() as u64;

        let (mut w, _) = WalWriter::open(&path).unwrap();
        let mut kill = KillSwitch::armed(KillPoint::AtWalByte {
            offset: f1_len + 3,
            torn: 7,
        });
        assert_eq!(w.append_batch(&b1, &mut kill).unwrap(), AppendOutcome::Appended);
        assert_eq!(w.append_batch(&b2, &mut kill).unwrap(), AppendOutcome::Killed);
        assert!(kill.fired());
        drop(w);

        let (_, replay) = WalWriter::open(&path).unwrap();
        assert_eq!(replay.records, vec![WalRecord::Batch(b1)]);
        assert_eq!(replay.torn_bytes, 7);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kill_switch_meters_survive_rearm() {
        let mut kill = KillSwitch::armed(KillPoint::AfterBatches(2));
        assert!(!kill.after_batch_applied());
        assert!(kill.after_batch_applied());
        assert!(kill.fired());
        assert_eq!(kill.applied_batches(), 2);
        kill.rearm(Some(KillPoint::AfterBatches(3)));
        assert!(!kill.fired());
        assert!(kill.after_batch_applied());
        assert_eq!(kill.applied_batches(), 3);
    }

    #[test]
    fn torn_write_never_leaves_a_whole_frame() {
        // Even when the schedule asks for more torn bytes than the frame
        // holds, the append must leave a strictly incomplete frame.
        let dir = tmpdir("clamp");
        let path = dir.join("wal.bin");
        let b = batch(9, 1, &[]);
        let frame_len = frame_batch(&b).len() as u64;
        let (mut w, _) = WalWriter::open(&path).unwrap();
        let mut kill = KillSwitch::armed(KillPoint::AtWalByte {
            offset: 0,
            torn: u32::MAX,
        });
        assert_eq!(w.append_batch(&b, &mut kill).unwrap(), AppendOutcome::Killed);
        assert_eq!(w.len(), frame_len - 1);
        drop(w);
        let (_, replay) = WalWriter::open(&path).unwrap();
        assert!(replay.records.is_empty());
        assert_eq!(replay.torn_bytes, frame_len - 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
