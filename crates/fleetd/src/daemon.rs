//! The daemon proper: a deterministic event loop over sharded host state.
//!
//! `fleetd` is a virtual-clock state machine, not a thread pool: the
//! harness drives it by [`offer`](Daemon::offer)ing batches and calling
//! [`tick`](Daemon::tick), and every decision — shard scheduling, shed
//! deadlines, backoff expiry, snapshot cadence — is a pure function of
//! the offer/tick sequence. That is what makes the headline crash
//! property testable at all: two runs with the same input schedule are
//! bit-identical, so a run killed at an arbitrary WAL byte and restarted
//! must reconverge to the uninterrupted run's exact outputs.
//!
//! The per-batch pipeline and its crash windows:
//!
//! ```text
//! pop → stale? → apply (catch_unwind) → WAL append → completion
//!                │                      │             │
//!                │ panic: strike or     │ crash here: │ crash here: batch
//!                │ quarantine; never    │ batch lost  │ durable but unacked
//!                │ reaches the WAL      │ from memory │ → redelivered →
//!                │                      │ & WAL →     │ seq-deduped as
//!                │                      │ redelivered │ Duplicate
//! ```
//!
//! Every window is covered by at-least-once redelivery plus idempotent
//! apply, which is the whole recovery argument in one line.

use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use hids_metrics::{EventRing, Registry};

use crate::codec::{Week, WindowBatch};
use crate::control::{check_config, ControlCommand, ControlStats};
use crate::epoch::{
    CandidateState, EpochOutcome, EpochRecord, EpochState, GateStats, Phase, RollbackReason,
    RolloutConfig, RolloutEvent,
};
use crate::queue::{Admit, Popped, QueueConfig, ShardQueue};
use crate::snapshot::{self, Snapshot};
use crate::state::{ApplyConfig, ApplyOutcome, HostState, ShadowCtx, ShardState};
use crate::supervisor::{SupervisorConfig, Worker, WorkerStatus};
use crate::wal::{AppendOutcome, KillSwitch, WalRecord, WalWriter};

/// Full daemon configuration.
#[derive(Debug, Clone, Copy)]
pub struct DaemonConfig {
    /// Number of shard workers; hosts are routed by `host % n_shards`.
    pub n_shards: usize,
    /// Windows per week.
    pub n_windows: u32,
    /// Quantile for per-host live thresholds.
    pub threshold_q: f64,
    /// Write a snapshot after at least this many applied batches.
    pub snapshot_every: u64,
    /// Per-shard queue sizing and shedding.
    pub queue: QueueConfig,
    /// Supervision tunables.
    pub supervisor: SupervisorConfig,
    /// Canary cohort sizing and promotion health gates.
    pub rollout: RolloutConfig,
    /// Bounded-memory per-host accumulation: `Some(eps)` stores each
    /// host's weeks as rank sketches with that error budget instead of
    /// exact window maps (see [`ApplyConfig::sketch_eps`]). `None` is the
    /// exact default.
    pub sketch_eps: Option<f64>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            n_shards: 4,
            n_windows: 672,
            threshold_q: 0.99,
            snapshot_every: 64,
            queue: QueueConfig::default(),
            supervisor: SupervisorConfig::default(),
            rollout: RolloutConfig::default(),
            sketch_eps: None,
        }
    }
}

/// Daemon failure modes.
#[derive(Debug)]
pub enum DaemonError {
    /// Filesystem error on the WAL or a snapshot.
    Io(std::io::Error),
    /// The [`KillSwitch`] fired: the simulated process is dead. The
    /// daemon instance must be dropped and recovered via [`Daemon::open`].
    Killed,
    /// Invalid configuration.
    Config(&'static str),
}

impl From<std::io::Error> for DaemonError {
    fn from(e: std::io::Error) -> Self {
        DaemonError::Io(e)
    }
}

impl core::fmt::Display for DaemonError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DaemonError::Io(e) => write!(f, "daemon i/o error: {e}"),
            DaemonError::Killed => write!(f, "kill switch fired"),
            DaemonError::Config(msg) => write!(f, "bad daemon config: {msg}"),
        }
    }
}

impl std::error::Error for DaemonError {}

/// How one offered batch ultimately resolved. Exactly one completion is
/// emitted per admitted batch (unless a crash intervenes, in which case
/// redelivery produces one on a later attempt).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Host the batch belonged to.
    pub host: u32,
    /// The batch's sequence number.
    pub seq: u64,
    /// How it resolved.
    pub disposition: Disposition,
}

/// Terminal classification of an admitted batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Applied and durable in the WAL.
    Applied,
    /// Sequence number already applied (redelivery after a lost ack).
    Duplicate,
    /// Panicked the worker `quarantine_strikes` times; parked.
    Quarantined,
    /// Shed: sat queued past the freshness deadline.
    ShedOverload,
    /// Shed: its shard's circuit breaker had tripped.
    ShedDark,
    /// Structurally invalid (e.g. windows out of range).
    Rejected,
}

/// Monotone counters over one daemon lifetime.
///
/// These are operational telemetry, not part of the determinism
/// contract — a killed-and-recovered scenario reports different counter
/// totals than an uninterrupted one (redeliveries become duplicates); it
/// is the per-host *outputs* that must match. The counters obey the
/// conservation law checked by [`DaemonStats::conservation_holds`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DaemonStats {
    /// Batches accepted into a queue (or shed on arrival at a dark
    /// shard). Excludes overflow rejections.
    pub admitted: u64,
    /// Batches refused outright at the hard capacity backstop.
    pub overflow: u64,
    /// Batches applied and made durable.
    pub applied: u64,
    /// Batches deduplicated by sequence number.
    pub duplicates: u64,
    /// Batches quarantined after repeated panics.
    pub quarantined: u64,
    /// Batches shed for staleness under overload.
    pub shed_overload: u64,
    /// Batches shed because their shard was dark.
    pub shed_dark: u64,
    /// Batches rejected as structurally invalid.
    pub rejected: u64,
    /// Circuit-breaker trips (shards lost this lifetime).
    pub breaker_trips: u64,
    /// Snapshots successfully installed.
    pub snapshots_written: u64,
    /// Test batches refused at the canary barrier because their windows
    /// extend past the in-flight candidate's soak end; the source retries
    /// them after the promote/rollback decision.
    pub barrier_deferred: u64,
    /// Batches refused at admission because their shard was drained by
    /// the control plane; the source retries after the undrain.
    pub drain_deferred: u64,
}

impl DaemonStats {
    /// Batches that have reached a terminal disposition.
    pub fn accounted(&self) -> u64 {
        self.applied
            + self.duplicates
            + self.quarantined
            + self.shed_overload
            + self.shed_dark
            + self.rejected
    }

    /// The conservation law: every admitted batch is either terminally
    /// accounted or still sitting in a queue. (Checked at quiescent
    /// points; a batch popped and mid-pipeline would be in neither side.)
    pub fn conservation_holds(&self, in_queues: u64) -> bool {
        self.admitted == self.accounted() + in_queues
    }
}

/// What [`Daemon::open`] reconstructed from disk.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Sequence of the snapshot loaded, if any.
    pub snapshot_seq: Option<u64>,
    /// Newer-but-damaged snapshots skipped over.
    pub snapshots_discarded: u32,
    /// Valid frames found in the WAL.
    pub wal_batches: u64,
    /// Frames that advanced state on replay.
    pub wal_replayed: u64,
    /// Frames already covered by the snapshot (seq-deduped).
    pub wal_duplicates: u64,
    /// Frames rejected as structurally invalid on replay.
    pub wal_rejected: u64,
    /// Frames that panicked replay and were skipped (defensive; the
    /// apply-before-append ordering should make this impossible).
    pub wal_quarantined: u64,
    /// Torn/corrupt tail bytes truncated from the WAL.
    pub wal_torn_bytes: u64,
    /// Rollout transition records replayed from the WAL.
    pub wal_rollout_events: u64,
    /// Operator-command records replayed from the WAL.
    pub wal_commands: u64,
}

struct Shard {
    queue: ShardQueue,
    worker: Worker,
    state: ShardState,
    /// Panic strikes per (host, seq) batch identity.
    strikes: BTreeMap<(u32, u64), u32>,
}

/// The crash-safe streaming evaluation daemon.
pub struct Daemon {
    cfg: DaemonConfig,
    dir: PathBuf,
    wal: WalWriter,
    shards: Vec<Shard>,
    tick: u64,
    next_snapshot_seq: u64,
    applied_since_snapshot: u64,
    stats: DaemonStats,
    completions: Vec<Completion>,
    epoch: EpochState,
    /// Shards the control plane has drained: admission refused, queued
    /// work still processed. Journaled (commands) and snapshot-durable.
    drained: BTreeSet<u32>,
    /// Live config generation: starts at 1 each process start and bumps
    /// on every accepted hot reload. Not journaled — the config file is
    /// the durable source of configuration, not the WAL.
    config_generation: u64,
    /// Control-plane counters (reloads, commands) this lifetime.
    control_stats: ControlStats,
    /// Structured transition log: recoveries, breaker trips, quarantines,
    /// snapshot rotations, epoch decisions. The daemon is a deterministic
    /// state machine, so the event sequence is a pure function of the
    /// offer/tick schedule — safe to include in the deterministic
    /// snapshot.
    events: EventRing,
}

/// Shards `0..canary` form the canary cohort: a pure function of the
/// configuration, so every run (and every recovery) canaries the same
/// hosts.
fn effective_canary(cfg: &DaemonConfig) -> usize {
    cfg.rollout.canary_shards.min(cfg.n_shards)
}

/// Soak windows the gate will wait for: candidate hosts routed to canary
/// shards × soak span. Pure function of `(thresholds, config)` so replay
/// recomputes the identical target.
fn expected_soak_windows(
    thresholds: &BTreeMap<u32, f64>,
    n_shards: usize,
    canary: usize,
    span: u64,
) -> u64 {
    let canary_hosts = thresholds
        .keys()
        .filter(|&&h| (h as usize % n_shards) < canary)
        .count() as u64;
    canary_hosts * span
}

/// Mutate epoch (and, on promotion, host) state for one durable rollout
/// transition. Called both on the live path (right after the record is
/// appended) and on WAL replay, so the two converge by construction.
fn apply_rollout(
    epoch: &mut EpochState,
    shards: &mut [Shard],
    n_shards: usize,
    canary: usize,
    ev: &RolloutEvent,
) {
    match ev {
        RolloutEvent::Begin {
            epoch: e,
            soak_start,
            soak_end,
            thresholds,
        } => {
            let span = u64::from(*soak_end) - u64::from(*soak_start);
            epoch.last_epoch = epoch.last_epoch.max(*e);
            epoch.candidate = Some(CandidateState {
                epoch: *e,
                soak_start: *soak_start,
                soak_end: *soak_end,
                expected_windows: expected_soak_windows(thresholds, n_shards, canary, span),
                thresholds: thresholds.clone(),
                stats: GateStats::default(),
            });
        }
        RolloutEvent::Promote { .. } => {
            if let Some(c) = epoch.candidate.take() {
                for shard in shards.iter_mut() {
                    for (h, st) in shard.state.hosts.iter_mut() {
                        if let Some(&t) = c.thresholds.get(h) {
                            st.promoted = Some((c.soak_end, t));
                        }
                    }
                }
                epoch.history.push(EpochRecord {
                    epoch: c.epoch,
                    outcome: EpochOutcome::Promoted,
                    stats: c.stats,
                    expected_windows: c.expected_windows,
                });
            }
        }
        RolloutEvent::Rollback { reason, .. } => {
            // The incumbent thresholds were never touched during the
            // canary, so discarding the candidate IS the rollback.
            if let Some(c) = epoch.candidate.take() {
                epoch.history.push(EpochRecord {
                    epoch: c.epoch,
                    outcome: EpochOutcome::RolledBack(*reason),
                    stats: c.stats,
                    expected_windows: c.expected_windows,
                });
            }
        }
    }
}

/// Mutate daemon state for one durable operator command. Called both on
/// the live path (right after the command record is appended) and on WAL
/// replay, so the two converge by construction — the same discipline as
/// [`apply_rollout`]. Total over any decodable command: out-of-range
/// shard ids (possible only via deliberate log corruption, since the
/// live path validates before journaling) are ignored rather than
/// panicking.
fn apply_command(
    epoch: &mut EpochState,
    shards: &mut [Shard],
    drained: &mut BTreeSet<u32>,
    n_shards: usize,
    canary: usize,
    cmd: &ControlCommand,
) {
    match cmd {
        ControlCommand::ForceRollback => {
            if let Some(c) = epoch.candidate.as_ref() {
                let ev = RolloutEvent::Rollback {
                    epoch: c.epoch,
                    reason: RollbackReason::Operator,
                };
                apply_rollout(epoch, shards, n_shards, canary, &ev);
            }
        }
        ControlCommand::PinThreshold { host, t } => {
            let idx = *host as usize % n_shards;
            if let Some(shard) = shards.get_mut(idx) {
                shard.state.hosts.entry(*host).or_default().pinned = Some(*t);
            }
        }
        ControlCommand::DrainShard { shard } => {
            if (*shard as usize) < n_shards {
                drained.insert(*shard);
            }
        }
        ControlCommand::UndrainShard { shard } => {
            drained.remove(shard);
        }
    }
}

/// Count soak-span test windows of a batch lost to shedding or
/// quarantine on a canary shard, toward the candidate's loss meter.
fn note_soak_loss(epoch: &mut EpochState, canary: usize, shard_idx: usize, batch: &WindowBatch) {
    let Some(c) = epoch.candidate.as_mut() else {
        return;
    };
    if shard_idx >= canary || batch.week != Week::Test || !c.thresholds.contains_key(&batch.host) {
        return;
    }
    let start = u64::from(batch.start.max(c.soak_start));
    let end = (u64::from(batch.start) + batch.counts.len() as u64).min(u64::from(c.soak_end));
    if end > start {
        c.stats.sheds += end - start;
    }
}

impl Daemon {
    /// Open (or recover) a daemon rooted at `dir`: load the newest valid
    /// snapshot, replay and truncate the WAL, and report what was found.
    pub fn open(dir: &Path, cfg: DaemonConfig) -> Result<(Self, RecoveryReport), DaemonError> {
        validate(&cfg)?;
        std::fs::create_dir_all(dir)?;

        let mut report = RecoveryReport::default();
        let (snap, discarded) = snapshot::load_latest(dir)?;
        report.snapshots_discarded = discarded;

        let mut shards: Vec<Shard> = (0..cfg.n_shards)
            .map(|_| Shard {
                queue: ShardQueue::new(cfg.queue),
                worker: Worker::new(),
                state: ShardState::default(),
                strikes: BTreeMap::new(),
            })
            .collect();

        let mut next_snapshot_seq = 1;
        let mut epoch = EpochState::default();
        let mut drained: BTreeSet<u32> = BTreeSet::new();
        if let Some(snap) = snap {
            if snap.n_windows != cfg.n_windows {
                return Err(DaemonError::Config(
                    "snapshot was written with a different n_windows",
                ));
            }
            report.snapshot_seq = Some(snap.seq);
            next_snapshot_seq = snap.seq + 1;
            epoch = snap.epoch;
            drained = snap.drained.into_iter().collect();
            for (host, st) in snap.hosts {
                let idx = host as usize % cfg.n_shards;
                shards[idx].state.hosts.insert(host, st);
            }
        }

        let (wal, replay) = WalWriter::open(&dir.join("wal.bin"))?;
        report.wal_torn_bytes = replay.torn_bytes;
        let apply_cfg = ApplyConfig {
            n_windows: cfg.n_windows,
            threshold_q: cfg.threshold_q,
            sketch_eps: cfg.sketch_eps,
        };
        let canary = effective_canary(&cfg);
        for record in &replay.records {
            match record {
                WalRecord::Batch(batch) => {
                    report.wal_batches += 1;
                    let idx = batch.host as usize % cfg.n_shards;
                    let shard = &mut shards[idx];
                    let mut shadow = match epoch.candidate.as_mut() {
                        Some(c) if idx < canary => {
                            c.thresholds.get(&batch.host).copied().map(|t| ShadowCtx {
                                soak_start: c.soak_start,
                                soak_end: c.soak_end,
                                candidate: t,
                                stats: &mut c.stats,
                            })
                        }
                        _ => None,
                    };
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        shard.state.apply_shadowed(batch, &apply_cfg, shadow.as_mut())
                    }));
                    match outcome {
                        Ok(Ok(ApplyOutcome::Applied)) => report.wal_replayed += 1,
                        Ok(Ok(ApplyOutcome::Duplicate)) => report.wal_duplicates += 1,
                        Ok(Err(_)) => report.wal_rejected += 1,
                        Err(_) => report.wal_quarantined += 1,
                    }
                }
                WalRecord::Rollout(ev) => {
                    report.wal_rollout_events += 1;
                    apply_rollout(&mut epoch, &mut shards, cfg.n_shards, canary, ev);
                }
                WalRecord::Command(cmd) => {
                    report.wal_commands += 1;
                    apply_command(
                        &mut epoch,
                        &mut shards,
                        &mut drained,
                        cfg.n_shards,
                        canary,
                        cmd,
                    );
                }
            }
        }

        let mut events = EventRing::default();
        if report.wal_torn_bytes > 0 {
            events.push(
                "fleetd.wal",
                "torn_tail_truncated",
                &[("bytes", &report.wal_torn_bytes.to_string())],
            );
        }
        if report.snapshots_discarded > 0 {
            events.push(
                "fleetd.snapshot",
                "damaged_discarded",
                &[("count", &report.snapshots_discarded.to_string())],
            );
        }
        if report.snapshot_seq.is_some() || report.wal_batches > 0 {
            events.push(
                "fleetd.recovery",
                "recovered",
                &[
                    (
                        "snapshot_seq",
                        &report
                            .snapshot_seq
                            .map(|s| s.to_string())
                            .unwrap_or_else(|| "none".to_string()),
                    ),
                    ("wal_replayed", &report.wal_replayed.to_string()),
                    ("wal_duplicates", &report.wal_duplicates.to_string()),
                ],
            );
        }

        let daemon = Self {
            dir: dir.to_path_buf(),
            wal,
            shards,
            tick: 0,
            next_snapshot_seq,
            // Count the replayed backlog toward the next snapshot so a
            // crash loop cannot grow the WAL without bound: recovery with
            // a long tail snapshots soon after restart.
            applied_since_snapshot: report.wal_replayed,
            stats: DaemonStats::default(),
            completions: Vec::new(),
            epoch,
            drained,
            config_generation: 1,
            control_stats: ControlStats::default(),
            cfg,
            events,
        };
        Ok((daemon, report))
    }

    /// Offer one batch for processing. `Overflow` means it was NOT
    /// admitted and the source must retry later; anything else means the
    /// daemon now owns it and will emit exactly one completion for it
    /// (barring a crash, which redelivery covers).
    pub fn offer(&mut self, batch: WindowBatch) -> Admit {
        // Canary barrier: while a candidate is soaking, no test window at
        // or past the soak end may be applied on ANY shard — the
        // promote/rollback decision must land first, so that which
        // threshold governs those windows is a pure function of the
        // decision, not of delivery interleaving. Refused like overflow:
        // the source retries after the decision.
        if let Some(c) = &self.epoch.candidate {
            if batch.week == Week::Test
                && u64::from(batch.start) + batch.counts.len() as u64 > u64::from(c.soak_end)
            {
                self.stats.barrier_deferred += 1;
                return Admit::Overflow;
            }
        }
        let idx = batch.host as usize % self.cfg.n_shards;
        // A drained shard refuses admission outright (the source retries
        // after the undrain) while its already-queued work keeps
        // processing — drain bounds *new* work without losing owned work.
        if self.drained.contains(&(idx as u32)) {
            self.stats.drain_deferred += 1;
            return Admit::Overflow;
        }
        let canary = effective_canary(&self.cfg);
        let shard = &mut self.shards[idx];
        if shard.worker.is_dark() {
            // A dark shard sheds on arrival; admission still succeeds so
            // the source does not spin on redelivery.
            self.stats.admitted += 1;
            self.stats.shed_dark += 1;
            note_soak_loss(&mut self.epoch, canary, idx, &batch);
            self.completions.push(Completion {
                host: batch.host,
                seq: batch.seq,
                disposition: Disposition::ShedDark,
            });
            return Admit::Queued;
        }
        match shard.queue.offer(self.tick, batch) {
            Admit::Overflow => {
                self.stats.overflow += 1;
                Admit::Overflow
            }
            verdict => {
                self.stats.admitted += 1;
                verdict
            }
        }
    }

    /// Advance the virtual clock one tick: each running shard worker
    /// processes up to its quantum of batches. Returns
    /// [`DaemonError::Killed`] when the kill switch fires — the caller
    /// must then drop this instance and recover via [`Daemon::open`].
    pub fn tick(&mut self, kill: &mut KillSwitch) -> Result<(), DaemonError> {
        self.tick += 1;
        let tick = self.tick;
        let quantum = self.cfg.queue.quantum;
        let apply_cfg = ApplyConfig {
            n_windows: self.cfg.n_windows,
            threshold_q: self.cfg.threshold_q,
            sketch_eps: self.cfg.sketch_eps,
        };
        let sup = self.cfg.supervisor;
        let canary = effective_canary(&self.cfg);
        let mut need_snapshot = false;

        // A soak that completed during replay (the deciding record was
        // lost to a torn write, or the daemon died right before deciding)
        // is resolved before any new work, exactly where the uninterrupted
        // run would have resolved it relative to the batch stream.
        if self.soak_ready() {
            self.decide_rollout(kill)?;
        }

        'shards: for (idx, shard) in self.shards.iter_mut().enumerate() {
            if !shard.worker.poll_running(tick) {
                continue;
            }
            for _ in 0..quantum {
                let (enq, batch) = match shard.queue.pop(tick) {
                    None => break,
                    Some(Popped::Stale(b)) => {
                        self.stats.shed_overload += 1;
                        note_soak_loss(&mut self.epoch, canary, idx, &b);
                        self.completions.push(Completion {
                            host: b.host,
                            seq: b.seq,
                            disposition: Disposition::ShedOverload,
                        });
                        if self.epoch.candidate.as_ref().is_some_and(|c| c.soak_complete()) {
                            break 'shards;
                        }
                        continue;
                    }
                    Some(Popped::Fresh(enq, b)) => (enq, b),
                };
                let outcome = {
                    let mut shadow = match self.epoch.candidate.as_mut() {
                        Some(c) if idx < canary => {
                            c.thresholds.get(&batch.host).copied().map(|t| ShadowCtx {
                                soak_start: c.soak_start,
                                soak_end: c.soak_end,
                                candidate: t,
                                stats: &mut c.stats,
                            })
                        }
                        _ => None,
                    };
                    catch_unwind(AssertUnwindSafe(|| {
                        shard.state.apply_shadowed(&batch, &apply_cfg, shadow.as_mut())
                    }))
                };
                match outcome {
                    Ok(Ok(ApplyOutcome::Applied)) => {
                        if self.wal.append_batch(&batch, kill)? == AppendOutcome::Killed {
                            return Err(DaemonError::Killed);
                        }
                        shard.worker.note_success();
                        self.stats.applied += 1;
                        self.applied_since_snapshot += 1;
                        if self.applied_since_snapshot >= self.cfg.snapshot_every {
                            need_snapshot = true;
                        }
                        if kill.after_batch_applied() {
                            // Die with the ack suppressed: the batch is
                            // durable but the source never hears so, and
                            // must rediscover that via redelivery.
                            return Err(DaemonError::Killed);
                        }
                        self.completions.push(Completion {
                            host: batch.host,
                            seq: batch.seq,
                            disposition: Disposition::Applied,
                        });
                        // Decide the instant the last expected soak
                        // window is in: remaining shards wait a tick so
                        // the gate sees the same stats in every timeline.
                        if self.epoch.candidate.as_ref().is_some_and(|c| c.soak_complete()) {
                            break 'shards;
                        }
                    }
                    Ok(Ok(ApplyOutcome::Duplicate)) => {
                        shard.worker.note_success();
                        self.stats.duplicates += 1;
                        self.completions.push(Completion {
                            host: batch.host,
                            seq: batch.seq,
                            disposition: Disposition::Duplicate,
                        });
                    }
                    Ok(Err(_)) => {
                        shard.worker.note_success();
                        self.stats.rejected += 1;
                        self.completions.push(Completion {
                            host: batch.host,
                            seq: batch.seq,
                            disposition: Disposition::Rejected,
                        });
                    }
                    Err(_) => {
                        let key = (batch.host, batch.seq);
                        let strikes = shard.strikes.entry(key).or_insert(0);
                        *strikes += 1;
                        if *strikes >= sup.quarantine_strikes {
                            shard.strikes.remove(&key);
                            self.stats.quarantined += 1;
                            self.events.push(
                                "fleetd.shard",
                                "quarantined",
                                &[
                                    ("shard", &idx.to_string()),
                                    ("host", &batch.host.to_string()),
                                    ("seq", &batch.seq.to_string()),
                                ],
                            );
                            note_soak_loss(&mut self.epoch, canary, idx, &batch);
                            self.completions.push(Completion {
                                host: batch.host,
                                seq: batch.seq,
                                disposition: Disposition::Quarantined,
                            });
                        } else {
                            shard.queue.push_front(enq, batch);
                        }
                        if shard.worker.note_panic(tick, &sup) {
                            self.stats.breaker_trips += 1;
                            let mut drained = 0u64;
                            for b in shard.queue.drain_all() {
                                self.stats.shed_dark += 1;
                                drained += 1;
                                note_soak_loss(&mut self.epoch, canary, idx, &b);
                                self.completions.push(Completion {
                                    host: b.host,
                                    seq: b.seq,
                                    disposition: Disposition::ShedDark,
                                });
                            }
                            self.events.push(
                                "fleetd.shard",
                                "breaker_tripped",
                                &[
                                    ("shard", &idx.to_string()),
                                    ("drained", &drained.to_string()),
                                ],
                            );
                        }
                        // The worker is restarting (or dark); its quantum
                        // is over either way.
                        break;
                    }
                }
            }
        }

        if self.soak_ready() {
            self.decide_rollout(kill)?;
        }
        if need_snapshot {
            self.write_snapshot()?;
        }
        Ok(())
    }

    /// Whether an in-flight candidate has accounted for every expected
    /// soak window and awaits its promote/rollback decision.
    fn soak_ready(&self) -> bool {
        self.epoch.candidate.as_ref().is_some_and(|c| c.soak_complete())
    }

    /// Journal and apply the promote/rollback decision for a completed
    /// soak. The WAL record goes first: a crash after the append replays
    /// the decision; a crash during it (torn record) leaves the completed
    /// soak in place and the next tick re-derives the identical verdict
    /// from the identical gate inputs.
    fn decide_rollout(&mut self, kill: &mut KillSwitch) -> Result<(), DaemonError> {
        let Some(c) = self.epoch.candidate.as_ref() else {
            return Ok(());
        };
        let ev = match self.cfg.rollout.gate.decide(&c.stats, c.expected_windows) {
            Ok(()) => RolloutEvent::Promote { epoch: c.epoch },
            Err(reason) => RolloutEvent::Rollback {
                epoch: c.epoch,
                reason,
            },
        };
        if self.wal.append_rollout(&ev, kill)? == AppendOutcome::Killed {
            return Err(DaemonError::Killed);
        }
        let canary = effective_canary(&self.cfg);
        apply_rollout(
            &mut self.epoch,
            &mut self.shards,
            self.cfg.n_shards,
            canary,
            &ev,
        );
        match &ev {
            RolloutEvent::Promote { epoch } => self.events.push(
                "fleetd.rollout",
                "promoted",
                &[("epoch", &epoch.to_string())],
            ),
            RolloutEvent::Rollback { epoch, reason } => self.events.push(
                "fleetd.rollout",
                "rolled_back",
                &[
                    ("epoch", &epoch.to_string()),
                    ("reason", &reason.to_string()),
                ],
            ),
            RolloutEvent::Begin { .. } => {}
        }
        if kill.after_rollout_event() {
            return Err(DaemonError::Killed);
        }
        Ok(())
    }

    /// Begin a canary rollout of `thresholds` soaking over the test
    /// windows `[soak_start, soak_end)`. Returns the new epoch number.
    /// The Begin record is journaled before any in-memory effect, so a
    /// crash at any point either loses the rollout entirely (the
    /// orchestrator resubmits) or recovers it exactly.
    pub fn begin_rollout(
        &mut self,
        soak_start: u32,
        soak_end: u32,
        thresholds: BTreeMap<u32, f64>,
        kill: &mut KillSwitch,
    ) -> Result<u32, DaemonError> {
        if self.epoch.candidate.is_some() {
            return Err(DaemonError::Config("a rollout is already in progress"));
        }
        if thresholds.is_empty() {
            return Err(DaemonError::Config("candidate threshold set is empty"));
        }
        if soak_start >= soak_end || soak_end > self.cfg.n_windows {
            return Err(DaemonError::Config(
                "soak span must be nonempty and inside the week",
            ));
        }
        let canary = effective_canary(&self.cfg);
        let span = u64::from(soak_end) - u64::from(soak_start);
        if expected_soak_windows(&thresholds, self.cfg.n_shards, canary, span) == 0 {
            return Err(DaemonError::Config(
                "candidate has no hosts on canary shards",
            ));
        }
        let epoch_num = self.epoch.last_epoch + 1;
        let ev = RolloutEvent::Begin {
            epoch: epoch_num,
            soak_start,
            soak_end,
            thresholds,
        };
        if self.wal.append_rollout(&ev, kill)? == AppendOutcome::Killed {
            return Err(DaemonError::Killed);
        }
        apply_rollout(
            &mut self.epoch,
            &mut self.shards,
            self.cfg.n_shards,
            canary,
            &ev,
        );
        self.events.push(
            "fleetd.rollout",
            "begun",
            &[
                ("epoch", &epoch_num.to_string()),
                ("soak_start", &soak_start.to_string()),
                ("soak_end", &soak_end.to_string()),
            ],
        );
        if kill.after_rollout_event() {
            return Err(DaemonError::Killed);
        }
        Ok(epoch_num)
    }

    /// Journal and apply one operator command. The WAL record goes first
    /// (write-ahead: a crash after the append replays the command; a
    /// crash during it — a torn command record — loses it entirely and
    /// the operator re-issues), then the in-memory apply, then the
    /// `after-command` kill window that models dying before the operator
    /// hears the acknowledgement. Validation happens *before* the
    /// journal append so an invalid command is never made durable.
    pub fn command(
        &mut self,
        cmd: ControlCommand,
        kill: &mut KillSwitch,
    ) -> Result<(), DaemonError> {
        match cmd {
            ControlCommand::ForceRollback => {
                if self.epoch.candidate.is_none() {
                    return Err(DaemonError::Config("no rollout in progress to roll back"));
                }
            }
            ControlCommand::PinThreshold { t, .. } => {
                if !t.is_finite() {
                    return Err(DaemonError::Config("pinned threshold must be finite"));
                }
            }
            ControlCommand::DrainShard { shard } | ControlCommand::UndrainShard { shard } => {
                if shard as usize >= self.cfg.n_shards {
                    return Err(DaemonError::Config("shard id out of range"));
                }
            }
        }
        if self.wal.append_command(&cmd, kill)? == AppendOutcome::Killed {
            return Err(DaemonError::Killed);
        }
        let canary = effective_canary(&self.cfg);
        apply_command(
            &mut self.epoch,
            &mut self.shards,
            &mut self.drained,
            self.cfg.n_shards,
            canary,
            &cmd,
        );
        match cmd {
            ControlCommand::ForceRollback => self.control_stats.force_rollbacks += 1,
            ControlCommand::PinThreshold { .. } => self.control_stats.pins += 1,
            ControlCommand::DrainShard { .. } => self.control_stats.drains += 1,
            ControlCommand::UndrainShard { .. } => self.control_stats.undrains += 1,
        }
        self.events.push(
            "fleetd.control",
            "command_applied",
            &[("command", cmd.name())],
        );
        if kill.after_command() {
            return Err(DaemonError::Killed);
        }
        Ok(())
    }

    /// Why `new` cannot be hot-applied over the current config, if it
    /// cannot. Structural fields — anything baked into shard routing,
    /// the snapshot format, queue memory, threshold fitting, or the
    /// canary cohort — require a restart; the WAL replays through the
    /// *current* config, so changing them live would break the
    /// recovery-convergence contract.
    fn reload_reject_reason(&self, new: &DaemonConfig) -> Option<&'static str> {
        if let Err(reason) = check_config(new) {
            return Some(reason);
        }
        let cur = &self.cfg;
        if new.n_shards != cur.n_shards {
            return Some("n_shards cannot change without restart");
        }
        if new.n_windows != cur.n_windows {
            return Some("n_windows cannot change without restart");
        }
        if new.threshold_q.to_bits() != cur.threshold_q.to_bits() {
            return Some("threshold_q cannot change without restart");
        }
        let eps_same = match (new.sketch_eps, cur.sketch_eps) {
            (None, None) => true,
            (Some(a), Some(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        };
        if !eps_same {
            return Some("sketch_eps cannot change without restart");
        }
        if new.queue.capacity != cur.queue.capacity
            || new.queue.high != cur.queue.high
            || new.queue.low != cur.queue.low
            || new.queue.shed_after != cur.queue.shed_after
            || new.queue.quantum != cur.queue.quantum
        {
            return Some("queue sizing cannot change without restart");
        }
        if new.rollout.canary_shards != cur.rollout.canary_shards {
            return Some("rollout.canary_shards cannot change without restart");
        }
        None
    }

    /// Hot-reload the live-appliable subset of the daemon config
    /// (`snapshot_every`, the supervisor tunables, and the rollout health
    /// gates). **Reject-and-keep-old**: the candidate is validated and
    /// checked for structural changes first, and on any failure the
    /// current generation stays live untouched — the rejection is
    /// recorded as an event and a counter, never a partial apply. On
    /// success the generation bumps and the new values take effect from
    /// the next tick. Returns the new generation.
    pub fn reload(&mut self, new: &DaemonConfig) -> Result<u64, DaemonError> {
        if let Some(reason) = self.reload_reject_reason(new) {
            self.control_stats.reloads_rejected += 1;
            self.events.push(
                "fleetd.control",
                "config_rejected",
                &[("reason", reason)],
            );
            return Err(DaemonError::Config(reason));
        }
        self.cfg.snapshot_every = new.snapshot_every;
        self.cfg.supervisor = new.supervisor;
        self.cfg.rollout.gate = new.rollout.gate;
        self.config_generation += 1;
        self.control_stats.reloads_applied += 1;
        self.events.push(
            "fleetd.control",
            "config_applied",
            &[("generation", &self.config_generation.to_string())],
        );
        Ok(self.config_generation)
    }

    /// Live config generation (1 at process start, +1 per accepted
    /// reload).
    pub fn config_generation(&self) -> u64 {
        self.config_generation
    }

    /// The live daemon configuration.
    pub fn config(&self) -> &DaemonConfig {
        &self.cfg
    }

    /// Control-plane counters this lifetime.
    pub fn control_stats(&self) -> &ControlStats {
        &self.control_stats
    }

    /// Shards currently drained, ascending.
    pub fn drained_shards(&self) -> Vec<u32> {
        self.drained.iter().copied().collect()
    }

    /// Epoch/rollout/drain state as deterministic JSON (the admin
    /// endpoint's `GET /state` body). Hand-rolled — every value is an
    /// integer, bool, or a string from a fixed vocabulary, so no escaping
    /// is needed and the output is a pure function of daemon state.
    pub fn state_json(&self) -> String {
        use core::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"config_generation\":{},\"virtual_ticks\":{},\"queued\":{},\"phase\":\"{}\"",
            self.config_generation,
            self.tick,
            self.queued_total(),
            match self.epoch.phase() {
                Phase::Idle => "idle",
                Phase::Canary => "canary",
            }
        );
        let _ = write!(out, ",\"last_epoch\":{}", self.epoch.last_epoch);
        match &self.epoch.candidate {
            None => out.push_str(",\"candidate\":null"),
            Some(c) => {
                let _ = write!(
                    out,
                    ",\"candidate\":{{\"epoch\":{},\"soak_start\":{},\"soak_end\":{},\
                     \"hosts\":{},\"expected_windows\":{},\"windows\":{},\"sheds\":{}}}",
                    c.epoch,
                    c.soak_start,
                    c.soak_end,
                    c.thresholds.len(),
                    c.expected_windows,
                    c.stats.windows,
                    c.stats.sheds
                );
            }
        }
        out.push_str(",\"history\":[");
        for (i, rec) in self.epoch.history.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match rec.outcome {
                EpochOutcome::Promoted => {
                    let _ = write!(
                        out,
                        "{{\"epoch\":{},\"outcome\":\"promoted\"}}",
                        rec.epoch
                    );
                }
                EpochOutcome::RolledBack(reason) => {
                    let _ = write!(
                        out,
                        "{{\"epoch\":{},\"outcome\":\"rolled_back\",\"reason\":\"{reason}\"}}",
                        rec.epoch
                    );
                }
            }
        }
        out.push_str("],\"drained_shards\":[");
        for (i, s) in self.drained.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{s}");
        }
        out.push_str("],\"shards\":[");
        for (i, st) in self.shard_statuses().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(match st {
                WorkerStatus::Running => "running",
                WorkerStatus::Backoff { .. } => "backoff",
                WorkerStatus::Dark => "dark",
            });
            out.push('"');
        }
        out.push_str("]}");
        out
    }

    /// Current rollout phase.
    pub fn epoch_phase(&self) -> Phase {
        self.epoch.phase()
    }

    /// Full rollout lifecycle state: in-flight candidate plus history.
    pub fn epoch_state(&self) -> &EpochState {
        &self.epoch
    }

    /// Tick until every queue is empty or `max_ticks` elapse. Returns
    /// whether full quiescence was reached (`false` = stalled, which
    /// given quarantine bounds should not happen and is surfaced for
    /// tests to assert on).
    pub fn drain(&mut self, kill: &mut KillSwitch, max_ticks: u64) -> Result<bool, DaemonError> {
        for _ in 0..max_ticks {
            if self.queued_total() == 0 {
                return Ok(true);
            }
            self.tick(kill)?;
        }
        Ok(self.queued_total() == 0)
    }

    /// Force a snapshot now (clean shutdown).
    pub fn checkpoint(&mut self) -> Result<(), DaemonError> {
        self.write_snapshot()
    }

    fn write_snapshot(&mut self) -> Result<(), DaemonError> {
        let mut hosts = BTreeMap::new();
        for shard in &self.shards {
            for (&h, st) in &shard.state.hosts {
                hosts.insert(h, st.clone());
            }
        }
        let snap = Snapshot {
            seq: self.next_snapshot_seq,
            n_windows: self.cfg.n_windows,
            hosts,
            epoch: self.epoch.clone(),
            drained: self.drained.iter().copied().collect(),
        };
        let seq = snap.seq;
        snapshot::write_snapshot(&self.dir, &snap)?;
        self.wal.reset()?;
        self.next_snapshot_seq += 1;
        self.applied_since_snapshot = 0;
        self.stats.snapshots_written += 1;
        self.events.push(
            "fleetd.snapshot",
            "written",
            &[("seq", &seq.to_string()), ("wal_reset", "true")],
        );
        Ok(())
    }

    /// Completions emitted since the last call (the at-least-once ack
    /// channel: a source marks work done only on seeing its completion).
    pub fn take_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &DaemonStats {
        &self.stats
    }

    /// Batches currently queued across all shards.
    pub fn queued_total(&self) -> u64 {
        self.shards.iter().map(|s| s.queue.len() as u64).sum()
    }

    /// Deepest any shard queue has been this lifetime (the memory-bound
    /// witness: with a backpressure-honoring source this never exceeds
    /// the high watermark).
    pub fn max_queue_depth(&self) -> usize {
        self.shards.iter().map(|s| s.queue.max_depth).max().unwrap_or(0)
    }

    /// Whether the shard owning `host` is currently asserting
    /// backpressure (busy latch set). A dark shard is deliberately NOT
    /// busy: it accepts and sheds on arrival, so a backpressure-honoring
    /// source drains instead of retrying forever against a breaker that
    /// will never reset.
    pub fn shard_busy(&self, host: u32) -> bool {
        self.shards[host as usize % self.cfg.n_shards].queue.busy()
    }

    /// Worker status per shard.
    pub fn shard_statuses(&self) -> Vec<WorkerStatus> {
        self.shards.iter().map(|s| s.worker.status).collect()
    }

    /// Total worker restarts across shards this lifetime.
    pub fn worker_restarts(&self) -> u64 {
        self.shards.iter().map(|s| s.worker.restarts).sum()
    }

    /// The merged host table, ordered by host id.
    pub fn hosts(&self) -> BTreeMap<u32, &HostState> {
        let mut out = BTreeMap::new();
        for shard in &self.shards {
            for (&h, st) in &shard.state.hosts {
                out.insert(h, st);
            }
        }
        out
    }

    /// Current WAL length in bytes.
    pub fn wal_len(&self) -> u64 {
        self.wal.len()
    }

    /// The structured event ring (recovery, shard, rollout, and
    /// control-plane events this lifetime).
    pub fn events(&self) -> &EventRing {
        &self.events
    }

    /// Checkpoint now, regardless of `snapshot_every` (the operator's
    /// pre-maintenance "make recovery cheap" lever; drains make this
    /// useful — a drained fleet checkpoints small).
    pub fn force_snapshot(&mut self) -> Result<(), DaemonError> {
        self.write_snapshot()
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.tick
    }

    /// Export lifetime counters, live gauges, epoch history and the
    /// structured event log into `reg` under the `fleetd_*` families.
    ///
    /// Everything exported is a pure function of the offer/tick schedule
    /// (the daemon's determinism contract), so the rendered snapshot is
    /// byte-identical for identical schedules — at any thread count of
    /// the surrounding harness. The batch counters satisfy
    /// `admitted = Σ terminal dispositions + queued` at quiescent points
    /// ([`DaemonStats::conservation_holds`]).
    pub fn export_metrics(&self, reg: &mut Registry) {
        reg.register_counter(
            "fleetd_batches_total",
            "Batches by admission/terminal disposition",
        );
        let disp: [(&str, u64); 10] = [
            ("admitted", self.stats.admitted),
            ("overflow", self.stats.overflow),
            ("applied", self.stats.applied),
            ("duplicate", self.stats.duplicates),
            ("quarantined", self.stats.quarantined),
            ("shed_overload", self.stats.shed_overload),
            ("shed_dark", self.stats.shed_dark),
            ("rejected", self.stats.rejected),
            ("barrier_deferred", self.stats.barrier_deferred),
            ("drain_deferred", self.stats.drain_deferred),
        ];
        for (d, v) in disp {
            reg.counter_add("fleetd_batches_total", &[("disposition", d)], v);
        }
        reg.register_counter(
            "fleetd_breaker_trips_total",
            "Shard circuit-breaker trips this lifetime",
        );
        reg.counter_add("fleetd_breaker_trips_total", &[], self.stats.breaker_trips);
        reg.register_counter(
            "fleetd_worker_restarts_total",
            "Shard worker restarts after panics",
        );
        reg.counter_add("fleetd_worker_restarts_total", &[], self.worker_restarts());
        reg.register_counter(
            "fleetd_snapshots_written_total",
            "Snapshots installed (each also truncates the WAL)",
        );
        reg.counter_add(
            "fleetd_snapshots_written_total",
            &[],
            self.stats.snapshots_written,
        );

        reg.register_gauge("fleetd_queue_depth", "Batches currently queued, fleet-wide");
        reg.gauge_set("fleetd_queue_depth", &[], self.queued_total() as i64);
        reg.register_gauge(
            "fleetd_queue_max_depth",
            "Deepest any shard queue has been this lifetime",
        );
        reg.gauge_set("fleetd_queue_max_depth", &[], self.max_queue_depth() as i64);
        reg.register_gauge("fleetd_wal_bytes", "Current WAL length");
        reg.gauge_set("fleetd_wal_bytes", &[], self.wal_len() as i64);
        reg.register_gauge("fleetd_virtual_ticks", "Virtual-clock position");
        reg.gauge_set("fleetd_virtual_ticks", &[], self.tick as i64);
        reg.register_gauge("fleetd_shards", "Shard workers by supervision state");
        let (mut running, mut backoff, mut dark) = (0i64, 0i64, 0i64);
        for st in self.shard_statuses() {
            match st {
                WorkerStatus::Running => running += 1,
                WorkerStatus::Backoff { .. } => backoff += 1,
                WorkerStatus::Dark => dark += 1,
            }
        }
        reg.gauge_set("fleetd_shards", &[("state", "running")], running);
        reg.gauge_set("fleetd_shards", &[("state", "backoff")], backoff);
        reg.gauge_set("fleetd_shards", &[("state", "dark")], dark);

        reg.register_counter(
            "fleetd_epochs_total",
            "Concluded rollout epochs by outcome",
        );
        let (mut promoted, mut rolled_back) = (0u64, 0u64);
        for rec in &self.epoch.history {
            match rec.outcome {
                EpochOutcome::Promoted => promoted += 1,
                EpochOutcome::RolledBack(_) => rolled_back += 1,
            }
        }
        reg.counter_add("fleetd_epochs_total", &[("outcome", "promoted")], promoted);
        reg.counter_add(
            "fleetd_epochs_total",
            &[("outcome", "rolled_back")],
            rolled_back,
        );

        reg.register_gauge(
            "control_config_generation",
            "Live config generation (1 at start, +1 per accepted reload)",
        );
        reg.gauge_set(
            "control_config_generation",
            &[],
            self.config_generation as i64,
        );
        reg.register_counter(
            "control_reloads_total",
            "Config reload attempts by outcome",
        );
        reg.counter_add(
            "control_reloads_total",
            &[("outcome", "applied")],
            self.control_stats.reloads_applied,
        );
        reg.counter_add(
            "control_reloads_total",
            &[("outcome", "rejected")],
            self.control_stats.reloads_rejected,
        );
        reg.register_counter(
            "control_commands_total",
            "Operator commands journaled and applied, by command",
        );
        let cmds: [(&str, u64); 4] = [
            ("force-rollback", self.control_stats.force_rollbacks),
            ("pin-threshold", self.control_stats.pins),
            ("drain-shard", self.control_stats.drains),
            ("undrain-shard", self.control_stats.undrains),
        ];
        for (c, v) in cmds {
            reg.counter_add("control_commands_total", &[("command", c)], v);
        }
        reg.register_gauge(
            "control_drained_shards",
            "Shards currently refusing new admissions",
        );
        reg.gauge_set("control_drained_shards", &[], self.drained.len() as i64);

        reg.merge_events(&self.events);
    }
}

impl RecoveryReport {
    /// Export what recovery found into `reg` under `fleetd_recovery_*`.
    pub fn export_metrics(&self, reg: &mut Registry) {
        reg.register_counter(
            "fleetd_recovery_wal_frames_total",
            "WAL frames found at recovery, by replay disposition",
        );
        let frames: [(&str, u64); 5] = [
            ("found", self.wal_batches),
            ("replayed", self.wal_replayed),
            ("duplicate", self.wal_duplicates),
            ("rejected", self.wal_rejected),
            ("quarantined", self.wal_quarantined),
        ];
        for (d, v) in frames {
            reg.counter_add("fleetd_recovery_wal_frames_total", &[("disposition", d)], v);
        }
        reg.register_counter(
            "fleetd_recovery_torn_bytes_total",
            "Torn/corrupt tail bytes truncated from the WAL at recovery",
        );
        reg.counter_add("fleetd_recovery_torn_bytes_total", &[], self.wal_torn_bytes);
        reg.register_counter(
            "fleetd_recovery_snapshots_discarded_total",
            "Newer-but-damaged snapshots skipped at recovery",
        );
        reg.counter_add(
            "fleetd_recovery_snapshots_discarded_total",
            &[],
            u64::from(self.snapshots_discarded),
        );
        reg.register_counter(
            "fleetd_recovery_rollout_events_total",
            "Rollout transition records replayed from the WAL",
        );
        reg.counter_add(
            "fleetd_recovery_rollout_events_total",
            &[],
            self.wal_rollout_events,
        );
        reg.register_counter(
            "fleetd_recovery_command_records_total",
            "Operator command records replayed from the WAL",
        );
        reg.counter_add(
            "fleetd_recovery_command_records_total",
            &[],
            self.wal_commands,
        );
    }
}

fn validate(cfg: &DaemonConfig) -> Result<(), DaemonError> {
    check_config(cfg).map_err(DaemonError::Config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Week;

    fn tmpdir(tag: &str) -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "fleetd-daemon-{}-{}-{}",
            tag,
            std::process::id(),
            n
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn small_cfg() -> DaemonConfig {
        DaemonConfig {
            n_shards: 2,
            n_windows: 8,
            threshold_q: 0.99,
            snapshot_every: 100,
            queue: QueueConfig {
                capacity: 32,
                high: 24,
                low: 8,
                shed_after: 1000,
                quantum: 4,
            },
            supervisor: SupervisorConfig {
                backoff_base: 1,
                backoff_cap_exp: 4,
                quarantine_strikes: 2,
                breaker_failures: 8,
            },
            rollout: RolloutConfig::default(),
            sketch_eps: None,
        }
    }

    fn b(host: u32, seq: u64, week: Week, start: u32, counts: &[u64]) -> WindowBatch {
        WindowBatch {
            host,
            seq,
            week,
            start,
            counts: counts.to_vec(),
            poison: false,
        }
    }

    fn feed(d: &mut Daemon, kill: &mut KillSwitch, batches: &[WindowBatch]) {
        for batch in batches {
            assert_ne!(d.offer(batch.clone()), Admit::Overflow);
        }
        assert!(d.drain(kill, 10_000).unwrap());
    }

    fn week_batches(host: u32) -> Vec<WindowBatch> {
        vec![
            b(host, 1, Week::Train, 0, &[1, 2, 3, 4]),
            b(host, 2, Week::Train, 4, &[5, 6, 7, 8]),
            b(host, 3, Week::Test, 0, &[1, 100, 3, 4]),
            b(host, 4, Week::Test, 4, &[5, 6, 7, 100]),
        ]
    }

    #[test]
    fn cold_start_applies_and_accounts() {
        let dir = tmpdir("cold");
        let (mut d, rec) = Daemon::open(&dir, small_cfg()).unwrap();
        assert!(rec.snapshot_seq.is_none());
        assert_eq!(rec.wal_batches, 0);
        let mut kill = KillSwitch::none();
        let batches: Vec<_> = (0..4).flat_map(week_batches).collect();
        feed(&mut d, &mut kill, &batches);
        let stats = *d.stats();
        assert_eq!(stats.applied, 16);
        assert!(stats.conservation_holds(d.queued_total()));
        let completions = d.take_completions();
        assert_eq!(completions.len(), 16);
        assert!(completions
            .iter()
            .all(|c| c.disposition == Disposition::Applied));
        let hosts = d.hosts();
        assert_eq!(hosts.len(), 4);
        for st in hosts.values() {
            assert_eq!(st.train.len(), 8);
            assert_eq!(st.test.len(), 8);
            assert!(st.threshold.is_some());
            assert_eq!(st.live_alarms, 2, "two 100-count test windows");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restart_from_wal_reproduces_state_and_dedupes_resends() {
        let dir = tmpdir("recover");
        let batches: Vec<_> = (0..4).flat_map(week_batches).collect();
        let reference;
        {
            let (mut d, _) = Daemon::open(&dir, small_cfg()).unwrap();
            let mut kill = KillSwitch::none();
            feed(&mut d, &mut kill, &batches);
            reference = d
                .hosts()
                .into_iter()
                .map(|(h, s)| (h, s.clone()))
                .collect::<Vec<_>>();
            // No checkpoint: drop without a snapshot, recovery is pure WAL.
        }
        let (mut d, rec) = Daemon::open(&dir, small_cfg()).unwrap();
        assert_eq!(rec.wal_replayed, 16);
        assert_eq!(rec.wal_torn_bytes, 0);
        let recovered: Vec<_> = d
            .hosts()
            .into_iter()
            .map(|(h, s)| (h, s.clone()))
            .collect();
        assert_eq!(recovered, reference);
        // Redeliver everything: all duplicates, nothing changes.
        let mut kill = KillSwitch::none();
        feed(&mut d, &mut kill, &batches);
        assert_eq!(d.stats().duplicates, 16);
        assert_eq!(d.stats().applied, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sketch_mode_survives_snapshot_and_wal_recovery() {
        // Same batch stream through exact and sketch daemons: at a tight
        // eps nothing compacts, so fitted thresholds and alarm counts
        // agree bitwise, while per-host state stays bounded. A snapshot +
        // reopen must reproduce the sketch-mode state exactly (sketch
        // images roundtrip through the snapshot codec).
        let sketch_cfg = DaemonConfig {
            sketch_eps: Some(0.001),
            snapshot_every: 8,
            ..small_cfg()
        };
        let batches: Vec<_> = (0..4).flat_map(week_batches).collect();

        let exact_dir = tmpdir("sketch-exact");
        let (mut exact, _) = Daemon::open(&exact_dir, small_cfg()).unwrap();
        let mut kill = KillSwitch::none();
        feed(&mut exact, &mut kill, &batches);
        let exact_hosts: Vec<_> = exact
            .hosts()
            .into_iter()
            .map(|(h, s)| (h, s.clone()))
            .collect();

        let dir = tmpdir("sketch-daemon");
        let reference;
        {
            let (mut d, _) = Daemon::open(&dir, sketch_cfg.clone()).unwrap();
            let mut kill = KillSwitch::none();
            feed(&mut d, &mut kill, &batches);
            reference = d
                .hosts()
                .into_iter()
                .map(|(h, s)| (h, s.clone()))
                .collect::<Vec<_>>();
        }
        for ((he, se), (hs, ss)) in exact_hosts.iter().zip(&reference) {
            assert_eq!(he, hs);
            assert_eq!(
                se.threshold.unwrap().to_bits(),
                ss.threshold.unwrap().to_bits(),
                "uncompacted sketch threshold must match exact bitwise"
            );
            assert_eq!(se.live_alarms, ss.live_alarms);
            assert!(ss.train.is_empty() && ss.test.is_empty());
            assert!(ss.sketch_state_bytes() > 0);
        }
        let (d, rec) = Daemon::open(&dir, sketch_cfg).unwrap();
        assert!(rec.snapshot_seq.is_some(), "snapshot_every=8 checkpointed");
        let recovered: Vec<_> = d
            .hosts()
            .into_iter()
            .map(|(h, s)| (h, s.clone()))
            .collect();
        assert_eq!(recovered, reference);
        std::fs::remove_dir_all(&exact_dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_truncates_wal_and_recovery_prefers_it() {
        let dir = tmpdir("snap");
        let mut cfg = small_cfg();
        cfg.snapshot_every = 6;
        let batches: Vec<_> = (0..4).flat_map(week_batches).collect();
        let reference;
        {
            let (mut d, _) = Daemon::open(&dir, cfg).unwrap();
            let mut kill = KillSwitch::none();
            feed(&mut d, &mut kill, &batches);
            assert!(d.stats().snapshots_written >= 2);
            assert!(
                d.wal_len() < 200,
                "snapshots must keep the WAL short, got {}",
                d.wal_len()
            );
            reference = d
                .hosts()
                .into_iter()
                .map(|(h, s)| (h, s.clone()))
                .collect::<Vec<_>>();
        }
        let (d, rec) = Daemon::open(&dir, cfg).unwrap();
        assert!(rec.snapshot_seq.is_some());
        let recovered: Vec<_> = d
            .hosts()
            .into_iter()
            .map(|(h, s)| (h, s.clone()))
            .collect();
        assert_eq!(recovered, reference);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn poison_is_quarantined_and_daemon_survives() {
        let dir = tmpdir("poison");
        let (mut d, _) = Daemon::open(&dir, small_cfg()).unwrap();
        let mut kill = KillSwitch::none();
        let mut batches = week_batches(0);
        batches[2].poison = true; // first test batch of host 0
        batches.extend(week_batches(1));
        feed(&mut d, &mut kill, &batches);
        let stats = *d.stats();
        assert_eq!(stats.quarantined, 1);
        assert_eq!(stats.applied, 7);
        assert!(stats.conservation_holds(d.queued_total()));
        assert!(d.worker_restarts() >= 2, "strike model retries once");
        // Host 1 (other shard) is untouched; host 0 lost only the
        // poisoned batch's windows.
        let hosts = d.hosts();
        assert_eq!(hosts[&1].test.len(), 8);
        assert_eq!(hosts[&0].test.len(), 4);
        let completions = d.take_completions();
        let quarantined: Vec<_> = completions
            .iter()
            .filter(|c| c.disposition == Disposition::Quarantined)
            .collect();
        assert_eq!(quarantined.len(), 1);
        assert_eq!((quarantined[0].host, quarantined[0].seq), (0, 3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn breaker_trips_shard_dark_and_sheds() {
        let dir = tmpdir("breaker");
        let mut cfg = small_cfg();
        cfg.supervisor.breaker_failures = 3;
        cfg.supervisor.quarantine_strikes = u32::MAX; // never park: pure crash loop
        let (mut d, _) = Daemon::open(&dir, cfg).unwrap();
        let mut kill = KillSwitch::none();
        let mut poison = b(0, 1, Week::Train, 0, &[1]);
        poison.poison = true;
        d.offer(poison);
        for batch in week_batches(2) {
            d.offer(batch); // same shard (2 % 2 == 0), queued behind poison
        }
        for batch in week_batches(1) {
            d.offer(batch); // other shard, must stay healthy
        }
        assert!(d.drain(&mut kill, 10_000).unwrap());
        let stats = *d.stats();
        assert_eq!(stats.breaker_trips, 1);
        // The re-queued poison batch plus host 2's four batches all shed
        // when the shard goes dark.
        assert_eq!(stats.shed_dark, 5);
        assert_eq!(stats.applied, 4, "host 1's shard unaffected");
        assert!(stats.conservation_holds(d.queued_total()));
        assert!(d.shard_statuses().contains(&WorkerStatus::Dark));
        // Post-trip offers to the dark shard shed on arrival.
        d.offer(b(0, 2, Week::Train, 0, &[1]));
        assert_eq!(d.stats().shed_dark, 6);
        assert!(d.stats().conservation_holds(d.queued_total()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_work_is_shed_deterministically() {
        let dir = tmpdir("shed");
        let mut cfg = small_cfg();
        cfg.queue.shed_after = 2;
        cfg.queue.quantum = 1;
        let (mut d, _) = Daemon::open(&dir, cfg).unwrap();
        let mut kill = KillSwitch::none();
        // 8 batches on one shard, 1 processed per tick, stale after 2
        // ticks: the tail of the queue must shed.
        for batch in (0..8).map(|i| b(0, i + 1, Week::Train, 0, &[i])) {
            d.offer(batch);
        }
        assert!(d.drain(&mut kill, 1_000).unwrap());
        let stats = *d.stats();
        assert!(stats.shed_overload > 0);
        assert_eq!(stats.applied + stats.shed_overload, 8);
        assert!(stats.conservation_holds(d.queued_total()));
        // Determinism: identical schedule, identical split.
        let dir2 = tmpdir("shed2");
        let (mut d2, _) = Daemon::open(&dir2, cfg).unwrap();
        for batch in (0..8).map(|i| b(0, i + 1, Week::Train, 0, &[i])) {
            d2.offer(batch);
        }
        assert!(d2.drain(&mut kill, 1_000).unwrap());
        assert_eq!(*d2.stats(), stats);
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&dir2).unwrap();
    }

    /// Train both hosts on counts ≤ 8 and open their test weeks with two
    /// quiet windows, so incumbent thresholds sit near 8 and the soak
    /// span 4..6 is still unapplied.
    fn prepare_rollout_daemon(dir: &Path) -> (Daemon, KillSwitch) {
        let (mut d, _) = Daemon::open(dir, small_cfg()).unwrap();
        let mut kill = KillSwitch::none();
        let mut batches = Vec::new();
        for host in 0..2 {
            batches.push(b(host, 1, Week::Train, 0, &[1, 2, 3, 4]));
            batches.push(b(host, 2, Week::Train, 4, &[5, 6, 7, 8]));
            batches.push(b(host, 3, Week::Test, 0, &[1, 2, 3, 4]));
        }
        feed(&mut d, &mut kill, &batches);
        (d, kill)
    }

    fn candidate(t: f64) -> BTreeMap<u32, f64> {
        let mut m = BTreeMap::new();
        m.insert(0, t);
        m.insert(1, t);
        m
    }

    #[test]
    fn quiet_candidate_soaks_and_promotes() {
        let dir = tmpdir("promote");
        let (mut d, mut kill) = prepare_rollout_daemon(&dir);
        // Candidate 6.0: soak counts of 5 alarm under neither threshold.
        let epoch = d.begin_rollout(4, 6, candidate(6.0), &mut kill).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(d.epoch_phase(), Phase::Canary);
        // Only host 0 sits on the canary shard (0 % 2), so 2 windows.
        assert_eq!(d.epoch_state().candidate.as_ref().unwrap().expected_windows, 2);
        feed(&mut d, &mut kill, &[
            b(0, 4, Week::Test, 4, &[5, 5]),
            b(1, 4, Week::Test, 4, &[5, 5]),
        ]);
        assert_eq!(d.epoch_phase(), Phase::Idle);
        let hist = &d.epoch_state().history;
        assert_eq!(hist.len(), 1);
        assert_eq!(hist[0].outcome, EpochOutcome::Promoted);
        assert_eq!(hist[0].stats.windows, 2);
        // Post-promotion windows alarm against the candidate: counts of 7
        // clear the incumbent (~8) but not the promoted 6.0.
        let alarms_before: u64 = d.hosts().values().map(|h| h.live_alarms).sum();
        feed(&mut d, &mut kill, &[
            b(0, 5, Week::Test, 6, &[7, 7]),
            b(1, 5, Week::Test, 6, &[7, 7]),
        ]);
        let alarms_after: u64 = d.hosts().values().map(|h| h.live_alarms).sum();
        assert_eq!(alarms_after - alarms_before, 4);
        for st in d.hosts().values() {
            assert_eq!(st.promoted, Some((6, 6.0)));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn silencing_candidate_rolls_back_bitwise_identically() {
        // A candidate so high it silences windows the incumbent alarms on
        // (the poisoned-refit signature) must fail the AlarmDrop gate and
        // leave host state byte-identical to a run that never attempted a
        // rollout.
        let dir_a = tmpdir("rollback-a");
        let dir_b = tmpdir("rollback-b");
        let soak = [b(0, 4, Week::Test, 4, &[100, 100]), b(1, 4, Week::Test, 4, &[100, 100])];

        let (mut with_rollout, mut kill) = prepare_rollout_daemon(&dir_a);
        with_rollout.begin_rollout(4, 6, candidate(1000.0), &mut kill).unwrap();
        feed(&mut with_rollout, &mut kill, &soak);
        assert_eq!(with_rollout.epoch_phase(), Phase::Idle);
        let hist = &with_rollout.epoch_state().history;
        assert_eq!(
            hist[0].outcome,
            EpochOutcome::RolledBack(crate::epoch::RollbackReason::AlarmDrop)
        );

        let (mut plain, mut kill_b) = prepare_rollout_daemon(&dir_b);
        feed(&mut plain, &mut kill_b, &soak);

        let a: Vec<(u32, HostState)> = with_rollout.hosts().into_iter().map(|(h, s)| (h, s.clone())).collect();
        let b: Vec<(u32, HostState)> = plain.hosts().into_iter().map(|(h, s)| (h, s.clone())).collect();
        assert_eq!(a, b, "rollback must leave zero trace in host state");
        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn barrier_defers_post_soak_windows_until_decision() {
        let dir = tmpdir("barrier");
        let (mut d, mut kill) = prepare_rollout_daemon(&dir);
        d.begin_rollout(4, 6, candidate(6.0), &mut kill).unwrap();
        // Windows 6..8 reach past soak_end=6: refused while the canary
        // runs, on the non-canary shard too.
        assert_eq!(d.offer(b(1, 4, Week::Test, 6, &[5, 5])), Admit::Overflow);
        assert_eq!(d.stats().barrier_deferred, 1);
        // Train batches pass the barrier freely.
        assert_ne!(d.offer(b(1, 4, Week::Train, 6, &[5, 5])), Admit::Overflow);
        feed(&mut d, &mut kill, &[b(0, 5, Week::Test, 4, &[5, 5])]);
        assert_eq!(d.epoch_phase(), Phase::Idle, "soak complete, decided");
        // After the decision the same batch is admitted.
        assert_ne!(d.offer(b(1, 5, Week::Test, 6, &[5, 5])), Admit::Overflow);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn begin_rollout_rejects_bad_requests() {
        let dir = tmpdir("beginbad");
        let (mut d, mut kill) = prepare_rollout_daemon(&dir);
        assert!(matches!(
            d.begin_rollout(4, 6, BTreeMap::new(), &mut kill),
            Err(DaemonError::Config(_))
        ));
        assert!(matches!(
            d.begin_rollout(6, 4, candidate(6.0), &mut kill),
            Err(DaemonError::Config(_))
        ));
        assert!(matches!(
            d.begin_rollout(4, 9, candidate(6.0), &mut kill),
            Err(DaemonError::Config(_))
        ));
        // Host 1 alone lives on the non-canary shard: nothing to soak.
        let mut off_canary = BTreeMap::new();
        off_canary.insert(1u32, 6.0);
        assert!(matches!(
            d.begin_rollout(4, 6, off_canary, &mut kill),
            Err(DaemonError::Config(_))
        ));
        d.begin_rollout(4, 6, candidate(6.0), &mut kill).unwrap();
        assert!(matches!(
            d.begin_rollout(4, 6, candidate(6.0), &mut kill),
            Err(DaemonError::Config(_)),
        ), "second concurrent rollout must be refused");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kill_after_begin_recovers_canary_from_wal() {
        let dir = tmpdir("killbegin");
        let (mut d, _) = prepare_rollout_daemon(&dir);
        let mut kill = KillSwitch::armed(faultsim::KillPoint::AfterRolloutEvents(1));
        assert!(matches!(
            d.begin_rollout(4, 6, candidate(6.0), &mut kill),
            Err(DaemonError::Killed)
        ));
        drop(d);
        let (mut d, rec) = Daemon::open(&dir, small_cfg()).unwrap();
        assert_eq!(rec.wal_rollout_events, 1);
        assert_eq!(d.epoch_phase(), Phase::Canary, "durable Begin must replay");
        // The recovered canary proceeds to a normal decision.
        let mut kill = KillSwitch::none();
        feed(&mut d, &mut kill, &[b(0, 4, Week::Test, 4, &[5, 5])]);
        assert_eq!(d.epoch_phase(), Phase::Idle);
        assert_eq!(d.epoch_state().history[0].outcome, EpochOutcome::Promoted);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_begin_record_means_no_rollout() {
        let dir = tmpdir("tornbegin");
        let (mut d, _) = prepare_rollout_daemon(&dir);
        let wal_len = d.wal_len();
        // A fresh switch's byte meter lags the real file; pre-feed it so
        // the armed offset lands inside the Begin frame.
        let mut pre = KillSwitch::none();
        pre.before_wal_append(wal_len);
        pre.rearm(Some(faultsim::KillPoint::AtWalByte {
            offset: wal_len + 3,
            torn: 5,
        }));
        assert!(matches!(
            d.begin_rollout(4, 6, candidate(6.0), &mut pre),
            Err(DaemonError::Killed)
        ));
        drop(d);
        let (d, rec) = Daemon::open(&dir, small_cfg()).unwrap();
        assert!(rec.wal_torn_bytes > 0);
        assert_eq!(rec.wal_rollout_events, 0);
        assert_eq!(d.epoch_phase(), Phase::Idle, "torn Begin is a lost rollout");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_config_is_rejected() {
        let dir = tmpdir("badcfg");
        for mutate in [
            (|c: &mut DaemonConfig| c.n_shards = 0) as fn(&mut DaemonConfig),
            |c| c.n_windows = 0,
            |c| c.threshold_q = 0.0,
            |c| c.threshold_q = 1.5,
            |c| c.snapshot_every = 0,
            |c| c.queue.quantum = 0,
            |c| c.queue.high = 0,
            |c| c.queue.high = c.queue.capacity + 1,
            |c| c.queue.low = c.queue.high,
            |c| c.supervisor.quarantine_strikes = 0,
            |c| c.supervisor.breaker_failures = 0,
            |c| c.rollout.canary_shards = 0,
            |c| c.rollout.gate.max_fp_increase = -0.1,
            |c| c.rollout.gate.min_coverage = 0.0,
            |c| c.rollout.gate.min_coverage = 1.5,
            |c| c.rollout.gate.max_shed_rate = -0.1,
        ] {
            let mut cfg = small_cfg();
            mutate(&mut cfg);
            assert!(matches!(
                Daemon::open(&dir, cfg),
                Err(DaemonError::Config(_))
            ));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pin_threshold_overrides_and_survives_wal_replay() {
        let dir = tmpdir("pin");
        let pinned_alarms;
        {
            let (mut d, mut kill) = prepare_rollout_daemon(&dir);
            // Incumbent threshold ≈ 8: counts of 20 alarm. Pin host 0 at
            // 1000: nothing alarms on it any more.
            d.command(
                ControlCommand::PinThreshold { host: 0, t: 1000.0 },
                &mut kill,
            )
            .unwrap();
            assert!(matches!(
                d.command(
                    ControlCommand::PinThreshold {
                        host: 0,
                        t: f64::NAN
                    },
                    &mut kill
                ),
                Err(DaemonError::Config("pinned threshold must be finite"))
            ));
            feed(&mut d, &mut kill, &[
                b(0, 4, Week::Test, 4, &[20, 20]),
                b(1, 4, Week::Test, 4, &[20, 20]),
            ]);
            let hosts = d.hosts();
            assert_eq!(hosts[&0].pinned, Some(1000.0));
            assert_eq!(hosts[&0].live_alarms, 0, "pin silences host 0");
            assert_eq!(hosts[&1].live_alarms, 2, "host 1 unpinned");
            assert_eq!(d.control_stats().pins, 1);
            pinned_alarms = (hosts[&0].live_alarms, hosts[&1].live_alarms);
            // Drop without snapshot: recovery replays the command record.
        }
        let (d, rec) = Daemon::open(&dir, small_cfg()).unwrap();
        assert_eq!(rec.wal_commands, 1);
        let hosts = d.hosts();
        assert_eq!(hosts[&0].pinned, Some(1000.0));
        assert_eq!(
            (hosts[&0].live_alarms, hosts[&1].live_alarms),
            pinned_alarms,
            "WAL replay reproduces pinned evaluation exactly"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drain_refuses_admission_until_undrain_and_survives_snapshot() {
        let dir = tmpdir("drain");
        {
            let (mut d, mut kill) = prepare_rollout_daemon(&dir);
            // Host 0 routes to shard 0; drain it.
            d.command(ControlCommand::DrainShard { shard: 0 }, &mut kill)
                .unwrap();
            assert_eq!(d.drained_shards(), vec![0]);
            assert_eq!(d.offer(b(0, 4, Week::Test, 4, &[5, 5])), Admit::Overflow);
            assert_eq!(d.stats().drain_deferred, 1);
            // Host 1 (shard 1) is unaffected.
            assert_ne!(d.offer(b(1, 4, Week::Test, 4, &[5, 5])), Admit::Overflow);
            assert!(matches!(
                d.command(ControlCommand::DrainShard { shard: 9 }, &mut kill),
                Err(DaemonError::Config("shard id out of range"))
            ));
            // Snapshot while drained: the drain must persist through it.
            d.force_snapshot().unwrap();
        }
        let (mut d, rec) = Daemon::open(&dir, small_cfg()).unwrap();
        assert!(rec.snapshot_seq.is_some());
        assert_eq!(d.drained_shards(), vec![0], "drain survives snapshot");
        let mut kill = KillSwitch::none();
        assert_eq!(d.offer(b(0, 5, Week::Test, 4, &[5, 5])), Admit::Overflow);
        d.command(ControlCommand::UndrainShard { shard: 0 }, &mut kill)
            .unwrap();
        assert!(d.drained_shards().is_empty());
        assert_ne!(d.offer(b(0, 5, Week::Test, 4, &[5, 5])), Admit::Overflow);
        assert_eq!(d.control_stats().undrains, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn force_rollback_records_operator_reason_and_leaves_no_trace() {
        let dir_a = tmpdir("oproll-a");
        let dir_b = tmpdir("oproll-b");
        let (mut with_cmd, mut kill) = prepare_rollout_daemon(&dir_a);
        assert!(matches!(
            with_cmd.command(ControlCommand::ForceRollback, &mut kill),
            Err(DaemonError::Config("no rollout in progress to roll back"))
        ));
        with_cmd
            .begin_rollout(4, 6, candidate(6.0), &mut kill)
            .unwrap();
        assert_eq!(with_cmd.epoch_phase(), Phase::Canary);
        with_cmd
            .command(ControlCommand::ForceRollback, &mut kill)
            .unwrap();
        assert_eq!(with_cmd.epoch_phase(), Phase::Idle);
        let hist = &with_cmd.epoch_state().history;
        assert_eq!(
            hist[0].outcome,
            EpochOutcome::RolledBack(RollbackReason::Operator)
        );
        let after = [
            b(0, 4, Week::Test, 4, &[5, 5]),
            b(1, 4, Week::Test, 4, &[5, 5]),
        ];
        feed(&mut with_cmd, &mut kill, &after);

        let (mut plain, mut kill_b) = prepare_rollout_daemon(&dir_b);
        feed(&mut plain, &mut kill_b, &after);
        let a: Vec<(u32, HostState)> = with_cmd
            .hosts()
            .into_iter()
            .map(|(h, s)| (h, s.clone()))
            .collect();
        let b: Vec<(u32, HostState)> = plain
            .hosts()
            .into_iter()
            .map(|(h, s)| (h, s.clone()))
            .collect();
        assert_eq!(a, b, "operator rollback leaves host state untouched");
        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn kill_after_command_recovers_it_from_the_wal() {
        let dir = tmpdir("cmdkill");
        {
            let (mut d, _) = Daemon::open(&dir, small_cfg()).unwrap();
            let mut kill = KillSwitch::armed(faultsim::KillPoint::AfterCommands(1));
            // The command journals, applies, then the "process dies"
            // before the operator hears the ack.
            assert!(matches!(
                d.command(ControlCommand::DrainShard { shard: 1 }, &mut kill),
                Err(DaemonError::Killed)
            ));
        }
        let (d, rec) = Daemon::open(&dir, small_cfg()).unwrap();
        assert_eq!(rec.wal_commands, 1);
        assert_eq!(
            d.drained_shards(),
            vec![1],
            "journaled command survives the crash"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reload_applies_live_fields_and_bumps_generation() {
        let dir = tmpdir("reload");
        let (mut d, _) = Daemon::open(&dir, small_cfg()).unwrap();
        assert_eq!(d.config_generation(), 1);
        let mut new = small_cfg();
        new.snapshot_every = 7;
        new.supervisor.breaker_failures = 99;
        new.rollout.gate.min_coverage = 0.5;
        assert_eq!(d.reload(&new).unwrap(), 2);
        assert_eq!(d.config_generation(), 2);
        assert_eq!(d.config().snapshot_every, 7);
        assert_eq!(d.config().supervisor.breaker_failures, 99);
        assert_eq!(d.config().rollout.gate.min_coverage, 0.5);
        assert_eq!(d.control_stats().reloads_applied, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_reload_is_rejected_with_old_config_provably_live() {
        let dir = tmpdir("reloadbad");
        let (mut d, _) = Daemon::open(&dir, small_cfg()).unwrap();
        let before = d.config().clone();

        // Structurally different configs and outright invalid ones all
        // reject; after each, every old value is still live and the
        // generation never moved.
        let cases: Vec<(fn(&mut DaemonConfig), &str)> = vec![
            (|c| c.n_shards = 8, "n_shards"),
            (|c| c.n_windows = 16, "n_windows"),
            (|c| c.threshold_q = 0.5, "threshold_q"),
            (|c| c.sketch_eps = Some(0.01), "sketch_eps"),
            (|c| c.queue.capacity = 64, "queue sizing"),
            (|c| c.queue.quantum = 2, "queue sizing"),
            (|c| c.rollout.canary_shards = 2, "rollout.canary_shards"),
            (|c| c.snapshot_every = 0, "snapshot_every must be nonzero"),
            (|c| c.supervisor.breaker_failures = 0, "breaker_failures"),
        ];
        let n_cases = cases.len() as u64;
        for (mutate, needle) in cases {
            let mut new = small_cfg();
            mutate(&mut new);
            match d.reload(&new) {
                Err(DaemonError::Config(msg)) => {
                    assert!(msg.contains(needle), "{msg} should mention {needle}")
                }
                other => panic!("expected rejection, got {other:?}"),
            }
            assert_eq!(d.config_generation(), 1, "generation unmoved");
        }
        // Old values provably live, field by field.
        let after = d.config().clone();
        assert_eq!(after.n_shards, before.n_shards);
        assert_eq!(after.n_windows, before.n_windows);
        assert_eq!(after.threshold_q.to_bits(), before.threshold_q.to_bits());
        assert_eq!(after.snapshot_every, before.snapshot_every);
        assert_eq!(after.queue.capacity, before.queue.capacity);
        assert_eq!(
            after.supervisor.breaker_failures,
            before.supervisor.breaker_failures
        );
        assert_eq!(d.control_stats().reloads_rejected, n_cases);
        // And the rejection trail is in the event ring.
        assert!(d.events().contains("fleetd.control", "config_rejected"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn control_metrics_families_render() {
        let dir = tmpdir("ctrlmetrics");
        let (mut d, mut kill) = prepare_rollout_daemon(&dir);
        d.command(ControlCommand::DrainShard { shard: 0 }, &mut kill)
            .unwrap();
        let mut new = small_cfg();
        new.snapshot_every = 5;
        d.reload(&new).unwrap();
        let mut reg = hids_metrics::Registry::default();
        d.export_metrics(&mut reg);
        let text = reg.render(hids_metrics::RenderOptions::deterministic());
        assert!(text.contains("control_config_generation 2"));
        assert!(text.contains("control_reloads_total{outcome=\"applied\"} 1"));
        assert!(text.contains("control_commands_total{command=\"drain-shard\"} 1"));
        assert!(text.contains("control_drained_shards 1"));
        assert!(text.contains("disposition=\"drain_deferred\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
