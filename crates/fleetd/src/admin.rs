//! Zero-dependency HTTP/1.0 admin endpoint for the daemon.
//!
//! One loopback `TcpListener`, one connection at a time, four routes:
//!
//! * `GET /metrics` — the Prometheus text exposition the daemon renders
//!   deterministically (`control_*` and `fleetd_*` families);
//! * `GET /state` — epoch/rollout/drain state as a JSON document
//!   ([`Daemon::state_json`](crate::daemon::Daemon::state_json));
//! * `POST /reload` — body is a [`FleetConfig`](crate::control::FleetConfig)
//!   key=value file; applied via the reject-and-keep-old reload path;
//! * `POST /command` — body is one operator command line
//!   ([`ControlCommand::parse`](crate::control::ControlCommand::parse)),
//!   journaled to the WAL before it takes effect.
//!
//! The endpoint is **off by default** (the daemon has no admin port unless
//! the operator passes one) and binds `127.0.0.1` only. It speaks strict
//! HTTP/1.0 with `Connection: close` — no keep-alive, no chunking, no
//! pipelining — because the operator surface needs exactly "request in,
//! response out" and nothing that complicates the totality argument.
//!
//! Totality against hostile input is the design driver: request size is
//! bounded ([`AdminConfig::max_request_bytes`], 413 beyond it), socket
//! reads carry a deadline ([`AdminConfig::read_timeout_ms`], 408 on
//! expiry), and the parse/route/respond core is a pure function over a
//! byte buffer ([`respond`]) with no panicking operation on any path —
//! the property tests in the root `tests/control.rs` suite drive it with
//! arbitrary bytes. A malformed request earns a 4xx response, never a
//! hang, never a crash, and never a half-applied command (commands ride
//! the same WAL-first discipline as everything else).

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use crate::control::{ControlCommand, FleetConfig};
use crate::daemon::Daemon;
use crate::wal::KillSwitch;
use hids_metrics::{Registry, RenderOptions};

/// Bounds on what a single admin request may cost.
#[derive(Debug, Clone, Copy)]
pub struct AdminConfig {
    /// Hard cap on the whole request (head + body); 413 beyond it.
    pub max_request_bytes: usize,
    /// Socket read deadline; 408 once it expires mid-request.
    pub read_timeout_ms: u64,
}

impl Default for AdminConfig {
    fn default() -> Self {
        Self {
            max_request_bytes: 64 * 1024,
            read_timeout_ms: 2000,
        }
    }
}

/// What the endpoint serves — the daemon-facing surface, abstracted so
/// the HTTP layer can be tested (and fuzzed) against a mock.
pub trait AdminHandler {
    /// Render the Prometheus text exposition.
    fn metrics_text(&mut self) -> String;
    /// Render the state JSON document.
    fn state_json(&mut self) -> String;
    /// Parse + validate + hot-apply a config file; `Ok` is the new
    /// generation, `Err` is the rejection reason (old config stays live).
    fn reload(&mut self, config_text: &str) -> Result<u64, String>;
    /// Parse + journal + apply one operator command line.
    fn command(&mut self, line: &str) -> Result<(), String>;
}

/// The production [`AdminHandler`]: a borrowed daemon plus the kill
/// switch its command journal consults.
pub struct DaemonControl<'a> {
    /// The live daemon.
    pub daemon: &'a mut Daemon,
    /// Kill switch threaded into journaled command appends.
    pub kill: &'a mut KillSwitch,
}

impl AdminHandler for DaemonControl<'_> {
    fn metrics_text(&mut self) -> String {
        let mut reg = Registry::default();
        self.daemon.export_metrics(&mut reg);
        reg.render(RenderOptions::deterministic())
    }

    fn state_json(&mut self) -> String {
        self.daemon.state_json()
    }

    fn reload(&mut self, config_text: &str) -> Result<u64, String> {
        let fc = FleetConfig::parse(config_text)?;
        self.daemon.reload(&fc.daemon).map_err(|e| e.to_string())
    }

    fn command(&mut self, line: &str) -> Result<(), String> {
        let cmd = ControlCommand::parse(line)?;
        self.daemon.command(cmd, self.kill).map_err(|e| e.to_string())
    }
}

/// A fully-formed HTTP/1.0 response, ready to serialise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            body,
        }
    }

    fn error(status: u16) -> Self {
        Self::json(
            status,
            format!("{{\"error\":\"{}\"}}", reason(status)),
        )
    }

    /// Serialise as an HTTP/1.0 wire response (`Connection: close`).
    pub fn to_bytes(&self) -> Vec<u8> {
        format!(
            "HTTP/1.0 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            self.body
        )
        .into_bytes()
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        _ => "Error",
    }
}

/// Escape a string for embedding in a JSON string literal. Covers the
/// characters that can actually appear in our error messages (which may
/// quote hostile operator input back at the operator).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Where an in-progress request buffer stands.
enum Progress {
    /// Head or body still incomplete; keep reading.
    NeedMore,
    /// A complete request of this many bytes is in the buffer.
    Complete,
    /// The request can never become valid; answer with this status.
    Fail(u16),
}

/// Find the end of the header block (`\r\n\r\n`); returns
/// `(head_len, body_start)`.
fn find_head_end(buf: &[u8]) -> Option<(usize, usize)> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| (i, i + 4))
}

/// Parse the header block: request line (`METHOD /path HTTP/1.x`) plus a
/// case-insensitive `Content-Length`. Returns `(method, path,
/// content_length)` or a 4xx status. Total over any string.
fn parse_head(head: &str) -> Result<(&str, &str, usize), u16> {
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or(400u16)?;
    let mut parts = request_line.split(' ');
    let method = parts.next().ok_or(400u16)?;
    let path = parts.next().ok_or(400u16)?;
    let version = parts.next().ok_or(400u16)?;
    if parts.next().is_some() || method.is_empty() || !path.starts_with('/') {
        return Err(400);
    }
    if version != "HTTP/1.0" && version != "HTTP/1.1" {
        return Err(400);
    }
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(400);
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value.trim().parse::<usize>().map_err(|_| 400u16)?;
        }
    }
    Ok((method, path, content_length))
}

/// Classify an accumulating request buffer without allocating.
fn progress(buf: &[u8], max_request_bytes: usize) -> Progress {
    let Some((head_len, body_start)) = find_head_end(buf) else {
        return if buf.len() > max_request_bytes {
            Progress::Fail(413)
        } else {
            Progress::NeedMore
        };
    };
    let Ok(head) = core::str::from_utf8(&buf[..head_len]) else {
        return Progress::Fail(400);
    };
    let (_, _, content_length) = match parse_head(head) {
        Ok(t) => t,
        Err(status) => return Progress::Fail(status),
    };
    if body_start.saturating_add(content_length) > max_request_bytes {
        return Progress::Fail(413);
    }
    if buf.len() >= body_start + content_length {
        Progress::Complete
    } else {
        Progress::NeedMore
    }
}

/// Route one parsed request. Pure over its inputs; every arm returns a
/// response, none can panic.
pub fn handle_request(
    method: &str,
    path: &str,
    body: &[u8],
    h: &mut dyn AdminHandler,
) -> Response {
    match path {
        "/metrics" => match method {
            "GET" => Response {
                status: 200,
                content_type: "text/plain; version=0.0.4",
                body: h.metrics_text(),
            },
            _ => Response::error(405),
        },
        "/state" => match method {
            "GET" => Response::json(200, h.state_json()),
            _ => Response::error(405),
        },
        "/reload" => match method {
            "POST" => {
                let Ok(text) = core::str::from_utf8(body) else {
                    return Response::error(400);
                };
                match h.reload(text) {
                    Ok(generation) => Response::json(
                        200,
                        format!("{{\"applied\":true,\"generation\":{generation}}}"),
                    ),
                    Err(e) => Response::json(
                        422,
                        format!("{{\"applied\":false,\"error\":\"{}\"}}", json_escape(&e)),
                    ),
                }
            }
            _ => Response::error(405),
        },
        "/command" => match method {
            "POST" => {
                let Ok(line) = core::str::from_utf8(body) else {
                    return Response::error(400);
                };
                match h.command(line) {
                    Ok(()) => Response::json(200, "{\"applied\":true}".to_string()),
                    Err(e) => Response::json(
                        422,
                        format!("{{\"applied\":false,\"error\":\"{}\"}}", json_escape(&e)),
                    ),
                }
            }
            _ => Response::error(405),
        },
        _ => Response::error(404),
    }
}

/// The pure request→response core: parse `raw` as one HTTP/1.0 request
/// and produce the full wire response. Total over arbitrary bytes — this
/// is the property-test target. An incomplete buffer (the socket layer
/// never hands one over, but a fuzzer will) earns a 400.
pub fn respond(raw: &[u8], max_request_bytes: usize, h: &mut dyn AdminHandler) -> Vec<u8> {
    let resp = match progress(raw, max_request_bytes) {
        Progress::NeedMore => Response::error(400),
        Progress::Fail(status) => Response::error(status),
        Progress::Complete => {
            // progress() proved head validity; re-derive the pieces.
            match find_head_end(raw) {
                Some((head_len, body_start)) => {
                    match core::str::from_utf8(&raw[..head_len]).map_err(|_| 400u16).and_then(parse_head) {
                        Ok((method, path, content_length)) => {
                            let body = &raw[body_start..body_start + content_length];
                            handle_request(method, path, body, h)
                        }
                        Err(status) => Response::error(status),
                    }
                }
                None => Response::error(400),
            }
        }
    };
    resp.to_bytes()
}

/// The listener: loopback-only, one connection served at a time.
pub struct AdminServer {
    listener: TcpListener,
    cfg: AdminConfig,
    port: u16,
}

impl AdminServer {
    /// Bind `127.0.0.1:port` (`port = 0` asks the OS for a free one —
    /// the CLI forbids 0 from operators, but tests want it).
    pub fn bind(port: u16, cfg: AdminConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let port = listener.local_addr()?.port();
        Ok(Self {
            listener,
            cfg,
            port,
        })
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Accept one connection, serve one request on it, close it.
    pub fn serve_one(&self, h: &mut dyn AdminHandler) -> std::io::Result<()> {
        let (stream, _) = self.listener.accept()?;
        self.serve_stream(stream, h)
    }

    fn serve_stream(&self, mut stream: TcpStream, h: &mut dyn AdminHandler) -> std::io::Result<()> {
        stream.set_read_timeout(Some(Duration::from_millis(self.cfg.read_timeout_ms.max(1))))?;
        let mut buf: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 4096];
        let outcome: Result<(), u16> = loop {
            match progress(&buf, self.cfg.max_request_bytes) {
                Progress::Complete => break Ok(()),
                Progress::Fail(status) => break Err(status),
                Progress::NeedMore => {}
            }
            match stream.read(&mut chunk) {
                // Peer closed before completing the request.
                Ok(0) => break Err(400),
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    break Err(408);
                }
                Err(e) => return Err(e),
            }
        };
        let bytes = match outcome {
            Ok(()) => respond(&buf, self.cfg.max_request_bytes, h),
            Err(status) => Response::error(status).to_bytes(),
        };
        // The peer may already be gone; a failed write is its problem.
        let _ = stream.write_all(&bytes);
        let _ = stream.flush();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scriptable handler that records what it was asked.
    struct Mock {
        reload_result: Result<u64, String>,
        command_result: Result<(), String>,
        log: Vec<String>,
    }

    impl Default for Mock {
        fn default() -> Self {
            Self {
                reload_result: Ok(2),
                command_result: Ok(()),
                log: Vec::new(),
            }
        }
    }

    impl AdminHandler for Mock {
        fn metrics_text(&mut self) -> String {
            self.log.push("metrics".into());
            "# TYPE control_config_generation gauge\ncontrol_config_generation 1\n".into()
        }
        fn state_json(&mut self) -> String {
            self.log.push("state".into());
            "{\"phase\":\"idle\"}".into()
        }
        fn reload(&mut self, text: &str) -> Result<u64, String> {
            self.log.push(format!("reload:{text}"));
            self.reload_result.clone()
        }
        fn command(&mut self, line: &str) -> Result<(), String> {
            self.log.push(format!("command:{line}"));
            self.command_result.clone()
        }
    }

    fn req(s: &str) -> Vec<u8> {
        s.as_bytes().to_vec()
    }

    fn status_of(resp: &[u8]) -> u16 {
        let text = core::str::from_utf8(resp).unwrap();
        text.split(' ').nth(1).unwrap().parse().unwrap()
    }

    #[test]
    fn routes_dispatch_and_close() {
        let mut m = Mock::default();
        let r = respond(
            &req("GET /metrics HTTP/1.0\r\n\r\n"),
            1024,
            &mut m,
        );
        assert_eq!(status_of(&r), 200);
        let text = String::from_utf8(r).unwrap();
        assert!(text.contains("Connection: close"));
        assert!(text.contains("control_config_generation 1"));

        let r = respond(&req("GET /state HTTP/1.1\r\n\r\n"), 1024, &mut m);
        assert_eq!(status_of(&r), 200);

        let body = "snapshot_every=32\n";
        let r = respond(
            &req(&format!(
                "POST /reload HTTP/1.0\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            )),
            1024,
            &mut m,
        );
        assert_eq!(status_of(&r), 200);
        assert!(String::from_utf8(r).unwrap().contains("\"generation\":2"));

        let line = "drain-shard 1";
        let r = respond(
            &req(&format!(
                "POST /command HTTP/1.0\r\nContent-Length: {}\r\n\r\n{}",
                line.len(),
                line
            )),
            1024,
            &mut m,
        );
        assert_eq!(status_of(&r), 200);
        assert_eq!(
            m.log,
            vec![
                "metrics".to_string(),
                "state".to_string(),
                format!("reload:{body}"),
                format!("command:{line}"),
            ]
        );
    }

    #[test]
    fn rejections_map_to_422_with_escaped_error() {
        let mut m = Mock {
            reload_result: Err("bad \"key\"\nline 2".into()),
            ..Mock::default()
        };
        let r = respond(
            &req("POST /reload HTTP/1.0\r\nContent-Length: 0\r\n\r\n"),
            1024,
            &mut m,
        );
        assert_eq!(status_of(&r), 422);
        let text = String::from_utf8(r).unwrap();
        assert!(text.contains("bad \\\"key\\\"\\nline 2"), "{text}");
    }

    #[test]
    fn hostile_requests_get_4xx_never_panic() {
        let mut m = Mock::default();
        let cases: &[&[u8]] = &[
            b"",
            b"\r\n\r\n",
            b"GET\r\n\r\n",
            b"GET /metrics\r\n\r\n",
            b"GET /metrics HTTP/2.0\r\n\r\n",
            b"GET metrics HTTP/1.0\r\n\r\n",
            b"PUT /metrics HTTP/1.0\r\n\r\n",
            b"POST /state HTTP/1.0\r\n\r\n",
            b"GET /nope HTTP/1.0\r\n\r\n",
            b"GET /metrics HTTP/1.0\r\nContent-Length: banana\r\n\r\n",
            b"GET /metrics HTTP/1.0\r\nno-colon-here\r\n\r\n",
            b"POST /command HTTP/1.0\r\nContent-Length: 4\r\n\r\n\xff\xfe\xfd\xfc",
            b"\xff\xff\xff\xff\r\n\r\n",
        ];
        for c in cases {
            let r = respond(c, 1024, &mut m);
            let s = status_of(&r);
            assert!(
                (400..=422).contains(&s),
                "expected 4xx for {c:?}, got {s}"
            );
        }
    }

    #[test]
    fn oversize_requests_get_413() {
        let mut m = Mock::default();
        // Head alone blows the cap without ever completing.
        let r = respond(&vec![b'A'; 2048], 1024, &mut m);
        assert_eq!(status_of(&r), 413);
        // Declared body longer than the cap.
        let r = respond(
            &req("POST /reload HTTP/1.0\r\nContent-Length: 999999\r\n\r\n"),
            1024,
            &mut m,
        );
        assert_eq!(status_of(&r), 413);
    }

    #[test]
    fn server_serves_over_real_sockets() {
        let server = AdminServer::bind(0, AdminConfig::default()).unwrap();
        let port = server.port();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(("127.0.0.1", port)).unwrap();
            s.write_all(b"GET /state HTTP/1.0\r\n\r\n").unwrap();
            let mut resp = Vec::new();
            s.read_to_end(&mut resp).unwrap();
            resp
        });
        let mut m = Mock::default();
        server.serve_one(&mut m).unwrap();
        let resp = client.join().unwrap();
        assert_eq!(status_of(&resp), 200);
        assert!(String::from_utf8(resp).unwrap().ends_with("{\"phase\":\"idle\"}"));
    }

    #[test]
    fn server_times_out_slow_clients() {
        let server = AdminServer::bind(
            0,
            AdminConfig {
                max_request_bytes: 1024,
                read_timeout_ms: 100,
            },
        )
        .unwrap();
        let port = server.port();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(("127.0.0.1", port)).unwrap();
            // Send half a request and stall past the deadline.
            s.write_all(b"GET /metrics HTT").unwrap();
            let mut resp = Vec::new();
            s.read_to_end(&mut resp).unwrap();
            resp
        });
        let mut m = Mock::default();
        server.serve_one(&mut m).unwrap();
        let resp = client.join().unwrap();
        assert_eq!(status_of(&resp), 408);
    }
}
