//! Property-based tests of the synthetic enterprise generator.

use proptest::prelude::*;

use flowtab::{extract_features, Windowing};
use synthgen::{
    invariants_hold, render_window_flows, stream_rng, user_week_series, Population,
    PopulationConfig,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every window of every generated week satisfies the structural
    /// invariants, for arbitrary seeds and both bin widths.
    #[test]
    fn all_windows_satisfy_invariants(seed in any::<u64>(), five_min in any::<bool>()) {
        let pop = Population::sample(PopulationConfig {
            n_users: 6,
            seed,
            ..Default::default()
        });
        let windowing = if five_min { Windowing::FIVE_MIN } else { Windowing::FIFTEEN_MIN };
        for user in &pop.users {
            let s = user_week_series(user, seed, 0, windowing);
            prop_assert_eq!(s.len(), windowing.windows_per_week());
            for c in &s.windows {
                prop_assert!(invariants_hold(c), "{:?}", c);
            }
        }
    }

    /// The flow renderer reproduces arbitrary real generated windows
    /// exactly (sampled across users/seeds, beyond the unit tests' fixed
    /// profiles).
    #[test]
    fn renderer_round_trips_generated_windows(seed in any::<u64>(), user_idx in 0usize..6) {
        let pop = Population::sample(PopulationConfig {
            n_users: 6,
            seed,
            ..Default::default()
        });
        let user = &pop.users[user_idx];
        let windowing = Windowing::FIFTEEN_MIN;
        let week = user_week_series(user, seed, 0, windowing);
        let mut rng = stream_rng(seed ^ 1, user.id, 9);
        let mut checked = 0;
        for (w, counts) in week.windows.iter().enumerate() {
            let total: u64 = (0..6).map(|i| counts.0[i]).sum();
            if total == 0 || total > 20_000 {
                continue;
            }
            let flows = render_window_flows(user, counts, w, windowing, &mut rng);
            let got = extract_features(&flows, user.addr, windowing, w + 1);
            prop_assert_eq!(&got.windows[w], counts, "window {}", w);
            checked += 1;
            if checked >= 5 {
                break;
            }
        }
    }

    /// Weeks are deterministic per (seed, user, week) and independent:
    /// regenerating any one week gives identical counts regardless of
    /// whether other weeks were generated.
    #[test]
    fn weeks_independent_and_deterministic(seed in any::<u64>(), week in 0usize..4) {
        let pop = Population::sample(PopulationConfig {
            n_users: 3,
            seed,
            ..Default::default()
        });
        let user = &pop.users[1];
        let direct = user_week_series(user, seed, week, Windowing::FIFTEEN_MIN);
        // Generate some other weeks first; must not perturb this week.
        for w in 0..3 {
            let _ = user_week_series(user, seed, w + 10, Windowing::FIFTEEN_MIN);
        }
        let again = user_week_series(user, seed, week, Windowing::FIFTEEN_MIN);
        prop_assert_eq!(direct, again);
    }

    /// Population statistics respond to the config: more users, more
    /// profiles; heavy fraction within binomial plausibility.
    #[test]
    fn population_shape(seed in any::<u64>(), n in 20usize..120) {
        let pop = Population::sample(PopulationConfig {
            n_users: n,
            seed,
            ..Default::default()
        });
        prop_assert_eq!(pop.users.len(), n);
        let heavy = pop.users.iter().filter(|u| u.heavy).count() as f64 / n as f64;
        // 13% ± generous binomial slack for small n.
        prop_assert!(heavy <= 0.40, "heavy fraction {heavy}");
        for u in &pop.users {
            prop_assert!(u.levels.tcp >= 1.0);
            prop_assert!(u.levels.udp >= 1.0);
            prop_assert!(u.levels.dns >= 1.0);
            prop_assert!(u.sess_rate_tcp > 0.0);
        }
    }
}
