//! User profiles and population sampling.
//!
//! The generator is parameterised *tail-first*: for each user and each
//! primary feature we draw the level `L` where that user's per-window tail
//! begins (roughly the 99th percentile of their window counts), then build
//! a within-user count process whose tail lands there. This gives direct,
//! testable control over the cross-user dispersion the paper measures in
//! Figure 1 (3–4 decades for five features, ~2 for DNS, a heavy-user knee
//! at the top 10–15%).

use std::net::Ipv4Addr;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::dist::standard_normal;
use crate::schedule::Schedule;

/// Stable identifier of a simulated end host.
pub type UserId = u32;

/// Population-level generator parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PopulationConfig {
    /// Number of end hosts (the paper has 350).
    pub n_users: usize,
    /// Master seed; every derived stream is keyed off this.
    pub seed: u64,
    /// Fraction of "heavy" users forming the knee in Fig. 1 (paper: 10–15%).
    pub heavy_fraction: f64,
    /// Within-user per-window lognormal volatility (controls how far the
    /// 99.9th percentile sits above the 99th).
    pub window_sigma: f64,
    /// Population-wide multiplicative activity trend per week (< 1 means
    /// each week runs slightly quieter than the last). Calibrates to the
    /// paper's Table 3, where thresholds trained on week n deliver *below*
    /// nominal false-positive rates on week n+1 (892 alarms ≈ 0.38% « 1%
    /// under full diversity) — i.e. their test weeks were systematically
    /// quieter than training weeks.
    pub weekly_trend: f64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        Self {
            n_users: 350,
            seed: 0xC0FFEE,
            heavy_fraction: 0.13,
            window_sigma: 0.6,
            weekly_trend: 0.97,
        }
    }
}

/// Tail levels for the independently-drawn features.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TailLevels {
    /// ~99th percentile of per-window TCP connections.
    pub tcp: f64,
    /// ~99th percentile of per-window (non-DNS) UDP flows.
    pub udp: f64,
    /// ~99th percentile of per-window DNS transactions.
    pub dns: f64,
}

/// Everything that makes one synthetic user behave like themselves.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UserProfile {
    /// Identifier (0-based, also drives the host address).
    pub id: UserId,
    /// The host's own IPv4 address.
    pub addr: Ipv4Addr,
    /// Whether this user belongs to the heavy subpopulation.
    pub heavy: bool,
    /// Tail levels for the primary features.
    pub levels: TailLevels,
    /// Fraction of TCP connections that are HTTP (port 80).
    pub p_http: f64,
    /// SYN multiplier ≥ 1 (retransmissions / failed connects).
    pub syn_mult: f64,
    /// Probability a TCP flow targets a *new* destination in its window.
    pub dest_novelty_tcp: f64,
    /// Same for UDP flows.
    pub dest_novelty_udp: f64,
    /// Usage schedule.
    pub schedule: Schedule,
    /// Within-user per-window volatility (copied from the population, may
    /// be perturbed per user).
    pub window_sigma: f64,
    /// Week-over-week level volatility (lognormal sigma of a per-week
    /// multiplier). Heavy users are markedly less stationary — the paper's
    /// heaviest users dominate the homogeneous policy's false alarms.
    pub week_sigma: f64,
    /// Mean TCP-bearing sessions per window at full activity. Counts are
    /// session-quantised: light users' distributions form lumps at one,
    /// two, three sessions' worth of flows, which is what gives their
    /// empirical 99th percentiles the sub-nominal false-positive slack the
    /// paper's Table 3 exhibits.
    pub sess_rate_tcp: f64,
    /// Mean UDP-bearing sessions per window at full activity.
    pub sess_rate_udp: f64,
    /// Lognormal sigma of per-session flow-count noise (tight: sessions of
    /// the same user look alike).
    pub sess_size_sigma: f64,
}

impl UserProfile {
    /// Mean-rate divisor: `L / rate_divisor(sigma)` recovers the mean of
    /// the within-window lognormal process whose ~97th in-use percentile
    /// is `L` (which is the ~99th over all windows once off-windows are
    /// included).
    pub fn rate_divisor(&self) -> f64 {
        (1.9 * self.window_sigma).exp()
    }
}

/// Deterministic stream key: splitmix64 over (seed, salt pieces).
pub fn mix_seed(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed ^ a.rotate_left(17) ^ b.rotate_left(41) ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// RNG for a (user, week) stream.
pub fn stream_rng(seed: u64, user: UserId, week: usize) -> StdRng {
    StdRng::seed_from_u64(mix_seed(seed, u64::from(user), week as u64))
}

/// The synthetic enterprise population.
#[derive(Debug, Clone)]
pub struct Population {
    /// Generator configuration used.
    pub config: PopulationConfig,
    /// One profile per end host.
    pub users: Vec<UserProfile>,
}

impl Population {
    /// Sample a population from a configuration. Deterministic in
    /// `config.seed`.
    pub fn sample(config: PopulationConfig) -> Self {
        let users = (0..config.n_users)
            .map(|i| sample_user(&config, i as UserId))
            .collect();
        Self { config, users }
    }

    /// The host address space used by the population (10.1.x.y).
    pub fn addr_of(id: UserId) -> Ipv4Addr {
        Ipv4Addr::new(10, 1, (id >> 8) as u8, (id & 0xff) as u8)
    }
}

/// Sample one host's profile without materializing a [`Population`] —
/// the streaming entry point fleet-scale runs use to generate millions of
/// hosts one at a time in O(1) memory. Bit-identical to the profile
/// `Population::sample` would produce at index `id` for the same config
/// (the population path simply maps this function over `0..n_users`).
pub fn sample_user(config: &PopulationConfig, id: UserId) -> UserProfile {
    let mut rng = StdRng::seed_from_u64(mix_seed(config.seed, u64::from(id), 0xFACE));

    // Shared heaviness factor: how much of a power user this person is.
    let shared = standard_normal(&mut rng);
    let heavy = rng.random::<f64>() < config.heavy_fraction;
    let heavy_boost = if heavy {
        1.3 + 0.5 * rng.random::<f64>()
    } else {
        0.0
    };

    // log10 tail levels: base + c·shared + idiosyncratic + heavy knee.
    let mut level = |base: f64, c: f64, s: f64, heavy_gain: f64| -> f64 {
        let idio = standard_normal(&mut rng);
        let log10 = base + c * shared + s * idio + heavy_gain * heavy_boost;
        10f64.powf(log10.clamp(0.0, 4.3))
    };

    // Calibration targets (paper Fig. 1): TCP spans ~50..7000, UDP and the
    // derived features span 3–4 decades, DNS only ~2.
    let tcp = level(1.85, 0.40, 0.38, 1.0);
    let udp = level(1.45, 0.22, 0.55, 1.0);
    let dns = level(1.35, 0.18, 0.22, 0.45);

    let p_http = 0.25 + 0.6 * rng.random::<f64>();
    let syn_mult = 1.02 + 0.55 * rng.random::<f64>();
    let dest_novelty_tcp = 0.15 + 0.75 * rng.random::<f64>();
    let dest_novelty_udp = 0.10 + 0.80 * rng.random::<f64>();

    let schedule = Schedule {
        work_uptime: 0.6 + 0.35 * rng.random::<f64>(),
        home_uptime: 0.1 + 0.5 * rng.random::<f64>(),
        travel_propensity: 0.05 * rng.random::<f64>(),
        phase_hours: 3.0 * (rng.random::<f64>() * 2.0 - 1.0),
    };

    UserProfile {
        id,
        addr: Population::addr_of(id),
        heavy,
        levels: TailLevels { tcp, udp, dns },
        p_http,
        syn_mult,
        dest_novelty_tcp,
        dest_novelty_udp,
        schedule,
        window_sigma: config.window_sigma * (0.85 + 0.3 * rng.random::<f64>()),
        week_sigma: if heavy {
            0.30 + 0.20 * rng.random::<f64>()
        } else {
            0.02 + 0.04 * rng.random::<f64>()
        },
        sess_rate_tcp: (0.4 + 2.6 * rng.random::<f64>()) * if heavy { 3.0 } else { 1.0 },
        sess_rate_udp: (0.3 + 2.0 * rng.random::<f64>()) * if heavy { 2.5 } else { 1.0 },
        sess_size_sigma: if rng.random::<f64>() < 0.3 { 0.1 } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_is_deterministic() {
        let a = Population::sample(PopulationConfig::default());
        let b = Population::sample(PopulationConfig::default());
        assert_eq!(a.users.len(), 350);
        for (x, y) in a.users.iter().zip(&b.users) {
            assert_eq!(x.levels.tcp, y.levels.tcp);
            assert_eq!(x.p_http, y.p_http);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Population::sample(PopulationConfig::default());
        let b = Population::sample(PopulationConfig {
            seed: 1,
            ..Default::default()
        });
        assert_ne!(a.users[0].levels.tcp, b.users[0].levels.tcp);
    }

    #[test]
    fn tail_levels_span_decades() {
        let pop = Population::sample(PopulationConfig::default());
        let (min, max) = pop
            .users
            .iter()
            .map(|u| u.levels.tcp)
            .fold((f64::INFINITY, 0.0f64), |(lo, hi), x| (lo.min(x), hi.max(x)));
        let decades = (max / min).log10();
        assert!(decades >= 2.0, "TCP tail levels span {decades:.2} decades");

        let (dmin, dmax) = pop
            .users
            .iter()
            .map(|u| u.levels.dns)
            .fold((f64::INFINITY, 0.0f64), |(lo, hi), x| (lo.min(x), hi.max(x)));
        let dns_decades = (dmax / dmin).log10();
        assert!(
            dns_decades < decades,
            "DNS ({dns_decades:.2}) narrower than TCP ({decades:.2})"
        );
    }

    #[test]
    fn heavy_users_form_a_knee() {
        let pop = Population::sample(PopulationConfig::default());
        let mut levels: Vec<(f64, bool)> =
            pop.users.iter().map(|u| (u.levels.tcp, u.heavy)).collect();
        levels.sort_by(|a, b| b.0.total_cmp(&a.0));
        let top15 = &levels[..(levels.len() * 15) / 100];
        let heavy_in_top = top15.iter().filter(|(_, h)| *h).count();
        assert!(
            heavy_in_top * 2 > top15.len(),
            "heavy subpopulation should dominate the top 15% ({heavy_in_top}/{})",
            top15.len()
        );
        let heavy_frac =
            pop.users.iter().filter(|u| u.heavy).count() as f64 / pop.users.len() as f64;
        assert!((0.07..0.20).contains(&heavy_frac), "frac {heavy_frac}");
    }

    #[test]
    fn addresses_unique() {
        let pop = Population::sample(PopulationConfig {
            n_users: 1000,
            ..Default::default()
        });
        let mut addrs: Vec<Ipv4Addr> = pop.users.iter().map(|u| u.addr).collect();
        addrs.sort();
        addrs.dedup();
        assert_eq!(addrs.len(), 1000);
    }

    #[test]
    fn stream_rngs_independent() {
        let mut a = stream_rng(0xC0FFEE, 1, 0);
        let mut b = stream_rng(0xC0FFEE, 2, 0);
        let mut c = stream_rng(0xC0FFEE, 1, 1);
        let (xa, xb, xc): (u64, u64, u64) = (a.random(), b.random(), c.random());
        assert_ne!(xa, xb);
        assert_ne!(xa, xc);
        // And reproducible:
        let mut a2 = stream_rng(0xC0FFEE, 1, 0);
        assert_eq!(xa, a2.random::<u64>());
    }

    #[test]
    fn profile_parameters_in_range() {
        let pop = Population::sample(PopulationConfig::default());
        for u in &pop.users {
            assert!((0.25..=0.85).contains(&u.p_http));
            assert!(u.syn_mult >= 1.02 && u.syn_mult <= 1.57);
            assert!(u.levels.tcp >= 1.0 && u.levels.tcp <= 10f64.powf(4.3) + 1.0);
            assert!(u.window_sigma > 0.5);
        }
    }
}
