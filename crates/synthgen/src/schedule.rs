//! Diurnal/weekly activity modulation and laptop usage regimes.
//!
//! The paper's population is 95% laptops captured wherever they go (work,
//! home, travel), so a user's traffic is gated by *whether the machine is
//! open at all* and by *where it is* — the office regime produces different
//! mixes than home evening use. We model this as a small Markov chain over
//! regimes whose transition pressure follows the hour-of-week, multiplied
//! by a smooth diurnal intensity.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Seconds in one day / one week.
pub const DAY_SECS: f64 = 86_400.0;
/// Seconds in one week.
pub const WEEK_SECS: f64 = 7.0 * DAY_SECS;

/// Where the laptop is (and whether it is in use).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Regime {
    /// Lid closed / machine off: no traffic at all.
    Off,
    /// In the office on the corporate network.
    Work,
    /// Evening/weekend use at home.
    Home,
    /// On the road: sparse, bursty connectivity.
    Travel,
}

impl Regime {
    /// Multiplier applied to the user's base activity in this regime.
    pub fn intensity(self) -> f64 {
        match self {
            Regime::Off => 0.0,
            Regime::Work => 1.0,
            Regime::Home => 0.55,
            Regime::Travel => 0.25,
        }
    }
}

/// Hour-of-week dependent schedule model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Schedule {
    /// Probability the machine is in use during core work hours.
    pub work_uptime: f64,
    /// Probability the machine is in use during home hours.
    pub home_uptime: f64,
    /// Fraction of weeks this user travels (swaps work for travel regime).
    pub travel_propensity: f64,
    /// Phase offset in hours (early birds vs night owls), `[-3, +3]`.
    pub phase_hours: f64,
}

impl Default for Schedule {
    fn default() -> Self {
        Self {
            work_uptime: 0.85,
            home_uptime: 0.35,
            travel_propensity: 0.1,
            phase_hours: 0.0,
        }
    }
}

impl Schedule {
    /// Smooth diurnal intensity in `[0, 1]` for a time-of-day, peaking
    /// mid-morning and mid-afternoon with a lunch dip.
    pub fn diurnal_intensity(&self, ts: f64) -> f64 {
        let hour = ((ts / 3600.0) - self.phase_hours).rem_euclid(24.0);
        // Piecewise curve: night trough, morning ramp, lunch dip, evening tail.
        let base: f64 = match hour {
            h if h < 6.0 => 0.02,
            h if h < 9.0 => 0.02 + (h - 6.0) / 3.0 * 0.9,
            h if h < 12.0 => 0.95,
            h if h < 13.0 => 0.7,
            h if h < 17.0 => 1.0,
            h if h < 22.0 => 0.9 - (h - 17.0) / 5.0 * 0.55,
            _ => 0.12,
        };
        base.clamp(0.0, 1.0)
    }

    /// True when `ts` (seconds from Monday 00:00) falls on a weekend.
    pub fn is_weekend(ts: f64) -> bool {
        let day = (ts / DAY_SECS).rem_euclid(7.0);
        day >= 5.0
    }

    /// Sample the regime for the window starting at `ts`.
    ///
    /// Stateless per window given the RNG stream — regimes are resampled
    /// per window with hour-of-week-dependent probabilities, which is
    /// enough temporal structure for tail statistics while keeping every
    /// window reproducible in isolation.
    pub fn sample_regime<R: Rng + ?Sized>(&self, rng: &mut R, ts: f64, travelling: bool) -> Regime {
        let hour = ((ts / 3600.0) - self.phase_hours).rem_euclid(24.0);
        let weekend = Self::is_weekend(ts);
        let u: f64 = rng.random();
        if weekend {
            // Weekend: mostly off, some home use.
            return if u < self.home_uptime * 0.7 {
                Regime::Home
            } else {
                Regime::Off
            };
        }
        match hour {
            h if (9.0..18.0).contains(&h) => {
                if travelling {
                    if u < 0.5 {
                        Regime::Travel
                    } else {
                        Regime::Off
                    }
                } else if u < self.work_uptime {
                    Regime::Work
                } else {
                    Regime::Off
                }
            }
            h if (7.0..9.0).contains(&h) || (18.0..23.0).contains(&h) => {
                if u < self.home_uptime {
                    Regime::Home
                } else {
                    Regime::Off
                }
            }
            _ => {
                // Deep night: almost always off.
                if u < 0.03 {
                    Regime::Home
                } else {
                    Regime::Off
                }
            }
        }
    }

    /// Combined activity multiplier for a window: regime intensity times
    /// the diurnal curve (0 when the machine is off).
    pub fn activity<R: Rng + ?Sized>(&self, rng: &mut R, ts: f64, travelling: bool) -> f64 {
        let regime = self.sample_regime(rng, ts, travelling);
        if regime == Regime::Off {
            return 0.0;
        }
        // A machine that is on always produces *some* traffic (background
        // updaters, IM keep-alives), hence the diurnal floor.
        regime.intensity() * self.diurnal_intensity(ts).max(0.15)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn diurnal_peaks_in_afternoon_trough_at_night() {
        let s = Schedule::default();
        let afternoon = s.diurnal_intensity(15.0 * 3600.0);
        let night = s.diurnal_intensity(3.0 * 3600.0);
        assert!(afternoon > 0.9);
        assert!(night < 0.05);
        assert!(afternoon > night * 10.0);
    }

    #[test]
    fn weekend_detection() {
        assert!(!Schedule::is_weekend(0.0)); // Monday 00:00
        assert!(!Schedule::is_weekend(4.9 * DAY_SECS)); // Friday
        assert!(Schedule::is_weekend(5.1 * DAY_SECS)); // Saturday
        assert!(Schedule::is_weekend(6.5 * DAY_SECS)); // Sunday
        assert!(!Schedule::is_weekend(7.2 * DAY_SECS)); // next Monday
    }

    #[test]
    fn workday_mostly_work_regime() {
        let s = Schedule::default();
        let mut rng = StdRng::seed_from_u64(1);
        let ts = 2.0 * DAY_SECS + 11.0 * 3600.0; // Wednesday 11:00
        let mut work = 0;
        for _ in 0..1000 {
            if s.sample_regime(&mut rng, ts, false) == Regime::Work {
                work += 1;
            }
        }
        assert!(work > 700, "got {work}");
    }

    #[test]
    fn night_mostly_off() {
        let s = Schedule::default();
        let mut rng = StdRng::seed_from_u64(2);
        let ts = 2.0 * DAY_SECS + 3.0 * 3600.0;
        let off = (0..1000)
            .filter(|_| s.sample_regime(&mut rng, ts, false) == Regime::Off)
            .count();
        assert!(off > 900, "got {off}");
    }

    #[test]
    fn travelling_replaces_work() {
        let s = Schedule::default();
        let mut rng = StdRng::seed_from_u64(3);
        let ts = 1.0 * DAY_SECS + 11.0 * 3600.0;
        for _ in 0..1000 {
            let r = s.sample_regime(&mut rng, ts, true);
            assert_ne!(r, Regime::Work);
        }
    }

    #[test]
    fn off_has_zero_activity() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = Schedule {
            work_uptime: 0.0,
            home_uptime: 0.0,
            ..Default::default()
        };
        let ts = 11.0 * 3600.0;
        for _ in 0..100 {
            assert_eq!(s.activity(&mut rng, ts, false), 0.0);
        }
    }

    #[test]
    fn phase_shifts_curve() {
        let early = Schedule {
            phase_hours: -3.0,
            ..Default::default()
        };
        let late = Schedule {
            phase_hours: 3.0,
            ..Default::default()
        };
        let seven_am = 7.0 * 3600.0;
        assert!(early.diurnal_intensity(seven_am) > late.diurnal_intensity(seven_am));
    }

    #[test]
    fn regime_intensity_ordering() {
        assert!(Regime::Work.intensity() > Regime::Home.intensity());
        assert!(Regime::Home.intensity() > Regime::Travel.intensity());
        assert_eq!(Regime::Off.intensity(), 0.0);
    }
}
