//! # synthgen — a calibrated synthetic enterprise
//!
//! The paper analyses proprietary packet traces from 350 enterprise
//! end hosts over five weeks. Those traces cannot be redistributed, so this
//! crate generates a population with the same *statistical anatomy* — the
//! properties every result in the paper is a function of:
//!
//! * per-user per-window feature-count distributions whose **tails start in
//!   wildly different places** (99th percentiles spanning decades, Fig. 1);
//! * a **heavy-user knee**: the top 10–15% of users sit far above the rest;
//! * **within-user heavy tails**: the 99.9th percentile a small factor
//!   above the 99th;
//! * **diurnal/weekly gating**: laptops that are off at night, at home in
//!   the evening, travelling some weeks;
//! * **feature orientation**: TCP-heavy users who are UDP-light and vice
//!   versa (Fig. 2's corners);
//! * week-over-week variability (threshold drift, Section 6.1).
//!
//! Generation is *tail-first* (profiles carry target tail levels — see
//! [`profile`]), windows are generated independently per `(user, week)` for
//! determinism and parallelism, and any window can be expanded into real
//! flow records and packets ([`render`]) whose re-extracted features match
//! the generated counts exactly — the equivalence that justifies running
//! population-scale experiments at count level.
//!
//! ```
//! use synthgen::{Population, PopulationConfig, user_week_series};
//! use flowtab::Windowing;
//!
//! let pop = Population::sample(PopulationConfig { n_users: 10, ..Default::default() });
//! let week0 = user_week_series(&pop.users[3], pop.config.seed, 0, Windowing::FIFTEEN_MIN);
//! assert_eq!(week0.len(), 672); // 15-minute bins, one week
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counts;
pub mod dist;
pub mod export;
pub mod profile;
pub mod render;
pub mod schedule;
pub mod storm;
pub mod validate;

pub use counts::{invariants_hold, user_week_series, user_week_series_trended, window_counts};
pub use export::{export_user_week_to_file, export_user_windows, ExportStats};
pub use profile::{
    mix_seed, sample_user, stream_rng, Population, PopulationConfig, TailLevels, UserId,
    UserProfile,
};
pub use render::{render_flows_to_frames, render_window_flows, TimedFrame, RESOLVERS};
pub use schedule::{Regime, Schedule, DAY_SECS, WEEK_SECS};
pub use storm::{storm_week_series, StormConfig};
pub use validate::{validate, Check, ValidationReport};

use flowtab::{FeatureSeries, Windowing};

/// A user's multi-week trace at count level.
#[derive(Debug, Clone)]
pub struct UserTrace {
    /// The user this trace belongs to.
    pub user: UserId,
    /// One series per week, index 0 = first week.
    pub weeks: Vec<FeatureSeries>,
}

/// Generate `n_weeks` of traces for the whole population.
///
/// Deterministic in the population seed; weeks and users are generated
/// independently, so this is embarrassingly parallel (the experiments crate
/// parallelises it with crossbeam).
pub fn generate_traces(pop: &Population, n_weeks: usize, windowing: Windowing) -> Vec<UserTrace> {
    pop.users
        .iter()
        .map(|u| UserTrace {
            user: u.id,
            weeks: (0..n_weeks)
                .map(|w| {
                    user_week_series_trended(u, pop.config.seed, w, windowing, pop.config.weekly_trend)
                })
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_cover_population_and_weeks() {
        let pop = Population::sample(PopulationConfig {
            n_users: 5,
            ..Default::default()
        });
        let traces = generate_traces(&pop, 2, Windowing::FIFTEEN_MIN);
        assert_eq!(traces.len(), 5);
        for t in &traces {
            assert_eq!(t.weeks.len(), 2);
            assert_eq!(t.weeks[0].len(), 672);
        }
    }
}
