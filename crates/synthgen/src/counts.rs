//! The per-window count model: each user's six feature counts per bin.
//!
//! Counts are produced *directly* at window granularity (the fast path used
//! by the population-scale experiments). The flow renderer
//! ([`crate::render`]) can expand any window's counts into concrete flow
//! records — and further into packets — and the two paths are tested to
//! agree, which is what justifies running the big sweeps at count level.
//!
//! Structural invariants maintained for every generated window (and relied
//! on by the renderer):
//!
//! * `http ≤ tcp`
//! * `syn ≥ tcp` (every initiated connection carries at least one SYN)
//! * `distinct ≤ tcp + udp + min(dns, 2)` and `distinct ≥ 1` whenever any
//!   flow exists (DNS flows all target at most two resolver addresses)

use flowtab::{FeatureCounts, FeatureKind, FeatureSeries, Windowing};
use rand::Rng;

use crate::dist::{binomial, poisson, poisson_quantile, standard_normal};
use crate::profile::{stream_rng, UserProfile};
use crate::schedule::WEEK_SECS;

/// Generate the counts for one window at time-of-week `ts`.
///
/// `travelling` marks a travel week (sampled once per week upstream).
pub fn window_counts<R: Rng + ?Sized>(
    profile: &UserProfile,
    rng: &mut R,
    ts: f64,
    travelling: bool,
) -> FeatureCounts {
    window_counts_with_level(profile, rng, ts, travelling, 1.0)
}

/// [`window_counts`] with an explicit week-level multiplier (drawn once
/// per week by [`user_week_series`]; heavy users drift more week to week).
pub fn window_counts_with_level<R: Rng + ?Sized>(
    profile: &UserProfile,
    rng: &mut R,
    ts: f64,
    travelling: bool,
    week_level: f64,
) -> FeatureCounts {
    let a = profile.schedule.activity(rng, ts, travelling) * week_level;
    if a == 0.0 {
        return FeatureCounts::default();
    }

    let sigma = profile.window_sigma;

    // Per-window volatility: one shared shock (the user being busy makes
    // every feature busy) plus per-feature idiosyncratic shocks.
    let shared = standard_normal(rng);
    fn vol<R: Rng + ?Sized>(rng: &mut R, shared: f64, sigma: f64, weight: f64, scale: f64) -> f64 {
        let idio = standard_normal(rng);
        let mix = weight * shared + (1.0 - weight * weight).sqrt() * idio;
        (scale * sigma * mix).exp()
    }

    // Traffic is session-quantised: a window holds a Poisson number of
    // sessions, each contributing roughly a user-specific number of flows.
    // Light users' windows therefore land on lumps (0, s, 2s, ...), giving
    // their empirical 99th percentiles real tie slack; heavy users (many
    // sessions) smooth out into the continuous regime.
    #[allow(clippy::too_many_arguments)]
    fn session_counts<R: Rng + ?Sized>(
        rng: &mut R,
        rate: f64,
        level: f64,
        weight: f64,
        a: f64,
        shared: f64,
        sigma: f64,
        size_sigma: f64,
    ) -> u64 {
        // Session size calibrated so the ~97th in-use percentile of the
        // window total sits near `level` (the ~99th over all windows once
        // off-windows are included). The size is a fixed per-user integer:
        // a session's flow count is largely app-determined (page loads,
        // polling cycles), which is what puts *exact repeats* in real
        // per-window counts and gives empirical 99th percentiles their
        // sub-nominal false-positive slack (paper Table 3).
        let n97 = poisson_quantile(rate * 0.7, 0.97).max(1);
        let size = (level / n97 as f64).round().max(1.0) as u64;
        let lam = rate * a * vol(rng, shared, sigma, weight, 0.75);
        let n_sess = poisson(rng, lam).min(100_000);
        if n_sess == 0 {
            return 0;
        }
        // Occasional odd session (different app) keeps the lattice from
        // being perfectly rigid without destroying the ties.
        let odd = if size_sigma > 0.0 && n_sess > 0 {
            let noise = (size_sigma * standard_normal(rng)).exp();
            ((size as f64) * noise).round().max(1.0) as u64
        } else {
            size
        };
        (n_sess - 1) * size + odd
    }

    let tcp = session_counts(
        rng,
        profile.sess_rate_tcp,
        profile.levels.tcp,
        0.7,
        a,
        shared,
        sigma,
        profile.sess_size_sigma,
    );
    let http = binomial(rng, tcp, profile.p_http);
    let syn = tcp + binomial(rng, tcp, (profile.syn_mult - 1.0).clamp(0.0, 1.0));

    let udp = session_counts(
        rng,
        profile.sess_rate_udp,
        profile.levels.udp,
        0.45,
        a,
        shared,
        sigma,
        profile.sess_size_sigma,
    );

    // DNS lookups ride on the same session structure (each browsing
    // session triggers a batch of lookups for its new destinations).
    let dns = session_counts(
        rng,
        profile.sess_rate_tcp,
        profile.levels.dns,
        0.6,
        a,
        shared,
        sigma,
        profile.sess_size_sigma,
    );

    let resolvers = dns.min(2);
    let new_tcp = binomial(rng, tcp, profile.dest_novelty_tcp);
    let new_udp = binomial(rng, udp, profile.dest_novelty_udp);
    let total_flows = tcp + udp + dns;
    let max_distinct = tcp + udp + resolvers;
    let distinct = if total_flows == 0 {
        0
    } else {
        (new_tcp + new_udp + resolvers).clamp(1, max_distinct)
    };

    let mut counts = FeatureCounts::default();
    *counts.get_mut(FeatureKind::TcpConnections) = tcp;
    *counts.get_mut(FeatureKind::TcpSyn) = syn;
    *counts.get_mut(FeatureKind::HttpConnections) = http;
    *counts.get_mut(FeatureKind::UdpConnections) = udp;
    *counts.get_mut(FeatureKind::DnsConnections) = dns;
    *counts.get_mut(FeatureKind::DistinctConnections) = distinct;
    counts
}

/// Generate one user's feature series for one week.
///
/// Deterministic in `(seed, profile.id, week)`; independent of every other
/// user and week, so callers may parallelise freely.
pub fn user_week_series(
    profile: &UserProfile,
    seed: u64,
    week: usize,
    windowing: Windowing,
) -> FeatureSeries {
    user_week_series_trended(profile, seed, week, windowing, 0.97)
}

/// [`user_week_series`] with an explicit population-wide weekly activity
/// trend (see `PopulationConfig::weekly_trend`).
pub fn user_week_series_trended(
    profile: &UserProfile,
    seed: u64,
    week: usize,
    windowing: Windowing,
    weekly_trend: f64,
) -> FeatureSeries {
    let mut rng = stream_rng(seed, profile.id, week);
    let travelling = rng.random::<f64>() < profile.schedule.travel_propensity;
    let week_level = (profile.week_sigma * standard_normal(&mut rng)).exp()
        * weekly_trend.powi(week as i32);
    let n = windowing.windows_per_week();
    let mut series = FeatureSeries::zeros(windowing, n);
    for (w, counts) in series.windows.iter_mut().enumerate() {
        let ts = (w as f64 + 0.5) * windowing.width_secs;
        debug_assert!(ts < WEEK_SECS);
        *counts = window_counts_with_level(profile, &mut rng, ts, travelling, week_level);
    }
    series
}

/// Check the structural invariants of a window (used by tests and debug
/// assertions in the renderer).
pub fn invariants_hold(c: &FeatureCounts) -> bool {
    let tcp = c.get(FeatureKind::TcpConnections);
    let syn = c.get(FeatureKind::TcpSyn);
    let http = c.get(FeatureKind::HttpConnections);
    let udp = c.get(FeatureKind::UdpConnections);
    let dns = c.get(FeatureKind::DnsConnections);
    let distinct = c.get(FeatureKind::DistinctConnections);
    let total = tcp + udp + dns;
    http <= tcp
        && syn >= tcp
        && (tcp > 0 || syn == 0)
        && distinct <= tcp + udp + dns.min(2)
        && (total == 0) == (distinct == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{Population, PopulationConfig};
    use tailstats::EmpiricalDist;

    fn series_for(user: usize, week: usize) -> FeatureSeries {
        let pop = Population::sample(PopulationConfig::default());
        user_week_series(&pop.users[user], pop.config.seed, week, Windowing::FIFTEEN_MIN)
    }

    #[test]
    fn deterministic_per_user_week() {
        let a = series_for(3, 0);
        let b = series_for(3, 0);
        assert_eq!(a, b);
        let c = series_for(3, 1);
        assert_ne!(a, c, "different weeks differ");
    }

    #[test]
    fn invariants_hold_for_many_users_and_windows() {
        let pop = Population::sample(PopulationConfig::default());
        for user in pop.users.iter().step_by(23) {
            let s = user_week_series(user, pop.config.seed, 0, Windowing::FIFTEEN_MIN);
            for (w, counts) in s.windows.iter().enumerate() {
                assert!(
                    invariants_hold(counts),
                    "user {} window {w}: {counts:?}",
                    user.id
                );
            }
        }
    }

    #[test]
    fn off_windows_exist_and_are_zero() {
        let s = series_for(0, 0);
        let zeros = s
            .windows
            .iter()
            .filter(|c| **c == FeatureCounts::default())
            .count();
        let frac = zeros as f64 / s.len() as f64;
        assert!(
            (0.25..0.9).contains(&frac),
            "laptop-off windows should dominate nights/weekends, got {frac}"
        );
    }

    /// The headline calibration test: the population's Fig.-1 shape.
    #[test]
    fn cross_user_tail_dispersion_matches_paper() {
        let pop = Population::sample(PopulationConfig::default());
        let mut q99_tcp = Vec::new();
        let mut q99_dns = Vec::new();
        let mut ratio_999_99 = Vec::new();
        for user in &pop.users {
            let s = user_week_series(user, pop.config.seed, 0, Windowing::FIFTEEN_MIN);
            let tcp = EmpiricalDist::from_counts(&s.feature(FeatureKind::TcpConnections));
            let dns = EmpiricalDist::from_counts(&s.feature(FeatureKind::DnsConnections));
            let q99 = tcp.quantile(0.99).max(1.0);
            q99_tcp.push(q99);
            q99_dns.push(dns.quantile(0.99).max(1.0));
            ratio_999_99.push(tcp.quantile(0.999).max(1.0) / q99);
        }
        let span = |v: &[f64]| {
            let (lo, hi) = v
                .iter()
                .fold((f64::INFINITY, 0.0f64), |(l, h), &x| (l.min(x), h.max(x)));
            (hi / lo).log10()
        };
        let tcp_span = span(&q99_tcp);
        let dns_span = span(&q99_dns);
        assert!(
            tcp_span >= 2.0,
            "paper: thresholds vary over 3-4 decades; got {tcp_span:.2}"
        );
        assert!(
            dns_span <= tcp_span,
            "paper: DNS varies less ({dns_span:.2} vs {tcp_span:.2})"
        );
        ratio_999_99.sort_by(|a, b| a.total_cmp(b));
        let median_ratio = ratio_999_99[ratio_999_99.len() / 2];
        assert!(
            (1.1..8.0).contains(&median_ratio),
            "99.9th sits a small factor above 99th, got {median_ratio:.2}"
        );
    }

    #[test]
    fn heavy_users_dominate_top_thresholds() {
        let pop = Population::sample(PopulationConfig::default());
        let mut users: Vec<(f64, bool)> = pop
            .users
            .iter()
            .map(|u| {
                let s = user_week_series(u, pop.config.seed, 0, Windowing::FIFTEEN_MIN);
                let q99 = EmpiricalDist::from_counts(&s.feature(FeatureKind::TcpConnections))
                    .quantile(0.99);
                (q99, u.heavy)
            })
            .collect();
        users.sort_by(|a, b| b.0.total_cmp(&a.0));
        let top = &users[..users.len() / 10];
        let heavy_in_top = top.iter().filter(|(_, h)| *h).count();
        assert!(
            heavy_in_top * 2 > top.len(),
            "top decile mostly heavy users: {heavy_in_top}/{}",
            top.len()
        );
    }

    #[test]
    fn five_minute_binning_also_works() {
        let pop = Population::sample(PopulationConfig {
            n_users: 3,
            ..Default::default()
        });
        let s = user_week_series(&pop.users[0], pop.config.seed, 0, Windowing::FIVE_MIN);
        assert_eq!(s.len(), 2016);
        assert!(s.windows.iter().all(invariants_hold));
    }
}
