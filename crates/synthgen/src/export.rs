//! Streaming pcap export of synthetic traces.
//!
//! Renders a span of a user's generated week — window by window, so memory
//! stays bounded — into a pcap capture that external tools (Wireshark,
//! Bro/Zeek, tcpdump) can open. This is the bridge between the synthetic
//! corpus and any *other* HIDS implementation someone wants to evaluate on
//! the same population.

use std::io::{self, Write};

use flowtab::Windowing;
use netpkt::{LinkType, PcapPacket, PcapWriter};

use crate::counts::user_week_series_trended;
use crate::profile::{stream_rng, UserProfile};
use crate::render::{render_flows_to_frames, render_window_flows};

/// Summary of an export run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExportStats {
    /// Windows rendered.
    pub windows: u64,
    /// Windows skipped because they were empty.
    pub empty_windows: u64,
    /// Windows skipped because they were too large to render.
    pub oversized_windows: u64,
    /// Flows rendered.
    pub flows: u64,
    /// Frames written.
    pub frames: u64,
}

/// Render windows `[first_window, first_window + n_windows)` of `week` for
/// one user into a pcap stream.
///
/// Windows whose total flow count exceeds the renderer's source-port space
/// (60 000 flows) are skipped and counted in the stats rather than
/// aborting the export.
#[allow(clippy::too_many_arguments)] // a deliberate flat, scriptable signature
pub fn export_user_windows<W: Write>(
    sink: W,
    profile: &UserProfile,
    seed: u64,
    week: usize,
    weekly_trend: f64,
    windowing: Windowing,
    first_window: usize,
    n_windows: usize,
) -> io::Result<ExportStats> {
    let series = user_week_series_trended(profile, seed, week, windowing, weekly_trend);
    let mut writer = PcapWriter::new(sink, LinkType::Ethernet)?;
    let mut rng = stream_rng(seed ^ 0xE1907, profile.id, week);
    let mut stats = ExportStats::default();

    let end = (first_window + n_windows).min(series.len());
    for w in first_window..end {
        let counts = &series.windows[w];
        let total: u64 = (0..6).map(|i| counts.0[i]).sum();
        stats.windows += 1;
        if total == 0 {
            stats.empty_windows += 1;
            continue;
        }
        if total > 60_000 {
            stats.oversized_windows += 1;
            continue;
        }
        let flows = render_window_flows(profile, counts, w, windowing, &mut rng);
        stats.flows += flows.len() as u64;
        let frames = render_flows_to_frames(&flows, &mut rng);
        for f in &frames {
            writer.write_packet(&PcapPacket {
                ts_sec: f.ts as u32,
                ts_usec: (f.ts.fract() * 1e6) as u32,
                data: f.frame.clone(),
            })?;
        }
        stats.frames += frames.len() as u64;
    }
    writer.finish()?;
    Ok(stats)
}

/// Render a user's whole week to a pcap file on disk.
pub fn export_user_week_to_file(
    path: &std::path::Path,
    profile: &UserProfile,
    seed: u64,
    week: usize,
    weekly_trend: f64,
    windowing: Windowing,
) -> io::Result<ExportStats> {
    let file = std::fs::File::create(path)?;
    let buffered = io::BufWriter::new(file);
    export_user_windows(
        buffered,
        profile,
        seed,
        week,
        weekly_trend,
        windowing,
        0,
        windowing.windows_per_week(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{Population, PopulationConfig};
    use flowtab::{extract_features, FlowExtractor, FlowTableConfig};
    use netpkt::PcapReader;

    fn profile() -> UserProfile {
        let mut p = Population::sample(PopulationConfig {
            n_users: 2,
            ..Default::default()
        })
        .users[0]
            .clone();
        p.levels = crate::profile::TailLevels {
            tcp: 120.0,
            udp: 40.0,
            dns: 25.0,
        };
        p
    }

    #[test]
    fn exported_capture_reparses_to_the_generated_series() {
        let p = profile();
        let windowing = Windowing::FIFTEEN_MIN;
        let mut buf = Vec::new();
        // A work-day span: windows 32..48 (08:00..12:00 Monday).
        let stats =
            export_user_windows(&mut buf, &p, 7, 0, 0.97, windowing, 32, 16).unwrap();
        assert_eq!(stats.windows, 16);
        assert!(stats.frames > 0, "work morning has traffic");
        assert_eq!(stats.oversized_windows, 0);

        // Reparse and compare against the generated counts.
        let mut reader = PcapReader::new(&buf[..]).unwrap();
        let mut ex = FlowExtractor::new(FlowTableConfig::default());
        while let Some(pkt) = reader.next_packet().unwrap() {
            ex.push_pcap(&pkt).unwrap();
        }
        let records = ex.finish();
        let measured = extract_features(&records, p.addr, windowing, 48);
        let expected = user_week_series_trended(&p, 7, 0, windowing, 0.97);
        for w in 32..48 {
            assert_eq!(measured.windows[w], expected.windows[w], "window {w}");
        }
        // Windows outside the span are untouched.
        assert_eq!(measured.windows[0], Default::default());
    }

    #[test]
    fn file_export_works() {
        let path = std::env::temp_dir().join("mh-export-test.pcap");
        let p = profile();
        let stats =
            export_user_week_to_file(&path, &p, 3, 0, 0.97, Windowing::FIFTEEN_MIN).unwrap();
        assert_eq!(stats.windows, 672);
        assert!(stats.empty_windows > 100, "nights are quiet");
        let bytes = std::fs::read(&path).unwrap();
        assert!(PcapReader::new(&bytes[..]).is_ok());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_span_produces_header_only_capture() {
        let p = profile();
        let mut buf = Vec::new();
        // Deep-night windows (03:00) are usually all empty.
        let stats =
            export_user_windows(&mut buf, &p, 7, 0, 0.97, Windowing::FIFTEEN_MIN, 12, 2).unwrap();
        assert_eq!(stats.windows, 2);
        assert!(buf.len() >= 24, "global header always written");
    }
}
