//! Expand window counts into concrete flow records and packets.
//!
//! This is the *faithful* measurement path: the inverse of feature
//! extraction. Given a window's [`FeatureCounts`] it fabricates a set of
//! flow records whose extracted features reproduce those counts exactly,
//! and can further render every flow into a valid packet exchange
//! (Ethernet/IPv4/TCP/UDP frames with correct checksums) suitable for pcap
//! export and re-ingestion through [`flowtab::FlowExtractor`].
//!
//! The equivalence `counts -> flows -> extract == counts` and
//! `counts -> flows -> packets -> extract == counts` is what licenses the
//! population-scale experiments to run at count level (see DESIGN.md §5).

use std::net::Ipv4Addr;

use flowtab::{
    AppProtocol, Endpoint, FeatureCounts, FeatureKind, FlowRecord, Transport, Windowing,
};
use netpkt::testutil::{build_dns_query_frame, build_tcp_frame, build_udp_frame, FrameSpec};
use netpkt::{MacAddr, TcpFlags};
use rand::Rng;

use crate::counts::invariants_hold;
use crate::profile::UserProfile;

/// Resolver addresses used by all rendered DNS traffic (at most two, which
/// is what bounds the resolvers' contribution to `num-distinct`).
pub const RESOLVERS: [Ipv4Addr; 2] = [Ipv4Addr::new(10, 8, 0, 53), Ipv4Addr::new(10, 8, 1, 53)];

/// Render one window's counts into flow records.
///
/// The produced flows all start inside the window and satisfy, under
/// [`flowtab::extract_features`], exactly the input counts.
///
/// # Panics
/// Panics (debug assertion) if `counts` violates the generator invariants
/// or exceeds ~60 000 flows (source-port space for one window).
pub fn render_window_flows<R: Rng + ?Sized>(
    profile: &UserProfile,
    counts: &FeatureCounts,
    window_idx: usize,
    windowing: Windowing,
    rng: &mut R,
) -> Vec<FlowRecord> {
    debug_assert!(invariants_hold(counts), "bad counts: {counts:?}");
    let tcp = counts.get(FeatureKind::TcpConnections);
    let syn = counts.get(FeatureKind::TcpSyn);
    let http = counts.get(FeatureKind::HttpConnections);
    let udp = counts.get(FeatureKind::UdpConnections);
    let dns = counts.get(FeatureKind::DnsConnections);
    let distinct = counts.get(FeatureKind::DistinctConnections);
    let total = tcp + udp + dns;
    assert!(total <= 60_000, "window too large to render as flows");
    if total == 0 {
        return Vec::new();
    }

    let base_ts = window_idx as f64 * windowing.width_secs;
    let span = windowing.width_secs - 10.0;
    let mut next_src_port: u16 = 1025;
    let mut alloc_port = move || {
        let p = next_src_port;
        next_src_port = next_src_port.wrapping_add(1).max(1025);
        p
    };

    // Destination pool: r_used resolver addresses plus unique other hosts.
    let r_used = dns.min(2).min(distinct) as usize;
    let others = (distinct as usize) - r_used;
    let mut other_dests = Vec::with_capacity(others);
    for i in 0..others {
        // 172.16.0.0/12-ish space, unique per index.
        other_dests.push(Ipv4Addr::new(
            172,
            (16 + (i >> 16)) as u8,
            ((i >> 8) & 0xff) as u8,
            (i & 0xff) as u8,
        ));
    }

    let mut flows = Vec::with_capacity(total as usize);
    let ts_in_window = |rng: &mut R| base_ts + 1.0 + rng.random::<f64>() * span;

    // `non_dns_assignments[i]` is the responder address of the i-th TCP/UDP
    // flow: first cover every "other" destination once, then reuse.
    let non_dns = (tcp + udp) as usize;
    let mut assignments: Vec<Ipv4Addr> = Vec::with_capacity(non_dns);
    for dest in &other_dests {
        assignments.push(*dest);
    }
    while assignments.len() < non_dns {
        let reuse = if other_dests.is_empty() {
            RESOLVERS[rng.random_range(0..r_used.max(1)) % RESOLVERS.len()]
        } else {
            other_dests[rng.random_range(0..other_dests.len())]
        };
        assignments.push(reuse);
    }
    // Shuffle so HTTP flows don't systematically hit the "new" dests.
    for i in (1..assignments.len()).rev() {
        assignments.swap(i, rng.random_range(0..=i));
    }

    // Extra SYN retransmissions to distribute over the TCP flows.
    let mut extra_syn = syn - tcp;

    for (i, dest) in assignments.iter().take(tcp as usize).enumerate() {
        let is_http = (i as u64) < http;
        let dport = if is_http {
            80
        } else {
            // Anything TCP that is not DNS(53)/HTTP(80,8080).
            [443u16, 22, 143, 993, 5222][rng.random_range(0..5)]
        };
        let retx = if extra_syn > 0 {
            let take = extra_syn.min(1 + rng.random_range(0..3));
            extra_syn -= take;
            take
        } else {
            0
        };
        let first_ts = ts_in_window(rng);
        let mut record = FlowRecord::synthetic(
            Endpoint::new(profile.addr, alloc_port()),
            Endpoint::new(*dest, dport),
            Transport::Tcp,
            first_ts,
            0.5 + rng.random::<f64>() * 3.0,
            4 + retx,
            200 + rng.random_range(0..4000),
            true,
        );
        record.syn_count = 1 + retx as u32;
        flows.push(record);
    }
    // Any undistributed retransmissions pile onto the last TCP flow.
    if extra_syn > 0 {
        if let Some(last) = flows.last_mut() {
            last.syn_count += extra_syn as u32;
        }
    }

    for dest in assignments.iter().skip(tcp as usize) {
        let dport = [123u16, 500, 4500, 27015, 3478][rng.random_range(0..5)];
        let first_ts = ts_in_window(rng);
        flows.push(FlowRecord::synthetic(
            Endpoint::new(profile.addr, alloc_port()),
            Endpoint::new(*dest, dport),
            Transport::Udp,
            first_ts,
            0.05 + rng.random::<f64>(),
            2,
            120 + rng.random_range(0..800),
            false,
        ));
    }

    for i in 0..dns {
        let resolver = RESOLVERS[if r_used == 0 { 0 } else { (i as usize) % r_used }];
        let first_ts = ts_in_window(rng);
        flows.push(FlowRecord::synthetic(
            Endpoint::new(profile.addr, alloc_port()),
            Endpoint::new(resolver, 53),
            Transport::Udp,
            first_ts,
            0.01 + rng.random::<f64>() * 0.2,
            1,
            60 + rng.random_range(0..120),
            false,
        ));
    }

    debug_assert!(flows.iter().all(|f| {
        windowing.window_of(f.first_ts) == window_idx
    }));
    flows.sort_by(|a, b| a.first_ts.total_cmp(&b.first_ts));
    flows
}

/// A rendered frame with its capture timestamp.
#[derive(Debug, Clone)]
pub struct TimedFrame {
    /// Capture timestamp, seconds.
    pub ts: f64,
    /// Complete Ethernet frame bytes.
    pub frame: Vec<u8>,
}

/// Render flow records into a timestamp-sorted packet exchange.
///
/// Each TCP flow becomes `syn_count` SYNs, a SYN|ACK, the handshake ACK,
/// one data segment each way and a FIN exchange; each DNS flow a
/// query/response pair; each other UDP flow a two-packet exchange.
pub fn render_flows_to_frames<R: Rng + ?Sized>(flows: &[FlowRecord], rng: &mut R) -> Vec<TimedFrame> {
    let mut frames: Vec<TimedFrame> = Vec::new();
    let mut ip_id: u16 = 1;
    for flow in flows {
        let mut id = || {
            ip_id = ip_id.wrapping_add(1);
            ip_id
        };
        let fwd = FrameSpec {
            src_mac: MacAddr::from_host_id(u32::from_be_bytes(flow.initiator.addr.octets())),
            dst_mac: MacAddr::from_host_id(u32::from_be_bytes(flow.responder.addr.octets())),
            src_ip: flow.initiator.addr,
            dst_ip: flow.responder.addr,
            src_port: flow.initiator.port,
            dst_port: flow.responder.port,
            ip_id: id(),
        };
        let rev = FrameSpec {
            src_mac: fwd.dst_mac,
            dst_mac: fwd.src_mac,
            src_ip: fwd.dst_ip,
            dst_ip: fwd.src_ip,
            src_port: fwd.dst_port,
            dst_port: fwd.src_port,
            ip_id: id(),
        };
        let t0 = flow.first_ts;
        match (flow.transport, flow.app) {
            (Transport::Tcp, _) => {
                let mut t = t0;
                for k in 0..flow.syn_count.max(1) {
                    frames.push(TimedFrame {
                        ts: t,
                        frame: build_tcp_frame(&fwd, TcpFlags::syn_only(), 100 + k, &[]),
                    });
                    t += 0.05;
                }
                frames.push(TimedFrame {
                    ts: t,
                    frame: build_tcp_frame(&rev, TcpFlags::syn_ack(), 900, &[]),
                });
                frames.push(TimedFrame {
                    ts: t + 0.01,
                    frame: build_tcp_frame(&fwd, TcpFlags(TcpFlags::ACK), 101, &[]),
                });
                frames.push(TimedFrame {
                    ts: t + 0.02,
                    frame: build_tcp_frame(
                        &fwd,
                        TcpFlags(TcpFlags::ACK | TcpFlags::PSH),
                        101,
                        b"GET / HTTP/1.1\r\nHost: x\r\n\r\n",
                    ),
                });
                frames.push(TimedFrame {
                    ts: t + 0.08,
                    frame: build_tcp_frame(&rev, TcpFlags(TcpFlags::ACK | TcpFlags::PSH), 901, b"HTTP/1.1 200 OK\r\n\r\n"),
                });
                frames.push(TimedFrame {
                    ts: t + 0.1,
                    frame: build_tcp_frame(&fwd, TcpFlags(TcpFlags::FIN | TcpFlags::ACK), 130, &[]),
                });
                frames.push(TimedFrame {
                    ts: t + 0.12,
                    frame: build_tcp_frame(&rev, TcpFlags(TcpFlags::FIN | TcpFlags::ACK), 920, &[]),
                });
            }
            (Transport::Udp, AppProtocol::Dns) => {
                let txid = rng.random::<u16>();
                let name = format!("host{}.corp.example", rng.random_range(0..100_000));
                frames.push(TimedFrame {
                    ts: t0,
                    frame: build_dns_query_frame(&fwd, txid, &name),
                });
                // A well-formed A-record response from the resolver.
                let answer = std::net::Ipv4Addr::new(
                    172,
                    rng.random_range(16..32),
                    rng.random(),
                    rng.random(),
                );
                let mut msg = vec![0u8; 512];
                let n = netpkt::dns::emit_a_response(&mut msg, txid, &name, &[answer], 300)
                    .expect("response fits");
                msg.truncate(n);
                frames.push(TimedFrame {
                    ts: t0 + 0.02,
                    frame: build_udp_frame(&rev, &msg),
                });
            }
            (Transport::Udp, _) => {
                frames.push(TimedFrame {
                    ts: t0,
                    frame: build_udp_frame(&fwd, &[0xAB; 64]),
                });
                frames.push(TimedFrame {
                    ts: t0 + 0.03,
                    frame: build_udp_frame(&rev, &[0xCD; 64]),
                });
            }
            (Transport::Icmp, _) => {}
        }
    }
    frames.sort_by(|a, b| a.ts.total_cmp(&b.ts));
    frames
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::{user_week_series, window_counts};
    use crate::profile::{stream_rng, Population, PopulationConfig};
    use flowtab::{extract_features, FlowExtractor, FlowTableConfig};

    fn test_profile() -> UserProfile {
        let mut profile = Population::sample(PopulationConfig {
            n_users: 4,
            ..Default::default()
        })
        .users[1]
            .clone();
        // Pin moderate tail levels so the test windows are reliably busy
        // without being huge.
        profile.levels = crate::profile::TailLevels {
            tcp: 400.0,
            udp: 150.0,
            dns: 80.0,
        };
        profile
    }

    fn busy_counts(profile: &UserProfile) -> FeatureCounts {
        // Find a non-trivial window deterministically.
        let mut rng = stream_rng(7, profile.id, 9);
        for _ in 0..400 {
            let c = window_counts(profile, &mut rng, 11.0 * 3600.0, false);
            let total = c.get(FeatureKind::TcpConnections)
                + c.get(FeatureKind::UdpConnections)
                + c.get(FeatureKind::DnsConnections);
            if (20..40_000).contains(&total) {
                return c;
            }
        }
        panic!("no busy window found");
    }

    #[test]
    fn flow_path_reproduces_counts_exactly() {
        let profile = test_profile();
        let counts = busy_counts(&profile);
        let mut rng = stream_rng(1, 1, 1);
        let w = 5usize;
        let flows = render_window_flows(&profile, &counts, w, Windowing::FIFTEEN_MIN, &mut rng);
        let series = extract_features(&flows, profile.addr, Windowing::FIFTEEN_MIN, w + 1);
        assert_eq!(series.windows[w], counts, "flow path must round-trip");
        for earlier in &series.windows[..w] {
            assert_eq!(*earlier, FeatureCounts::default());
        }
    }

    #[test]
    fn packet_path_reproduces_counts_exactly() {
        let profile = test_profile();
        let counts = {
            // Keep the packet test modest in size.
            let mut c = busy_counts(&profile);
            for k in FeatureKind::ALL {
                *c.get_mut(k) = c.get(k).min(300);
            }
            // Re-impose invariants after capping.
            let tcp = c.get(FeatureKind::TcpConnections);
            if c.get(FeatureKind::TcpSyn) < tcp {
                *c.get_mut(FeatureKind::TcpSyn) = tcp;
            }
            let max_http = tcp.min(c.get(FeatureKind::HttpConnections));
            *c.get_mut(FeatureKind::HttpConnections) = max_http;
            let max_distinct = tcp
                + c.get(FeatureKind::UdpConnections)
                + c.get(FeatureKind::DnsConnections).min(2);
            let d = c.get(FeatureKind::DistinctConnections).min(max_distinct).max(1);
            *c.get_mut(FeatureKind::DistinctConnections) = d;
            c
        };
        let mut rng = stream_rng(2, 1, 2);
        let w = 2usize;
        let flows = render_window_flows(&profile, &counts, w, Windowing::FIFTEEN_MIN, &mut rng);
        let frames = render_flows_to_frames(&flows, &mut rng);
        let mut ex = FlowExtractor::new(FlowTableConfig::default());
        for f in &frames {
            ex.push_frame(f.ts, &f.frame).expect("rendered frames parse");
        }
        let records = ex.finish();
        let series = extract_features(&records, profile.addr, Windowing::FIFTEEN_MIN, w + 1);
        assert_eq!(series.windows[w], counts, "packet path must round-trip");
    }

    #[test]
    fn empty_window_renders_nothing() {
        let profile = test_profile();
        let mut rng = stream_rng(3, 1, 3);
        let flows = render_window_flows(
            &profile,
            &FeatureCounts::default(),
            0,
            Windowing::FIFTEEN_MIN,
            &mut rng,
        );
        assert!(flows.is_empty());
    }

    #[test]
    fn whole_week_flow_path_matches_fast_path() {
        // Spot-check several windows of a real generated week.
        let profile = test_profile();
        let series = user_week_series(&profile, 11, 0, Windowing::FIFTEEN_MIN);
        let mut rng = stream_rng(4, 1, 4);
        let mut checked = 0;
        for (w, counts) in series.windows.iter().enumerate() {
            let total = counts.get(FeatureKind::TcpConnections)
                + counts.get(FeatureKind::UdpConnections)
                + counts.get(FeatureKind::DnsConnections);
            if total == 0 || total > 20_000 {
                continue;
            }
            let flows =
                render_window_flows(&profile, counts, w, Windowing::FIFTEEN_MIN, &mut rng);
            let got = extract_features(&flows, profile.addr, Windowing::FIFTEEN_MIN, w + 1);
            assert_eq!(got.windows[w], *counts, "window {w}");
            checked += 1;
            if checked >= 25 {
                break;
            }
        }
        assert!(checked >= 10, "too few non-empty windows checked: {checked}");
    }

    #[test]
    fn rendered_flows_have_unique_source_ports() {
        let profile = test_profile();
        let counts = busy_counts(&profile);
        let mut rng = stream_rng(5, 1, 5);
        let flows = render_window_flows(&profile, &counts, 0, Windowing::FIFTEEN_MIN, &mut rng);
        let mut ports: Vec<u16> = flows.iter().map(|f| f.initiator.port).collect();
        let before = ports.len();
        ports.sort_unstable();
        ports.dedup();
        assert_eq!(ports.len(), before);
    }
}
