//! Population validation: check a generated corpus against the calibration
//! targets the whole reproduction depends on.
//!
//! Anyone who changes `PopulationConfig` (or writes their own profiles)
//! can run this report to confirm the population still has the paper's
//! statistical anatomy before trusting downstream experiments. The same
//! checks run in CI as tests; this module exposes them as data.

use flowtab::{FeatureKind, Windowing};
use tailstats::{gini, EmpiricalDist};

use crate::counts::{invariants_hold, user_week_series_trended};
use crate::profile::Population;

/// One calibration check's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// What was checked.
    pub name: &'static str,
    /// The measured value.
    pub measured: f64,
    /// Acceptable range (inclusive).
    pub expected: (f64, f64),
}

impl Check {
    /// True when the measured value lies in the expected band.
    pub fn passed(&self) -> bool {
        (self.expected.0..=self.expected.1).contains(&self.measured)
    }
}

/// The full validation report.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// All checks, in presentation order.
    pub checks: Vec<Check>,
    /// Count-model invariant violations found (must be zero).
    pub invariant_violations: u64,
}

impl ValidationReport {
    /// True when every check passed and no invariant was violated.
    pub fn passed(&self) -> bool {
        self.invariant_violations == 0 && self.checks.iter().all(Check::passed)
    }

    /// Render as aligned text.
    pub fn render(&self) -> String {
        let mut out = String::from("population validation\n");
        for c in &self.checks {
            out.push_str(&format!(
                "  [{}] {:<42} {:>10.3}  (expect {:.2}..{:.2})\n",
                if c.passed() { "ok" } else { "!!" },
                c.name,
                c.measured,
                c.expected.0,
                c.expected.1,
            ));
        }
        out.push_str(&format!(
            "  [{}] {:<42} {:>10}\n",
            if self.invariant_violations == 0 {
                "ok"
            } else {
                "!!"
            },
            "count-model invariant violations",
            self.invariant_violations,
        ));
        out
    }
}

/// Validate one generated week of a population against the Fig.-1 anatomy.
pub fn validate(pop: &Population, windowing: Windowing) -> ValidationReport {
    let mut q99_tcp = Vec::with_capacity(pop.users.len());
    let mut q99_dns = Vec::with_capacity(pop.users.len());
    let mut tail_ratio = Vec::with_capacity(pop.users.len());
    let mut zero_frac = Vec::with_capacity(pop.users.len());
    let mut violations = 0u64;

    for user in &pop.users {
        let s = user_week_series_trended(user, pop.config.seed, 0, windowing, pop.config.weekly_trend);
        violations += s.windows.iter().filter(|c| !invariants_hold(c)).count() as u64;
        let tcp = EmpiricalDist::from_counts(&s.feature(FeatureKind::TcpConnections));
        let dns = EmpiricalDist::from_counts(&s.feature(FeatureKind::DnsConnections));
        let q99 = tcp.quantile(0.99).max(1.0);
        q99_tcp.push(q99);
        q99_dns.push(dns.quantile(0.99).max(1.0));
        tail_ratio.push(tcp.quantile(0.999).max(1.0) / q99);
        let zeros = s
            .windows
            .iter()
            .filter(|c| c.0.iter().all(|&v| v == 0))
            .count();
        zero_frac.push(zeros as f64 / s.len() as f64);
    }

    let span = |v: &[f64]| {
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(0.0f64, f64::max);
        (hi / lo).log10()
    };
    let median = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    };

    let tcp_span = span(&q99_tcp);
    let dns_span = span(&q99_dns);
    let heavy_frac =
        pop.users.iter().filter(|u| u.heavy).count() as f64 / pop.users.len().max(1) as f64;

    let checks = vec![
        Check {
            name: "TCP q99 span across users (decades)",
            measured: tcp_span,
            expected: (2.0, 5.0),
        },
        Check {
            name: "DNS span minus TCP span (decades)",
            measured: dns_span - tcp_span,
            expected: (-5.0, 0.0),
        },
        Check {
            name: "median within-user q999/q99 ratio",
            measured: median(&mut tail_ratio),
            expected: (1.05, 8.0),
        },
        Check {
            name: "median fraction of all-zero windows",
            measured: median(&mut zero_frac),
            expected: (0.25, 0.9),
        },
        Check {
            name: "heavy-user fraction (knee population)",
            measured: heavy_frac,
            expected: (0.05, 0.25),
        },
        Check {
            name: "Gini of per-user q99 (heaviness concentration)",
            measured: gini(&q99_tcp),
            expected: (0.5, 0.99),
        },
    ];

    ValidationReport {
        checks,
        invariant_violations: violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::PopulationConfig;

    #[test]
    fn default_population_validates() {
        let pop = Population::sample(PopulationConfig {
            n_users: 120,
            ..Default::default()
        });
        let report = validate(&pop, Windowing::FIFTEEN_MIN);
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn degenerate_population_fails() {
        // A population with no heavy users and no spread must fail the
        // span/knee checks.
        let mut pop = Population::sample(PopulationConfig {
            n_users: 40,
            ..Default::default()
        });
        for u in &mut pop.users {
            u.heavy = false;
            u.levels = crate::profile::TailLevels {
                tcp: 50.0,
                udp: 20.0,
                dns: 10.0,
            };
        }
        let report = validate(&pop, Windowing::FIFTEEN_MIN);
        assert!(!report.passed(), "{}", report.render());
        assert!(report
            .checks
            .iter()
            .any(|c| c.name.contains("span") && !c.passed()));
    }

    #[test]
    fn render_marks_failures() {
        let check = Check {
            name: "demo",
            measured: 10.0,
            expected: (0.0, 1.0),
        };
        assert!(!check.passed());
        let report = ValidationReport {
            checks: vec![check],
            invariant_violations: 0,
        };
        assert!(report.render().contains("[!!]"));
    }
}
