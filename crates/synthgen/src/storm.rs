//! A Storm-botnet zombie traffic model.
//!
//! Substitute for the paper's live Storm zombie trace (Section 6.2, Fig. 5):
//! the authors ran a Storm-infected host for a week with inessential
//! services disabled and overlaid its trace on every user. Storm's two
//! network behaviours dominate such a capture:
//!
//! 1. **Overnet/Kademlia C&C chatter** — a steady trickle of UDP packets to
//!    *many distinct peers* (peer-list maintenance, publicize/search), and
//! 2. **spam/scan campaigns** — bursts, minutes to an hour long, of SMTP
//!    connections (and MX lookups) to hundreds of distinct mail servers.
//!
//! Both inflate `num-distinct-connections`, the feature the paper uses for
//! its real-attack evaluation. Parameters below follow the published Storm
//! measurements in spirit (heavy-tailed burst sizes, hours-scale campaign
//! inter-arrivals); EXPERIMENTS.md records the values used for each run.

use flowtab::{FeatureKind, FeatureSeries, Windowing};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dist::{pareto_discrete, poisson};
use crate::profile::stream_rng;

/// Storm zombie generator parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StormConfig {
    /// Seed for the zombie's own stream.
    pub seed: u64,
    /// Mean distinct Overnet peers contacted per window (C&C keep-alive).
    pub chatter_peers: f64,
    /// Mean windows between spam campaigns.
    pub campaign_interval_windows: f64,
    /// Mean campaign length in windows.
    pub campaign_len_windows: f64,
    /// Pareto scale of per-window distinct spam targets during a campaign.
    pub spam_xm: f64,
    /// Pareto tail exponent of spam burst sizes.
    pub spam_alpha: f64,
    /// Cap on per-window spam targets.
    pub spam_cap: u64,
}

impl Default for StormConfig {
    fn default() -> Self {
        Self {
            seed: 0x5702,
            chatter_peers: 15.0,
            campaign_interval_windows: 6.0, // ~1.5 h at 15-min windows
            campaign_len_windows: 5.0,
            spam_xm: 2600.0,
            spam_alpha: 1.3,
            spam_cap: 40_000,
        }
    }
}

/// Generate one week of zombie traffic as a feature overlay.
///
/// The zombie runs around the clock (an infected machine does not keep
/// office hours), matching the paper's dedicated always-on capture host.
pub fn storm_week_series(config: &StormConfig, windowing: Windowing, week: usize) -> FeatureSeries {
    let mut rng = stream_rng(config.seed, 0x57, week);
    let n = windowing.windows_per_week();
    let mut series = FeatureSeries::zeros(windowing, n);

    // Campaign schedule: renewal process over window indices.
    let mut campaign_left = 0u64;
    let mut until_next = sample_gap(&mut rng, config.campaign_interval_windows);

    for counts in series.windows.iter_mut() {
        // --- C&C chatter (always on) ---
        let peers = poisson(&mut rng, config.chatter_peers);
        let udp = peers + poisson(&mut rng, config.chatter_peers * 0.4); // repeat contacts
        let mut distinct = peers;
        let mut tcp = 0u64;
        let syn;
        let mut dns = poisson(&mut rng, 0.5);

        // --- spam campaign ---
        if campaign_left == 0 {
            if until_next == 0 {
                campaign_left =
                    1 + poisson(&mut rng, (config.campaign_len_windows - 1.0).max(0.0));
                until_next = sample_gap(&mut rng, config.campaign_interval_windows);
            } else {
                until_next -= 1;
            }
        }
        if campaign_left > 0 {
            campaign_left -= 1;
            let targets = pareto_discrete(&mut rng, config.spam_xm, config.spam_alpha, config.spam_cap);
            // SMTP: one connection per target plus retries to dead MXes.
            tcp = targets + poisson(&mut rng, targets as f64 * 0.15);
            syn = tcp + poisson(&mut rng, tcp as f64 * 0.3);
            dns += poisson(&mut rng, targets as f64 * 0.35); // MX lookups
            distinct += targets;
        } else {
            syn = tcp;
        }

        *counts.get_mut(FeatureKind::UdpConnections) = udp;
        *counts.get_mut(FeatureKind::TcpConnections) = tcp;
        *counts.get_mut(FeatureKind::TcpSyn) = syn.max(tcp);
        *counts.get_mut(FeatureKind::HttpConnections) = 0;
        *counts.get_mut(FeatureKind::DnsConnections) = dns;
        let total = tcp + udp + dns;
        let max_distinct = tcp + udp + dns.min(2);
        *counts.get_mut(FeatureKind::DistinctConnections) = if total == 0 {
            0
        } else {
            distinct.clamp(1, max_distinct)
        };
    }
    series
}

fn sample_gap<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    poisson(rng, (mean - 1.0).max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::invariants_hold;
    use tailstats::EmpiricalDist;

    #[test]
    fn zombie_is_always_on() {
        let s = storm_week_series(&StormConfig::default(), Windowing::FIFTEEN_MIN, 0);
        let active = s
            .windows
            .iter()
            .filter(|c| c.get(FeatureKind::UdpConnections) > 0)
            .count();
        assert!(
            active as f64 / s.len() as f64 > 0.95,
            "C&C chatter keeps nearly every window non-zero"
        );
    }

    #[test]
    fn invariants_hold_throughout() {
        for week in 0..3 {
            let s = storm_week_series(&StormConfig::default(), Windowing::FIFTEEN_MIN, week);
            for (w, c) in s.windows.iter().enumerate() {
                assert!(invariants_hold(c), "week {week} window {w}: {c:?}");
            }
        }
    }

    #[test]
    fn campaigns_create_heavy_distinct_tail() {
        let s = storm_week_series(&StormConfig::default(), Windowing::FIFTEEN_MIN, 0);
        let distinct = s.feature(FeatureKind::DistinctConnections);
        let d = EmpiricalDist::from_counts(&distinct);
        let median = d.quantile(0.5);
        let q99 = d.quantile(0.99);
        assert!(median >= 5.0, "chatter floor, got {median}");
        assert!(
            q99 / median > 3.0,
            "spam bursts dominate the tail: q99 {q99} vs median {median}"
        );
        assert!(q99 >= 60.0, "bursts reach spam-campaign scale, got {q99}");
    }

    #[test]
    fn deterministic_per_week() {
        let a = storm_week_series(&StormConfig::default(), Windowing::FIFTEEN_MIN, 1);
        let b = storm_week_series(&StormConfig::default(), Windowing::FIFTEEN_MIN, 1);
        assert_eq!(a, b);
        let c = storm_week_series(&StormConfig::default(), Windowing::FIFTEEN_MIN, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn no_http_ever() {
        let s = storm_week_series(&StormConfig::default(), Windowing::FIFTEEN_MIN, 0);
        assert!(s
            .windows
            .iter()
            .all(|c| c.get(FeatureKind::HttpConnections) == 0));
    }
}
