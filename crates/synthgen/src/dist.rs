//! Random samplers for heavy-tailed traffic modelling.
//!
//! Implemented in-repo (rather than pulling `rand_distr`) because the set
//! needed is small and the discrete, bounded variants used for traffic
//! counts are not stock: counts must be integer, non-negative, and capped
//! so a single sample cannot exceed physical plausibility.

use rand::Rng;

/// Sample a standard normal via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 exactly (log(0)).
    let u1: f64 = loop {
        let u: f64 = rng.random();
        if u > f64::EPSILON {
            break u;
        }
    };
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Sample `exp(N(mu, sigma))` — log-normal in natural-log parameters.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * standard_normal(rng)).exp()
}

/// Sample a Pareto(xm, alpha) — continuous, support `[xm, ∞)`.
pub fn pareto<R: Rng + ?Sized>(rng: &mut R, xm: f64, alpha: f64) -> f64 {
    debug_assert!(xm > 0.0 && alpha > 0.0);
    let u: f64 = loop {
        let u: f64 = rng.random();
        if u > f64::EPSILON {
            break u;
        }
    };
    xm * u.powf(-1.0 / alpha)
}

/// Discrete bounded Pareto: `floor(pareto(xm, alpha)).min(cap)` as u64.
pub fn pareto_discrete<R: Rng + ?Sized>(rng: &mut R, xm: f64, alpha: f64, cap: u64) -> u64 {
    (pareto(rng, xm, alpha).floor() as u64).min(cap)
}

/// Sample a Poisson(lambda) count.
///
/// Uses Knuth's product method for small `lambda` and a normal
/// approximation (continuity-corrected, clamped at 0) above 30, which is
/// plenty accurate for per-window traffic counts.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let limit = (-lambda).exp();
        let mut product: f64 = rng.random();
        let mut count = 0u64;
        while product > limit {
            product *= rng.random::<f64>();
            count += 1;
        }
        count
    } else {
        let x = lambda + lambda.sqrt() * standard_normal(rng) + 0.5;
        if x < 0.0 {
            0
        } else {
            x.floor() as u64
        }
    }
}

/// Sample a Binomial(n, p) count.
///
/// Direct Bernoulli summation for small `n`, normal approximation beyond.
pub fn binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    let p = p.clamp(0.0, 1.0);
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    if n <= 64 {
        let mut k = 0u64;
        for _ in 0..n {
            if rng.random::<f64>() < p {
                k += 1;
            }
        }
        k
    } else {
        let mean = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        let x = mean + sd * standard_normal(rng) + 0.5;
        x.clamp(0.0, n as f64).floor() as u64
    }
}

/// Exact Poisson quantile: smallest `k` with `CDF(k) >= q`.
pub fn poisson_quantile(lambda: f64, q: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    let mut p = (-lambda).exp();
    let mut cdf = p;
    let mut k = 0u64;
    while cdf < q && k < 100_000 {
        k += 1;
        p *= lambda / k as f64;
        cdf += p;
    }
    k
}

/// Sample an Exponential(rate) waiting time.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    debug_assert!(rate > 0.0);
    let u: f64 = loop {
        let u: f64 = rng.random();
        if u > f64::EPSILON {
            break u;
        }
    };
    -u.ln() / rate
}

/// A Zipf sampler over ranks `1..=n` with exponent `s`.
///
/// Uses an exact precomputed CDF with inverse-transform sampling (binary
/// search): O(n) memory once, O(log n) per sample, no approximation — the
/// destination-popularity supports used by the generator are small enough
/// that exactness beats the fiddliness of rejection methods.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Create a sampler over `{1, .., n}` with exponent `s > 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s <= 0`.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty support");
        assert!(s > 0.0, "Zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Draw one rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.random();
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx.min(self.cdf.len() - 1) + 1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn log_normal_median() {
        let mut r = rng();
        let mut samples: Vec<f64> = (0..50_000).map(|_| log_normal(&mut r, 2.0, 1.0)).collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[25_000];
        // Median of lognormal is e^mu.
        assert!((median - 2.0f64.exp()).abs() / 2.0f64.exp() < 0.05);
    }

    #[test]
    fn pareto_support_and_tail() {
        let mut r = rng();
        let samples: Vec<f64> = (0..50_000).map(|_| pareto(&mut r, 2.0, 1.5)).collect();
        assert!(samples.iter().all(|&x| x >= 2.0));
        // P(X > 2 * 2^(1/1.5) * ...) — check survival at x: (xm/x)^alpha.
        let x0 = 8.0;
        let frac = samples.iter().filter(|&&x| x > x0).count() as f64 / samples.len() as f64;
        let expect = (2.0f64 / x0).powf(1.5);
        assert!((frac - expect).abs() < 0.01, "frac {frac} expect {expect}");
    }

    #[test]
    fn pareto_discrete_capped() {
        let mut r = rng();
        for _ in 0..10_000 {
            let x = pareto_discrete(&mut r, 1.0, 0.5, 100);
            assert!(x <= 100);
            assert!(x >= 1);
        }
    }

    #[test]
    fn poisson_small_lambda_moments() {
        let mut r = rng();
        let n = 100_000;
        let lambda = 3.5;
        let sum: u64 = (0..n).map(|_| poisson(&mut r, lambda)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - lambda).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_large_lambda_moments() {
        let mut r = rng();
        let n = 50_000;
        let lambda = 500.0;
        let samples: Vec<u64> = (0..n).map(|_| poisson(&mut r, lambda)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / n as f64;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!((mean - lambda).abs() < 2.0, "mean {mean}");
        assert!((var - lambda).abs() / lambda < 0.1, "var {var}");
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
        assert_eq!(poisson(&mut r, -1.0), 0);
    }

    #[test]
    fn binomial_moments_both_paths() {
        let mut r = rng();
        for &(n, p) in &[(20u64, 0.3), (500u64, 0.1)] {
            let trials = 50_000;
            let mean = (0..trials).map(|_| binomial(&mut r, n, p)).sum::<u64>() as f64
                / trials as f64;
            let expect = n as f64 * p;
            assert!(
                (mean - expect).abs() / expect < 0.03,
                "n={n} p={p} mean {mean}"
            );
        }
    }

    #[test]
    fn binomial_edge_cases() {
        let mut r = rng();
        assert_eq!(binomial(&mut r, 0, 0.5), 0);
        assert_eq!(binomial(&mut r, 10, 0.0), 0);
        assert_eq!(binomial(&mut r, 10, 1.0), 10);
        assert!(binomial(&mut r, 1000, 0.999) <= 1000);
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let n = 100_000;
        let mean = (0..n).map(|_| exponential(&mut r, 0.25)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let mut r = rng();
        let z = Zipf::new(1000, 1.2);
        let n = 50_000;
        let mut rank1 = 0usize;
        for _ in 0..n {
            let k = z.sample(&mut r);
            assert!((1..=1000).contains(&k));
            if k == 1 {
                rank1 += 1;
            }
        }
        let frac = rank1 as f64 / n as f64;
        // For s=1.2, N=1000: p(1) = 1/H ~ 0.27.
        assert!(frac > 0.2 && frac < 0.35, "frac {frac}");
    }

    #[test]
    fn zipf_exponent_one_works() {
        let mut r = rng();
        let z = Zipf::new(100, 1.0);
        for _ in 0..10_000 {
            let k = z.sample(&mut r);
            assert!((1..=100).contains(&k));
        }
    }

    #[test]
    fn samplers_deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(poisson(&mut a, 5.0), poisson(&mut b, 5.0));
        }
    }
}
