//! Property-based tests of the statistics layer.

use proptest::prelude::*;

use tailstats::{gini, ks_distance, lorenz_curve, EmpiricalDist, FiveNumber, Moments, P2Quantile};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Five-number summaries are always ordered.
    #[test]
    fn fivenum_ordered(samples in proptest::collection::vec(-1e6f64..1e6, 1..300)) {
        let s = FiveNumber::from_samples(&samples);
        prop_assert!(s.min <= s.whisker_lo + 1e-9);
        prop_assert!(s.whisker_lo <= s.q1 + 1e-9);
        prop_assert!(s.q1 <= s.median + 1e-9);
        prop_assert!(s.median <= s.q3 + 1e-9);
        prop_assert!(s.q3 <= s.whisker_hi + 1e-9);
        prop_assert!(s.whisker_hi <= s.max + 1e-9);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
    }

    /// Welford moments equal the two-pass computation.
    #[test]
    fn moments_match_two_pass(samples in proptest::collection::vec(-1e3f64..1e3, 2..200)) {
        let mut m = Moments::new();
        for &x in &samples {
            m.observe(x);
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((m.mean() - mean).abs() < 1e-6);
        prop_assert!((m.variance() - var).abs() < 1e-6 * var.max(1.0));
    }

    /// P² stays within the sample range and close to the exact median on
    /// larger streams.
    #[test]
    fn p2_bounded_by_range(samples in proptest::collection::vec(0f64..1e4, 5..2000)) {
        let mut p2 = P2Quantile::new(0.5);
        for &x in &samples {
            p2.observe(x);
        }
        let d = EmpiricalDist::from_samples(samples.clone());
        let est = p2.estimate();
        prop_assert!(est >= d.min() - 1e-9 && est <= d.max() + 1e-9);
        if samples.len() >= 500 {
            let exact = d.quantile(0.5);
            let spread = (d.max() - d.min()).max(1e-9);
            prop_assert!((est - exact).abs() / spread < 0.25, "est {est} exact {exact}");
        }
    }

    /// KS distance is a pseudo-metric: symmetric, zero on identity,
    /// bounded by 1, triangle inequality.
    #[test]
    fn ks_pseudo_metric(
        a in proptest::collection::vec(0u64..1000, 1..100),
        b in proptest::collection::vec(0u64..1000, 1..100),
        c in proptest::collection::vec(0u64..1000, 1..100),
    ) {
        let (da, db, dc) = (
            EmpiricalDist::from_counts(&a),
            EmpiricalDist::from_counts(&b),
            EmpiricalDist::from_counts(&c),
        );
        prop_assert!(ks_distance(&da, &da) < 1e-12);
        let ab = ks_distance(&da, &db);
        prop_assert!((ks_distance(&db, &da) - ab).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ab));
        let (ac, cb) = (ks_distance(&da, &dc), ks_distance(&dc, &db));
        prop_assert!(ab <= ac + cb + 1e-9);
    }

    /// Gini is scale-invariant and bounded; the Lorenz curve ends at (1,1).
    #[test]
    fn gini_lorenz_laws(values in proptest::collection::vec(0f64..1e4, 1..150), scale in 0.1f64..100.0) {
        let g = gini(&values);
        prop_assert!((0.0..=1.0).contains(&g), "gini {g}");
        let scaled: Vec<f64> = values.iter().map(|v| v * scale).collect();
        prop_assert!((gini(&scaled) - g).abs() < 1e-9, "scale invariance");
        let lorenz = lorenz_curve(&values);
        let last = lorenz.last().unwrap();
        prop_assert!((last.0 - 1.0).abs() < 1e-12);
        if values.iter().sum::<f64>() > 0.0 {
            prop_assert!((last.1 - 1.0).abs() < 1e-9);
        }
        // Lorenz never exceeds the diagonal.
        for (x, y) in &lorenz {
            prop_assert!(*y <= *x + 1e-9);
        }
    }

    /// Quantile and CDF are inverse-consistent: cdf(quantile(q)) >= q for
    /// the discrete quantile.
    #[test]
    fn quantile_cdf_consistency(samples in proptest::collection::vec(0u64..10_000, 1..300), q in 0.01f64..0.999) {
        let d = EmpiricalDist::from_counts(&samples);
        let v = d.quantile_discrete(q);
        prop_assert!(d.cdf(v) >= q - 1e-12, "cdf({v}) = {} < {q}", d.cdf(v));
        // Exceedance complement.
        prop_assert!((d.cdf(v) + d.exceedance(v) - 1.0).abs() < 1e-12);
    }
}
