//! Property-based tests of the statistics layer.

use proptest::prelude::*;

use tailstats::{
    gini, ks_distance, lorenz_curve, EmpiricalDist, FiveNumber, KllSketch, Moments, P2Quantile,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Five-number summaries are always ordered.
    #[test]
    fn fivenum_ordered(samples in proptest::collection::vec(-1e6f64..1e6, 1..300)) {
        let s = FiveNumber::from_samples(&samples);
        prop_assert!(s.min <= s.whisker_lo + 1e-9);
        prop_assert!(s.whisker_lo <= s.q1 + 1e-9);
        prop_assert!(s.q1 <= s.median + 1e-9);
        prop_assert!(s.median <= s.q3 + 1e-9);
        prop_assert!(s.q3 <= s.whisker_hi + 1e-9);
        prop_assert!(s.whisker_hi <= s.max + 1e-9);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
    }

    /// Welford moments equal the two-pass computation.
    #[test]
    fn moments_match_two_pass(samples in proptest::collection::vec(-1e3f64..1e3, 2..200)) {
        let mut m = Moments::new();
        for &x in &samples {
            m.observe(x);
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((m.mean() - mean).abs() < 1e-6);
        prop_assert!((m.variance() - var).abs() < 1e-6 * var.max(1.0));
    }

    /// P² stays within the sample range and close to the exact median on
    /// larger streams.
    #[test]
    fn p2_bounded_by_range(samples in proptest::collection::vec(0f64..1e4, 5..2000)) {
        let mut p2 = P2Quantile::new(0.5);
        for &x in &samples {
            p2.observe(x);
        }
        let d = EmpiricalDist::from_samples(samples.clone());
        let est = p2.estimate();
        prop_assert!(est >= d.min() - 1e-9 && est <= d.max() + 1e-9);
        if samples.len() >= 500 {
            let exact = d.quantile(0.5);
            let spread = (d.max() - d.min()).max(1e-9);
            prop_assert!((est - exact).abs() / spread < 0.25, "est {est} exact {exact}");
        }
    }

    /// KS distance is a pseudo-metric: symmetric, zero on identity,
    /// bounded by 1, triangle inequality.
    #[test]
    fn ks_pseudo_metric(
        a in proptest::collection::vec(0u64..1000, 1..100),
        b in proptest::collection::vec(0u64..1000, 1..100),
        c in proptest::collection::vec(0u64..1000, 1..100),
    ) {
        let (da, db, dc) = (
            EmpiricalDist::from_counts(&a),
            EmpiricalDist::from_counts(&b),
            EmpiricalDist::from_counts(&c),
        );
        prop_assert!(ks_distance(&da, &da) < 1e-12);
        let ab = ks_distance(&da, &db);
        prop_assert!((ks_distance(&db, &da) - ab).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ab));
        let (ac, cb) = (ks_distance(&da, &dc), ks_distance(&dc, &db));
        prop_assert!(ab <= ac + cb + 1e-9);
    }

    /// Gini is scale-invariant and bounded; the Lorenz curve ends at (1,1).
    #[test]
    fn gini_lorenz_laws(values in proptest::collection::vec(0f64..1e4, 1..150), scale in 0.1f64..100.0) {
        let g = gini(&values);
        prop_assert!((0.0..=1.0).contains(&g), "gini {g}");
        let scaled: Vec<f64> = values.iter().map(|v| v * scale).collect();
        prop_assert!((gini(&scaled) - g).abs() < 1e-9, "scale invariance");
        let lorenz = lorenz_curve(&values);
        let last = lorenz.last().unwrap();
        prop_assert!((last.0 - 1.0).abs() < 1e-12);
        if values.iter().sum::<f64>() > 0.0 {
            prop_assert!((last.1 - 1.0).abs() < 1e-9);
        }
        // Lorenz never exceeds the diagonal.
        for (x, y) in &lorenz {
            prop_assert!(*y <= *x + 1e-9);
        }
    }

    /// Quantile and CDF are inverse-consistent: cdf(quantile(q)) >= q for
    /// the discrete quantile.
    #[test]
    fn quantile_cdf_consistency(samples in proptest::collection::vec(0u64..10_000, 1..300), q in 0.01f64..0.999) {
        let d = EmpiricalDist::from_counts(&samples);
        let v = d.quantile_discrete(q);
        prop_assert!(d.cdf(v) >= q - 1e-12, "cdf({v}) = {} < {q}", d.cdf(v));
        // Exceedance complement.
        prop_assert!((d.cdf(v) + d.exceedance(v) - 1.0).abs() < 1e-12);
    }
}

/// Heavy-tailed adversarial count streams: most values tiny, some huge,
/// long duplicate runs — the shapes that stress compaction decisions.
fn heavy_tailed() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        prop_oneof![
            0u64..16,
            0u64..16,
            0u64..1_000,
            0u64..1_000_000_000,
        ],
        0..600,
    )
}

/// One of a few representative rank-error budgets (lossy through tight).
fn any_eps() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.2), Just(0.05), Just(0.01)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Sketch merge is commutative to the byte: merge(a,b) == merge(b,a)
    /// in serialized form, for any pair of streams and any budget.
    #[test]
    fn sketch_merge_commutative_byte_identical(
        xs in heavy_tailed(),
        ys in heavy_tailed(),
        eps in any_eps(),
    ) {
        let mut a = KllSketch::new(eps);
        a.extend_from_counts(&xs);
        let mut b = KllSketch::new(eps);
        b.extend_from_counts(&ys);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.to_bytes(), ba.to_bytes());
    }

    /// Sketch merge is associative to the byte:
    /// merge(merge(a,b),c) == merge(a,merge(b,c)).
    #[test]
    fn sketch_merge_associative_byte_identical(
        xs in heavy_tailed(),
        ys in heavy_tailed(),
        zs in heavy_tailed(),
        eps in any_eps(),
    ) {
        let mut a = KllSketch::new(eps);
        a.extend_from_counts(&xs);
        let mut b = KllSketch::new(eps);
        b.extend_from_counts(&ys);
        let mut c = KllSketch::new(eps);
        c.extend_from_counts(&zs);
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left.to_bytes(), right.to_bytes());
    }

    /// Pooling is invariant to input permutation (rotation + reversal
    /// cover the orders a sharded reduction actually produces).
    #[test]
    fn sketch_pool_permutation_invariant(
        xs in heavy_tailed(),
        parts in 1usize..7,
        rot in 0usize..7,
        eps in any_eps(),
    ) {
        let chunk = (xs.len() / parts).max(1);
        let sketches: Vec<KllSketch> = xs
            .chunks(chunk)
            .map(|c| {
                let mut s = KllSketch::new(eps);
                s.extend_from_counts(c);
                s
            })
            .collect();
        if !sketches.is_empty() {
            let forward: Vec<&KllSketch> = sketches.iter().collect();
            let mut rotated: Vec<&KllSketch> = sketches.iter().collect();
            rotated.rotate_left(rot % sketches.len());
            let reversed: Vec<&KllSketch> = sketches.iter().rev().collect();
            let base = KllSketch::pool(&forward).to_bytes();
            prop_assert_eq!(&KllSketch::pool(&rotated).to_bytes(), &base);
            prop_assert_eq!(&KllSketch::pool(&reversed).to_bytes(), &base);
        }
    }

    /// The observed rank (CDF) deviation against the exact distribution
    /// never exceeds the configured budget, probed at every distinct
    /// sample value (one discretisation step of slack for the strict /
    /// non-strict rank convention at probe points).
    #[test]
    fn sketch_rank_error_within_bound(xs in heavy_tailed(), eps in any_eps()) {
        if !xs.is_empty() {
            let exact = EmpiricalDist::from_counts(&xs);
            let mut sk = KllSketch::new(eps);
            sk.extend_from_counts(&xs);
            let slack = 1.0 / xs.len() as f64 + 1e-12;
            let mut probes: Vec<u64> = xs.clone();
            probes.sort_unstable();
            probes.dedup();
            for &v in &probes {
                let dev = (sk.cdf(v as f64) - exact.cdf(v as f64)).abs();
                prop_assert!(
                    dev <= eps + slack,
                    "cdf deviation {dev} at {v} exceeds eps {eps} (n={})",
                    xs.len()
                );
            }
            // The internal ledger agrees: err <= floor(weight * eps).
            let budget = (sk.len() as f64 * eps).floor() as u64;
            prop_assert!(sk.rank_error_bound() <= budget);
        }
    }

    /// No panics and sane outputs on degenerate shapes: empty sketches,
    /// single values, duplicate floods — including queries, merge with
    /// empty, and a serialization round trip.
    #[test]
    fn sketch_no_panic_on_degenerate_inputs(
        v in 0u64..1_000_000,
        dupes in 0usize..2000,
        q in -0.5f64..1.5,
        eps in any_eps(),
    ) {
        let empty = KllSketch::new(eps);
        prop_assert_eq!(empty.quantile(q), 0.0);
        prop_assert_eq!(empty.mean(), 0.0);
        prop_assert_eq!(empty.cdf(v as f64), 0.0);

        let mut single = KllSketch::new(eps);
        single.insert(v);
        prop_assert_eq!(single.quantile(q), v as f64);

        let mut flood = KllSketch::new(eps);
        for _ in 0..dupes {
            flood.insert(v);
        }
        flood.merge(&empty);
        let mut all = empty.clone();
        all.merge(&single);
        all.merge(&flood);
        prop_assert_eq!(all.len(), 1 + dupes as u64);
        if dupes > 0 {
            prop_assert_eq!(flood.quantile(q), v as f64);
        }
        let back = KllSketch::from_bytes(&all.to_bytes()).expect("roundtrip");
        prop_assert_eq!(&back, &all);
        prop_assert_eq!(back.to_bytes(), all.to_bytes());
    }
}
