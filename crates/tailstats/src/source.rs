//! A single quantile-query facade over the exact and sketched backends.
//!
//! Threshold fitting in `hids-core` only ever needs rank queries
//! (`quantile`, `quantile_discrete`), tail probabilities (`cdf`,
//! `exceedance`, `below`) and the first two moments. [`QuantileSource`]
//! exposes exactly that surface over either an exact
//! [`EmpiricalDist`] (the default — bit-identical to the historical
//! behavior) or a [`KllSketch`] (bounded memory for fleet scale).
//!
//! # The boundary contract (pinned here, for both backends)
//!
//! This is the **single normative statement** of the quantile API's edge
//! behavior; the `boundary_contract_*` tests below hold both backends to
//! it, and neither backend documents a divergent rule.
//!
//! * `q` is clamped to `[0, 1]`: `quantile(0.0) == min()`,
//!   `quantile(1.0) == max()`, `q < 0` behaves as `0`, `q > 1` as `1`.
//! * `quantile_discrete(q)` returns a value that actually occurred; its
//!   rank is `clamp(ceil(q·n), 1, n)`, so `q = 0.0` also yields the
//!   minimum.
//! * A NaN `q` is **not rejected and does not propagate**: `clamp`
//!   preserves NaN, the derived rank casts to 0, and both query forms
//!   return the minimum sample. (Historical `EmpiricalDist` behavior,
//!   now pinned for every backend.)
//! * NaN/±∞ **samples** are rejected at ingest: `EmpiricalDist`
//!   construction panics (callers validate), while the sketch's
//!   [`KllSketch::insert_f64`] returns `false` without panicking —
//!   non-finite values carry no rank information and never enter state.
//! * Queries on an *empty* sketch return `0.0` (an empty
//!   `EmpiricalDist` is unconstructible, so the enum's exact arm is
//!   always non-empty).

use crate::edf::EmpiricalDist;
use crate::sketch::KllSketch;

/// Either an exact empirical distribution or a mergeable rank sketch,
/// answering the same quantile/tail-probability queries.
///
/// The exact arm stays the workspace default; the sketch arm is selected
/// explicitly (fleet-scale runs, `--sketch-eps`). See the
/// [module docs](self) for the boundary contract both arms honour.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantileSource {
    /// Exact stored-sample backend (bit-identical to historical paths).
    Exact(EmpiricalDist),
    /// Bounded-memory deterministic sketch backend.
    Sketch(KllSketch),
}

impl QuantileSource {
    /// Build an exact source from integer counts.
    pub fn exact_from_counts(counts: &[u64]) -> Self {
        Self::Exact(EmpiricalDist::from_counts(counts))
    }

    /// Build a sketch source with budget `eps` from integer counts.
    pub fn sketch_from_counts(eps: f64, counts: &[u64]) -> Self {
        let mut s = KllSketch::new(eps);
        s.extend_from_counts(counts);
        Self::Sketch(s)
    }

    /// Hyndman–Fan type-7 interpolated quantile.
    pub fn quantile(&self, q: f64) -> f64 {
        match self {
            Self::Exact(d) => d.quantile(q),
            Self::Sketch(s) => s.quantile(q),
        }
    }

    /// The smallest observed value with rank at least `ceil(q·n)`.
    pub fn quantile_discrete(&self, q: f64) -> f64 {
        match self {
            Self::Exact(d) => d.quantile_discrete(q),
            Self::Sketch(s) => s.quantile_discrete(q),
        }
    }

    /// Number of samples represented (total weight for the sketch).
    pub fn len(&self) -> u64 {
        match self {
            Self::Exact(d) => d.len() as u64,
            Self::Sketch(s) => s.len(),
        }
    }

    /// Whether no samples are represented.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Smallest sample (exact in both backends).
    pub fn min(&self) -> f64 {
        match self {
            Self::Exact(d) => d.min(),
            Self::Sketch(s) => s.min(),
        }
    }

    /// Largest sample (exact in both backends).
    pub fn max(&self) -> f64 {
        match self {
            Self::Exact(d) => d.max(),
            Self::Sketch(s) => s.max(),
        }
    }

    /// Sample mean (exact in both backends; the sketch keeps integer
    /// moment sums).
    pub fn mean(&self) -> f64 {
        match self {
            Self::Exact(d) => d.mean(),
            Self::Sketch(s) => s.mean(),
        }
    }

    /// Unbiased sample standard deviation. Exact backend: cached
    /// two-pass value; sketch: from exact integer moment sums (equal in
    /// value up to float association, not guaranteed bitwise).
    pub fn stddev(&self) -> f64 {
        match self {
            Self::Exact(d) => d.stddev(),
            Self::Sketch(s) => s.stddev(),
        }
    }

    /// Fraction of samples `≤ x`.
    pub fn cdf(&self, x: f64) -> f64 {
        match self {
            Self::Exact(d) => d.cdf(x),
            Self::Sketch(s) => s.cdf(x),
        }
    }

    /// Fraction of samples strictly greater than `x` (false-positive rate
    /// of threshold `x`).
    pub fn exceedance(&self, x: f64) -> f64 {
        match self {
            Self::Exact(d) => d.exceedance(x),
            Self::Sketch(s) => s.exceedance(x),
        }
    }

    /// Fraction of samples strictly below `x` (the paper's
    /// false-negative rate via `below(T - b)`).
    pub fn below(&self, x: f64) -> f64 {
        match self {
            Self::Exact(d) => d.below(x),
            Self::Sketch(s) => s.below(x),
        }
    }

    /// The worst-case rank-error bound: 0 for the exact backend, the
    /// sketch's ledger otherwise.
    pub fn rank_error_bound(&self) -> u64 {
        match self {
            Self::Exact(_) => 0,
            Self::Sketch(s) => s.rank_error_bound(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VALS: &[u64] = &[10, 20, 20, 30, 40, 50, 60, 70, 80, 90];

    fn both() -> (QuantileSource, QuantileSource) {
        (
            QuantileSource::exact_from_counts(VALS),
            // Tight eps on a small stream keeps buffers roomy (capacity
            // grows as 1/eps), so the sketch never compacts and the two
            // backends must agree exactly — the contract tests below then
            // pin identical boundary behavior.
            QuantileSource::sketch_from_counts(0.05, VALS),
        )
    }

    #[test]
    fn boundary_contract_q_zero_is_min() {
        let (e, s) = both();
        for src in [&e, &s] {
            assert_eq!(src.quantile(0.0), 10.0);
            assert_eq!(src.quantile_discrete(0.0), 10.0);
        }
    }

    #[test]
    fn boundary_contract_q_one_is_max() {
        let (e, s) = both();
        for src in [&e, &s] {
            assert_eq!(src.quantile(1.0), 90.0);
            assert_eq!(src.quantile_discrete(1.0), 90.0);
        }
    }

    #[test]
    fn boundary_contract_q_clamped_outside_unit_interval() {
        let (e, s) = both();
        for src in [&e, &s] {
            assert_eq!(src.quantile(-0.5), src.quantile(0.0));
            assert_eq!(src.quantile(1.5), src.quantile(1.0));
            assert_eq!(src.quantile_discrete(-0.5), src.quantile_discrete(0.0));
            assert_eq!(src.quantile_discrete(1.5), src.quantile_discrete(1.0));
        }
    }

    #[test]
    fn boundary_contract_nan_q_returns_min_in_both_backends() {
        let (e, s) = both();
        for src in [&e, &s] {
            assert_eq!(src.quantile(f64::NAN), 10.0);
            assert_eq!(src.quantile_discrete(f64::NAN), 10.0);
        }
        // And identically across backends, not just per-backend:
        assert_eq!(e.quantile(f64::NAN), s.quantile(f64::NAN));
        assert_eq!(
            e.quantile_discrete(f64::NAN),
            s.quantile_discrete(f64::NAN)
        );
    }

    #[test]
    fn boundary_contract_nan_samples_rejected_at_ingest() {
        // Sketch: non-panicking rejection.
        let mut sk = KllSketch::new(0.1);
        assert!(!sk.insert_f64(f64::NAN));
        assert!(!sk.insert_f64(f64::INFINITY));
        assert!(sk.is_empty());
        // Exact: construction panics (validated by edf.rs's own
        // `nan_rejected` test; here we only assert the sketch side keeps
        // state clean so both backends never hold non-finite samples).
    }

    #[test]
    fn backends_agree_exactly_when_uncompacted() {
        let (e, s) = both();
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(e.quantile(q), s.quantile(q), "q={q}");
            assert_eq!(e.quantile_discrete(q), s.quantile_discrete(q), "q={q}");
        }
        for x in [5.0, 10.0, 20.0, 55.0, 90.0, 1000.0] {
            assert_eq!(e.cdf(x), s.cdf(x));
            assert_eq!(e.exceedance(x), s.exceedance(x));
            assert_eq!(e.below(x), s.below(x));
        }
        assert_eq!(e.min(), s.min());
        assert_eq!(e.max(), s.max());
        assert_eq!(e.mean(), s.mean());
        assert_eq!(e.len(), s.len());
    }

    #[test]
    fn empty_sketch_source_queries_return_zero() {
        let src = QuantileSource::Sketch(KllSketch::new(0.05));
        assert!(src.is_empty());
        assert_eq!(src.quantile(0.5), 0.0);
        assert_eq!(src.quantile_discrete(0.99), 0.0);
        assert_eq!(src.mean(), 0.0);
        assert_eq!(src.exceedance(1.0), 0.0);
    }

    #[test]
    fn rank_error_bound_zero_for_exact() {
        let (e, s) = both();
        assert_eq!(e.rank_error_bound(), 0);
        assert_eq!(s.rank_error_bound(), 0); // uncompacted
    }
}
