//! # tailstats — statistics for tail-behaviour analysis
//!
//! The paper's entire argument rests on *where the tail of each user's
//! feature distribution begins* (its high quantiles) and how that varies
//! across a population. This crate provides the statistical machinery:
//!
//! * [`EmpiricalDist`] — exact quantiles, CDF and exceedance probabilities
//!   over stored samples (what each end host computes from a training week);
//! * [`P2Quantile`] — the P² constant-memory streaming quantile estimator,
//!   for the in-hardware monitoring scenario (Intel AMT) the paper's
//!   introduction anticipates;
//! * [`LogHistogram`] — log-binned histograms for heavy-tailed counts;
//! * [`Moments`] / [`Ewma`] — streaming mean/variance and smoothing;
//! * [`FiveNumber`] — boxplot summaries (Figures 3(a) and 4(b));
//! * [`kmeans`](mod@kmeans) — Lloyd's algorithm with deterministic initialisation, used
//!   for the paper's (unsuccessful) natural-clusters probe;
//! * [`Confusion`] — precision/recall/F-measure for threshold heuristics;
//! * [`KllSketch`] — deterministic integer-only mergeable rank sketch with
//!   a guaranteed rank-error ledger, for fleet-scale per-host state;
//! * [`QuantileSource`] — one facade over `EmpiricalDist | KllSketch` with
//!   the pinned boundary/NaN contract both backends honour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod edf;
pub mod ewma;
pub mod fivenum;
pub mod histogram;
pub mod kmeans;
pub mod metrics;
pub mod moments;
pub mod p2;
pub mod resample;
pub mod sketch;
pub mod source;

pub use edf::EmpiricalDist;
pub use ewma::Ewma;
pub use fivenum::FiveNumber;
pub use histogram::LogHistogram;
pub use kmeans::{kmeans, kmeans_1d, separation_score, KMeansResult};
pub use metrics::Confusion;
pub use moments::Moments;
pub use p2::P2Quantile;
pub use resample::{bootstrap_ci, gini, ks_distance, lorenz_curve, BootstrapCi};
pub use sketch::{KllSketch, SketchDecodeError};
pub use source::QuantileSource;
