//! Five-number (boxplot) summaries.

use crate::edf::EmpiricalDist;

/// The statistics a boxplot displays: quartiles, whiskers and outliers.
///
/// Whiskers follow the Tukey convention (most extreme samples within
/// 1.5 × IQR of the box), matching the MATLAB boxplots in the paper's
/// Figures 3(a) and 4(b).
#[derive(Debug, Clone, PartialEq)]
pub struct FiveNumber {
    /// Smallest sample.
    pub min: f64,
    /// Lower whisker end.
    pub whisker_lo: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Upper whisker end.
    pub whisker_hi: f64,
    /// Largest sample.
    pub max: f64,
    /// Sample mean (not drawn in a classic boxplot but reported in
    /// EXPERIMENTS.md tables).
    pub mean: f64,
    /// Samples outside the whiskers.
    pub outliers: Vec<f64>,
}

impl FiveNumber {
    /// Summarise a batch of samples.
    ///
    /// # Panics
    /// Panics on an empty batch.
    pub fn from_samples(samples: &[f64]) -> Self {
        let dist = EmpiricalDist::from_samples(samples.to_vec());
        let q1 = dist.quantile(0.25);
        let median = dist.quantile(0.5);
        let q3 = dist.quantile(0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let whisker_lo = dist
            .samples()
            .iter()
            .copied()
            .find(|&x| x >= lo_fence)
            .unwrap_or(q1);
        let whisker_hi = dist
            .samples()
            .iter()
            .rev()
            .copied()
            .find(|&x| x <= hi_fence)
            .unwrap_or(q3);
        let outliers = dist
            .samples()
            .iter()
            .copied()
            .filter(|&x| x < lo_fence || x > hi_fence)
            .collect();
        FiveNumber {
            min: dist.min(),
            whisker_lo,
            q1,
            median,
            q3,
            whisker_hi,
            max: dist.max(),
            mean: dist.mean(),
            outliers,
        }
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Render a one-line ASCII description (for experiment reports).
    pub fn describe(&self) -> String {
        format!(
            "min={:.4} q1={:.4} med={:.4} q3={:.4} max={:.4} mean={:.4} outliers={}",
            self.min,
            self.q1,
            self.median,
            self.q3,
            self.max,
            self.mean,
            self.outliers.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quartiles_of_simple_batch() {
        let s = FiveNumber::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!(s.outliers.is_empty());
        assert_eq!(s.whisker_lo, 1.0);
        assert_eq!(s.whisker_hi, 5.0);
    }

    #[test]
    fn outlier_detected_beyond_fence() {
        let mut data = vec![10.0; 20];
        data.push(1000.0);
        let s = FiveNumber::from_samples(&data);
        assert_eq!(s.outliers, vec![1000.0]);
        assert_eq!(s.whisker_hi, 10.0, "whisker stops at last inlier");
        assert_eq!(s.max, 1000.0);
    }

    #[test]
    fn constant_batch_degenerate() {
        let s = FiveNumber::from_samples(&[7.0, 7.0, 7.0]);
        assert_eq!(s.iqr(), 0.0);
        assert_eq!(s.median, 7.0);
        assert!(s.outliers.is_empty());
    }

    #[test]
    fn single_sample() {
        let s = FiveNumber::from_samples(&[3.5]);
        assert_eq!(s.min, 3.5);
        assert_eq!(s.max, 3.5);
        assert_eq!(s.median, 3.5);
    }

    #[test]
    fn describe_contains_fields() {
        let s = FiveNumber::from_samples(&[1.0, 2.0, 3.0]);
        let d = s.describe();
        assert!(d.contains("med=2.0000"));
        assert!(d.contains("outliers=0"));
    }
}
