//! Streaming mean and variance (Welford's algorithm).

/// Numerically stable running moments.
#[derive(Debug, Clone, Copy, Default)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Moments {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Feed one observation.
    pub fn observe(&mut self, x: f64) {
        debug_assert!(x.is_finite());
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 with no data).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+∞` with no data).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` with no data).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The `mean + k·σ` outlier cut-off used by one of the paper's
    /// threshold heuristics.
    pub fn sigma_threshold(&self, k: f64) -> f64 {
        self.mean() + k * self.stddev()
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Moments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_two_pass_computation() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut m = Moments::new();
        for &x in &data {
            m.observe(x);
        }
        assert!((m.mean() - 5.0).abs() < 1e-12);
        assert!((m.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(m.min(), 2.0);
        assert_eq!(m.max(), 9.0);
        assert_eq!(m.count(), 8);
    }

    #[test]
    fn empty_and_single() {
        let mut m = Moments::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance(), 0.0);
        m.observe(3.0);
        assert_eq!(m.mean(), 3.0);
        assert_eq!(m.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 5.0).collect();
        let mut whole = Moments::new();
        for &x in &data {
            whole.observe(x);
        }
        let mut a = Moments::new();
        let mut b = Moments::new();
        for &x in &data[..37] {
            a.observe(x);
        }
        for &x in &data[37..] {
            b.observe(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Moments::new();
        a.observe(1.0);
        a.observe(2.0);
        let before = (a.mean(), a.variance(), a.count());
        a.merge(&Moments::new());
        assert_eq!((a.mean(), a.variance(), a.count()), before);

        let mut empty = Moments::new();
        let mut b = Moments::new();
        b.observe(5.0);
        empty.merge(&b);
        assert_eq!(empty.mean(), 5.0);
        assert_eq!(empty.count(), 1);
    }

    #[test]
    fn sigma_threshold() {
        let mut m = Moments::new();
        for x in [0.0, 2.0, 4.0] {
            m.observe(x);
        }
        // mean 2, sd 2
        assert!((m.sigma_threshold(3.0) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn stable_for_large_offsets() {
        // Catastrophic cancellation check: large mean, small variance.
        let mut m = Moments::new();
        for i in 0..1000 {
            m.observe(1e9 + f64::from(i % 2));
        }
        assert!((m.variance() - 0.2502502502502503).abs() < 1e-6);
    }
}
