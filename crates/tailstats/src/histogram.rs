//! Log-binned histograms for heavy-tailed count data.

/// A histogram whose bins grow geometrically, suited to data spanning
/// several orders of magnitude (exactly the situation in the paper's
/// Figure 1, where per-user thresholds span 3–4 decades).
///
/// Bin 0 holds the value 0; bin `i ≥ 1` holds values in
/// `[base^(i-1), base^i)` scaled by `unit`.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    base: f64,
    unit: f64,
    counts: Vec<u64>,
    total: u64,
    overflow: u64,
}

impl LogHistogram {
    /// Create a histogram with geometric `base > 1`, starting resolution
    /// `unit > 0`, and `bins` bins (excluding the zero bin).
    ///
    /// # Panics
    /// Panics on invalid parameters.
    pub fn new(base: f64, unit: f64, bins: usize) -> Self {
        assert!(base > 1.0, "base must exceed 1");
        assert!(unit > 0.0, "unit must be positive");
        assert!(bins > 0, "need at least one bin");
        Self {
            base,
            unit,
            counts: vec![0; bins + 1],
            total: 0,
            overflow: 0,
        }
    }

    /// A (2.0, 1.0, 40)-histogram covering u64-ish count data.
    pub fn for_counts() -> Self {
        Self::new(2.0, 1.0, 40)
    }

    fn bin_index(&self, x: f64) -> Option<usize> {
        if x < 0.0 {
            return None;
        }
        let scaled = x / self.unit;
        if scaled < 1.0 {
            return Some(0);
        }
        let idx = scaled.log(self.base).floor() as usize + 1;
        if idx < self.counts.len() {
            Some(idx)
        } else {
            None
        }
    }

    /// Record one observation. Values ≥ the last bin's upper edge go to an
    /// overflow counter; negative values are ignored.
    pub fn record(&mut self, x: f64) {
        match self.bin_index(x) {
            Some(i) => {
                self.counts[i] += 1;
                self.total += 1;
            }
            None if x >= 0.0 => {
                self.overflow += 1;
                self.total += 1;
            }
            None => {}
        }
    }

    /// Total recorded observations (including overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations past the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Lower edge of bin `i`.
    pub fn bin_lower(&self, i: usize) -> f64 {
        if i == 0 {
            0.0
        } else {
            self.unit * self.base.powi(i as i32 - 1)
        }
    }

    /// Iterate `(lower_edge, count)` for all bins.
    pub fn bins(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.bin_lower(i), c))
    }

    /// Approximate quantile from bin lower edges (conservative: returns the
    /// lower edge of the bin containing the q-th observation).
    pub fn quantile_lower_bound(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return self.bin_lower(i);
            }
        }
        self.bin_lower(self.counts.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_small_values_in_bin_zero() {
        let mut h = LogHistogram::new(2.0, 1.0, 8);
        h.record(0.0);
        h.record(0.5);
        let (edge, count) = h.bins().next().unwrap();
        assert_eq!(edge, 0.0);
        assert_eq!(count, 2);
    }

    #[test]
    fn powers_of_two_binning() {
        let mut h = LogHistogram::new(2.0, 1.0, 8);
        for x in [1.0, 1.9, 2.0, 3.9, 4.0, 7.9, 8.0] {
            h.record(x);
        }
        let counts: Vec<u64> = h.bins().map(|(_, c)| c).collect();
        // bin1 [1,2): 2, bin2 [2,4): 2, bin3 [4,8): 2, bin4 [8,16): 1
        assert_eq!(&counts[1..5], &[2, 2, 2, 1]);
    }

    #[test]
    fn overflow_counted() {
        let mut h = LogHistogram::new(2.0, 1.0, 3); // bins up to [4,8)
        h.record(100.0);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn negative_ignored() {
        let mut h = LogHistogram::for_counts();
        h.record(-1.0);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn quantile_lower_bound_tracks_mass() {
        let mut h = LogHistogram::new(2.0, 1.0, 16);
        // 90 observations at 1, 10 at 1000.
        for _ in 0..90 {
            h.record(1.0);
        }
        for _ in 0..10 {
            h.record(1000.0);
        }
        assert_eq!(h.quantile_lower_bound(0.5), 1.0);
        let q95 = h.quantile_lower_bound(0.95);
        assert!(q95 >= 512.0, "q95 bin edge {q95}");
    }

    #[test]
    fn empty_quantile_zero() {
        let h = LogHistogram::for_counts();
        assert_eq!(h.quantile_lower_bound(0.99), 0.0);
    }
}
