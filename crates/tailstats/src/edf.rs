//! Empirical distribution over stored samples.

/// An empirical distribution built from a batch of observations.
///
/// This is the object every end host builds from its training week: the
/// sorted per-window feature counts, from which percentile thresholds and
/// exceedance probabilities are read off.
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalDist {
    sorted: Vec<f64>,
    /// Cached at construction: heuristics read these once per threshold
    /// candidate, so recomputing per call would be O(n) each time.
    mean: f64,
    stddev: f64,
}

impl EmpiricalDist {
    /// Build from samples. Non-finite values are rejected.
    ///
    /// # Panics
    /// Panics if `samples` is empty or contains NaN/infinities — the callers
    /// in this workspace always have at least one bin per window.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "empirical distribution needs samples");
        assert!(
            samples.iter().all(|x| x.is_finite()),
            "samples must be finite"
        );
        samples.sort_by(|a, b| a.total_cmp(b));
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let stddev = if n < 2 {
            0.0
        } else {
            let ss: f64 = samples.iter().map(|x| (x - mean).powi(2)).sum();
            (ss / (n - 1) as f64).sqrt()
        };
        Self {
            sorted: samples,
            mean,
            stddev,
        }
    }

    /// Build from integer counts (the common case for feature bins).
    /// Sorts in the integer domain first — cheaper comparisons than the
    /// `total_cmp` float sort, which then sees already-ordered input.
    pub fn from_counts(counts: &[u64]) -> Self {
        let mut counts = counts.to_vec();
        counts.sort_unstable();
        Self::from_samples(counts.iter().map(|&c| c as f64).collect())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the distribution holds no samples. Construction requires at
    /// least one sample, so this is false for any reachable value; it
    /// delegates rather than hard-coding that invariant.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }

    /// Sample mean (cached at construction).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample standard deviation, 0 for a single sample (cached
    /// at construction).
    pub fn stddev(&self) -> f64 {
        self.stddev
    }

    /// Quantile by linear interpolation (Hyndman–Fan type 7, the R/NumPy
    /// default). `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            self.sorted[lo]
        } else {
            let frac = pos - lo as f64;
            self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
        }
    }

    /// The smallest stored sample `v` such that at least `q·n` samples are
    /// `≤ v` (a value that actually occurred; used where the paper extracts
    /// "the 99th percentile value" of integer counts).
    pub fn quantile_discrete(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let n = self.sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        self.sorted[rank - 1]
    }

    /// Empirical CDF: fraction of samples `≤ x`.
    pub fn cdf(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Exceedance probability: fraction of samples strictly greater than
    /// `x`. For a threshold `T` this is exactly the false-positive rate
    /// `P(g > T)`.
    pub fn exceedance(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// Fraction of samples strictly below `x`: for an attack of size `b`
    /// and threshold `T`, `P(g + b < T) = below(T - b)` is the paper's
    /// false-negative rate.
    pub fn below(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v < x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Largest shift `b ≥ 0` such that `P(X + b < t) ≥ prob`, i.e. the
    /// mimicry attacker's evasion budget against threshold `t`.
    ///
    /// Returns 0 when even `b = 0` cannot achieve `prob` (the threshold
    /// already sits deep inside the distribution).
    pub fn max_shift_below(&self, t: f64, prob: f64) -> f64 {
        let n = self.sorted.len();
        let need = (prob * n as f64).ceil() as usize;
        if need == 0 {
            // Any b works; cap at t - min so the flow stays non-negative.
            return (t - self.min()).max(0.0);
        }
        if need > n {
            return 0.0;
        }
        // Need the `need` smallest samples to stay strictly below t after
        // the shift: x_(need) + b < t  =>  b < t - x_(need).
        let x = self.sorted[need - 1];
        // Largest b satisfying the strict inequality on integer-valued
        // features is t - x - 1, but features may be non-integral after
        // interpolation; use the open-interval supremum minus an epsilon-
        // free formulation: return the bound itself clamped at 0, and let
        // callers on integer lattices floor it.
        (t - x).max(0.0)
    }

    /// Borrow the sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Merge several distributions into the pooled ("ensembled") global
    /// distribution the homogeneous policy computes at the IT console.
    ///
    /// # Panics
    /// Panics if `dists` is empty.
    pub fn pool<'a>(dists: impl IntoIterator<Item = &'a EmpiricalDist>) -> EmpiricalDist {
        let mut all: Vec<f64> = Vec::new();
        for d in dists {
            all.extend_from_slice(&d.sorted);
        }
        EmpiricalDist::from_samples(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(v: &[f64]) -> EmpiricalDist {
        EmpiricalDist::from_samples(v.to_vec())
    }

    #[test]
    fn quantile_interpolation_matches_numpy_type7() {
        let d = dist(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.quantile(0.0), 1.0);
        assert_eq!(d.quantile(1.0), 4.0);
        assert!((d.quantile(0.5) - 2.5).abs() < 1e-12);
        assert!((d.quantile(0.25) - 1.75).abs() < 1e-12);
        assert!((d.quantile(0.99) - 3.97).abs() < 1e-12);
    }

    #[test]
    fn quantile_discrete_returns_observed_values() {
        let d = dist(&[10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(d.quantile_discrete(0.0), 10.0);
        assert_eq!(d.quantile_discrete(0.2), 10.0);
        assert_eq!(d.quantile_discrete(0.21), 20.0);
        assert_eq!(d.quantile_discrete(0.99), 50.0);
        assert_eq!(d.quantile_discrete(1.0), 50.0);
    }

    #[test]
    fn cdf_exceedance_below_consistency() {
        let d = dist(&[1.0, 1.0, 2.0, 3.0]);
        assert!((d.cdf(1.0) - 0.5).abs() < 1e-12);
        assert!((d.cdf(0.5) - 0.0).abs() < 1e-12);
        assert!((d.exceedance(2.0) - 0.25).abs() < 1e-12);
        assert!((d.below(2.0) - 0.5).abs() < 1e-12);
        assert!((d.below(1.0) - 0.0).abs() < 1e-12);
        assert_eq!(d.cdf(100.0), 1.0);
    }

    #[test]
    fn single_sample_degenerate() {
        let d = dist(&[7.0]);
        assert_eq!(d.quantile(0.3), 7.0);
        assert_eq!(d.stddev(), 0.0);
        assert_eq!(d.mean(), 7.0);
    }

    #[test]
    fn max_shift_below_mimicry_budget() {
        // Samples 0..=99; threshold 200, want P(X + b < 200) >= 0.9.
        let d = EmpiricalDist::from_counts(&(0u64..100).collect::<Vec<_>>());
        // Need the 90 smallest (x = 89) below: b = 200 - 89 = 111.
        let b = d.max_shift_below(200.0, 0.9);
        assert!((b - 111.0).abs() < 1e-12);
        // Shifting by exactly b keeps 89 + 111 = 200 NOT below 200; the
        // budget is a supremum. One less is safe:
        assert!(d.below(200.0 - (b - 1.0)) >= 0.9);
    }

    #[test]
    fn max_shift_below_zero_when_threshold_inside_bulk() {
        let d = EmpiricalDist::from_counts(&[10, 10, 10, 10]);
        // P(X + b < 5) can never reach 0.9 even at b=0.
        assert_eq!(d.max_shift_below(5.0, 0.9), 0.0);
    }

    #[test]
    fn pooling_matches_concatenation() {
        let a = dist(&[1.0, 5.0]);
        let b = dist(&[2.0, 10.0]);
        let pooled = EmpiricalDist::pool([&a, &b]);
        assert_eq!(pooled.len(), 4);
        assert_eq!(pooled.samples(), &[1.0, 2.0, 5.0, 10.0]);
    }

    #[test]
    fn stats_basics() {
        let d = dist(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((d.mean() - 5.0).abs() < 1e-12);
        assert!((d.stddev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(d.min(), 2.0);
        assert_eq!(d.max(), 9.0);
    }

    #[test]
    #[should_panic(expected = "needs samples")]
    fn empty_rejected() {
        let _ = EmpiricalDist::from_samples(vec![]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        let _ = EmpiricalDist::from_samples(vec![1.0, f64::NAN]);
    }
}
