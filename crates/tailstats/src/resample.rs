//! Bootstrap resampling and two-sample distances.
//!
//! Used by the experiments to put uncertainty on reported statistics
//! (bootstrap percentile intervals) and to quantify week-over-week
//! distribution drift (Kolmogorov–Smirnov distance).

use crate::edf::EmpiricalDist;

/// A percentile bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapCi {
    /// Point estimate (the statistic on the original sample).
    pub estimate: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Nominal coverage (e.g. 0.95).
    pub level: f64,
}

/// Deterministic xorshift stream for resampling (no external RNG needed;
/// resampling only requires decorrelated indices, not cryptographic
/// quality).
#[derive(Debug, Clone)]
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn index(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Percentile bootstrap CI for an arbitrary statistic of a sample.
///
/// # Panics
/// Panics on an empty sample, non-positive repetitions, or `level`
/// outside (0, 1).
pub fn bootstrap_ci(
    samples: &[f64],
    statistic: impl Fn(&[f64]) -> f64,
    reps: usize,
    level: f64,
    seed: u64,
) -> BootstrapCi {
    assert!(!samples.is_empty(), "bootstrap needs samples");
    assert!(reps > 0, "bootstrap needs repetitions");
    assert!(level > 0.0 && level < 1.0, "level must be in (0,1)");
    let estimate = statistic(samples);
    let mut rng = SplitMix(seed);
    let mut stats = Vec::with_capacity(reps);
    let mut resample = vec![0.0; samples.len()];
    for _ in 0..reps {
        for slot in resample.iter_mut() {
            *slot = samples[rng.index(samples.len())];
        }
        stats.push(statistic(&resample));
    }
    let dist = EmpiricalDist::from_samples(stats);
    let alpha = (1.0 - level) / 2.0;
    BootstrapCi {
        estimate,
        lo: dist.quantile(alpha),
        hi: dist.quantile(1.0 - alpha),
        level,
    }
}

/// Two-sample Kolmogorov–Smirnov statistic: `sup_x |F_a(x) − F_b(x)|`.
///
/// 0 for identical distributions, 1 for disjoint supports.
pub fn ks_distance(a: &EmpiricalDist, b: &EmpiricalDist) -> f64 {
    let (xa, xb) = (a.samples(), b.samples());
    let (na, nb) = (xa.len() as f64, xb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < xa.len() && j < xb.len() {
        let x = xa[i].min(xb[j]);
        while i < xa.len() && xa[i] <= x {
            i += 1;
        }
        while j < xb.len() && xb[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    d.max((1.0 - i as f64 / na).abs().max((1.0 - j as f64 / nb).abs()))
}

/// Gini coefficient of a non-negative sample (0 = perfectly equal,
/// → 1 = all mass on one member). Quantifies how concentrated the
/// population's traffic heaviness is.
///
/// # Panics
/// Panics on an empty sample or negative values.
pub fn gini(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "gini needs values");
    assert!(values.iter().all(|&v| v >= 0.0), "gini needs non-negatives");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len() as f64;
    let total: f64 = sorted.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| (i as f64 + 1.0) * v)
        .sum();
    (2.0 * weighted) / (n * total) - (n + 1.0) / n
}

/// Points of the Lorenz curve: `(population fraction, traffic fraction)`,
/// ascending — for "the top 15% of users account for X% of traffic" style
/// statements.
pub fn lorenz_curve(values: &[f64]) -> Vec<(f64, f64)> {
    assert!(!values.is_empty(), "lorenz needs values");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len() as f64;
    let total: f64 = sorted.iter().sum::<f64>().max(f64::MIN_POSITIVE);
    let mut acc = 0.0;
    let mut points = Vec::with_capacity(sorted.len() + 1);
    points.push((0.0, 0.0));
    for (i, &v) in sorted.iter().enumerate() {
        acc += v;
        points.push(((i as f64 + 1.0) / n, acc / total));
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_mean_ci_covers_truth() {
        let samples: Vec<f64> = (0..200).map(|i| f64::from(i % 10)).collect();
        let ci = bootstrap_ci(&samples, |s| s.iter().sum::<f64>() / s.len() as f64, 500, 0.95, 1);
        assert!((ci.estimate - 4.5).abs() < 1e-12);
        assert!(ci.lo <= 4.5 && 4.5 <= ci.hi);
        assert!(ci.hi - ci.lo < 1.5, "interval reasonably tight");
    }

    #[test]
    fn bootstrap_deterministic_per_seed() {
        let samples: Vec<f64> = (0..50).map(f64::from).collect();
        let stat = |s: &[f64]| s.iter().cloned().fold(0.0f64, f64::max);
        let a = bootstrap_ci(&samples, stat, 100, 0.9, 7);
        let b = bootstrap_ci(&samples, stat, 100, 0.9, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn ks_identical_is_zero() {
        let a = EmpiricalDist::from_counts(&[1, 2, 3, 4, 5]);
        let b = EmpiricalDist::from_counts(&[1, 2, 3, 4, 5]);
        assert_eq!(ks_distance(&a, &b), 0.0);
    }

    #[test]
    fn ks_disjoint_is_one() {
        let a = EmpiricalDist::from_counts(&[1, 2, 3]);
        let b = EmpiricalDist::from_counts(&[100, 200]);
        assert!((ks_distance(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ks_shifted_halves() {
        // a = {0..10}, b = {5..15}: overlap half — KS around 0.5.
        let a = EmpiricalDist::from_counts(&(0..10).collect::<Vec<_>>());
        let b = EmpiricalDist::from_counts(&(5..15).collect::<Vec<_>>());
        let d = ks_distance(&a, &b);
        assert!((0.4..0.6).contains(&d), "got {d}");
    }

    #[test]
    fn ks_symmetric() {
        let a = EmpiricalDist::from_counts(&[1, 5, 9, 9, 20]);
        let b = EmpiricalDist::from_counts(&[2, 2, 7, 30]);
        assert!((ks_distance(&a, &b) - ks_distance(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn gini_extremes() {
        assert!(gini(&[5.0, 5.0, 5.0, 5.0]).abs() < 1e-12, "equality -> 0");
        let concentrated = gini(&[0.0, 0.0, 0.0, 100.0]);
        assert!(concentrated > 0.7, "got {concentrated}");
        assert_eq!(gini(&[0.0, 0.0]), 0.0, "all-zero defined as 0");
    }

    #[test]
    fn gini_known_value() {
        // {1, 3}: G = 0.25.
        assert!((gini(&[1.0, 3.0]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn lorenz_endpoints_and_monotone() {
        let pts = lorenz_curve(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(pts.first(), Some(&(0.0, 0.0)));
        let last = pts.last().unwrap();
        assert!((last.0 - 1.0).abs() < 1e-12 && (last.1 - 1.0).abs() < 1e-12);
        for pair in pts.windows(2) {
            assert!(pair[1].0 >= pair[0].0);
            assert!(pair[1].1 >= pair[0].1);
        }
        // Lorenz curve lies below the diagonal for unequal data.
        assert!(pts[2].1 < pts[2].0);
    }
}
