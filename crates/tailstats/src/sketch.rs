//! Deterministic, integer-only mergeable rank sketch (KLL/GK family).
//!
//! Every per-host training distribution in this workspace is a stream of
//! non-negative integer feature counts. [`KllSketch`] summarises such a
//! stream in bounded memory while answering rank/quantile queries with a
//! **guaranteed, explicitly-ledgered** rank error — the property the
//! paper's percentile threshold heuristics need at fleet scale, where
//! storing every sample per host is the memory wall (ROADMAP item 1).
//!
//! # Design
//!
//! The sketch is a stack of *levels*. Level `l` holds a sorted `Vec<u64>`
//! of items, each representing `2^l` original samples. New samples enter
//! level 0 with weight 1. When a level overflows its capacity, it is
//! *compacted*: the even-length prefix of its sorted buffer is halved by
//! keeping every second item (alternating between even and odd positions
//! via a per-level parity bit — the deterministic stand-in for KLL's coin
//! flip) and promoting the survivors to level `l+1` at doubled weight.
//!
//! Each compaction at level `l` perturbs the rank of any query point by at
//! most `2^l` (half of one pair's weight). The sketch therefore keeps an
//! **exact integer error ledger**: `err += 2^l` per compaction. A
//! compaction is only permitted while `err + 2^l ≤ ⌊W·ε⌋` (`W` = total
//! samples ingested); otherwise it is deferred and the buffer simply
//! grows. The advertised bound `rank error ≤ ⌊W·ε⌋` is thus true **by
//! construction**, not by probabilistic argument — there is no randomness
//! anywhere in the structure.
//!
//! # Determinism and mergeability
//!
//! * All state is integer (`u64`/`u128` saturating arithmetic); no float
//!   ever enters the stored state. Float samples are quantized to the u64
//!   lattice at ingest ([`KllSketch::insert_f64`]) and rejected if
//!   non-finite — mirroring `hids-metrics`' saturating-integer discipline.
//! * [`KllSketch::merge`] is a **lossless level-wise union**: per-level
//!   sorted multiset union, parity XOR, saturating scalar sums. Union of
//!   multisets is commutative *and* associative, so `merge(a,b)` and
//!   `merge(b,a)` (and any re-association) are byte-identical. Compaction
//!   never runs inside `merge`; callers compact explicitly (or via
//!   [`KllSketch::pool`]) once the union is formed.
//! * [`KllSketch::pool`] merges *any number* of sketches in a canonical
//!   order (a total order on sketch state), compressing after each step,
//!   so shard-merge order can never change the output — the fleet-scale
//!   determinism bar.
//!
//! Error composition under merge is additive: `err_a + err_b ≤
//! ε·W_a + ε·W_b = ε·(W_a + W_b)`, so the bound survives arbitrary
//! merging.
//!
//! # Capacity policy
//!
//! Classic KLL shrinks capacities geometrically and relies on random
//! parity for error cancellation; with deterministic parity the worst
//! case does not cancel, so this sketch uses a uniform per-level capacity
//! `cap = max(8, ⌈H/ε⌉)` (`H` = current number of levels). Each level
//! then contributes ≈ `W·ε/H` rank error, summing to the budget across
//! all `H` levels — and the ledger enforces the sum exactly.

use std::cmp::Ordering;

/// Magic bytes prefixing the canonical serialized form.
const MAGIC: &[u8; 4] = b"KLL1";

/// Parts-per-million denominator for the integer error budget.
const PPM: u64 = 1_000_000;

/// A deterministic mergeable quantile sketch over `u64` samples.
///
/// See the [module docs](self) for the design and determinism argument.
/// The boundary/NaN contract of the quantile queries is pinned (and
/// tested) in one place: [`crate::source::QuantileSource`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KllSketch {
    /// Error budget in parts-per-million of total weight (ε·10⁶).
    eps_ppm: u32,
    /// Total samples ingested (the sketch's "n").
    weight: u64,
    /// Exact rank-error ledger: sum of 2^l over performed compactions.
    err: u64,
    /// Number of compactions performed (health metric).
    compactions: u64,
    /// Exact minimum sample (u64::MAX while empty).
    min: u64,
    /// Exact maximum sample (0 while empty).
    max: u64,
    /// Exact saturating sum of samples (for the mean).
    sum: u128,
    /// Exact saturating sum of squared samples (for the stddev).
    sum_sq: u128,
    /// `levels[l]` holds sorted items of weight `2^l`.
    levels: Vec<Vec<u64>>,
    /// Compaction parity per level: `false` keeps even positions next.
    parities: Vec<bool>,
}

impl KllSketch {
    /// Create an empty sketch with rank-error budget `eps` (fraction of
    /// total weight).
    ///
    /// # Panics
    /// Panics unless `0 < eps < 1` and `eps` is finite. Callers validate
    /// user input before reaching here (see `repro` argument parsing).
    pub fn new(eps: f64) -> Self {
        assert!(
            eps.is_finite() && eps > 0.0 && eps < 1.0,
            "sketch eps must lie in (0, 1)"
        );
        // Round up so the realized budget never exceeds the requested one
        // is the wrong direction — round *down* the permissiveness: a
        // smaller eps_ppm is strictly tighter. Use ceil to avoid 0.
        let ppm = (eps * PPM as f64).ceil() as u64;
        Self::with_eps_ppm(ppm.clamp(1, PPM - 1) as u32)
    }

    /// Create an empty sketch with the budget in parts-per-million
    /// (`eps_ppm = ε·10⁶`, clamped to `[1, 999_999]`).
    pub fn with_eps_ppm(eps_ppm: u32) -> Self {
        Self {
            eps_ppm: eps_ppm.clamp(1, (PPM - 1) as u32),
            weight: 0,
            err: 0,
            compactions: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
            sum_sq: 0,
            levels: Vec::new(),
            parities: Vec::new(),
        }
    }

    /// The configured budget in parts-per-million.
    pub fn eps_ppm(&self) -> u32 {
        self.eps_ppm
    }

    /// Total samples ingested.
    pub fn len(&self) -> u64 {
        self.weight
    }

    /// Whether no samples have been ingested.
    pub fn is_empty(&self) -> bool {
        self.weight == 0
    }

    /// Current worst-case rank-error bound, in absolute rank units.
    ///
    /// This is the *exact ledger* of incurred compaction error, always
    /// `≤ ⌊len·ε⌋`; a query's rank is off by at most this many positions.
    pub fn rank_error_bound(&self) -> u64 {
        self.err
    }

    /// Number of compactions performed over the sketch's lifetime
    /// (including lifetimes of merged-in sketches).
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Approximate in-memory footprint of the sketch state in bytes
    /// (items + fixed header; identical to the serialized size).
    pub fn state_bytes(&self) -> u64 {
        let header = 4 + 4 + 5 * 8 + 2 * 16 + 4;
        let levels: u64 = self
            .levels
            .iter()
            .map(|l| 1 + 4 + 8 * l.len() as u64)
            .sum();
        header as u64 + levels
    }

    /// Number of stored items across all levels.
    pub fn stored_items(&self) -> u64 {
        self.levels.iter().map(|l| l.len() as u64).sum()
    }

    /// The hard error budget at the current weight: `⌊W·ε⌋` in rank units.
    fn budget(&self) -> u64 {
        ((self.weight as u128 * self.eps_ppm as u128) / PPM as u128) as u64
    }

    /// Per-level capacity at height `h`: `max(8, ⌈h/ε⌉)`.
    fn capacity(&self, h: usize) -> usize {
        let cap = (h as u64 * PPM).div_ceil(self.eps_ppm as u64);
        (cap as usize).max(8)
    }

    /// Ingest one integer sample.
    pub fn insert(&mut self, v: u64) {
        if self.levels.is_empty() {
            self.levels.push(Vec::new());
            self.parities.push(false);
        }
        let level0 = &mut self.levels[0];
        let at = level0.partition_point(|&x| x <= v);
        level0.insert(at, v);
        self.weight = self.weight.saturating_add(1);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum = self.sum.saturating_add(v as u128);
        self.sum_sq = self.sum_sq.saturating_add((v as u128) * (v as u128));
        self.compress();
    }

    /// Quantize a float sample onto the u64 lattice (round to nearest,
    /// clamp to `[0, u64::MAX]`) and ingest it. Returns `false` — without
    /// panicking — for NaN/±∞, which carry no rank information.
    pub fn insert_f64(&mut self, v: f64) -> bool {
        if !v.is_finite() {
            return false;
        }
        let q = if v <= 0.0 {
            0
        } else if v >= u64::MAX as f64 {
            u64::MAX
        } else {
            v.round() as u64
        };
        self.insert(q);
        true
    }

    /// Ingest a batch of integer counts.
    pub fn extend_from_counts(&mut self, counts: &[u64]) {
        for &c in counts {
            self.insert(c);
        }
    }

    /// Compact overflowing levels while the error ledger stays within the
    /// hard budget `⌊W·ε⌋`. Runs automatically on insert; callers only
    /// need it explicitly after [`merge`](Self::merge).
    pub fn compress(&mut self) {
        loop {
            let h = self.levels.len();
            if h == 0 {
                return;
            }
            let cap = self.capacity(h);
            let budget = self.budget();
            let mut compacted = false;
            for l in 0..self.levels.len() {
                if self.levels[l].len() <= cap {
                    continue;
                }
                let cost = 1u64 << l.min(63);
                if self.err.saturating_add(cost) > budget {
                    // Deferred: the bound is inviolable, the buffer grows.
                    continue;
                }
                self.compact_level(l);
                compacted = true;
            }
            if !compacted {
                return;
            }
        }
    }

    /// Halve level `l`'s even prefix into level `l+1`, flipping parity and
    /// charging `2^l` to the error ledger.
    fn compact_level(&mut self, l: usize) {
        let buf = std::mem::take(&mut self.levels[l]);
        let m = buf.len() & !1;
        let start = usize::from(self.parities[l]);
        let promoted: Vec<u64> = buf[..m].iter().copied().skip(start).step_by(2).collect();
        // The odd leftover (if any) stays behind at its own weight.
        self.levels[l] = buf[m..].to_vec();
        self.parities[l] = !self.parities[l];
        if l + 1 == self.levels.len() {
            self.levels.push(Vec::new());
            self.parities.push(false);
        }
        let target = &mut self.levels[l + 1];
        target.extend_from_slice(&promoted);
        target.sort_unstable();
        self.err = self.err.saturating_add(1u64 << l.min(63));
        self.compactions = self.compactions.saturating_add(1);
    }

    /// Lossless level-wise union with `other`.
    ///
    /// Commutative **and** associative with byte-identical results: the
    /// union of sorted multisets per level, XOR of parities, and
    /// saturating scalar sums are each order-insensitive. No compaction
    /// happens here — call [`compress`](Self::compress) (or use
    /// [`pool`](Self::pool)) afterwards to restore the memory bound.
    ///
    /// # Panics
    /// Panics if the two sketches were built with different `eps` budgets;
    /// mixing budgets would make the merged ledger meaningless.
    pub fn merge(&mut self, other: &KllSketch) {
        assert!(
            self.eps_ppm == other.eps_ppm,
            "cannot merge sketches with different eps budgets"
        );
        while self.levels.len() < other.levels.len() {
            self.levels.push(Vec::new());
            self.parities.push(false);
        }
        for (l, items) in other.levels.iter().enumerate() {
            self.levels[l].extend_from_slice(items);
            self.levels[l].sort_unstable();
            self.parities[l] ^= other.parities[l];
        }
        self.weight = self.weight.saturating_add(other.weight);
        self.err = self.err.saturating_add(other.err);
        self.compactions = self.compactions.saturating_add(other.compactions);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum = self.sum.saturating_add(other.sum);
        self.sum_sq = self.sum_sq.saturating_add(other.sum_sq);
    }

    /// A total order on sketch state, used to canonicalize merge order in
    /// [`pool`](Self::pool). Two sketches compare equal iff their
    /// serialized bytes are equal.
    pub fn canonical_cmp(a: &KllSketch, b: &KllSketch) -> Ordering {
        a.eps_ppm
            .cmp(&b.eps_ppm)
            .then(a.weight.cmp(&b.weight))
            .then(a.err.cmp(&b.err))
            .then(a.compactions.cmp(&b.compactions))
            .then(a.min.cmp(&b.min))
            .then(a.max.cmp(&b.max))
            .then(a.sum.cmp(&b.sum))
            .then(a.sum_sq.cmp(&b.sum_sq))
            .then(a.levels.len().cmp(&b.levels.len()))
            .then_with(|| {
                for l in 0..a.levels.len() {
                    let ord = a.parities[l]
                        .cmp(&b.parities[l])
                        .then(a.levels[l].len().cmp(&b.levels[l].len()))
                        .then_with(|| a.levels[l].cmp(&b.levels[l]));
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                Ordering::Equal
            })
    }

    /// Merge any number of sketches into one, **independent of input
    /// order**: inputs are first sorted by [`canonical_cmp`](Self::canonical_cmp)
    /// (a total order on state), then folded with union + compress, so the
    /// accumulator stays memory-bounded and every permutation of the same
    /// multiset of inputs yields byte-identical output.
    ///
    /// # Panics
    /// Panics if `sketches` is empty or mixes `eps` budgets.
    pub fn pool(sketches: &[&KllSketch]) -> KllSketch {
        assert!(!sketches.is_empty(), "pool needs at least one sketch");
        let mut order: Vec<usize> = (0..sketches.len()).collect();
        order.sort_by(|&i, &j| Self::canonical_cmp(sketches[i], sketches[j]));
        let mut acc = sketches[order[0]].clone();
        for &i in &order[1..] {
            acc.merge(sketches[i]);
            acc.compress();
        }
        acc
    }

    /// All stored items with their weights, aggregated by value and sorted
    /// ascending: `(value, weight)` with weights summing to `len()`.
    pub fn weighted_items(&self) -> Vec<(u64, u64)> {
        let mut flat: Vec<(u64, u64)> = Vec::with_capacity(self.stored_items() as usize);
        for (l, items) in self.levels.iter().enumerate() {
            let w = 1u64 << l.min(63);
            flat.extend(items.iter().map(|&v| (v, w)));
        }
        flat.sort_unstable_by_key(|&(v, _)| v);
        let mut out: Vec<(u64, u64)> = Vec::with_capacity(flat.len());
        for (v, w) in flat {
            match out.last_mut() {
                Some(last) if last.0 == v => last.1 = last.1.saturating_add(w),
                _ => out.push((v, w)),
            }
        }
        out
    }

    /// The value at expanded (0-based) rank `r`, i.e. the `r`-th element
    /// of the weight-expanded sorted sample. `r` is clamped to the last
    /// item. Returns 0.0 on an empty sketch.
    fn value_at_rank(&self, r: u64) -> f64 {
        let items = self.weighted_items();
        let mut cum = 0u64;
        for &(v, w) in &items {
            cum = cum.saturating_add(w);
            if r < cum {
                return v as f64;
            }
        }
        match items.last() {
            Some(&(v, _)) => v as f64,
            None => 0.0,
        }
    }

    /// Quantile by linear interpolation over the weight-expanded sample
    /// (Hyndman–Fan type 7) — the same formula as
    /// [`EmpiricalDist::quantile`](crate::EmpiricalDist::quantile), so an
    /// uncompacted sketch answers bit-identically to the exact path.
    /// Boundary/NaN contract: see [`crate::source::QuantileSource`].
    /// Returns 0.0 on an empty sketch.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.weight == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        if self.weight == 1 {
            return self.value_at_rank(0);
        }
        let pos = q * (self.weight - 1) as f64;
        let lo = pos.floor();
        let hi = pos.ceil();
        // NaN `pos` floors/ceils to NaN and casts to 0: both ranks become
        // 0 and the branch below returns the minimum — the same pinned
        // behavior as the exact path.
        let lo_r = lo as u64;
        let hi_r = hi as u64;
        if lo_r == hi_r {
            self.value_at_rank(lo_r)
        } else {
            let frac = pos - lo;
            self.value_at_rank(lo_r) * (1.0 - frac) + self.value_at_rank(hi_r) * frac
        }
    }

    /// The smallest stored value `v` such that at least `q·W` expanded
    /// samples are `≤ v` — the sketch analogue of
    /// [`EmpiricalDist::quantile_discrete`](crate::EmpiricalDist::quantile_discrete).
    /// Returns 0.0 on an empty sketch.
    pub fn quantile_discrete(&self, q: f64) -> f64 {
        if self.weight == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.weight as f64).ceil() as u64).clamp(1, self.weight);
        self.value_at_rank(rank - 1)
    }

    /// Fraction of expanded samples `≤ x`. Returns 0.0 on an empty sketch.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.weight == 0 {
            return 0.0;
        }
        let mut cum = 0u64;
        for &(v, w) in &self.weighted_items() {
            if v as f64 <= x {
                cum = cum.saturating_add(w);
            } else {
                break;
            }
        }
        cum as f64 / self.weight as f64
    }

    /// Fraction of expanded samples strictly greater than `x` (the
    /// false-positive rate of threshold `x`).
    pub fn exceedance(&self, x: f64) -> f64 {
        if self.weight == 0 {
            return 0.0;
        }
        1.0 - self.cdf(x)
    }

    /// Fraction of expanded samples strictly below `x` (the paper's
    /// false-negative rate via `below(T - b)`).
    pub fn below(&self, x: f64) -> f64 {
        if self.weight == 0 {
            return 0.0;
        }
        let mut cum = 0u64;
        for &(v, w) in &self.weighted_items() {
            if (v as f64) < x {
                cum = cum.saturating_add(w);
            } else {
                break;
            }
        }
        cum as f64 / self.weight as f64
    }

    /// Exact minimum sample (0.0 on an empty sketch).
    pub fn min(&self) -> f64 {
        if self.weight == 0 {
            0.0
        } else {
            self.min as f64
        }
    }

    /// Exact maximum sample (0.0 on an empty sketch).
    pub fn max(&self) -> f64 {
        if self.weight == 0 {
            0.0
        } else {
            self.max as f64
        }
    }

    /// Exact sample mean, from the saturating integer sum (0.0 on an
    /// empty sketch).
    pub fn mean(&self) -> f64 {
        if self.weight == 0 {
            0.0
        } else {
            self.sum as f64 / self.weight as f64
        }
    }

    /// Unbiased sample standard deviation from the exact integer moment
    /// sums, clamped at 0 before the square root (0.0 for fewer than two
    /// samples).
    pub fn stddev(&self) -> f64 {
        if self.weight < 2 {
            return 0.0;
        }
        let n = self.weight as f64;
        let mean = self.mean();
        let ss = self.sum_sq as f64 - n * mean * mean;
        (ss.max(0.0) / (n - 1.0)).sqrt()
    }

    /// Canonical serialized form (little-endian). Two sketches have equal
    /// bytes iff their state is equal — the basis of the byte-identical
    /// merge tests.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.state_bytes() as usize);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.eps_ppm.to_le_bytes());
        out.extend_from_slice(&self.weight.to_le_bytes());
        out.extend_from_slice(&self.err.to_le_bytes());
        out.extend_from_slice(&self.compactions.to_le_bytes());
        out.extend_from_slice(&self.min.to_le_bytes());
        out.extend_from_slice(&self.max.to_le_bytes());
        out.extend_from_slice(&self.sum.to_le_bytes());
        out.extend_from_slice(&self.sum_sq.to_le_bytes());
        out.extend_from_slice(&(self.levels.len() as u32).to_le_bytes());
        for (l, items) in self.levels.iter().enumerate() {
            out.push(u8::from(self.parities[l]));
            out.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for &v in items {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Decode a sketch from its canonical serialized form. Returns an
    /// error (never panics) on truncated, corrupt, or invariant-violating
    /// input — the snapshot codec treats any error as a torn record.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SketchDecodeError> {
        let mut r = Reader { buf: bytes, at: 0 };
        let magic = r.take(4)?;
        if magic != MAGIC {
            return Err(SketchDecodeError::BadMagic);
        }
        let eps_ppm = r.u32()?;
        if eps_ppm == 0 || eps_ppm as u64 >= PPM {
            return Err(SketchDecodeError::BadField("eps_ppm"));
        }
        let weight = r.u64()?;
        let err = r.u64()?;
        let compactions = r.u64()?;
        let min = r.u64()?;
        let max = r.u64()?;
        let sum = r.u128()?;
        let sum_sq = r.u128()?;
        let n_levels = r.u32()? as usize;
        if n_levels > 64 {
            return Err(SketchDecodeError::BadField("n_levels"));
        }
        let mut levels = Vec::with_capacity(n_levels);
        let mut parities = Vec::with_capacity(n_levels);
        let mut stored = 0u64;
        for _ in 0..n_levels {
            let parity = r.u8()?;
            if parity > 1 {
                return Err(SketchDecodeError::BadField("parity"));
            }
            let len = r.u32()? as usize;
            let mut items = Vec::with_capacity(len.min(1 << 20));
            let mut prev = 0u64;
            for i in 0..len {
                let v = r.u64()?;
                if i > 0 && v < prev {
                    return Err(SketchDecodeError::BadField("unsorted level"));
                }
                prev = v;
                items.push(v);
            }
            stored = stored.saturating_add(len as u64);
            levels.push(items);
            parities.push(parity == 1);
        }
        if r.at != bytes.len() {
            return Err(SketchDecodeError::TrailingBytes);
        }
        if stored > weight {
            return Err(SketchDecodeError::BadField("stored > weight"));
        }
        Ok(Self {
            eps_ppm,
            weight,
            err,
            compactions,
            min,
            max,
            sum,
            sum_sq,
            levels,
            parities,
        })
    }
}

/// Why [`KllSketch::from_bytes`] rejected its input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SketchDecodeError {
    /// The 4-byte magic prefix did not match `KLL1`.
    BadMagic,
    /// The buffer ended before the declared structure.
    Truncated,
    /// A field held an invariant-violating value.
    BadField(&'static str),
    /// Bytes remained after the declared structure.
    TrailingBytes,
}

impl std::fmt::Display for SketchDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadMagic => write!(f, "bad sketch magic"),
            Self::Truncated => write!(f, "truncated sketch"),
            Self::BadField(which) => write!(f, "bad sketch field: {which}"),
            Self::TrailingBytes => write!(f, "trailing bytes after sketch"),
        }
    }
}

impl std::error::Error for SketchDecodeError {}

/// Bounds-checked little-endian reader for [`KllSketch::from_bytes`].
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SketchDecodeError> {
        let end = self
            .at
            .checked_add(n)
            .ok_or(SketchDecodeError::Truncated)?;
        if end > self.buf.len() {
            return Err(SketchDecodeError::Truncated);
        }
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SketchDecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SketchDecodeError> {
        let s = self.take(4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, SketchDecodeError> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    fn u128(&mut self) -> Result<u128, SketchDecodeError> {
        let s = self.take(16)?;
        let mut b = [0u8; 16];
        b.copy_from_slice(s);
        Ok(u128::from_le_bytes(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EmpiricalDist;

    fn sketch_of(eps: f64, vals: &[u64]) -> KllSketch {
        let mut s = KllSketch::new(eps);
        s.extend_from_counts(vals);
        s
    }

    #[test]
    fn uncompacted_matches_empirical_dist_bitwise() {
        // Small stream, generous eps: capacity is never exceeded, so the
        // sketch holds the exact sample and must answer bit-identically.
        let vals: Vec<u64> = vec![9, 1, 4, 4, 7, 0, 2, 2];
        let s = sketch_of(0.1, &vals);
        assert_eq!(s.compactions(), 0);
        let d = EmpiricalDist::from_counts(&vals);
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(s.quantile(q), d.quantile(q), "q={q}");
            assert_eq!(s.quantile_discrete(q), d.quantile_discrete(q), "q={q}");
        }
        for x in [0.0, 0.5, 2.0, 4.0, 6.9, 9.0, 100.0] {
            assert_eq!(s.cdf(x), d.cdf(x));
            assert_eq!(s.exceedance(x), d.exceedance(x));
            assert_eq!(s.below(x), d.below(x));
        }
        assert_eq!(s.min(), d.min());
        assert_eq!(s.max(), d.max());
        assert_eq!(s.mean(), d.mean());
        assert_eq!(s.len(), d.len() as u64);
    }

    #[test]
    fn error_ledger_respects_hard_budget() {
        let mut s = KllSketch::new(0.01);
        for i in 0..100_000u64 {
            s.insert(i * 37 % 4096);
            let budget = (s.len() as u128 * s.eps_ppm() as u128 / 1_000_000) as u64;
            assert!(
                s.rank_error_bound() <= budget,
                "ledger {} exceeds budget {} at n={}",
                s.rank_error_bound(),
                budget,
                s.len()
            );
        }
        // The sketch must actually compact at this scale.
        assert!(s.compactions() > 0);
        assert!(s.stored_items() < 100_000);
    }

    #[test]
    fn rank_error_within_bound_vs_exact() {
        let vals: Vec<u64> = (0..50_000u64).map(|i| (i * i) % 10_007).collect();
        let s = sketch_of(0.02, &vals);
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        let n = sorted.len() as u64;
        let err = s.rank_error_bound();
        for q in [0.5, 0.9, 0.95, 0.99, 1.0] {
            let v = s.quantile_discrete(q);
            let target = ((q * n as f64).ceil() as u64).clamp(1, n);
            // 1-based rank range occupied by v in the exact sample.
            let lo = sorted.partition_point(|&x| (x as f64) < v) as u64 + 1;
            let hi = sorted.partition_point(|&x| x as f64 <= v) as u64;
            assert!(
                hi + err >= target && lo <= target + err,
                "q={q}: value {v} ranks [{lo},{hi}], target {target}, err {err}"
            );
        }
    }

    #[test]
    fn merge_is_commutative_byte_identically() {
        let a = sketch_of(0.05, &(0..3000).map(|i| i % 77).collect::<Vec<_>>());
        let b = sketch_of(0.05, &(0..2000).map(|i| i * 13 % 991).collect::<Vec<_>>());
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.to_bytes(), ba.to_bytes());
    }

    #[test]
    fn merge_is_associative_byte_identically() {
        let a = sketch_of(0.05, &(0..1500).map(|i| i % 31).collect::<Vec<_>>());
        let b = sketch_of(0.05, &(0..1100).map(|i| i * 7 % 129).collect::<Vec<_>>());
        let c = sketch_of(0.05, &(0..900).map(|i| i * 3 % 513).collect::<Vec<_>>());
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c.to_bytes(), a_bc.to_bytes());
    }

    #[test]
    fn pool_is_permutation_invariant() {
        let parts: Vec<KllSketch> = (0..8)
            .map(|k| sketch_of(0.02, &(0..1000).map(|i| (i * (k + 3)) % 509).collect::<Vec<_>>()))
            .collect();
        let refs: Vec<&KllSketch> = parts.iter().collect();
        let forward = KllSketch::pool(&refs);
        let mut rev: Vec<&KllSketch> = refs.clone();
        rev.reverse();
        let backward = KllSketch::pool(&rev);
        let mut rot: Vec<&KllSketch> = refs.clone();
        rot.rotate_left(3);
        let rotated = KllSketch::pool(&rot);
        assert_eq!(forward.to_bytes(), backward.to_bytes());
        assert_eq!(forward.to_bytes(), rotated.to_bytes());
        let total: u64 = parts.iter().map(|p| p.len()).sum();
        assert_eq!(forward.len(), total);
    }

    #[test]
    fn serialization_roundtrips() {
        let s = sketch_of(0.01, &(0..25_000).map(|i| i % 333).collect::<Vec<_>>());
        let bytes = s.to_bytes();
        let back = KllSketch::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(s, back);
        assert_eq!(bytes.len() as u64, s.state_bytes());
    }

    #[test]
    fn from_bytes_rejects_corruption_without_panic() {
        let s = sketch_of(0.05, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let bytes = s.to_bytes();
        assert!(KllSketch::from_bytes(&[]).is_err());
        assert!(KllSketch::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert_eq!(
            KllSketch::from_bytes(&bad_magic),
            Err(SketchDecodeError::BadMagic)
        );
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            KllSketch::from_bytes(&trailing),
            Err(SketchDecodeError::TrailingBytes)
        );
    }

    #[test]
    fn empty_and_degenerate_queries_do_not_panic() {
        let e = KllSketch::new(0.01);
        assert_eq!(e.quantile(0.5), 0.0);
        assert_eq!(e.quantile_discrete(0.99), 0.0);
        assert_eq!(e.cdf(1.0), 0.0);
        assert_eq!(e.exceedance(1.0), 0.0);
        assert_eq!(e.below(1.0), 0.0);
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.stddev(), 0.0);
        assert_eq!(e.min(), 0.0);
        assert_eq!(e.max(), 0.0);
        assert!(e.is_empty());

        let one = sketch_of(0.01, &[42]);
        assert_eq!(one.quantile(0.0), 42.0);
        assert_eq!(one.quantile(1.0), 42.0);
        assert_eq!(one.quantile(f64::NAN), 42.0);
        assert_eq!(one.stddev(), 0.0);
    }

    #[test]
    fn insert_f64_quantizes_and_rejects_non_finite() {
        let mut s = KllSketch::new(0.1);
        assert!(s.insert_f64(3.4));
        assert!(s.insert_f64(3.6));
        assert!(s.insert_f64(-2.0));
        assert!(!s.insert_f64(f64::NAN));
        assert!(!s.insert_f64(f64::INFINITY));
        assert!(!s.insert_f64(f64::NEG_INFINITY));
        assert_eq!(s.len(), 3);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn duplicate_heavy_stream_is_fine() {
        let s = sketch_of(0.01, &vec![7u64; 40_000]);
        assert_eq!(s.quantile(0.5), 7.0);
        assert_eq!(s.quantile_discrete(0.99), 7.0);
        assert_eq!(s.min(), 7.0);
        assert_eq!(s.max(), 7.0);
        assert_eq!(s.mean(), 7.0);
        assert!(s.stored_items() < 40_000);
    }

    #[test]
    fn mean_matches_exact_sum() {
        let vals: Vec<u64> = (0..10_000).map(|i| i % 97).collect();
        let s = sketch_of(0.01, &vals);
        let d = EmpiricalDist::from_counts(&vals);
        assert_eq!(s.mean(), d.mean());
        // stddev uses a different (moment-sum) formulation: close, not
        // necessarily bitwise equal.
        assert!((s.stddev() - d.stddev()).abs() < 1e-9 * d.stddev().max(1.0));
    }

    #[test]
    fn compression_is_substantial_at_scale() {
        let vals: Vec<u64> = (0..200_000u64).map(|i| (i * 2654435761) % 65_536).collect();
        let s = sketch_of(0.02, &vals);
        let exact_bytes = vals.len() as u64 * 8;
        assert!(
            s.state_bytes() * 10 < exact_bytes,
            "sketch {} bytes vs exact {} bytes",
            s.state_bytes(),
            exact_bytes
        );
    }

    #[test]
    #[should_panic(expected = "eps")]
    fn mismatched_eps_merge_rejected() {
        let mut a = KllSketch::new(0.01);
        let b = KllSketch::new(0.02);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "(0, 1)")]
    fn eps_out_of_range_rejected() {
        let _ = KllSketch::new(1.5);
    }
}
