//! Exponentially-weighted moving average.

/// EWMA smoother: `s ← α·x + (1−α)·s`.
///
/// Used for smoothing weekly threshold updates (the paper observes that
/// raw week-over-week 99th percentiles are unstable; smoothing is the
/// obvious operational mitigation and is exercised in the drift ablation).
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Create a smoother with weight `alpha ∈ (0, 1]`.
    ///
    /// # Panics
    /// Panics when alpha is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        Self { alpha, value: None }
    }

    /// Feed one observation, returning the updated smoothed value.
    pub fn observe(&mut self, x: f64) -> f64 {
        let next = match self.value {
            None => x,
            Some(s) => self.alpha * x + (1.0 - self.alpha) * s,
        };
        self.value = Some(next);
        next
    }

    /// Current smoothed value, if any observation has arrived.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Reset to the empty state.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_initialises() {
        let mut e = Ewma::new(0.3);
        assert_eq!(e.value(), None);
        assert_eq!(e.observe(10.0), 10.0);
    }

    #[test]
    fn smooths_towards_new_values() {
        let mut e = Ewma::new(0.5);
        e.observe(0.0);
        assert_eq!(e.observe(10.0), 5.0);
        assert_eq!(e.observe(10.0), 7.5);
    }

    #[test]
    fn alpha_one_tracks_exactly() {
        let mut e = Ewma::new(1.0);
        e.observe(1.0);
        assert_eq!(e.observe(42.0), 42.0);
    }

    #[test]
    fn reset_forgets() {
        let mut e = Ewma::new(0.2);
        e.observe(100.0);
        e.reset();
        assert_eq!(e.observe(1.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn zero_alpha_rejected() {
        let _ = Ewma::new(0.0);
    }
}
