//! Lloyd's k-means with deterministic initialisation.
//!
//! The paper tried k-means over per-user 99th-percentile values to find
//! natural user groups and found none ("no natural holes or boundaries").
//! This implementation is used to reproduce that negative result and as an
//! alternative grouping policy in the partial-diversity ablation.

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Final cluster centroids, one `Vec<f64>` per cluster.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster index assigned to each input point.
    pub assignments: Vec<usize>,
    /// Sum of squared distances of points to their centroids (inertia).
    pub inertia: f64,
    /// Iterations executed before convergence (or the cap).
    pub iterations: usize,
    /// True when assignments stabilised before the iteration cap.
    pub converged: bool,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Deterministic "maximin" initialisation: first centre is the point
/// closest to the data mean; each subsequent centre is the point farthest
/// from all chosen centres (a deterministic k-means++ variant).
fn maximin_init(points: &[Vec<f64>], k: usize) -> Vec<Vec<f64>> {
    let dim = points[0].len();
    let n = points.len() as f64;
    let mut mean = vec![0.0; dim];
    for p in points {
        for (m, x) in mean.iter_mut().zip(p) {
            *m += x / n;
        }
    }
    let first = points
        .iter()
        .enumerate()
        .min_by(|a, b| sq_dist(a.1, &mean).total_cmp(&sq_dist(b.1, &mean)))
        .map(|(i, _)| i)
        .expect("non-empty");
    let mut centres = vec![points[first].clone()];
    let mut min_d: Vec<f64> = points.iter().map(|p| sq_dist(p, &centres[0])).collect();
    while centres.len() < k {
        let far = min_d
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty");
        centres.push(points[far].clone());
        for (d, p) in min_d.iter_mut().zip(points) {
            *d = d.min(sq_dist(p, centres.last().expect("just pushed")));
        }
    }
    centres
}

/// Cluster `points` into `k` groups; deterministic for a given input.
///
/// # Panics
/// Panics when `points` is empty, `k` is zero, or dimensions are ragged.
pub fn kmeans(points: &[Vec<f64>], k: usize, max_iters: usize) -> KMeansResult {
    assert!(!points.is_empty(), "kmeans needs points");
    assert!(k > 0, "kmeans needs k >= 1");
    let dim = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == dim),
        "points must share a dimension"
    );
    let k = k.min(points.len());

    let mut centroids = maximin_init(points, k);
    let mut assignments = vec![0usize; points.len()];
    let mut converged = false;
    let mut iterations = 0;

    for iter in 0..max_iters {
        iterations = iter + 1;
        // Assignment step.
        let mut changed = false;
        for (a, p) in assignments.iter_mut().zip(points) {
            let best = (0..k)
                .min_by(|&i, &j| sq_dist(p, &centroids[i]).total_cmp(&sq_dist(p, &centroids[j])))
                .expect("k >= 1");
            if best != *a {
                *a = best;
                changed = true;
            }
        }
        if !changed && iter > 0 {
            converged = true;
            break;
        }
        // Update step.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (a, p) in assignments.iter().zip(points) {
            counts[*a] += 1;
            for (s, x) in sums[*a].iter_mut().zip(p) {
                *s += x;
            }
        }
        for (c, (sum, count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            if *count > 0 {
                for (ci, si) in c.iter_mut().zip(sum) {
                    *ci = si / *count as f64;
                }
            }
            // Empty clusters keep their previous centroid.
        }
    }

    let inertia = assignments
        .iter()
        .zip(points)
        .map(|(a, p)| sq_dist(p, &centroids[*a]))
        .sum();
    KMeansResult {
        centroids,
        assignments,
        inertia,
        iterations,
        converged,
    }
}

/// One-dimensional convenience wrapper.
pub fn kmeans_1d(values: &[f64], k: usize, max_iters: usize) -> KMeansResult {
    let points: Vec<Vec<f64>> = values.iter().map(|&v| vec![v]).collect();
    kmeans(&points, k, max_iters)
}

/// Silhouette-style separation score: mean over clusters of
/// (nearest-other-centroid distance − mean intra distance) divided by the
/// larger of the two. Near 1 ⇒ well-separated clusters; near 0 or negative
/// ⇒ no natural grouping (the paper's finding on its user population).
pub fn separation_score(points: &[Vec<f64>], result: &KMeansResult) -> f64 {
    let k = result.centroids.len();
    if k < 2 {
        return 0.0;
    }
    let mut score = 0.0;
    let mut populated = 0usize;
    for c in 0..k {
        let members: Vec<&Vec<f64>> = points
            .iter()
            .zip(&result.assignments)
            .filter(|(_, &a)| a == c)
            .map(|(p, _)| p)
            .collect();
        if members.is_empty() {
            continue;
        }
        populated += 1;
        let intra = members
            .iter()
            .map(|p| sq_dist(p, &result.centroids[c]).sqrt())
            .sum::<f64>()
            / members.len() as f64;
        let nearest_other = (0..k)
            .filter(|&j| j != c)
            .map(|j| sq_dist(&result.centroids[c], &result.centroids[j]).sqrt())
            .fold(f64::INFINITY, f64::min);
        let denom = intra.max(nearest_other);
        if denom > 0.0 {
            score += (nearest_other - intra) / denom;
        }
    }
    if populated == 0 {
        0.0
    } else {
        score / populated as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_two_obvious_blobs() {
        let mut points: Vec<Vec<f64>> = Vec::new();
        for i in 0..10 {
            points.push(vec![f64::from(i) * 0.1]); // blob near 0
            points.push(vec![100.0 + f64::from(i) * 0.1]); // blob near 100
        }
        let r = kmeans_1d(
            &points.iter().map(|p| p[0]).collect::<Vec<_>>(),
            2,
            100,
        );
        assert!(r.converged);
        // All low points share a cluster, all high points the other.
        let low = r.assignments[0];
        for (i, p) in points.iter().enumerate() {
            if p[0] < 50.0 {
                assert_eq!(r.assignments[i], low);
            } else {
                assert_ne!(r.assignments[i], low);
            }
        }
        let sep = separation_score(&points, &r);
        assert!(sep > 0.9, "well-separated blobs score high, got {sep}");
    }

    #[test]
    fn uniform_data_scores_low_separation() {
        // A smooth continuum (like the paper's user population) has no
        // natural boundary: separation should be far below the blob case.
        let values: Vec<f64> = (0..200).map(f64::from).collect();
        let points: Vec<Vec<f64>> = values.iter().map(|&v| vec![v]).collect();
        let r = kmeans_1d(&values, 2, 200);
        let sep = separation_score(&points, &r);
        // A k=2 split of a continuum still yields ~0.75 with this centroid-
        // based score; genuine blobs score >0.95. The gap is what matters.
        assert!(sep < 0.85, "continuum must not look clustered, got {sep}");
    }

    #[test]
    fn k_clamped_to_point_count() {
        let r = kmeans_1d(&[1.0, 2.0], 8, 50);
        assert_eq!(r.centroids.len(), 2);
    }

    #[test]
    fn deterministic_across_runs() {
        let values: Vec<f64> = (0..50).map(|i| ((i * 37) % 50) as f64).collect();
        let a = kmeans_1d(&values, 4, 100);
        let b = kmeans_1d(&values, 4, 100);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let values: Vec<f64> = (0..100).map(|i| f64::from(i * i % 97)).collect();
        let i2 = kmeans_1d(&values, 2, 200).inertia;
        let i5 = kmeans_1d(&values, 5, 200).inertia;
        let i8 = kmeans_1d(&values, 8, 200).inertia;
        assert!(i2 >= i5, "{i2} >= {i5}");
        assert!(i5 >= i8, "{i5} >= {i8}");
    }

    #[test]
    fn multidimensional_clustering() {
        let mut pts = Vec::new();
        for i in 0..10 {
            let f = f64::from(i);
            pts.push(vec![f * 0.01, f * 0.01]);
            pts.push(vec![10.0 + f * 0.01, -10.0 - f * 0.01]);
            pts.push(vec![-10.0 - f * 0.01, 10.0 + f * 0.01]);
        }
        let r = kmeans(&pts, 3, 100);
        assert!(r.converged);
        let mut sizes = [0usize; 3];
        for &a in &r.assignments {
            sizes[a] += 1;
        }
        assert_eq!(sizes, [10, 10, 10]);
    }

    #[test]
    #[should_panic(expected = "needs points")]
    fn empty_rejected() {
        let _ = kmeans(&[], 2, 10);
    }
}
