//! The P² (piecewise-parabolic) streaming quantile estimator.
//!
//! Jain & Chlamtac, "The P² algorithm for dynamic calculation of quantiles
//! and histograms without storing observations", CACM 1985. Five markers
//! track the running quantile in O(1) memory — the natural fit for the
//! in-NIC/AMT feature monitoring the paper anticipates, where a host cannot
//! buffer a week of per-window counts.

/// Streaming estimator for a single quantile `q`.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights.
    heights: [f64; 5],
    /// Marker positions (1-based, as in the paper).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    /// Observations seen; first five are buffered verbatim.
    count: usize,
    initial: [f64; 5],
}

impl P2Quantile {
    /// Create an estimator for quantile `q ∈ (0, 1)`.
    ///
    /// # Panics
    /// Panics when `q` is outside the open unit interval.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1)");
        Self {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            initial: [0.0; 5],
        }
    }

    /// The quantile this estimator tracks.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Number of observations so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feed one observation.
    pub fn observe(&mut self, x: f64) {
        debug_assert!(x.is_finite());
        if self.count < 5 {
            self.initial[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                self.initial.sort_by(|a, b| a.total_cmp(b));
                self.heights = self.initial;
            }
            return;
        }
        self.count += 1;

        // Find the cell k containing x and update extreme heights.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            // heights[k] <= x < heights[k+1]
            let mut k = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }

        // Adjust interior markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let sign = d.signum();
                let candidate = self.parabolic(i, sign);
                let new_height = if self.heights[i - 1] < candidate && candidate < self.heights[i + 1]
                {
                    candidate
                } else {
                    self.linear(i, sign)
                };
                self.heights[i] = new_height;
                self.positions[i] += sign;
            }
        }
    }

    fn parabolic(&self, i: usize, sign: f64) -> f64 {
        let (hm, h, hp) = (self.heights[i - 1], self.heights[i], self.heights[i + 1]);
        let (nm, n, np) = (
            self.positions[i - 1],
            self.positions[i],
            self.positions[i + 1],
        );
        h + sign / (np - nm)
            * ((n - nm + sign) * (hp - h) / (np - n) + (np - n - sign) * (h - hm) / (n - nm))
    }

    fn linear(&self, i: usize, sign: f64) -> f64 {
        let j = if sign > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + sign * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current quantile estimate.
    ///
    /// Before five observations have arrived, falls back to the exact
    /// quantile of the buffered values (or 0 with no data).
    pub fn estimate(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if self.count < 5 {
            let mut buf: Vec<f64> = self.initial[..self.count].to_vec();
            buf.sort_by(|a, b| a.total_cmp(b));
            let pos = self.q * (buf.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            return buf[lo] * (1.0 - frac) + buf[hi] * frac;
        }
        self.heights[2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edf::EmpiricalDist;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn median_of_uniform_stream() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut p2 = P2Quantile::new(0.5);
        let samples: Vec<f64> = (0..20_000).map(|_| rng.random::<f64>()).collect();
        for &x in &samples {
            p2.observe(x);
        }
        assert!((p2.estimate() - 0.5).abs() < 0.02, "got {}", p2.estimate());
    }

    #[test]
    fn p99_of_heavy_tailed_stream_close_to_exact() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut p2 = P2Quantile::new(0.99);
        // Pareto-ish: x = (1-u)^(-1/1.5)
        let samples: Vec<f64> = (0..50_000)
            .map(|_| (1.0 - rng.random::<f64>()).powf(-1.0 / 1.5))
            .collect();
        for &x in &samples {
            p2.observe(x);
        }
        let exact = EmpiricalDist::from_samples(samples).quantile(0.99);
        let rel = (p2.estimate() - exact).abs() / exact;
        assert!(rel < 0.15, "estimate {} vs exact {exact}", p2.estimate());
    }

    #[test]
    fn small_streams_exact() {
        let mut p2 = P2Quantile::new(0.5);
        for x in [3.0, 1.0, 2.0] {
            p2.observe(x);
        }
        assert!((p2.estimate() - 2.0).abs() < 1e-12);
        assert_eq!(p2.count(), 3);
    }

    #[test]
    fn no_data_estimate_is_zero() {
        let p2 = P2Quantile::new(0.9);
        assert_eq!(p2.estimate(), 0.0);
    }

    #[test]
    fn monotone_in_q_on_same_stream() {
        let mut rng = StdRng::seed_from_u64(99);
        let data: Vec<f64> = (0..10_000).map(|_| rng.random::<f64>() * 100.0).collect();
        let mut p50 = P2Quantile::new(0.5);
        let mut p90 = P2Quantile::new(0.9);
        let mut p99 = P2Quantile::new(0.99);
        for &x in &data {
            p50.observe(x);
            p90.observe(x);
            p99.observe(x);
        }
        assert!(p50.estimate() < p90.estimate());
        assert!(p90.estimate() < p99.estimate());
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn out_of_range_q_rejected() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    fn constant_stream_converges_to_constant() {
        let mut p2 = P2Quantile::new(0.99);
        for _ in 0..100 {
            p2.observe(5.0);
        }
        assert_eq!(p2.estimate(), 5.0);
    }
}
