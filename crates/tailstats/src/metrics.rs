//! Binary-classification metrics: confusion counts, precision/recall, F-measure.

/// Confusion-matrix counts for a detector evaluated against ground truth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Attack windows flagged.
    pub true_positives: u64,
    /// Benign windows flagged.
    pub false_positives: u64,
    /// Benign windows passed.
    pub true_negatives: u64,
    /// Attack windows missed.
    pub false_negatives: u64,
}

impl Confusion {
    /// Accumulate one labelled decision.
    pub fn record(&mut self, is_attack: bool, flagged: bool) {
        match (is_attack, flagged) {
            (true, true) => self.true_positives += 1,
            (true, false) => self.false_negatives += 1,
            (false, true) => self.false_positives += 1,
            (false, false) => self.true_negatives += 1,
        }
    }

    /// Merge counts from another evaluation.
    pub fn merge(&mut self, other: &Confusion) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.true_negatives += other.true_negatives;
        self.false_negatives += other.false_negatives;
    }

    /// Total decisions.
    pub fn total(&self) -> u64 {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// Precision = TP / (TP + FP); 1.0 when nothing was flagged.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall (detection rate) = TP / (TP + FN); 1.0 with no attacks.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// False-positive rate = FP / (FP + TN); 0.0 with no benign windows.
    pub fn fp_rate(&self) -> f64 {
        let denom = self.false_positives + self.true_negatives;
        if denom == 0 {
            0.0
        } else {
            self.false_positives as f64 / denom as f64
        }
    }

    /// False-negative rate = FN / (TP + FN); 0.0 with no attacks.
    pub fn fn_rate(&self) -> f64 {
        1.0 - self.recall()
    }

    /// F-measure (harmonic mean of precision and recall), the threshold-
    /// selection objective mentioned in the paper's Section 4.
    pub fn f1(&self) -> f64 {
        self.f_beta(1.0)
    }

    /// General F-beta score.
    pub fn f_beta(&self, beta: f64) -> f64 {
        let p = self.precision();
        let r = self.recall();
        let b2 = beta * beta;
        if p + r == 0.0 {
            return 0.0;
        }
        (1.0 + b2) * p * r / (b2 * p + r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Confusion {
        Confusion {
            true_positives: 8,
            false_positives: 2,
            true_negatives: 88,
            false_negatives: 2,
        }
    }

    #[test]
    fn rates() {
        let c = sample();
        assert!((c.precision() - 0.8).abs() < 1e-12);
        assert!((c.recall() - 0.8).abs() < 1e-12);
        assert!((c.fp_rate() - 2.0 / 90.0).abs() < 1e-12);
        assert!((c.fn_rate() - 0.2).abs() < 1e-12);
        assert!((c.f1() - 0.8).abs() < 1e-12);
        assert_eq!(c.total(), 100);
    }

    #[test]
    fn record_routes_to_cells() {
        let mut c = Confusion::default();
        c.record(true, true);
        c.record(true, false);
        c.record(false, true);
        c.record(false, false);
        assert_eq!(
            c,
            Confusion {
                true_positives: 1,
                false_positives: 1,
                true_negatives: 1,
                false_negatives: 1
            }
        );
    }

    #[test]
    fn degenerate_cases() {
        let c = Confusion::default();
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.fp_rate(), 0.0);
        assert_eq!(c.fn_rate(), 0.0);
    }

    #[test]
    fn f_beta_weights_recall() {
        let c = Confusion {
            true_positives: 5,
            false_positives: 0,
            true_negatives: 0,
            false_negatives: 5,
        };
        // precision 1, recall 0.5: F2 leans towards recall (lower).
        assert!(c.f_beta(2.0) < c.f_beta(0.5));
    }

    #[test]
    fn merge_adds() {
        let mut a = sample();
        a.merge(&sample());
        assert_eq!(a.total(), 200);
        assert_eq!(a.true_positives, 16);
    }

    #[test]
    fn all_wrong_f1_zero() {
        let c = Confusion {
            true_positives: 0,
            false_positives: 3,
            true_negatives: 0,
            false_negatives: 7,
        };
        assert_eq!(c.f1(), 0.0);
    }
}
