//! Policy bundles — the artifact an IT department actually deploys.
//!
//! A configured policy becomes a *bundle*: a versioned table mapping each
//! host to its per-feature thresholds, with a content checksum so a
//! compliance audit can verify "is every host running bundle v7?" without
//! comparing thresholds field by field. Serialises to a plain
//! tab-separated text format (greppable, diffable, VCS-friendly) and back.

use flowtab::FeatureKind;
use serde::{Deserialize, Serialize};

use crate::{Detector, PolicyOutcome};

/// A deployable configuration bundle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyBundle {
    /// Monotonic version, assigned by the console.
    pub version: u32,
    /// `(user, feature, threshold)` rows, sorted by (user, feature).
    pub entries: Vec<(u32, FeatureKind, f64)>,
}

impl PolicyBundle {
    /// Build a bundle for one feature from a policy outcome.
    pub fn from_outcome(version: u32, feature: FeatureKind, outcome: &PolicyOutcome) -> Self {
        let mut entries: Vec<(u32, FeatureKind, f64)> = outcome
            .thresholds
            .iter()
            .enumerate()
            .map(|(u, &t)| (u as u32, feature, t))
            .collect();
        entries.sort_by_key(|e| (e.0, e.1.index()));
        Self { version, entries }
    }

    /// Merge another bundle's entries (e.g. a second feature); rows with
    /// the same (user, feature) are replaced by the newcomer.
    pub fn merge(&mut self, other: &PolicyBundle) {
        for &(u, f, t) in &other.entries {
            match self
                .entries
                .binary_search_by(|e| (e.0, e.1.index()).cmp(&(u, f.index())))
            {
                Ok(i) => self.entries[i].2 = t,
                Err(i) => self.entries.insert(i, (u, f, t)),
            }
        }
        self.version = self.version.max(other.version);
    }

    /// FNV-1a checksum over the canonical serialisation — two bundles with
    /// the same rows always agree.
    pub fn checksum(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.to_text().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }

    /// Number of hosts covered.
    pub fn n_hosts(&self) -> usize {
        let mut users: Vec<u32> = self.entries.iter().map(|e| e.0).collect();
        users.dedup();
        users.len()
    }

    /// Instantiate the detectors this bundle configures.
    pub fn deploy(&self) -> Vec<Detector> {
        let mut detectors: Vec<Detector> = Vec::new();
        for &(user, feature, t) in &self.entries {
            if detectors.last().is_none_or(|d| d.user != user) {
                detectors.push(Detector::new(user));
            }
            detectors
                .last_mut()
                .expect("just pushed")
                .set_threshold(feature, t);
        }
        detectors
    }

    /// Serialise to the text format:
    /// header `#policy-bundle v<version>` then `user\tfeature\tthreshold`.
    pub fn to_text(&self) -> String {
        let mut out = format!("#policy-bundle v{}\n", self.version);
        for &(u, f, t) in &self.entries {
            out.push_str(&format!("{u}\t{}\t{t}\n", f.name()));
        }
        out
    }

    /// Parse the text format. Returns `None` on any malformed content
    /// (a corrupted bundle must not half-deploy).
    pub fn from_text(text: &str) -> Option<Self> {
        let mut lines = text.lines();
        let header = lines.next()?;
        let version: u32 = header.strip_prefix("#policy-bundle v")?.parse().ok()?;
        let mut entries = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let mut f = line.split('\t');
            let user: u32 = f.next()?.parse().ok()?;
            let name = f.next()?;
            let feature = FeatureKind::ALL.iter().find(|k| k.name() == name).copied()?;
            let threshold: f64 = f.next()?.parse().ok()?;
            if f.next().is_some() || !threshold.is_finite() || threshold < 0.0 {
                return None;
            }
            entries.push((user, feature, threshold));
        }
        let mut sorted = entries.clone();
        sorted.sort_by_key(|e| (e.0, e.1.index()));
        if sorted != entries {
            return None; // canonical order is part of the format
        }
        Some(Self { version, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Grouping, Policy, ThresholdHeuristic};
    use tailstats::EmpiricalDist;

    fn outcome(n: usize) -> PolicyOutcome {
        let train: Vec<EmpiricalDist> = (0..n)
            .map(|i| {
                EmpiricalDist::from_counts(
                    &(0..100u64).map(|x| x * (i as u64 + 1)).collect::<Vec<_>>(),
                )
            })
            .collect();
        Policy {
            grouping: Grouping::FullDiversity,
            heuristic: ThresholdHeuristic::P99,
        }
        .configure(&train)
    }

    #[test]
    fn text_round_trip() {
        let b = PolicyBundle::from_outcome(7, FeatureKind::TcpConnections, &outcome(5));
        let text = b.to_text();
        let parsed = PolicyBundle::from_text(&text).expect("parses");
        assert_eq!(parsed, b);
        assert_eq!(parsed.checksum(), b.checksum());
        assert_eq!(parsed.n_hosts(), 5);
    }

    #[test]
    fn merge_combines_features() {
        let mut b = PolicyBundle::from_outcome(1, FeatureKind::TcpConnections, &outcome(3));
        let u = PolicyBundle::from_outcome(2, FeatureKind::UdpConnections, &outcome(3));
        b.merge(&u);
        assert_eq!(b.version, 2);
        assert_eq!(b.entries.len(), 6);
        let detectors = b.deploy();
        assert_eq!(detectors.len(), 3);
        assert_eq!(detectors[0].monitored_features(), 2);
    }

    #[test]
    fn checksum_detects_tampering() {
        let b = PolicyBundle::from_outcome(3, FeatureKind::DnsConnections, &outcome(4));
        let mut tampered = b.clone();
        tampered.entries[2].2 += 1.0;
        assert_ne!(b.checksum(), tampered.checksum());
    }

    #[test]
    fn corrupted_text_rejected_whole() {
        let b = PolicyBundle::from_outcome(1, FeatureKind::TcpConnections, &outcome(3));
        let text = b.to_text();
        assert!(PolicyBundle::from_text(&text.replace("num-TCP", "num-XXX")).is_none());
        assert!(PolicyBundle::from_text(&text.replace('v', "w")).is_none());
        assert!(PolicyBundle::from_text("").is_none());
        // NaN threshold rejected.
        assert!(PolicyBundle::from_text("#policy-bundle v1\n0\tnum-TCP-connections\tNaN\n").is_none());
        // Out-of-order rows rejected (not canonical).
        let swapped = "#policy-bundle v1\n1\tnum-TCP-connections\t5\n0\tnum-TCP-connections\t3\n";
        assert!(PolicyBundle::from_text(swapped).is_none());
    }

    #[test]
    fn deploy_then_audit_is_compliant() {
        let out = outcome(4);
        let b = PolicyBundle::from_outcome(1, FeatureKind::TcpConnections, &out);
        let detectors = b.deploy();
        // Every deployed detector matches the outcome it came from.
        for (det, &t) in detectors.iter().zip(&out.thresholds) {
            assert_eq!(det.threshold(FeatureKind::TcpConnections), Some(t));
        }
    }

    #[test]
    fn merge_overwrites_same_key() {
        let mut a = PolicyBundle::from_outcome(1, FeatureKind::TcpConnections, &outcome(2));
        let before = a.entries[0].2;
        let mut newer = a.clone();
        newer.version = 5;
        for e in &mut newer.entries {
            e.2 = before + 100.0;
        }
        a.merge(&newer);
        assert_eq!(a.version, 5);
        assert_eq!(a.entries.len(), 2);
        assert_eq!(a.entries[0].2, before + 100.0);
    }
}
