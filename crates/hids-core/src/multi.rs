//! Concurrent multi-feature monitoring.
//!
//! The paper's problem statement has each HIDS monitoring *several*
//! features at once, each against its own threshold (and anticipates
//! hardware like Intel AMT tracking "large numbers of features
//! simultaneously"). The per-feature analyses elsewhere in this workspace
//! isolate one feature; this module composes them: a host's detector holds
//! one threshold per monitored feature, a window alarms when **any**
//! feature exceeds, and the false-positive cost of monitoring more
//! features is the union rate — the operational trade-off an IT department
//! actually faces when turning features on.

use flowtab::{FeatureKind, FeatureSeries};
use serde::{Deserialize, Serialize};

use crate::eval::FeatureDataset;
use crate::{Detector, Policy};

/// Per-feature policies for the whole detector (commonly the same policy
/// replicated across features, but the API allows mixing — e.g. a stricter
/// percentile on scan-prone features).
#[derive(Debug, Clone)]
pub struct MultiPolicy {
    /// `(feature, policy)` pairs; features not listed are unmonitored.
    pub per_feature: Vec<(FeatureKind, Policy)>,
}

impl MultiPolicy {
    /// The same policy on every one of the six features.
    pub fn uniform(policy: Policy) -> Self {
        Self {
            per_feature: FeatureKind::ALL
                .iter()
                .map(|&f| (f, policy.clone()))
                .collect(),
        }
    }

    /// The same policy on a chosen subset of features.
    pub fn on(features: &[FeatureKind], policy: Policy) -> Self {
        Self {
            per_feature: features.iter().map(|&f| (f, policy.clone())).collect(),
        }
    }

    /// Number of monitored features.
    pub fn n_features(&self) -> usize {
        self.per_feature.len()
    }
}

/// One user's multi-feature performance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiUserPerf {
    /// Fraction of test windows where **any** monitored feature exceeded
    /// its threshold (the union false-positive rate on benign traffic).
    pub fp_any: f64,
    /// Fraction of test windows where **at least two** features exceeded
    /// (multi-feature corroboration — a natural alert-triage filter).
    pub fp_corroborated: f64,
    /// Test windows that alarmed at all.
    pub alarm_windows: u64,
}

/// Result of configuring and evaluating a multi-feature policy.
#[derive(Debug, Clone)]
pub struct MultiEvaluation {
    /// One detector per user, fully configured.
    pub detectors: Vec<Detector>,
    /// Per-user union FP statistics.
    pub users: Vec<MultiUserPerf>,
    /// Features monitored, in evaluation order.
    pub features: Vec<FeatureKind>,
}

impl MultiEvaluation {
    /// Population-mean union FP rate.
    pub fn mean_fp_any(&self) -> f64 {
        self.users.iter().map(|u| u.fp_any).sum::<f64>() / self.users.len().max(1) as f64
    }

    /// Population-mean corroborated (≥2 features) FP rate.
    pub fn mean_fp_corroborated(&self) -> f64 {
        self.users.iter().map(|u| u.fp_corroborated).sum::<f64>()
            / self.users.len().max(1) as f64
    }
}

/// Configure per-user detectors for every monitored feature and evaluate
/// the union false-positive rate on the test week.
///
/// `train`/`test` are the per-user full feature series (all six features);
/// each feature's thresholds are computed by its own policy over the
/// per-user training distributions of that feature.
///
/// # Panics
/// Panics when `train` and `test` differ in length or are empty.
pub fn evaluate_multi(
    train: &[FeatureSeries],
    test: &[FeatureSeries],
    policy: &MultiPolicy,
) -> MultiEvaluation {
    assert_eq!(train.len(), test.len(), "one train and one test per user");
    assert!(!train.is_empty(), "need at least one user");
    let n_users = train.len();

    let mut detectors: Vec<Detector> = (0..n_users).map(|u| Detector::new(u as u32)).collect();
    let mut features = Vec::with_capacity(policy.per_feature.len());
    for (feature, feature_policy) in &policy.per_feature {
        features.push(*feature);
        let ds = FeatureDataset::from_series(train, test, *feature);
        let outcome = feature_policy.configure(&ds.train);
        for (det, &t) in detectors.iter_mut().zip(&outcome.thresholds) {
            det.set_threshold(*feature, t);
        }
    }

    let users = detectors
        .iter()
        .zip(test)
        .map(|(det, series)| {
            let mut any = 0u64;
            let mut corroborated = 0u64;
            for (w, counts) in series.windows.iter().enumerate() {
                let alerts = det.evaluate(w, counts);
                if !alerts.is_empty() {
                    any += 1;
                }
                if alerts.len() >= 2 {
                    corroborated += 1;
                }
            }
            let n = series.len().max(1) as f64;
            MultiUserPerf {
                fp_any: any as f64 / n,
                fp_corroborated: corroborated as f64 / n,
                alarm_windows: any,
            }
        })
        .collect();

    MultiEvaluation {
        detectors,
        users,
        features,
    }
}

/// Detection rate of an additive attack on `target` feature when the whole
/// detector (all monitored features) is running: fraction of attacked
/// windows in which any feature alarms. With single-feature attacks this
/// equals the target feature's detection, but correlated features (SYN
/// rises with TCP, distinct with both) corroborate.
pub fn multi_detection(
    detectors: &[Detector],
    test: &[FeatureSeries],
    overlay: &FeatureSeries,
    _target: FeatureKind,
) -> Vec<f64> {
    detectors
        .iter()
        .zip(test)
        .map(|(det, series)| {
            let attacked = series.overlay(overlay);
            let mut windows = 0u64;
            let mut detected = 0u64;
            for (w, counts) in attacked.windows.iter().enumerate() {
                let zombie = overlay.windows.get(w % overlay.len()).copied().unwrap_or_default();
                if zombie == flowtab::FeatureCounts::default() {
                    continue;
                }
                windows += 1;
                if !det.evaluate(w, counts).is_empty() {
                    detected += 1;
                }
            }
            if windows == 0 {
                0.0
            } else {
                detected as f64 / windows as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Grouping, ThresholdHeuristic};
    use flowtab::{FeatureCounts, Windowing};

    fn series(tcp: &[u64], udp: &[u64]) -> FeatureSeries {
        let mut s = FeatureSeries::zeros(Windowing::FIFTEEN_MIN, tcp.len());
        for (w, (&t, &u)) in tcp.iter().zip(udp).enumerate() {
            *s.windows[w].get_mut(FeatureKind::TcpConnections) = t;
            *s.windows[w].get_mut(FeatureKind::UdpConnections) = u;
        }
        s
    }

    fn p99_full() -> Policy {
        Policy {
            grouping: Grouping::FullDiversity,
            heuristic: ThresholdHeuristic::P99,
        }
    }

    #[test]
    fn union_fp_at_least_single_feature_fp() {
        // 200 windows; user exceeds TCP in 2 of them and UDP in 2 others.
        let mut tcp = vec![10u64; 200];
        let mut udp = vec![5u64; 200];
        tcp[50] = 1000;
        tcp[51] = 1000;
        udp[100] = 800;
        udp[101] = 800;
        let train = vec![series(&tcp, &udp)];
        // Test week has the same spikes at different places.
        let mut tcp2 = vec![10u64; 200];
        let mut udp2 = vec![5u64; 200];
        tcp2[10] = 1000;
        udp2[20] = 800;
        let test = vec![series(&tcp2, &udp2)];

        let single = evaluate_multi(
            &train,
            &test,
            &MultiPolicy::on(&[FeatureKind::TcpConnections], p99_full()),
        );
        let both = evaluate_multi(
            &train,
            &test,
            &MultiPolicy::on(
                &[FeatureKind::TcpConnections, FeatureKind::UdpConnections],
                p99_full(),
            ),
        );
        assert!(both.mean_fp_any() >= single.mean_fp_any());
        assert_eq!(both.users[0].alarm_windows, 2, "tcp spike + udp spike");
        assert_eq!(single.users[0].alarm_windows, 1);
    }

    #[test]
    fn corroboration_requires_two_features() {
        let mut tcp = vec![10u64; 100];
        let mut udp = vec![5u64; 100];
        // Joint spike in one window, single-feature spike in another.
        tcp[10] = 1000;
        udp[10] = 900;
        tcp[20] = 1000;
        let train = vec![series(&vec![10; 100], &vec![5; 100])];
        let test = vec![series(&tcp, &udp)];
        let eval = evaluate_multi(
            &train,
            &test,
            &MultiPolicy::on(
                &[FeatureKind::TcpConnections, FeatureKind::UdpConnections],
                p99_full(),
            ),
        );
        let u = eval.users[0];
        assert_eq!(u.alarm_windows, 2);
        assert!((u.fp_corroborated - 0.01).abs() < 1e-9, "one joint window");
    }

    #[test]
    fn uniform_policy_monitors_all_six() {
        let train = vec![series(&[1, 2, 3, 4], &[1, 1, 2, 2])];
        let test = train.clone();
        let eval = evaluate_multi(&train, &test, &MultiPolicy::uniform(p99_full()));
        assert_eq!(eval.features.len(), 6);
        assert_eq!(eval.detectors[0].monitored_features(), 6);
    }

    #[test]
    fn multi_detection_counts_overlay_windows() {
        let train = vec![series(&[10; 50], &[5; 50])];
        let test = train.clone();
        let eval = evaluate_multi(
            &train,
            &test,
            &MultiPolicy::on(&[FeatureKind::TcpConnections], p99_full()),
        );
        // Overlay: attack in half the windows, large enough to cross.
        let mut overlay = FeatureSeries::zeros(Windowing::FIFTEEN_MIN, 50);
        for w in (0..50).step_by(2) {
            *overlay.windows[w].get_mut(FeatureKind::TcpConnections) = 500;
        }
        let det = multi_detection(
            &eval.detectors,
            &test,
            &overlay,
            FeatureKind::TcpConnections,
        );
        assert_eq!(det, vec![1.0]);
        // A zero overlay has no attacked windows.
        let silent = FeatureSeries::zeros(Windowing::FIFTEEN_MIN, 50);
        assert_eq!(
            multi_detection(&eval.detectors, &test, &silent, FeatureKind::TcpConnections),
            vec![0.0]
        );
        let _ = FeatureCounts::default();
    }
}
