//! The paper's evaluation methodology: train on week *n*, test on week
//! *n+1*, measure every user's `⟨FN, FP⟩` and utility.

use flowtab::{FeatureKind, FeatureSeries};
use serde::{Deserialize, Serialize};
use tailstats::EmpiricalDist;

pub use crate::threshold::AttackSweep;
use crate::{Policy, PolicyOutcome};

/// One feature's train/test data for a whole population.
#[derive(Debug, Clone)]
pub struct FeatureDataset {
    /// Which feature this dataset captures.
    pub feature: FeatureKind,
    /// Per-user training distributions (week *n*).
    pub train: Vec<EmpiricalDist>,
    /// Per-user test distributions (week *n+1*).
    pub test: Vec<EmpiricalDist>,
    /// Raw per-user test window counts (needed for alarm counting and
    /// attack-window injection).
    pub test_counts: Vec<Vec<u64>>,
}

/// Why a [`FeatureDataset`] could not be built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetError {
    /// Train and test slices cover different user counts.
    PopulationMismatch {
        /// Users in the training slice.
        train: usize,
        /// Users in the test slice.
        test: usize,
    },
    /// No users at all.
    EmptyPopulation,
}

impl core::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DatasetError::PopulationMismatch { train, test } => {
                write!(f, "one train and one test per user (got {train} vs {test})")
            }
            DatasetError::EmptyPopulation => write!(f, "need at least one user"),
        }
    }
}

impl std::error::Error for DatasetError {}

impl FeatureDataset {
    /// Build from per-user train/test feature series.
    ///
    /// # Panics
    /// Panics when the two slices differ in length or are empty; callers
    /// fed by unreliable telemetry should use
    /// [`FeatureDataset::try_from_series`].
    // The panic is this constructor's documented contract; fallible
    // callers use `try_from_series`.
    #[allow(clippy::panic)]
    pub fn from_series(
        train: &[FeatureSeries],
        test: &[FeatureSeries],
        feature: FeatureKind,
    ) -> Self {
        match Self::try_from_series(train, test, feature) {
            Ok(ds) => ds,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`FeatureDataset::from_series`].
    pub fn try_from_series(
        train: &[FeatureSeries],
        test: &[FeatureSeries],
        feature: FeatureKind,
    ) -> Result<Self, DatasetError> {
        if train.len() != test.len() {
            return Err(DatasetError::PopulationMismatch {
                train: train.len(),
                test: test.len(),
            });
        }
        if train.is_empty() {
            return Err(DatasetError::EmptyPopulation);
        }
        let train_d = train
            .iter()
            .map(|s| EmpiricalDist::from_counts(&s.feature(feature)))
            .collect();
        let test_counts: Vec<Vec<u64>> = test.iter().map(|s| s.feature(feature)).collect();
        let test_d = test_counts
            .iter()
            .map(|c| EmpiricalDist::from_counts(c))
            .collect();
        Ok(Self {
            feature,
            train: train_d,
            test: test_d,
            test_counts,
        })
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.train.len()
    }

    /// The largest per-window value any user produced in training — the
    /// paper's cap on meaningful attack sizes.
    pub fn max_observed(&self) -> f64 {
        self.train
            .iter()
            .map(|d| d.max())
            .fold(0.0f64, f64::max)
            .max(1.0)
    }

    /// Default attack sweep for this dataset.
    pub fn default_sweep(&self) -> AttackSweep {
        AttackSweep::up_to(self.max_observed())
    }
}

/// Evaluation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// FN weight in the utility `U = 1 − [w·FN + (1−w)·FP]`.
    pub w: f64,
    /// Attack sweep used for the FN term.
    pub sweep: AttackSweep,
}

/// One user's realised performance under a policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserPerf {
    /// Configured threshold.
    pub threshold: f64,
    /// Empirical test false-positive rate `P(g > T)`.
    pub fp: f64,
    /// Mean test false-negative rate over the attack sweep.
    pub fn_rate: f64,
    /// Utility at the evaluation weight.
    pub utility: f64,
    /// Number of test windows whose benign traffic alone exceeded the
    /// threshold (the alarms an IT console receives).
    pub false_alarms: u64,
}

/// A policy's evaluation over a whole population.
#[derive(Debug, Clone)]
pub struct PolicyEvaluation {
    /// The policy outcome (groups + thresholds).
    pub outcome: PolicyOutcome,
    /// Per-user performance.
    pub users: Vec<UserPerf>,
    /// Evaluation parameters used.
    pub config: EvalConfig,
}

impl PolicyEvaluation {
    /// Population-mean utility (the paper's system-wide metric).
    pub fn mean_utility(&self) -> f64 {
        self.users.iter().map(|u| u.utility).sum::<f64>() / self.users.len() as f64
    }

    /// Total false alarms across the population (per test week).
    pub fn total_false_alarms(&self) -> u64 {
        self.users.iter().map(|u| u.false_alarms).sum()
    }

    /// All per-user utilities (for boxplots).
    pub fn utilities(&self) -> Vec<f64> {
        self.users.iter().map(|u| u.utility).collect()
    }

    /// Fraction of users whose per-window alarm probability under an
    /// *additive attack of size `b`* is positive in at least `1` of the
    /// attacked windows — see [`evaluate_policy`] for the detection model
    /// used by Figure 4(a); this helper reports, for each user, the
    /// probability that a single attacked window raises an alarm.
    pub fn per_window_detection(&self, dataset: &FeatureDataset, b: f64) -> Vec<f64> {
        self.users
            .iter()
            .zip(&dataset.test)
            .map(|(perf, test)| 1.0 - test.below(perf.threshold - b))
            .collect()
    }
}

/// Configure `policy` on the training week and evaluate it on the test
/// week.
pub fn evaluate_policy(
    dataset: &FeatureDataset,
    policy: &Policy,
    config: &EvalConfig,
) -> PolicyEvaluation {
    let outcome = policy.configure(&dataset.train);
    let users = crate::par::par_map(&outcome.thresholds, |i, &t| {
        let test = &dataset.test[i];
        let counts = &dataset.test_counts[i];
        let fp = test.exceedance(t);
        let fn_rate = config.sweep.mean_fn(test, t);
        let utility = 1.0 - (config.w * fn_rate + (1.0 - config.w) * fp);
        let false_alarms = counts.iter().filter(|&&c| c as f64 > t).count() as u64;
        UserPerf {
            threshold: t,
            fp,
            fn_rate,
            utility,
            false_alarms,
        }
    });
    PolicyEvaluation {
        outcome,
        users,
        config: config.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Grouping, PartialMethod, ThresholdHeuristic};
    use flowtab::{FeatureCounts, Windowing};

    /// Build a per-user series whose TCP counts follow `gen(window)`.
    fn series(n_windows: usize, gen: impl Fn(usize) -> u64) -> FeatureSeries {
        let mut s = FeatureSeries::zeros(Windowing::FIFTEEN_MIN, n_windows);
        for (w, c) in s.windows.iter_mut().enumerate() {
            *c = FeatureCounts::default();
            *c.get_mut(FeatureKind::TcpConnections) = gen(w);
        }
        s
    }

    /// A light/heavy two-population dataset: lights cycle 0..20, heavies
    /// cycle 0..2000, with train ≈ test.
    fn dataset(n_light: usize, n_heavy: usize) -> FeatureDataset {
        let mut train = Vec::new();
        let mut test = Vec::new();
        for i in 0..(n_light + n_heavy) {
            let scale = if i < n_light { 1u64 } else { 100 };
            train.push(series(200, move |w| (w as u64 % 20) * scale));
            test.push(series(200, move |w| ((w as u64 + 7) % 20) * scale));
        }
        FeatureDataset::from_series(&train, &test, FeatureKind::TcpConnections)
    }

    fn p99_policy(grouping: Grouping) -> Policy {
        Policy {
            grouping,
            heuristic: ThresholdHeuristic::P99,
        }
    }

    #[test]
    fn diversity_beats_monoculture_for_light_users() {
        let ds = dataset(16, 4);
        let config = EvalConfig {
            w: 0.5,
            sweep: ds.default_sweep(),
        };
        let homog = evaluate_policy(&ds, &p99_policy(Grouping::Homogeneous), &config);
        let full = evaluate_policy(&ds, &p99_policy(Grouping::FullDiversity), &config);

        // The monoculture threshold is set by heavy users, so light users
        // detect almost nothing (high FN).
        for i in 0..16 {
            assert!(
                full.users[i].fn_rate < homog.users[i].fn_rate,
                "light user {i}: full FN {} < homog FN {}",
                full.users[i].fn_rate,
                homog.users[i].fn_rate
            );
        }
        assert!(full.mean_utility() > homog.mean_utility());
    }

    #[test]
    fn partial_diversity_sits_between() {
        let ds = dataset(32, 8);
        let config = EvalConfig {
            w: 0.5,
            sweep: ds.default_sweep(),
        };
        let homog = evaluate_policy(&ds, &p99_policy(Grouping::Homogeneous), &config);
        let partial = evaluate_policy(
            &ds,
            &p99_policy(Grouping::Partial(PartialMethod::EIGHT_PARTIAL)),
            &config,
        );
        let full = evaluate_policy(&ds, &p99_policy(Grouping::FullDiversity), &config);
        let (uh, up, uf) = (
            homog.mean_utility(),
            partial.mean_utility(),
            full.mean_utility(),
        );
        assert!(up >= uh, "partial ({up}) >= homogeneous ({uh})");
        assert!(uf >= up - 0.02, "full ({uf}) ~>= partial ({up})");
    }

    #[test]
    fn utility_gap_grows_with_w() {
        // The paper's Figure 3(b): the diversity advantage grows as FN
        // weight grows.
        let ds = dataset(16, 4);
        let sweep = ds.default_sweep();
        let gap = |w: f64| {
            let config = EvalConfig {
                w,
                sweep: sweep.clone(),
            };
            let homog = evaluate_policy(&ds, &p99_policy(Grouping::Homogeneous), &config);
            let full = evaluate_policy(&ds, &p99_policy(Grouping::FullDiversity), &config);
            full.mean_utility() - homog.mean_utility()
        };
        let g_low = gap(0.1);
        let g_high = gap(0.9);
        assert!(
            g_high > g_low,
            "gap at w=0.9 ({g_high}) exceeds gap at w=0.1 ({g_low})"
        );
    }

    #[test]
    fn false_alarm_counting_matches_fp() {
        let ds = dataset(4, 1);
        let config = EvalConfig {
            w: 0.4,
            sweep: ds.default_sweep(),
        };
        let eval = evaluate_policy(&ds, &p99_policy(Grouping::FullDiversity), &config);
        for (perf, counts) in eval.users.iter().zip(&ds.test_counts) {
            let manual = counts.iter().filter(|&&c| c as f64 > perf.threshold).count() as u64;
            assert_eq!(perf.false_alarms, manual);
            let rate = manual as f64 / counts.len() as f64;
            assert!((rate - perf.fp).abs() < 1e-9);
        }
    }

    #[test]
    fn per_window_detection_monotone_in_attack_size() {
        let ds = dataset(8, 2);
        let config = EvalConfig {
            w: 0.4,
            sweep: ds.default_sweep(),
        };
        let eval = evaluate_policy(&ds, &p99_policy(Grouping::FullDiversity), &config);
        let small: f64 = eval.per_window_detection(&ds, 5.0).iter().sum();
        let large: f64 = eval.per_window_detection(&ds, 5000.0).iter().sum();
        assert!(large >= small);
        assert!(eval
            .per_window_detection(&ds, 1e9)
            .iter()
            .all(|&p| (p - 1.0).abs() < 1e-12));
    }

    #[test]
    fn utilities_bounded() {
        let ds = dataset(10, 3);
        for w in [0.0, 0.4, 1.0] {
            let config = EvalConfig {
                w,
                sweep: ds.default_sweep(),
            };
            for grouping in [
                Grouping::Homogeneous,
                Grouping::FullDiversity,
                Grouping::Partial(PartialMethod::EIGHT_PARTIAL),
            ] {
                let eval = evaluate_policy(&ds, &p99_policy(grouping), &config);
                for u in &eval.users {
                    assert!((0.0..=1.0).contains(&u.utility), "{u:?}");
                    assert!((0.0..=1.0).contains(&u.fp));
                    assert!((0.0..=1.0).contains(&u.fn_rate));
                }
            }
        }
    }

    #[test]
    fn max_observed_caps_sweep() {
        let ds = dataset(2, 1);
        assert_eq!(ds.max_observed(), 1900.0);
        let sweep = ds.default_sweep();
        assert_eq!(sweep.b_max(), 1900.0);
    }

    #[test]
    #[should_panic(expected = "one train and one test per user")]
    fn mismatched_population_rejected() {
        let a = vec![series(10, |w| w as u64)];
        let b: Vec<FeatureSeries> = Vec::new();
        let _ = FeatureDataset::from_series(&a, &b, FeatureKind::TcpConnections);
    }
}
