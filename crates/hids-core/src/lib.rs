//! # hids-core — behavioral HIDS configuration policies
//!
//! The paper's primary contribution: given per-user training distributions
//! of traffic features, configure each host's anomaly-detector threshold
//! under an enterprise *policy* = (threshold heuristic × grouping method),
//! then evaluate every user's false-positive / false-negative balance on
//! held-out test data.
//!
//! * [`threshold`] — heuristics: percentile (the operators' 99th-percentile
//!   rule of thumb), mean + k·σ, F-measure-optimal, utility-maximising.
//! * [`policy`] — groupings: homogeneous (monoculture), full diversity
//!   (per-host), partial diversity (the paper's knee heuristic and k-means).
//! * [`detector`] — the per-host runtime object: thresholds + alerting.
//! * [`eval`] — the train-week-n / test-week-n+1 evaluation methodology,
//!   attack-size sweeps, and per-user utility
//!   `U = 1 − [w·FN + (1−w)·FP]`.
//!
//! ```
//! use hids_core::{Policy, Grouping, ThresholdHeuristic, eval::FeatureDataset};
//! use flowtab::FeatureKind;
//! # use flowtab::{FeatureSeries, Windowing, FeatureCounts};
//! # let mk = |vals: &[u64]| {
//! #     let mut s = FeatureSeries::zeros(Windowing::FIFTEEN_MIN, vals.len());
//! #     for (w, &v) in vals.iter().enumerate() {
//! #         *s.windows[w].get_mut(FeatureKind::TcpConnections) = v;
//! #     }
//! #     s
//! # };
//! # let train = vec![mk(&[1, 2, 3, 50]), mk(&[10, 20, 30, 500])];
//! # let test = vec![mk(&[2, 2, 4, 40]), mk(&[15, 25, 35, 450])];
//! let ds = FeatureDataset::from_series(&train, &test, FeatureKind::TcpConnections);
//! let policy = Policy {
//!     grouping: Grouping::FullDiversity,
//!     heuristic: ThresholdHeuristic::Percentile(0.99),
//! };
//! let outcome = policy.configure(&ds.train);
//! assert_eq!(outcome.thresholds.len(), 2); // one threshold per user
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod bundle;
pub mod degraded;
pub mod detector;
pub mod drift;
pub mod eval;
pub mod incremental;
pub mod multi;
pub mod par;
pub mod policy;
pub mod roc;
pub mod sweep;
pub mod threshold;

pub use adaptive::{realized_fp_series, AdaptiveThreshold, UpdateStrategy};
pub use bundle::PolicyBundle;
pub use degraded::{
    evaluate_policy_degraded, score_source, utility_of, DegradedDataset, DegradedError,
    DegradedEvalConfig, DegradedEvaluation, DegradedUserPerf, HostStatus,
};
pub use detector::{Alert, Detector};
pub use drift::{DriftConfig, DriftState, DriftTracker};
pub use eval::{AttackSweep, DatasetError, EvalConfig, FeatureDataset, PolicyEvaluation, UserPerf};
pub use incremental::{degraded_dataset, SketchAccumulator, WindowAccumulator};
pub use multi::{evaluate_multi, multi_detection, MultiEvaluation, MultiPolicy, MultiUserPerf};
pub use par::{current_threads, par_map, par_map_range, set_threads};
pub use policy::{ConfigureError, Grouping, PartialMethod, Policy, PolicyOutcome};
pub use roc::{RocCurve, RocPoint};
pub use sweep::SweepTable;
pub use threshold::ThresholdHeuristic;
