//! Single-pass threshold-sweep kernel.
//!
//! Everything the optimising heuristics and ROC analysis need — the
//! false-positive rate and sweep-averaged false-negative rate of *every*
//! candidate threshold of a distribution — computed in one batched pass.
//!
//! The naive formulation queries each candidate independently:
//! `exceedance(t)` is a binary search and `mean_fn(dist, t)` is `S`
//! binary searches (one per attack size), so scoring all `m` candidates
//! costs `O(m · S · log n)` searches plus, historically, one size-grid
//! allocation per candidate. But both quantities are monotone counts over
//! *sorted* data: for a fixed attack size `b`, as the candidate threshold
//! `t` ascends, the count of samples below `t − b` only grows. The kernel
//! exploits this with a merge-style two-pointer sweep per attack size —
//! `O(S · (n + m))` total, zero allocations beyond the three output
//! vectors.
//!
//! The accumulation order matches the naive formulation exactly (outer
//! loop over ascending attack sizes, each term `count/n` added in turn,
//! one final division by `S`), so results are **bit-identical** to
//! calling [`AttackSweep::mean_fn`] and `exceedance` per candidate — a
//! property the equivalence suite in `tests/` asserts over random
//! distributions.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

use hids_metrics::Registry;
use tailstats::{EmpiricalDist, QuantileSource};

use crate::threshold::AttackSweep;

// Process-wide kernel work counters. Plain commutative additions on
// relaxed atomics: totals depend only on the work performed, never on
// which thread performed it, so a harvested snapshot is deterministic at
// any `--threads`. Wall-clock phase timings are inherently not, so they
// harvest into the registry's quarantined volatile section instead.
static TABLES: AtomicU64 = AtomicU64::new(0);
static CANDIDATES: AtomicU64 = AtomicU64::new(0);
static SIZE_PASSES: AtomicU64 = AtomicU64::new(0);
static PATH_LATTICE: AtomicU64 = AtomicU64::new(0);
static PATH_GENERAL: AtomicU64 = AtomicU64::new(0);
static PATH_WEIGHTED: AtomicU64 = AtomicU64::new(0);
static PREPARE_NANOS: AtomicU64 = AtomicU64::new(0);
static ACCUMULATE_NANOS: AtomicU64 = AtomicU64::new(0);

/// Harvest (read **and reset**) the kernel's process-wide work counters
/// into `reg`. Harvest semantics make consecutive runs in one process
/// independent: each harvest accounts exactly the work since the last.
///
/// Deterministic families:
/// * `hids_sweep_tables_total` — [`SweepTable::compute`] calls;
/// * `hids_sweep_candidates_total` — candidate thresholds scored;
/// * `hids_sweep_size_passes_total` — per-attack-size accumulation passes;
/// * `hids_sweep_path_total{path}` — lattice fast path vs general merge.
///
/// Volatile (excluded from the deterministic render):
/// * `hids_sweep_phase_nanos{phase}` — wall-clock per kernel phase.
pub fn export_metrics(reg: &mut Registry) {
    reg.register_counter(
        "hids_sweep_tables_total",
        "Threshold-sweep tables computed by the kernel",
    );
    reg.register_counter(
        "hids_sweep_candidates_total",
        "Candidate thresholds scored across all sweep tables",
    );
    reg.register_counter(
        "hids_sweep_size_passes_total",
        "Per-attack-size accumulation passes executed",
    );
    reg.register_counter(
        "hids_sweep_path_total",
        "Sweep-table computations by accumulation path",
    );
    reg.counter_add("hids_sweep_tables_total", &[], TABLES.swap(0, Relaxed));
    reg.counter_add(
        "hids_sweep_candidates_total",
        &[],
        CANDIDATES.swap(0, Relaxed),
    );
    reg.counter_add(
        "hids_sweep_size_passes_total",
        &[],
        SIZE_PASSES.swap(0, Relaxed),
    );
    reg.counter_add(
        "hids_sweep_path_total",
        &[("path", "lattice")],
        PATH_LATTICE.swap(0, Relaxed),
    );
    reg.counter_add(
        "hids_sweep_path_total",
        &[("path", "general")],
        PATH_GENERAL.swap(0, Relaxed),
    );
    reg.counter_add(
        "hids_sweep_path_total",
        &[("path", "weighted")],
        PATH_WEIGHTED.swap(0, Relaxed),
    );
    reg.register_volatile(
        "hids_sweep_phase_nanos",
        "Wall-clock nanoseconds per kernel phase",
    );
    reg.volatile_add(
        "hids_sweep_phase_nanos",
        &[("phase", "prepare")],
        PREPARE_NANOS.swap(0, Relaxed) as f64,
    );
    reg.volatile_add(
        "hids_sweep_phase_nanos",
        &[("phase", "accumulate")],
        ACCUMULATE_NANOS.swap(0, Relaxed) as f64,
    );
}

/// Discard any accumulated kernel counters (test isolation).
pub fn reset_metrics() {
    for c in [
        &TABLES,
        &CANDIDATES,
        &SIZE_PASSES,
        &PATH_LATTICE,
        &PATH_GENERAL,
        &PATH_WEIGHTED,
        &PREPARE_NANOS,
        &ACCUMULATE_NANOS,
    ] {
        c.store(0, Relaxed);
    }
}

/// The scored candidate thresholds of one distribution under one attack
/// sweep: ascending thresholds with each one's FP and mean-FN rate.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepTable {
    thresholds: Vec<f64>,
    fp: Vec<f64>,
    mean_fn: Vec<f64>,
}

impl SweepTable {
    /// Score every candidate threshold — each distinct observed value of
    /// `dist` plus one step above its maximum — against `sweep`.
    pub fn compute(dist: &EmpiricalDist, sweep: &AttackSweep) -> Self {
        let prepare_started = Instant::now();
        let samples = dist.samples();
        let n = samples.len();

        // Ascending distinct values + (max + 1); alongside each, the
        // count of samples ≤ it (its CDF numerator, free during the scan).
        let mut thresholds: Vec<f64> = Vec::with_capacity(n + 1);
        let mut le_counts: Vec<usize> = Vec::with_capacity(n + 1);
        for (i, &v) in samples.iter().enumerate() {
            if i + 1 == n || samples[i + 1] != v {
                thresholds.push(v);
                le_counts.push(i + 1);
            }
        }
        thresholds.push(dist.max() + 1.0);
        le_counts.push(n);
        let m = thresholds.len();

        let fp: Vec<f64> = le_counts
            .iter()
            .map(|&c| 1.0 - c as f64 / n as f64)
            .collect();

        // mean_fn[i] = mean over sizes b of P(g < t_i − b). Adding each
        // size's `count/n` term per candidate (not summing raw counts)
        // reproduces the naive float accumulation bit for bit; `frac`
        // hoists the divisions out of the hot loops.
        //
        // Two exact shortcuts keep the passes cheap:
        // * candidates with t ≤ b + min(samples) have a below-count of 0,
        //   and `x + 0.0` is bitwise `x` for the non-negative accumulator,
        //   so each size's zero prefix is skipped outright;
        // * feature counts live on the integer lattice, so when every
        //   sample is integral (and the value range is sane) the per-size
        //   merge collapses to a branchless cumulative-count lookup:
        //   #{g < t − b} = #{g ≤ ⌈t − b⌉ − 1}.
        let frac: Vec<f64> = (0..=n).map(|k| k as f64 / n as f64).collect();
        let sizes = sweep.sizes();
        let mut acc = vec![0.0f64; m];
        let lo = samples[0];
        let hi = samples[n - 1];
        let lattice = hi - lo <= (n as f64) * 64.0 + 4096.0
            && lo.abs() <= 1e15
            && hi.abs() <= 1e15
            && samples.iter().all(|s| s.fract() == 0.0);
        TABLES.fetch_add(1, Relaxed);
        CANDIDATES.fetch_add(m as u64, Relaxed);
        SIZE_PASSES.fetch_add(sizes.len() as u64, Relaxed);
        if lattice {
            PATH_LATTICE.fetch_add(1, Relaxed);
        } else {
            PATH_GENERAL.fetch_add(1, Relaxed);
        }
        let accumulate_started = Instant::now();
        PREPARE_NANOS.fetch_add(
            (accumulate_started - prepare_started).as_nanos() as u64,
            Relaxed,
        );
        if lattice {
            // cumf[0] = frac[0] (= +0.0) is the explicit "cut at or below
            // lo: nothing strictly below" slot; cumf[j] for j ≥ 1 =
            // frac[#{samples ≤ lo + j − 1}] — count-below folded straight
            // into its already-divided term.
            let range = (hi - lo) as usize;
            let mut cum = vec![0usize; range + 1];
            for &s in samples {
                cum[(s - lo) as usize] += 1;
            }
            let mut cumf: Vec<f64> = Vec::with_capacity(range + 2);
            cumf.push(frac[0]);
            let mut running = 0usize;
            for &c in &cum {
                running += c;
                cumf.push(frac[running]);
            }
            for &b in sizes {
                // The skip predicate evaluates the same `t − b` the loop
                // body does, so prefix membership is decided on the exact
                // rounded cut value. It is purely an optimisation: a
                // skipped candidate's term is cumf[0] = +0.0, which the
                // accumulator absorbs bitwise.
                let start = thresholds.partition_point(|&t| t - b <= lo);
                for (slot, &t) in acc[start..].iter_mut().zip(&thresholds[start..]) {
                    // #{g < c} on an integer lattice is #{g ≤ ⌈c⌉ − 1},
                    // exact for fractional cuts (⌊c⌋ = ⌈c⌉ − 1, the
                    // fractional-attack-size case) and integral cuts
                    // alike. The index is shifted by one so a cut at or
                    // below lo lands on the explicit zero slot rather
                    // than depending on the skip predicate: ⌈c⌉ − lo ≤ 0
                    // would otherwise cast-saturate to slot 0 and claim
                    // the samples *equal to* lo as "below". `max` keeps
                    // the cast in range, and `min` clamps oversized cuts
                    // to "all below".
                    let j = ((t - b).ceil() - lo).max(0.0) as usize;
                    *slot += cumf[j.min(range + 1)];
                }
            }
        } else {
            // General reals: merge-style two-pointer pass per size — t
            // ascends, so t − b ascends, so the strictly-below pointer
            // only moves forward.
            for &b in sizes {
                let start = thresholds.partition_point(|&t| t - b <= lo);
                let mut ptr = 0usize;
                for (slot, &t) in acc[start..].iter_mut().zip(&thresholds[start..]) {
                    let cut = t - b;
                    while ptr < n && samples[ptr] < cut {
                        ptr += 1;
                    }
                    *slot += frac[ptr];
                }
            }
        }
        let n_sizes = sizes.len() as f64;
        let mean_fn: Vec<f64> = acc.into_iter().map(|s| s / n_sizes).collect();
        ACCUMULATE_NANOS.fetch_add(accumulate_started.elapsed().as_nanos() as u64, Relaxed);

        Self {
            thresholds,
            fp,
            mean_fn,
        }
    }

    /// Score every candidate threshold of a [`QuantileSource`]: the exact
    /// backend takes the historical bit-identical [`compute`](Self::compute)
    /// path; the sketch backend runs the weighted kernel over its
    /// `(value, weight)` summary.
    pub fn compute_source(source: &QuantileSource, sweep: &AttackSweep) -> Self {
        match source {
            QuantileSource::Exact(d) => Self::compute(d, sweep),
            QuantileSource::Sketch(s) => Self::compute_weighted(&s.weighted_items(), sweep),
        }
    }

    /// The weighted-sample kernel: candidates are the distinct summary
    /// values (ascending) plus one step above the maximum, with FP and
    /// mean-FN computed from cumulative *weights* instead of raw sample
    /// counts — `O(S · (k + m))` for `k` summary items, independent of the
    /// stream length the sketch summarises.
    ///
    /// `items` must be ascending in value with positive weights (the shape
    /// [`tailstats::KllSketch::weighted_items`] returns). An empty summary
    /// yields the one-candidate table `{t: 1.0, fp: 0, fn: 0}` rather than
    /// panicking, honouring the workspace no-panic bar.
    pub fn compute_weighted(items: &[(u64, u64)], sweep: &AttackSweep) -> Self {
        let prepare_started = Instant::now();
        let total: u64 = items.iter().map(|&(_, w)| w).sum();
        if total == 0 {
            return Self {
                thresholds: vec![1.0],
                fp: vec![0.0],
                mean_fn: vec![0.0],
            };
        }
        let n = total as f64;
        let mut thresholds: Vec<f64> = Vec::with_capacity(items.len() + 1);
        let mut le_weights: Vec<u64> = Vec::with_capacity(items.len() + 1);
        let mut running = 0u64;
        for &(v, w) in items {
            running = running.saturating_add(w);
            thresholds.push(v as f64);
            le_weights.push(running);
        }
        let max = thresholds.last().copied().unwrap_or(0.0);
        thresholds.push(max + 1.0);
        le_weights.push(total);
        let m = thresholds.len();
        let fp: Vec<f64> = le_weights.iter().map(|&c| 1.0 - c as f64 / n).collect();

        let sizes = sweep.sizes();
        TABLES.fetch_add(1, Relaxed);
        CANDIDATES.fetch_add(m as u64, Relaxed);
        SIZE_PASSES.fetch_add(sizes.len() as u64, Relaxed);
        PATH_WEIGHTED.fetch_add(1, Relaxed);
        let accumulate_started = Instant::now();
        PREPARE_NANOS.fetch_add(
            (accumulate_started - prepare_started).as_nanos() as u64,
            Relaxed,
        );
        // Same merge-style two-pointer structure as the general exact
        // path: for each size, as the candidate ascends so does the cut
        // t − b, so the strictly-below weight pointer only moves forward.
        let mut acc = vec![0.0f64; m];
        for &b in sizes {
            let mut ptr = 0usize;
            let mut below = 0u64;
            for (slot, &t) in acc.iter_mut().zip(&thresholds) {
                let cut = t - b;
                while ptr < items.len() && (items[ptr].0 as f64) < cut {
                    below = below.saturating_add(items[ptr].1);
                    ptr += 1;
                }
                *slot += below as f64 / n;
            }
        }
        let n_sizes = sizes.len() as f64;
        let mean_fn: Vec<f64> = acc.into_iter().map(|s| s / n_sizes).collect();
        ACCUMULATE_NANOS.fetch_add(accumulate_started.elapsed().as_nanos() as u64, Relaxed);

        Self {
            thresholds,
            fp,
            mean_fn,
        }
    }

    /// Number of candidate thresholds.
    pub fn len(&self) -> usize {
        self.thresholds.len()
    }

    /// Whether the table is empty (never, for a constructible
    /// `EmpiricalDist`).
    pub fn is_empty(&self) -> bool {
        self.thresholds.is_empty()
    }

    /// Candidate thresholds, ascending.
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }

    /// `fp[i]` = exceedance of `thresholds[i]` (descending in `i`).
    pub fn fp(&self) -> &[f64] {
        &self.fp
    }

    /// `mean_fn[i]` = sweep-averaged FN rate of `thresholds[i]`
    /// (ascending in `i`).
    pub fn mean_fn(&self) -> &[f64] {
        &self.mean_fn
    }

    /// The threshold maximising `score(fp, mean_fn)`. Ties break towards
    /// the lower threshold (favouring detection), matching the historical
    /// descending-scan argmax.
    pub fn best_by(&self, score: impl Fn(f64, f64) -> f64) -> f64 {
        let mut best_i = 0usize;
        let mut best_s = score(self.fp[0], self.mean_fn[0]);
        for i in 1..self.thresholds.len() {
            let s = score(self.fp[i], self.mean_fn[i]);
            if s > best_s {
                best_s = s;
                best_i = i;
            }
        }
        self.thresholds[best_i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_counts(n: u64) -> EmpiricalDist {
        EmpiricalDist::from_counts(&(0..n).collect::<Vec<_>>())
    }

    /// The reference the kernel must reproduce bit for bit.
    fn naive(dist: &EmpiricalDist, sweep: &AttackSweep) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut thresholds: Vec<f64> = Vec::new();
        let mut prev = f64::NAN;
        for &v in dist.samples() {
            if v != prev {
                thresholds.push(v);
                prev = v;
            }
        }
        thresholds.push(dist.max() + 1.0);
        let fp = thresholds.iter().map(|&t| dist.exceedance(t)).collect();
        let mean_fn = thresholds
            .iter()
            .map(|&t| sweep.mean_fn(dist, t))
            .collect();
        (thresholds, fp, mean_fn)
    }

    #[test]
    fn matches_naive_bitwise_on_uniform() {
        let d = uniform_counts(300);
        let sweep = AttackSweep::up_to(600.0);
        let table = SweepTable::compute(&d, &sweep);
        let (t, fp, mean_fn) = naive(&d, &sweep);
        assert_eq!(table.thresholds(), &t[..]);
        assert_eq!(table.fp(), &fp[..]);
        assert_eq!(table.mean_fn(), &mean_fn[..]);
    }

    #[test]
    fn matches_naive_with_duplicates() {
        let d = EmpiricalDist::from_counts(&[5, 5, 5, 9, 9, 12, 12, 12, 12, 40]);
        let sweep = AttackSweep::new(30.0, 7);
        let table = SweepTable::compute(&d, &sweep);
        let (t, fp, mean_fn) = naive(&d, &sweep);
        assert_eq!(table.thresholds(), &t[..]);
        assert_eq!(table.fp(), &fp[..]);
        assert_eq!(table.mean_fn(), &mean_fn[..]);
    }

    #[test]
    fn degenerate_single_sample() {
        let d = EmpiricalDist::from_counts(&[7]);
        let sweep = AttackSweep::new(1.0, 2);
        let table = SweepTable::compute(&d, &sweep);
        assert_eq!(table.len(), 2);
        assert_eq!(table.thresholds(), &[7.0, 8.0]);
        assert_eq!(table.fp()[1], 0.0);
    }

    #[test]
    fn all_equal_samples_collapse_to_two_candidates() {
        let d = EmpiricalDist::from_counts(&[3, 3, 3, 3]);
        let sweep = AttackSweep::up_to(5.0);
        let table = SweepTable::compute(&d, &sweep);
        assert_eq!(table.len(), 2);
        let (t, fp, mean_fn) = naive(&d, &sweep);
        assert_eq!(table.thresholds(), &t[..]);
        assert_eq!(table.fp(), &fp[..]);
        assert_eq!(table.mean_fn(), &mean_fn[..]);
    }

    #[test]
    fn monotone_fp_descending_fn_ascending() {
        let d = uniform_counts(500);
        let table = SweepTable::compute(&d, &AttackSweep::up_to(1000.0));
        for w in table.fp().windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        for w in table.mean_fn().windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
    }

    #[test]
    fn weighted_kernel_matches_exact_on_unit_weights() {
        // A weighted summary with all-unit weights is the same sample; the
        // weighted kernel performs the same float operations in the same
        // order as the general exact path, so the tables are bit-identical.
        let counts: Vec<u64> = (0..200u64).map(|i| (i * 7) % 45).collect();
        let d = EmpiricalDist::from_counts(&counts);
        let sweep = AttackSweep::new(60.0, 17);
        let exact = SweepTable::compute(&d, &sweep);
        let mut sorted = counts.clone();
        sorted.sort_unstable();
        let mut items: Vec<(u64, u64)> = Vec::new();
        for v in sorted {
            match items.last_mut() {
                Some(last) if last.0 == v => last.1 += 1,
                _ => items.push((v, 1)),
            }
        }
        let weighted = SweepTable::compute_weighted(&items, &sweep);
        assert_eq!(exact.thresholds(), weighted.thresholds());
        assert_eq!(exact.fp(), weighted.fp());
        assert_eq!(exact.mean_fn(), weighted.mean_fn());
    }

    #[test]
    fn weighted_kernel_empty_summary_is_safe() {
        let table = SweepTable::compute_weighted(&[], &AttackSweep::up_to(10.0));
        assert_eq!(table.len(), 1);
        assert_eq!(table.best_by(|fp, f| 1.0 - fp - f), 1.0);
    }

    #[test]
    fn compute_source_dispatches_both_backends() {
        let counts: Vec<u64> = (0..150u64).map(|i| i % 31).collect();
        let sweep = AttackSweep::up_to(50.0);
        let exact_src = QuantileSource::exact_from_counts(&counts);
        let exact = SweepTable::compute_source(&exact_src, &sweep);
        let d = EmpiricalDist::from_counts(&counts);
        let reference = SweepTable::compute(&d, &sweep);
        assert_eq!(exact, reference);
        // Uncompacted sketch holds the exact multiset: identical table.
        let sketch_src = QuantileSource::sketch_from_counts(0.001, &counts);
        let sketched = SweepTable::compute_source(&sketch_src, &sweep);
        assert_eq!(sketched.thresholds(), reference.thresholds());
        assert_eq!(sketched.fp(), reference.fp());
    }

    #[test]
    fn best_by_tie_breaks_low() {
        // Constant score: every candidate ties; the lowest must win, as
        // the historical descending `>=` scan returned.
        let d = uniform_counts(50);
        let table = SweepTable::compute(&d, &AttackSweep::up_to(100.0));
        assert_eq!(table.best_by(|_, _| 1.0), table.thresholds()[0]);
    }
}
