//! Adaptive threshold-update strategies across weeks.
//!
//! The paper retrains thresholds weekly and observes they are "not stable
//! from week to week". This module makes the update rule a first-class
//! policy axis and provides the strategies an operator would actually
//! consider: retrain from scratch (the paper's), exponential smoothing of
//! the weekly thresholds, and a sliding multi-week training window.

use serde::{Deserialize, Serialize};
use tailstats::EmpiricalDist;

use crate::threshold::ThresholdHeuristic;

/// How the per-user threshold evolves as new weeks of data arrive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum UpdateStrategy {
    /// Retrain on the latest week only (the paper's methodology).
    RetrainWeekly,
    /// Exponentially smooth the weekly retrained thresholds:
    /// `T ← α·T_new + (1−α)·T_old`.
    Ewma {
        /// Smoothing weight on the new week, in `(0, 1]`.
        alpha: f64,
    },
    /// Train on the last `weeks` weeks pooled (sliding window).
    SlidingWindow {
        /// Number of trailing weeks pooled.
        weeks: usize,
    },
}

/// The evolving per-user threshold under a strategy.
#[derive(Debug, Clone)]
pub struct AdaptiveThreshold {
    strategy: UpdateStrategy,
    heuristic: ThresholdHeuristic,
    history: Vec<Vec<u64>>,
    current: Option<f64>,
}

impl AdaptiveThreshold {
    /// Create an updater with no data yet.
    pub fn new(strategy: UpdateStrategy, heuristic: ThresholdHeuristic) -> Self {
        Self {
            strategy,
            heuristic,
            history: Vec::new(),
            current: None,
        }
    }

    /// Feed one completed week of per-window counts; returns the threshold
    /// to deploy for the *next* week.
    pub fn observe_week(&mut self, counts: &[u64]) -> f64 {
        self.history.push(counts.to_vec());
        let fresh = match self.strategy {
            UpdateStrategy::RetrainWeekly | UpdateStrategy::Ewma { .. } => self
                .heuristic
                .threshold(&EmpiricalDist::from_counts(counts)),
            UpdateStrategy::SlidingWindow { weeks } => {
                let start = self.history.len().saturating_sub(weeks.max(1));
                let pooled: Vec<u64> = self.history[start..]
                    .iter()
                    .flat_map(|w| w.iter().copied())
                    .collect();
                self.heuristic.threshold(&EmpiricalDist::from_counts(&pooled))
            }
        };
        let next = match (self.strategy, self.current) {
            (UpdateStrategy::Ewma { alpha }, Some(old)) => alpha * fresh + (1.0 - alpha) * old,
            _ => fresh,
        };
        self.current = Some(next);
        next
    }

    /// The currently deployed threshold, if any week has been observed.
    pub fn current(&self) -> Option<f64> {
        self.current
    }
}

/// Evaluate a strategy over a user's multi-week trace: each week's
/// threshold (trained on weeks `..=n`) is scored on week `n+1`. Returns
/// the per-week realized FP rates.
pub fn realized_fp_series(
    weeks: &[Vec<u64>],
    strategy: UpdateStrategy,
    heuristic: ThresholdHeuristic,
) -> Vec<f64> {
    let mut updater = AdaptiveThreshold::new(strategy, heuristic);
    let mut out = Vec::new();
    for pair in weeks.windows(2) {
        let t = updater.observe_week(&pair[0]);
        let test = EmpiricalDist::from_counts(&pair[1]);
        out.push(test.exceedance(t));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn week(base: u64, spike: u64) -> Vec<u64> {
        let mut w: Vec<u64> = (0..672).map(|i| base + (i % 7) as u64).collect();
        w[600] = spike;
        w
    }

    #[test]
    fn retrain_tracks_latest_week_only() {
        let mut a = AdaptiveThreshold::new(UpdateStrategy::RetrainWeekly, ThresholdHeuristic::P99);
        let t1 = a.observe_week(&week(10, 100));
        let t2 = a.observe_week(&week(1000, 5000));
        assert!(t2 > t1 * 10.0, "{t1} -> {t2}");
        assert_eq!(a.current(), Some(t2));
    }

    #[test]
    fn ewma_damps_jumps() {
        let quiet = week(10, 100);
        let busy = week(1000, 5000);
        let mut retrain =
            AdaptiveThreshold::new(UpdateStrategy::RetrainWeekly, ThresholdHeuristic::P99);
        let mut smoothed = AdaptiveThreshold::new(
            UpdateStrategy::Ewma { alpha: 0.3 },
            ThresholdHeuristic::P99,
        );
        retrain.observe_week(&quiet);
        smoothed.observe_week(&quiet);
        let jump_raw = retrain.observe_week(&busy);
        let jump_smooth = smoothed.observe_week(&busy);
        assert!(jump_smooth < jump_raw, "{jump_smooth} < {jump_raw}");
        // But it still moves towards the new level.
        assert!(jump_smooth > retrain.current().unwrap() * 0.05);
    }

    #[test]
    fn sliding_window_pools_history() {
        let mut sliding = AdaptiveThreshold::new(
            UpdateStrategy::SlidingWindow { weeks: 2 },
            ThresholdHeuristic::P99,
        );
        let t1 = sliding.observe_week(&week(10, 100));
        let t2 = sliding.observe_week(&week(1000, 5000));
        // Pooled threshold sits between the two weeks' own thresholds.
        let own_quiet = ThresholdHeuristic::P99.threshold(&EmpiricalDist::from_counts(&week(10, 100)));
        let own_busy = ThresholdHeuristic::P99.threshold(&EmpiricalDist::from_counts(&week(1000, 5000)));
        assert!(t1 <= own_quiet + 1e-9);
        assert!(t2 > own_quiet && t2 <= own_busy + 1e-9, "{own_quiet} < {t2} <= {own_busy}");
        // Window slides: after two more quiet weeks the busy week has
        // aged out entirely and the threshold returns to the quiet level.
        let _t3 = sliding.observe_week(&week(10, 100));
        let t4 = sliding.observe_week(&week(10, 100));
        assert!(t4 <= own_quiet + 1e-9, "{t4} back to quiet {own_quiet}");
    }

    #[test]
    fn realized_fp_series_lengths() {
        let weeks: Vec<Vec<u64>> = (0..4).map(|i| week(10 + i, 100)).collect();
        let fp = realized_fp_series(&weeks, UpdateStrategy::RetrainWeekly, ThresholdHeuristic::P99);
        assert_eq!(fp.len(), 3);
        assert!(fp.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn stationary_data_all_strategies_near_nominal() {
        // Identical weeks except the spike location/height (which only
        // moves mass above the threshold by one window).
        let weeks: Vec<Vec<u64>> = (0..5).map(|i| week(50, 300 + i)).collect();
        for strategy in [
            UpdateStrategy::RetrainWeekly,
            UpdateStrategy::Ewma { alpha: 0.5 },
            UpdateStrategy::SlidingWindow { weeks: 3 },
        ] {
            let fp = realized_fp_series(&weeks, strategy, ThresholdHeuristic::P99);
            let mean = fp.iter().sum::<f64>() / fp.len() as f64;
            assert!(mean <= 0.02, "{strategy:?}: {mean}");
        }
    }
}
