//! ROC analysis of a detector's threshold sweep.
//!
//! A threshold is one operating point on a host's ⟨FP, detection⟩ curve;
//! the policies in this crate pick points, and this module exposes the
//! whole curve — useful for understanding how much room a heuristic left
//! on the table, and for the per-user operating-point scatters of the
//! paper's Figure 5.

use serde::{Deserialize, Serialize};
use tailstats::EmpiricalDist;

use crate::sweep::SweepTable;
use crate::threshold::AttackSweep;

/// One operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// Threshold producing this point.
    pub threshold: f64,
    /// False-positive rate `P(g > T)`.
    pub fp: f64,
    /// Detection rate `1 − mean_b P(g + b < T)` under the attack sweep.
    pub detection: f64,
}

/// A host's ROC curve over its benign distribution and an attack model.
#[derive(Debug, Clone, PartialEq)]
pub struct RocCurve {
    /// Points ordered by descending threshold (ascending FP).
    pub points: Vec<RocPoint>,
}

impl RocCurve {
    /// Sweep every distinct observed value (plus one step above the max)
    /// as a threshold, via the batched [`SweepTable`] kernel (one pass
    /// instead of two binary-search queries per point).
    pub fn compute(benign: &EmpiricalDist, sweep: &AttackSweep) -> Self {
        let table = SweepTable::compute(benign, sweep);
        let points = (0..table.len())
            .rev() // table is ascending; ROC points descend by threshold
            .map(|i| RocPoint {
                threshold: table.thresholds()[i],
                fp: table.fp()[i],
                detection: 1.0 - table.mean_fn()[i],
            })
            .collect();
        Self { points }
    }

    /// Area under the curve via trapezoidal integration over FP ∈ [0, 1]
    /// (the flat extension beyond the last point counts at its detection).
    pub fn auc(&self) -> f64 {
        let mut area = 0.0;
        let mut prev_fp = 0.0;
        let mut prev_det = self.points.first().map_or(0.0, |p| p.detection);
        for p in &self.points {
            area += (p.fp - prev_fp) * (p.detection + prev_det) / 2.0;
            prev_fp = p.fp;
            prev_det = p.detection;
        }
        // Extend to FP = 1 at full detection (threshold below everything).
        area += (1.0 - prev_fp) * (1.0 + prev_det) / 2.0;
        area.clamp(0.0, 1.0)
    }

    /// The point with the highest detection subject to `fp ≤ budget`.
    pub fn best_within_fp(&self, budget: f64) -> Option<RocPoint> {
        self.points
            .iter()
            .filter(|p| p.fp <= budget)
            .max_by(|a, b| a.detection.total_cmp(&b.detection))
            .copied()
    }

    /// Detection achieved at (approximately) the given FP rate — the
    /// interpolation-free lookup used when comparing users at a common FP
    /// budget.
    pub fn detection_at_fp(&self, budget: f64) -> f64 {
        self.best_within_fp(budget).map_or(0.0, |p| p.detection)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: u64) -> EmpiricalDist {
        EmpiricalDist::from_counts(&(0..n).collect::<Vec<_>>())
    }

    #[test]
    fn endpoints_behave() {
        let d = uniform(100);
        let sweep = AttackSweep::up_to(200.0);
        let roc = RocCurve::compute(&d, &sweep);
        let first = roc.points.first().unwrap();
        assert_eq!(first.fp, 0.0, "highest threshold has no FP");
        let last = roc.points.last().unwrap();
        assert!(last.fp > 0.9, "lowest threshold flags almost everything");
        assert!(last.detection > first.detection);
    }

    #[test]
    fn fp_ascends_detection_ascends() {
        let d = uniform(500);
        let sweep = AttackSweep::up_to(1000.0);
        let roc = RocCurve::compute(&d, &sweep);
        for pair in roc.points.windows(2) {
            assert!(pair[1].fp >= pair[0].fp - 1e-12);
            assert!(pair[1].detection >= pair[0].detection - 1e-12);
        }
    }

    #[test]
    fn auc_in_unit_interval_and_better_than_chance() {
        let d = uniform(200);
        let sweep = AttackSweep::up_to(400.0);
        let roc = RocCurve::compute(&d, &sweep);
        let auc = roc.auc();
        assert!((0.0..=1.0).contains(&auc));
        // Additive attacks are detectable: better than coin-flipping.
        assert!(auc > 0.5, "auc {auc}");
    }

    #[test]
    fn light_user_better_detector_at_fixed_fp() {
        // The paper's core asymmetry, in ROC terms: against the same
        // attack sizes a light user achieves higher detection at 1% FP.
        let light = uniform(50);
        let heavy = uniform(5000);
        let sweep = AttackSweep::up_to(5000.0);
        let roc_light = RocCurve::compute(&light, &sweep);
        let roc_heavy = RocCurve::compute(&heavy, &sweep);
        assert!(
            roc_light.detection_at_fp(0.01) > roc_heavy.detection_at_fp(0.01),
            "light {} vs heavy {}",
            roc_light.detection_at_fp(0.01),
            roc_heavy.detection_at_fp(0.01)
        );
    }

    #[test]
    fn best_within_budget_respects_budget() {
        let d = uniform(100);
        let sweep = AttackSweep::up_to(200.0);
        let roc = RocCurve::compute(&d, &sweep);
        let p = roc.best_within_fp(0.05).unwrap();
        assert!(p.fp <= 0.05);
        assert!(roc.best_within_fp(-1.0).is_none());
    }

    #[test]
    fn degenerate_single_value() {
        let d = EmpiricalDist::from_counts(&[7, 7, 7]);
        let sweep = AttackSweep::up_to(10.0);
        let roc = RocCurve::compute(&d, &sweep);
        assert_eq!(roc.points.len(), 2);
        assert!(roc.auc() > 0.0);
    }
}
