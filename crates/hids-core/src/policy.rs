//! Grouping policies: monoculture, full diversity, partial diversity.

use serde::{Deserialize, Serialize};
use tailstats::{kmeans_1d, EmpiricalDist};

use crate::threshold::ThresholdHeuristic;

/// How end hosts are partitioned into configuration groups.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Grouping {
    /// One group: every host gets the same threshold, computed from the
    /// pooled global distribution at the IT console (the monoculture).
    Homogeneous,
    /// Every host is its own group: thresholds computed locally.
    FullDiversity,
    /// A small number of groups; one threshold per group.
    Partial(PartialMethod),
}

/// How partial-diversity groups are formed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PartialMethod {
    /// The paper's heuristic: split users at the heavy-user knee (top
    /// `top_fraction` by training 99th percentile), then subdivide each
    /// side into quantile bands (`top_groups` and `bottom_groups`).
    /// The paper's "8-partial" is `{0.15, 4, 4}`.
    Knee {
        /// Fraction of users classed as heavy.
        top_fraction: f64,
        /// Number of bands among the heavy users.
        top_groups: usize,
        /// Number of bands among the remaining users.
        bottom_groups: usize,
    },
    /// k-means over per-user training 99th percentiles (the clustering the
    /// paper tried; kept for the ablation).
    KMeans {
        /// Number of clusters.
        k: usize,
    },
    /// Equal-population quantile bands over the training 99th percentile
    /// (the natural simple alternative).
    QuantileBands {
        /// Number of bands.
        k: usize,
    },
}

impl PartialMethod {
    /// The paper's 8-partial configuration.
    pub const EIGHT_PARTIAL: PartialMethod = PartialMethod::Knee {
        top_fraction: 0.15,
        top_groups: 4,
        bottom_groups: 4,
    };

    /// Number of groups this method produces (upper bound).
    pub fn group_count(&self) -> usize {
        match *self {
            PartialMethod::Knee {
                top_groups,
                bottom_groups,
                ..
            } => top_groups + bottom_groups,
            PartialMethod::KMeans { k } | PartialMethod::QuantileBands { k } => k,
        }
    }
}

/// A full configuration policy: grouping × threshold heuristic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Policy {
    /// How hosts are grouped.
    pub grouping: Grouping,
    /// How each group's threshold is chosen.
    pub heuristic: ThresholdHeuristic,
}

/// The result of applying a policy to a population's training data.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyOutcome {
    /// Group index per user.
    pub groups: Vec<usize>,
    /// Threshold per user (same value for all members of a group).
    pub thresholds: Vec<f64>,
    /// Threshold per group (indexed by group id).
    pub group_thresholds: Vec<f64>,
}

impl PolicyOutcome {
    /// Number of distinct groups actually populated.
    pub fn populated_groups(&self) -> usize {
        let mut seen: Vec<usize> = self.groups.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }
}

/// Why a policy could not be configured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigureError {
    /// The training population was empty (e.g. every host dropped out).
    EmptyPopulation,
}

impl core::fmt::Display for ConfigureError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConfigureError::EmptyPopulation => {
                write!(f, "cannot configure a policy over zero hosts")
            }
        }
    }
}

impl std::error::Error for ConfigureError {}

impl Policy {
    /// Configure a population: assign groups and compute per-user
    /// thresholds from the users' training distributions.
    ///
    /// # Panics
    /// Panics when `train` is empty; degraded-mode callers whose
    /// population may have dropped out entirely should use
    /// [`Policy::try_configure`].
    pub fn configure(&self, train: &[EmpiricalDist]) -> PolicyOutcome {
        self.try_configure(train)
            .expect("need at least one user")
    }

    /// Fallible variant of [`Policy::configure`]: returns an error instead
    /// of panicking when the population is empty.
    pub fn try_configure(&self, train: &[EmpiricalDist]) -> Result<PolicyOutcome, ConfigureError> {
        if train.is_empty() {
            return Err(ConfigureError::EmptyPopulation);
        }
        let groups = self.grouping.assign(train);
        let n_groups = groups.iter().copied().max().unwrap_or(0) + 1;

        // One pass to collect each group's member list (this was an
        // O(users × groups) filter rescan per group).
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); n_groups];
        for (u, &g) in groups.iter().enumerate() {
            members[g].push(u);
        }

        // Groups are independent: pool + heuristic per group in parallel.
        // Under full diversity this is the per-user threshold fan-out.
        let group_thresholds: Vec<f64> = crate::par::par_map(&members, |_, m| match m.len() {
            0 => f64::NAN,
            1 => self.heuristic.threshold(&train[m[0]]),
            _ => {
                let pooled = EmpiricalDist::pool(m.iter().map(|&u| &train[u]));
                self.heuristic.threshold(&pooled)
            }
        });

        let thresholds = groups.iter().map(|&g| group_thresholds[g]).collect();
        Ok(PolicyOutcome {
            groups,
            thresholds,
            group_thresholds,
        })
    }
}

impl Grouping {
    /// Assign a group index to each user from training data.
    pub fn assign(&self, train: &[EmpiricalDist]) -> Vec<usize> {
        match *self {
            Grouping::Homogeneous => vec![0; train.len()],
            Grouping::FullDiversity => (0..train.len()).collect(),
            Grouping::Partial(method) => {
                let q99: Vec<f64> = train.iter().map(|d| d.quantile(0.99)).collect();
                method.assign(&q99)
            }
        }
    }
}

impl PartialMethod {
    /// Assign groups from per-user summary statistics (training 99th
    /// percentiles).
    pub fn assign(&self, q99: &[f64]) -> Vec<usize> {
        let n = q99.len();
        if n == 0 {
            return Vec::new();
        }
        match *self {
            PartialMethod::Knee {
                top_fraction,
                top_groups,
                bottom_groups,
            } => {
                // Rank users by q99 descending; the top `top_fraction` go
                // into `top_groups` quantile bands, the rest into
                // `bottom_groups` bands.
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by(|&a, &b| q99[b].total_cmp(&q99[a]).then(a.cmp(&b)));
                let n_top = ((n as f64 * top_fraction).round() as usize).clamp(1, n);
                let mut groups = vec![0usize; n];
                band_assign(&order[..n_top], top_groups, 0, &mut groups);
                band_assign(&order[n_top..], bottom_groups, top_groups, &mut groups);
                groups
            }
            PartialMethod::KMeans { k } => {
                // Cluster in log space: the levels span decades.
                let logs: Vec<f64> = q99.iter().map(|&x| (x.max(0.5)).log10()).collect();
                kmeans_1d(&logs, k, 200).assignments
            }
            PartialMethod::QuantileBands { k } => {
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by(|&a, &b| q99[b].total_cmp(&q99[a]).then(a.cmp(&b)));
                let mut groups = vec![0usize; n];
                band_assign(&order, k, 0, &mut groups);
                groups
            }
        }
    }
}

/// Split `ranked` (descending) into `bands` roughly equal contiguous bands,
/// writing group ids starting at `base`.
fn band_assign(ranked: &[usize], bands: usize, base: usize, groups: &mut [usize]) {
    if ranked.is_empty() {
        return;
    }
    let bands = bands.clamp(1, ranked.len());
    for (pos, &user) in ranked.iter().enumerate() {
        let band = pos * bands / ranked.len();
        groups[user] = base + band;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Users with q99 roughly 10^(i/10): a smooth continuum of heaviness.
    fn continuum(n: usize) -> Vec<EmpiricalDist> {
        (0..n)
            .map(|i| {
                let level = 10f64.powf(i as f64 / (n as f64 / 3.0));
                let samples: Vec<f64> = (0..100).map(|j| level * (j as f64) / 99.0).collect();
                EmpiricalDist::from_samples(samples)
            })
            .collect()
    }

    #[test]
    fn homogeneous_gives_everyone_the_pooled_threshold() {
        let train = continuum(20);
        let policy = Policy {
            grouping: Grouping::Homogeneous,
            heuristic: ThresholdHeuristic::P99,
        };
        let out = policy.configure(&train);
        assert_eq!(out.populated_groups(), 1);
        assert!(out.thresholds.windows(2).all(|w| w[0] == w[1]));
        // Pooled 99th percentile is dominated by the heaviest users.
        let heaviest_own = ThresholdHeuristic::P99.threshold(&train[19]);
        let lightest_own = ThresholdHeuristic::P99.threshold(&train[0]);
        assert!(out.thresholds[0] > lightest_own);
        assert!(out.thresholds[0] <= heaviest_own);
    }

    #[test]
    fn full_diversity_matches_local_computation() {
        let train = continuum(10);
        let policy = Policy {
            grouping: Grouping::FullDiversity,
            heuristic: ThresholdHeuristic::P99,
        };
        let out = policy.configure(&train);
        assert_eq!(out.populated_groups(), 10);
        for (i, d) in train.iter().enumerate() {
            assert_eq!(out.thresholds[i], ThresholdHeuristic::P99.threshold(d));
        }
    }

    #[test]
    fn knee_partial_produces_eight_groups() {
        let train = continuum(100);
        let policy = Policy {
            grouping: Grouping::Partial(PartialMethod::EIGHT_PARTIAL),
            heuristic: ThresholdHeuristic::P99,
        };
        let out = policy.configure(&train);
        assert_eq!(out.populated_groups(), 8);
        // Heavier users never get a *lower* threshold than lighter ones'
        // groups by more than band granularity: check monotone trend.
        let heavy_t = out.thresholds[99];
        let light_t = out.thresholds[0];
        assert!(heavy_t > light_t);
    }

    #[test]
    fn knee_top_fraction_sizes_top_bands() {
        let q99: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let groups = PartialMethod::EIGHT_PARTIAL.assign(&q99);
        // Users 85..100 (top 15 by value) are in groups 0..4.
        for (u, &g) in groups.iter().enumerate() {
            if u >= 85 {
                assert!(g < 4, "user {u} group {g}");
            } else {
                assert!((4..8).contains(&g), "user {u} group {g}");
            }
        }
    }

    #[test]
    fn partial_thresholds_sit_between_extremes() {
        let train = continuum(100);
        let p99 = ThresholdHeuristic::P99;
        let homog = Policy {
            grouping: Grouping::Homogeneous,
            heuristic: p99.clone(),
        }
        .configure(&train);
        let full = Policy {
            grouping: Grouping::FullDiversity,
            heuristic: p99.clone(),
        }
        .configure(&train);
        let partial = Policy {
            grouping: Grouping::Partial(PartialMethod::EIGHT_PARTIAL),
            heuristic: p99,
        }
        .configure(&train);
        // For light users the partial threshold is (weakly) closer to their
        // own threshold than the homogeneous one is.
        for i in 0..50 {
            let own = full.thresholds[i];
            let via_partial = (partial.thresholds[i] - own).abs();
            let via_homog = (homog.thresholds[i] - own).abs();
            assert!(
                via_partial <= via_homog,
                "user {i}: partial {} vs homog {} (own {own})",
                partial.thresholds[i],
                homog.thresholds[i]
            );
        }
    }

    #[test]
    fn kmeans_grouping_covers_all_users() {
        let train = continuum(60);
        let groups = Grouping::Partial(PartialMethod::KMeans { k: 5 }).assign(&train);
        assert_eq!(groups.len(), 60);
        assert!(groups.iter().all(|&g| g < 5));
    }

    #[test]
    fn quantile_bands_equal_population() {
        let q99: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let groups = PartialMethod::QuantileBands { k: 4 }.assign(&q99);
        let mut counts = [0usize; 4];
        for &g in &groups {
            counts[g] += 1;
        }
        assert_eq!(counts, [10, 10, 10, 10]);
    }

    #[test]
    fn try_configure_rejects_empty_population() {
        let policy = Policy {
            grouping: Grouping::Homogeneous,
            heuristic: ThresholdHeuristic::P99,
        };
        assert_eq!(
            policy.try_configure(&[]).unwrap_err(),
            ConfigureError::EmptyPopulation
        );
        // And agrees with the panicking path when the population exists.
        let train = continuum(6);
        assert_eq!(policy.try_configure(&train).unwrap(), policy.configure(&train));
    }

    #[test]
    fn single_user_population_works_under_every_grouping() {
        let train = continuum(1);
        for grouping in [
            Grouping::Homogeneous,
            Grouping::FullDiversity,
            Grouping::Partial(PartialMethod::EIGHT_PARTIAL),
            Grouping::Partial(PartialMethod::KMeans { k: 3 }),
        ] {
            let out = Policy {
                grouping,
                heuristic: ThresholdHeuristic::P99,
            }
            .configure(&train);
            assert_eq!(out.thresholds.len(), 1);
            assert!(out.thresholds[0].is_finite());
        }
    }

    #[test]
    fn empty_groups_leave_no_nan_user_thresholds() {
        // Knee with more bands than users forces tiny bands; every user
        // must still receive a finite threshold.
        let train = continuum(5);
        let out = Policy {
            grouping: Grouping::Partial(PartialMethod::EIGHT_PARTIAL),
            heuristic: ThresholdHeuristic::P99,
        }
        .configure(&train);
        assert!(out.thresholds.iter().all(|t| t.is_finite()));
    }
}
