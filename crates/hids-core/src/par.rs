//! Deterministic parallel map over per-user work.
//!
//! Every experiment in this workspace has the same shape — an independent
//! computation per user (configure a detector, score a test week, build a
//! ROC curve) — so one primitive covers them all: [`par_map`] splits the
//! items into contiguous chunks, runs one scoped thread per chunk, and
//! concatenates results in chunk order. Output order therefore equals
//! input order **regardless of thread count**, which keeps every report
//! byte-identical between `--threads 1` and `--threads N` (asserted by
//! `tests/determinism.rs`).
//!
//! Thread count resolution, highest priority first:
//! 1. [`set_threads`] (the `repro --threads N` flag),
//! 2. the `REPRO_THREADS` environment variable,
//! 3. `std::thread::available_parallelism()`.

use std::sync::atomic::{AtomicUsize, Ordering};

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Override the worker-thread count process-wide (0 clears the override).
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The worker-thread count [`par_map`] will use.
pub fn current_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Some(n) = std::env::var("REPRO_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Map `f` over `items` in parallel, preserving order.
///
/// `f` receives each item's index alongside the item, so seeded per-user
/// work (e.g. deriving a user's RNG stream) stays reproducible.
///
/// # Panics
/// Propagates a panic from any worker.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = current_threads().min(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<U> = Vec::with_capacity(items.len());
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, ch)| {
                let f = &f;
                let start = ci * chunk;
                scope.spawn(move |_| {
                    ch.iter()
                        .enumerate()
                        .map(|(j, x)| f(start + j, x))
                        .collect::<Vec<U>>()
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("par_map worker panicked"));
        }
    })
    .expect("par_map thread scope");
    out
}

/// Map `f` over `0..n` in parallel, preserving order — the index-only
/// form for loops that generate rather than transform.
pub fn par_map_range<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    par_map(&indices, |_, &i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn identical_across_thread_counts() {
        let items: Vec<u64> = (0..257).collect();
        let work = |_: usize, &x: &u64| x.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17);
        set_threads(1);
        let serial = par_map(&items, work);
        set_threads(8);
        let parallel = par_map(&items, work);
        set_threads(0);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[42u32], |i, &x| (i, x)), vec![(0, 42)]);
    }

    #[test]
    fn range_form_matches_slice_form() {
        set_threads(4);
        let a = par_map_range(100, |i| i * i);
        set_threads(0);
        assert_eq!(a, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn override_beats_env() {
        set_threads(3);
        assert_eq!(current_threads(), 3);
        set_threads(0);
        assert!(current_threads() >= 1);
    }
}
