//! The per-host detector: configured thresholds plus alert generation.

use flowtab::{FeatureCounts, FeatureKind};
use serde::{Deserialize, Serialize};

/// An alert raised by a host's anomaly detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// The host that raised the alert.
    pub user: u32,
    /// Window index within the trace.
    pub window: usize,
    /// Feature that exceeded its threshold.
    pub feature: FeatureKind,
    /// Observed count.
    pub observed: u64,
    /// Configured threshold.
    pub threshold: f64,
}

impl Alert {
    /// How far above the threshold the observation sat (≥ 0).
    pub fn excess(&self) -> f64 {
        (self.observed as f64 - self.threshold).max(0.0)
    }
}

/// A host's behavioural anomaly detector: one optional threshold per
/// feature; an alert fires when a window's count strictly exceeds the
/// feature's threshold (`g + b > T` in the paper's notation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Detector {
    /// The host this detector runs on.
    pub user: u32,
    thresholds: [Option<f64>; 6],
}

impl Detector {
    /// A detector with no thresholds configured (monitors nothing).
    pub fn new(user: u32) -> Self {
        Self {
            user,
            thresholds: [None; 6],
        }
    }

    /// Set one feature's threshold.
    pub fn set_threshold(&mut self, feature: FeatureKind, t: f64) -> &mut Self {
        self.thresholds[feature.index()] = Some(t);
        self
    }

    /// Remove one feature's threshold.
    pub fn clear_threshold(&mut self, feature: FeatureKind) -> &mut Self {
        self.thresholds[feature.index()] = None;
        self
    }

    /// The configured threshold for a feature, if any.
    pub fn threshold(&self, feature: FeatureKind) -> Option<f64> {
        self.thresholds[feature.index()]
    }

    /// Number of features being monitored.
    pub fn monitored_features(&self) -> usize {
        self.thresholds.iter().filter(|t| t.is_some()).count()
    }

    /// Evaluate one window, returning any alerts raised.
    pub fn evaluate(&self, window: usize, counts: &FeatureCounts) -> Vec<Alert> {
        let mut alerts = Vec::new();
        for feature in FeatureKind::ALL {
            if let Some(t) = self.thresholds[feature.index()] {
                let observed = counts.get(feature);
                if observed as f64 > t {
                    alerts.push(Alert {
                        user: self.user,
                        window,
                        feature,
                        observed,
                        threshold: t,
                    });
                }
            }
        }
        alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(tcp: u64, udp: u64) -> FeatureCounts {
        let mut c = FeatureCounts::default();
        *c.get_mut(FeatureKind::TcpConnections) = tcp;
        *c.get_mut(FeatureKind::UdpConnections) = udp;
        c
    }

    #[test]
    fn fires_only_above_threshold() {
        let mut d = Detector::new(7);
        d.set_threshold(FeatureKind::TcpConnections, 100.0);
        assert!(d.evaluate(0, &counts(100, 0)).is_empty(), "equality passes");
        let alerts = d.evaluate(1, &counts(101, 0));
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].user, 7);
        assert_eq!(alerts[0].window, 1);
        assert_eq!(alerts[0].feature, FeatureKind::TcpConnections);
        assert_eq!(alerts[0].excess(), 1.0);
    }

    #[test]
    fn unmonitored_features_never_fire() {
        let mut d = Detector::new(1);
        d.set_threshold(FeatureKind::TcpConnections, 10.0);
        let alerts = d.evaluate(0, &counts(0, 1_000_000));
        assert!(alerts.is_empty());
        assert_eq!(d.monitored_features(), 1);
    }

    #[test]
    fn multiple_features_fire_together() {
        let mut d = Detector::new(1);
        d.set_threshold(FeatureKind::TcpConnections, 10.0)
            .set_threshold(FeatureKind::UdpConnections, 5.0);
        let alerts = d.evaluate(3, &counts(11, 6));
        assert_eq!(alerts.len(), 2);
    }

    #[test]
    fn clear_threshold_stops_alerts() {
        let mut d = Detector::new(1);
        d.set_threshold(FeatureKind::UdpConnections, 1.0);
        assert_eq!(d.evaluate(0, &counts(0, 5)).len(), 1);
        d.clear_threshold(FeatureKind::UdpConnections);
        assert!(d.evaluate(0, &counts(0, 5)).is_empty());
        assert_eq!(d.threshold(FeatureKind::UdpConnections), None);
    }
}
