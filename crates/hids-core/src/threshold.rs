//! Threshold-selection heuristics.

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use tailstats::{EmpiricalDist, QuantileSource};

use crate::sweep::SweepTable;

/// Parameters of the synthetic attack-size sweep used by the optimising
/// heuristics (and by evaluation).
///
/// The paper sweeps "the entire range of possible attack sizes", capping at
/// the largest per-window value any user ever produced ("clearly any attack
/// larger than this will stand out on every user's HIDS"). The scalar FN a
/// heuristic optimises averages over `n_points` sizes uniformly spaced in
/// `[1, b_max]` — the averaging the paper leaves implicit (DESIGN.md §5).
///
/// The sizes are materialised once at construction and shared (`Arc`) by
/// clones: heuristics query `mean_fn` for every candidate threshold of
/// every user, and reallocating the size grid per query dominated profile
/// time before the batched [`SweepTable`] kernel existed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackSweep {
    b_max: f64,
    n_points: usize,
    sizes: Arc<[f64]>,
}

impl AttackSweep {
    /// Build a sweep of `n_points` sizes uniformly spaced in `[1, b_max]`.
    pub fn new(b_max: f64, n_points: usize) -> Self {
        let n = n_points.max(2);
        let sizes: Arc<[f64]> = (0..n)
            .map(|i| 1.0 + (b_max - 1.0) * i as f64 / (n - 1) as f64)
            .collect();
        Self {
            b_max,
            n_points,
            sizes,
        }
    }

    /// Build a sweep capped at the population maximum feature value.
    pub fn up_to(b_max: f64) -> Self {
        Self::new(b_max.max(1.0), 256)
    }

    /// Largest attack size considered.
    pub fn b_max(&self) -> f64 {
        self.b_max
    }

    /// Number of sweep points.
    pub fn n_points(&self) -> usize {
        self.n_points
    }

    /// The attack sizes, uniformly spaced in `[1, b_max]` (ascending).
    pub fn sizes(&self) -> &[f64] {
        &self.sizes
    }

    /// Mean false-negative rate of threshold `t` against this sweep, under
    /// traffic distribution `dist`: `mean_b P(g + b < t)`.
    ///
    /// Point query for a single already-chosen threshold. To evaluate
    /// *every candidate* threshold of a distribution, use [`SweepTable`],
    /// which computes all of them in one pass.
    pub fn mean_fn(&self, dist: &EmpiricalDist, t: f64) -> f64 {
        let sum: f64 = self.sizes.iter().map(|&b| dist.below(t - b)).sum();
        sum / self.sizes.len() as f64
    }

    /// [`mean_fn`](Self::mean_fn) over either quantile backend. The exact
    /// arm performs the identical accumulation (same sizes, same `below`
    /// values, same order), so it is bit-identical to `mean_fn`.
    pub fn mean_fn_source(&self, source: &QuantileSource, t: f64) -> f64 {
        let sum: f64 = self.sizes.iter().map(|&b| source.below(t - b)).sum();
        sum / self.sizes.len() as f64
    }
}

/// A rule mapping a training distribution to a threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ThresholdHeuristic {
    /// The q-th percentile of training traffic (operators' default: 0.99).
    /// Uses the discrete (observed-value) quantile, as an IT console reads
    /// it off a histogram.
    Percentile(f64),
    /// `mean + k·σ` of training traffic.
    MeanSigma(f64),
    /// Threshold maximising per-user utility `1 − [w·FN + (1−w)·FP]`
    /// against the attack sweep.
    UtilityMax {
        /// FN weight `w ∈ [0, 1]`.
        w: f64,
        /// Attack model for the FN term.
        sweep: AttackSweep,
    },
    /// Threshold maximising the F-measure (harmonic mean of precision and
    /// recall) against the attack sweep, assuming attack windows occur with
    /// the given prevalence.
    FMeasure {
        /// Fraction of windows assumed attacked (precision denominator).
        prevalence: f64,
        /// Attack model for the recall term.
        sweep: AttackSweep,
    },
}

impl ThresholdHeuristic {
    /// The paper's default operator heuristic.
    pub const P99: ThresholdHeuristic = ThresholdHeuristic::Percentile(0.99);

    /// Compute a threshold from a training distribution.
    ///
    /// The optimising variants (`UtilityMax`, `FMeasure`) score every
    /// candidate threshold — each distinct observed training value plus
    /// one step above the maximum — via a single [`SweepTable`] pass and
    /// return the argmax. Ties break towards the *lower* threshold
    /// (favouring detection).
    pub fn threshold(&self, train: &EmpiricalDist) -> f64 {
        match self {
            ThresholdHeuristic::Percentile(q) => train.quantile_discrete(*q),
            ThresholdHeuristic::MeanSigma(k) => train.mean() + k * train.stddev(),
            ThresholdHeuristic::UtilityMax { w, sweep } => SweepTable::compute(train, sweep)
                .best_by(|fp, fn_rate| 1.0 - (w * fn_rate + (1.0 - w) * fp)),
            ThresholdHeuristic::FMeasure { prevalence, sweep } => SweepTable::compute(train, sweep)
                .best_by(|fpr, fn_rate| {
                    let recall = 1.0 - fn_rate;
                    let tp = prevalence * recall;
                    let fp = (1.0 - prevalence) * fpr;
                    if tp + fp == 0.0 {
                        0.0
                    } else {
                        let precision = tp / (tp + fp);
                        if precision + recall == 0.0 {
                            0.0
                        } else {
                            2.0 * precision * recall / (precision + recall)
                        }
                    }
                }),
        }
    }

    /// Compute a threshold from either quantile backend.
    ///
    /// The exact arm delegates to [`threshold`](Self::threshold) outright,
    /// so the default path stays bit-identical to the historical behavior;
    /// the sketch arm reads the same statistics off the summary (discrete
    /// quantile, moment sums, or the weighted [`SweepTable`] kernel).
    pub fn threshold_source(&self, train: &QuantileSource) -> f64 {
        if let QuantileSource::Exact(d) = train {
            return self.threshold(d);
        }
        match self {
            ThresholdHeuristic::Percentile(q) => train.quantile_discrete(*q),
            ThresholdHeuristic::MeanSigma(k) => train.mean() + k * train.stddev(),
            ThresholdHeuristic::UtilityMax { w, sweep } => {
                SweepTable::compute_source(train, sweep)
                    .best_by(|fp, fn_rate| 1.0 - (w * fn_rate + (1.0 - w) * fp))
            }
            ThresholdHeuristic::FMeasure { prevalence, sweep } => {
                SweepTable::compute_source(train, sweep).best_by(|fpr, fn_rate| {
                    let recall = 1.0 - fn_rate;
                    let tp = prevalence * recall;
                    let fp = (1.0 - prevalence) * fpr;
                    if tp + fp == 0.0 {
                        0.0
                    } else {
                        let precision = tp / (tp + fp);
                        if precision + recall == 0.0 {
                            0.0
                        } else {
                            2.0 * precision * recall / (precision + recall)
                        }
                    }
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_counts(n: u64) -> EmpiricalDist {
        EmpiricalDist::from_counts(&(0..n).collect::<Vec<_>>())
    }

    #[test]
    fn percentile_heuristic_reads_discrete_quantile() {
        let d = uniform_counts(100); // values 0..=99
        let t = ThresholdHeuristic::P99.threshold(&d);
        assert_eq!(t, 98.0);
        assert!(d.exceedance(t) <= 0.011);
    }

    #[test]
    fn mean_sigma_heuristic() {
        let d = EmpiricalDist::from_samples(vec![0.0, 2.0, 4.0]);
        let t = ThresholdHeuristic::MeanSigma(3.0).threshold(&d);
        assert!((t - 8.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_sizes_cover_range() {
        let sweep = AttackSweep::new(100.0, 10);
        let sizes = sweep.sizes();
        assert_eq!(sizes.len(), 10);
        assert_eq!(sizes[0], 1.0);
        assert_eq!(*sizes.last().unwrap(), 100.0);
        assert!(sizes.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn mean_fn_monotone_in_threshold() {
        let d = uniform_counts(1000);
        let sweep = AttackSweep::up_to(2000.0);
        let lo = sweep.mean_fn(&d, 100.0);
        let hi = sweep.mean_fn(&d, 2000.0);
        assert!(hi > lo, "higher thresholds miss more: {hi} > {lo}");
        assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
    }

    #[test]
    fn utility_max_balances_fp_and_fn() {
        let d = uniform_counts(1000);
        let sweep = AttackSweep::up_to(2000.0);
        // All-FP weight: minimise false positives => threshold at the top.
        let t_fp = ThresholdHeuristic::UtilityMax {
            w: 0.0,
            sweep: sweep.clone(),
        }
        .threshold(&d);
        // All-FN weight: minimise misses => threshold at the bottom.
        let t_fn = ThresholdHeuristic::UtilityMax {
            w: 1.0,
            sweep: sweep.clone(),
        }
        .threshold(&d);
        assert!(t_fp > t_fn, "w=0 gives {t_fp}, w=1 gives {t_fn}");
        let t_mid = ThresholdHeuristic::UtilityMax { w: 0.4, sweep }.threshold(&d);
        assert!(t_mid <= t_fp && t_mid >= t_fn);
    }

    #[test]
    fn utility_max_w0_has_no_false_positives() {
        let d = uniform_counts(500);
        let sweep = AttackSweep::up_to(1000.0);
        let t = ThresholdHeuristic::UtilityMax { w: 0.0, sweep }.threshold(&d);
        assert_eq!(d.exceedance(t), 0.0);
    }

    #[test]
    fn fmeasure_prefers_low_thresholds_under_high_prevalence() {
        let d = uniform_counts(1000);
        let sweep = AttackSweep::up_to(2000.0);
        let t_rare = ThresholdHeuristic::FMeasure {
            prevalence: 0.001,
            sweep: sweep.clone(),
        }
        .threshold(&d);
        let t_common = ThresholdHeuristic::FMeasure {
            prevalence: 0.5,
            sweep,
        }
        .threshold(&d);
        assert!(
            t_common <= t_rare,
            "common attacks push thresholds down: {t_common} <= {t_rare}"
        );
    }

    #[test]
    fn threshold_source_exact_arm_is_bit_identical() {
        let counts: Vec<u64> = (0..400).map(|i| (i * 11) % 257).collect();
        let d = EmpiricalDist::from_counts(&counts);
        let src = QuantileSource::Exact(d.clone());
        let sweep = AttackSweep::up_to(500.0);
        for h in [
            ThresholdHeuristic::P99,
            ThresholdHeuristic::MeanSigma(3.0),
            ThresholdHeuristic::UtilityMax {
                w: 0.4,
                sweep: sweep.clone(),
            },
            ThresholdHeuristic::FMeasure {
                prevalence: 0.01,
                sweep: sweep.clone(),
            },
        ] {
            assert_eq!(h.threshold(&d), h.threshold_source(&src), "{h:?}");
        }
        assert_eq!(
            sweep.mean_fn(&d, 123.0),
            sweep.mean_fn_source(&src, 123.0)
        );
    }

    #[test]
    fn threshold_source_sketch_arm_tracks_exact() {
        // At paper-ish scale with a 1% budget the sketch thresholds land
        // within the rank bound of the exact ones for every heuristic.
        let counts: Vec<u64> = (0..2000u64).map(|i| (i * i) % 997).collect();
        let d = EmpiricalDist::from_counts(&counts);
        let src = QuantileSource::sketch_from_counts(0.01, &counts);
        let sweep = AttackSweep::up_to(1500.0);
        for h in [
            ThresholdHeuristic::P99,
            ThresholdHeuristic::MeanSigma(3.0),
            ThresholdHeuristic::UtilityMax {
                w: 0.4,
                sweep: sweep.clone(),
            },
        ] {
            let exact = h.threshold(&d);
            let sketched = h.threshold_source(&src);
            // Rank-space check: the exact CDF at the two thresholds must
            // agree within eps plus one discrete step.
            let drift = (d.cdf(exact) - d.cdf(sketched)).abs();
            assert!(
                drift <= 0.01 + 1.0 / counts.len() as f64,
                "{h:?}: exact {exact} vs sketch {sketched} (cdf drift {drift})"
            );
        }
    }

    #[test]
    fn heuristics_scale_with_user_heaviness() {
        // The core diversity observation: heavier users get higher
        // thresholds under any sensible heuristic.
        let light = uniform_counts(50);
        let heavy = uniform_counts(5000);
        for h in [
            ThresholdHeuristic::P99,
            ThresholdHeuristic::MeanSigma(3.0),
            ThresholdHeuristic::UtilityMax {
                w: 0.4,
                sweep: AttackSweep::up_to(10_000.0),
            },
        ] {
            assert!(
                h.threshold(&heavy) > h.threshold(&light),
                "{h:?} must separate heavy from light"
            );
        }
    }
}
