//! Degraded-mode evaluation: the paper's methodology under telemetry loss.
//!
//! The clean pipeline assumes every host reports every window of both the
//! training and the test week. When agents crash or the collector drops
//! windows that assumption fails in two escalating ways:
//!
//! * some of a host's windows are missing — its empirical distributions
//!   are built from *fewer samples*, and thresholds/FP/FN are estimates on
//!   the available data;
//! * a host is missing entirely (zero covered windows) — it cannot be
//!   configured or evaluated at all.
//!
//! This module makes both explicit instead of panicking or silently
//! mis-measuring. A [`DegradedDataset`] carries per-host *coverage masks*
//! (produced in practice by `faultsim::TelemetryFaults`) and builds
//! per-host distributions from covered windows only, with `None` marking
//! dark hosts. [`evaluate_policy_degraded`] then configures the policy on
//! the hosts above a minimum-coverage floor — mirroring the paper's own
//! practice of discarding hosts with too little data (§3: hosts absent for
//! most of the collection were dropped) — and reports every host's status
//! and coverage alongside the usual `⟨FN, FP⟩`, so loss is *visible* in
//! the results rather than folded into them.
//!
//! With full coverage and a zero floor the degraded path reproduces
//! [`evaluate_policy`](crate::eval::evaluate_policy) exactly; the chaos
//! acceptance suite pins that equivalence.

use flowtab::{FeatureKind, FeatureSeries};
use serde::{Deserialize, Serialize};
use tailstats::{EmpiricalDist, QuantileSource};

use crate::eval::{EvalConfig, UserPerf};
use crate::threshold::AttackSweep;
use crate::{Policy, PolicyOutcome};

/// Why a degraded dataset or evaluation could not be produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedError {
    /// Train and test series cover different user counts.
    PopulationMismatch {
        /// Users in the training slice.
        train: usize,
        /// Users in the test slice.
        test: usize,
    },
    /// A coverage mask's shape disagrees with its series.
    MaskShapeMismatch {
        /// User whose mask is wrong.
        user: usize,
        /// Windows in the series.
        windows: usize,
        /// Entries in the mask.
        mask: usize,
    },
    /// No users at all.
    EmptyPopulation,
    /// Every host fell below the coverage floor — there is nobody left to
    /// configure a policy on.
    NoEvaluableHosts,
}

impl core::fmt::Display for DegradedError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DegradedError::PopulationMismatch { train, test } => {
                write!(f, "one train and one test per user (got {train} vs {test})")
            }
            DegradedError::MaskShapeMismatch {
                user,
                windows,
                mask,
            } => write!(
                f,
                "user {user}: mask has {mask} entries for {windows} windows"
            ),
            DegradedError::EmptyPopulation => write!(f, "need at least one user"),
            DegradedError::NoEvaluableHosts => {
                write!(f, "every host is below the coverage floor")
            }
        }
    }
}

impl std::error::Error for DegradedError {}

/// One feature's train/test data under partial telemetry coverage.
#[derive(Debug, Clone)]
pub struct DegradedDataset {
    /// Which feature this dataset captures.
    pub feature: FeatureKind,
    /// Per-user training distributions over *covered* windows; `None` for
    /// hosts with zero covered training windows.
    pub train: Vec<Option<EmpiricalDist>>,
    /// Per-user test distributions over covered windows.
    pub test: Vec<Option<EmpiricalDist>>,
    /// Covered test window counts per user (alarm counting).
    pub test_counts: Vec<Vec<u64>>,
    /// Fraction of training windows covered, per user.
    pub train_coverage: Vec<f64>,
    /// Fraction of test windows covered, per user.
    pub test_coverage: Vec<f64>,
}

/// Filter one series' counts down to covered windows.
fn masked_counts(
    series: &FeatureSeries,
    mask: &[bool],
    feature: FeatureKind,
) -> (Vec<u64>, f64) {
    let counts = series.feature(feature);
    let kept: Vec<u64> = counts
        .iter()
        .zip(mask)
        .filter_map(|(&c, &cov)| cov.then_some(c))
        .collect();
    let coverage = if counts.is_empty() {
        1.0
    } else {
        kept.len() as f64 / counts.len() as f64
    };
    (kept, coverage)
}

impl DegradedDataset {
    /// Build from per-user series plus per-user coverage masks
    /// (`masks[user][window]`, `true` = window observed).
    pub fn from_masked_series(
        train: &[FeatureSeries],
        test: &[FeatureSeries],
        train_masks: &[Vec<bool>],
        test_masks: &[Vec<bool>],
        feature: FeatureKind,
    ) -> Result<Self, DegradedError> {
        if train.len() != test.len() {
            return Err(DegradedError::PopulationMismatch {
                train: train.len(),
                test: test.len(),
            });
        }
        if train.is_empty() {
            return Err(DegradedError::EmptyPopulation);
        }
        if train_masks.len() != train.len() || test_masks.len() != test.len() {
            return Err(DegradedError::PopulationMismatch {
                train: train_masks.len(),
                test: test_masks.len(),
            });
        }
        for (u, (s, m)) in train.iter().zip(train_masks).enumerate() {
            if s.windows.len() != m.len() {
                return Err(DegradedError::MaskShapeMismatch {
                    user: u,
                    windows: s.windows.len(),
                    mask: m.len(),
                });
            }
        }
        for (u, (s, m)) in test.iter().zip(test_masks).enumerate() {
            if s.windows.len() != m.len() {
                return Err(DegradedError::MaskShapeMismatch {
                    user: u,
                    windows: s.windows.len(),
                    mask: m.len(),
                });
            }
        }

        let n = train.len();
        let mut train_d = Vec::with_capacity(n);
        let mut test_d = Vec::with_capacity(n);
        let mut test_counts = Vec::with_capacity(n);
        let mut train_cov = Vec::with_capacity(n);
        let mut test_cov = Vec::with_capacity(n);
        for u in 0..n {
            let (tr, trc) = masked_counts(&train[u], &train_masks[u], feature);
            let (te, tec) = masked_counts(&test[u], &test_masks[u], feature);
            train_d.push((!tr.is_empty()).then(|| EmpiricalDist::from_counts(&tr)));
            test_d.push((!te.is_empty()).then(|| EmpiricalDist::from_counts(&te)));
            test_counts.push(te);
            train_cov.push(trc);
            test_cov.push(tec);
        }
        Ok(Self {
            feature,
            train: train_d,
            test: test_d,
            test_counts,
            train_coverage: train_cov,
            test_coverage: test_cov,
        })
    }

    /// Number of users (including dark ones).
    pub fn n_users(&self) -> usize {
        self.train.len()
    }
}

/// Parameters for degraded-mode evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradedEvalConfig {
    /// The usual evaluation parameters (FN weight, attack sweep).
    pub base: EvalConfig,
    /// Minimum fraction of windows (in both weeks) a host must have
    /// reported to be configured and scored. Hosts below the floor are
    /// excluded from threshold computation but still reported. `0.0`
    /// excludes only fully dark hosts.
    pub min_coverage: f64,
}

/// A host's standing in a degraded evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HostStatus {
    /// Enough coverage: configured and scored.
    Evaluated,
    /// Reported some windows, but fewer than the floor requires.
    LowCoverage,
    /// Zero covered windows in train or test: nothing to measure.
    Dark,
}

/// One host's result under degraded evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradedUserPerf {
    /// Whether (and why not) this host was scored.
    pub status: HostStatus,
    /// Fraction of training windows this host reported.
    pub train_coverage: f64,
    /// Fraction of test windows this host reported.
    pub test_coverage: f64,
    /// Performance on available data; `None` unless
    /// [`HostStatus::Evaluated`].
    pub perf: Option<UserPerf>,
}

/// A policy's evaluation over a partially-covered population.
#[derive(Debug, Clone)]
pub struct DegradedEvaluation {
    /// Per-host status, coverage and (where possible) performance, indexed
    /// like the input population.
    pub users: Vec<DegradedUserPerf>,
    /// The policy outcome over the *evaluable sub-population*, in
    /// sub-population order (see [`DegradedEvaluation::evaluated_hosts`]).
    pub outcome: PolicyOutcome,
    /// Original indices of the evaluable hosts, in the order `outcome`
    /// lists them.
    pub evaluated_hosts: Vec<usize>,
    /// Parameters used.
    pub config: DegradedEvalConfig,
}

impl DegradedEvaluation {
    /// Mean utility over the hosts that were actually scored.
    pub fn mean_utility(&self) -> f64 {
        let (sum, n) = self
            .users
            .iter()
            .filter_map(|u| u.perf)
            .fold((0.0, 0u64), |(s, c), p| (s + p.utility, c + 1));
        if n == 0 {
            f64::NAN
        } else {
            sum / n as f64
        }
    }

    /// Hosts scored / excluded for low coverage / fully dark.
    pub fn status_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for u in &self.users {
            match u.status {
                HostStatus::Evaluated => counts.0 += 1,
                HostStatus::LowCoverage => counts.1 += 1,
                HostStatus::Dark => counts.2 += 1,
            }
        }
        counts
    }

    /// Population-mean test coverage (all hosts, scored or not).
    pub fn mean_test_coverage(&self) -> f64 {
        if self.users.is_empty() {
            return 1.0;
        }
        self.users.iter().map(|u| u.test_coverage).sum::<f64>() / self.users.len() as f64
    }

    /// Total false alarms produced by the scored hosts.
    pub fn total_false_alarms(&self) -> u64 {
        self.users
            .iter()
            .filter_map(|u| u.perf)
            .map(|p| p.false_alarms)
            .sum()
    }

    /// Export this evaluation into `reg` under the `hids_degraded_*`
    /// families. Coverage (a deterministic fraction) is exposed as an
    /// integer gauge in parts per million, keeping the snapshot inside
    /// the integer-only determinism contract.
    pub fn export_metrics(&self, reg: &mut hids_metrics::Registry) {
        reg.register_gauge(
            "hids_degraded_hosts",
            "Hosts by degraded-evaluation status",
        );
        reg.register_counter(
            "hids_degraded_false_alarms_total",
            "False alarms raised by scored hosts",
        );
        reg.register_gauge(
            "hids_degraded_mean_test_coverage_ppm",
            "Population-mean test coverage, parts per million",
        );
        let (scored, low, dark) = self.status_counts();
        reg.gauge_set(
            "hids_degraded_hosts",
            &[("status", "evaluated")],
            scored as i64,
        );
        reg.gauge_set(
            "hids_degraded_hosts",
            &[("status", "low_coverage")],
            low as i64,
        );
        reg.gauge_set("hids_degraded_hosts", &[("status", "dark")], dark as i64);
        reg.counter_add(
            "hids_degraded_false_alarms_total",
            &[],
            self.total_false_alarms(),
        );
        reg.gauge_set(
            "hids_degraded_mean_test_coverage_ppm",
            &[],
            (self.mean_test_coverage() * 1e6) as i64,
        );
    }
}

/// The paper's per-user utility `U = 1 − [w·FN + (1−w)·FP]` — the one
/// scoring formula every evaluation path (exact, degraded, sketch-backed)
/// shares.
#[inline]
pub fn utility_of(w: f64, fp: f64, fn_rate: f64) -> f64 {
    1.0 - (w * fn_rate + (1.0 - w) * fp)
}

/// Score one host's already-fitted threshold against its test-week
/// quantile backend — the per-host kernel of the evaluation loop, exposed
/// for fleet-scale callers that hold [`QuantileSource::Sketch`] state
/// instead of stored samples.
///
/// `false_alarms` is derived as `round(exceedance · n)`: on the exact
/// backend this equals the stored-count tally the batch path computes,
/// and on the sketch backend it is the same quantity within the sketch's
/// rank-error bound.
pub fn score_source(test: &QuantileSource, threshold: f64, sweep: &AttackSweep, w: f64) -> UserPerf {
    let fp = test.exceedance(threshold);
    let fn_rate = sweep.mean_fn_source(test, threshold);
    let utility = utility_of(w, fp, fn_rate);
    let false_alarms = (fp * test.len() as f64).round() as u64;
    UserPerf {
        threshold,
        fp,
        fn_rate,
        utility,
        false_alarms,
    }
}

/// Configure `policy` on the evaluable hosts' available training data and
/// score them on their available test windows, reporting coverage and
/// exclusion status for every host.
pub fn evaluate_policy_degraded(
    dataset: &DegradedDataset,
    policy: &Policy,
    config: &DegradedEvalConfig,
) -> Result<DegradedEvaluation, DegradedError> {
    let n = dataset.n_users();
    if n == 0 {
        return Err(DegradedError::EmptyPopulation);
    }

    // Classify hosts. A host is evaluable when both weeks have data and
    // both coverages clear the floor.
    let mut status = Vec::with_capacity(n);
    let mut evaluated_hosts = Vec::new();
    for u in 0..n {
        let dark = dataset.train[u].is_none() || dataset.test[u].is_none();
        let covered = dataset.train_coverage[u] >= config.min_coverage
            && dataset.test_coverage[u] >= config.min_coverage;
        let s = if dark {
            HostStatus::Dark
        } else if !covered {
            HostStatus::LowCoverage
        } else {
            evaluated_hosts.push(u);
            HostStatus::Evaluated
        };
        status.push(s);
    }
    if evaluated_hosts.is_empty() {
        return Err(DegradedError::NoEvaluableHosts);
    }

    // Configure on the evaluable sub-population only: thresholds are
    // computed from the data that actually arrived.
    let sub_train: Vec<EmpiricalDist> = evaluated_hosts
        .iter()
        .map(|&u| dataset.train[u].clone().expect("evaluated host has train"))
        .collect();
    let outcome = policy
        .try_configure(&sub_train)
        .map_err(|_| DegradedError::NoEvaluableHosts)?;

    // Score the evaluable hosts in parallel (deterministic order).
    let perfs = crate::par::par_map(&outcome.thresholds, |i, &t| {
        let u = evaluated_hosts[i];
        let test = dataset.test[u].as_ref().expect("evaluated host has test");
        let counts = &dataset.test_counts[u];
        let fp = test.exceedance(t);
        let fn_rate = config.base.sweep.mean_fn(test, t);
        let utility = utility_of(config.base.w, fp, fn_rate);
        let false_alarms = counts.iter().filter(|&&c| c as f64 > t).count() as u64;
        UserPerf {
            threshold: t,
            fp,
            fn_rate,
            utility,
            false_alarms,
        }
    });

    let mut perf_of = vec![None; n];
    for (slot, perf) in evaluated_hosts.iter().zip(perfs) {
        perf_of[*slot] = Some(perf);
    }
    let users = (0..n)
        .map(|u| DegradedUserPerf {
            status: status[u],
            train_coverage: dataset.train_coverage[u],
            test_coverage: dataset.test_coverage[u],
            perf: perf_of[u],
        })
        .collect();

    Ok(DegradedEvaluation {
        users,
        outcome,
        evaluated_hosts,
        config: config.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate_policy, FeatureDataset};
    use crate::{Grouping, ThresholdHeuristic};
    use flowtab::{FeatureCounts, Windowing};

    fn series(n_windows: usize, gen: impl Fn(usize) -> u64) -> FeatureSeries {
        let mut s = FeatureSeries::zeros(Windowing::FIFTEEN_MIN, n_windows);
        for (w, c) in s.windows.iter_mut().enumerate() {
            *c = FeatureCounts::default();
            *c.get_mut(FeatureKind::TcpConnections) = gen(w);
        }
        s
    }

    fn population(n: usize, windows: usize) -> (Vec<FeatureSeries>, Vec<FeatureSeries>) {
        let train: Vec<FeatureSeries> = (0..n)
            .map(|i| series(windows, move |w| (w as u64 % 20) * (1 + i as u64)))
            .collect();
        let test: Vec<FeatureSeries> = (0..n)
            .map(|i| series(windows, move |w| ((w as u64 + 5) % 20) * (1 + i as u64)))
            .collect();
        (train, test)
    }

    fn full_masks(n: usize, windows: usize) -> Vec<Vec<bool>> {
        vec![vec![true; windows]; n]
    }

    fn p99() -> Policy {
        Policy {
            grouping: Grouping::FullDiversity,
            heuristic: ThresholdHeuristic::P99,
        }
    }

    fn config(ds_max: f64, min_coverage: f64) -> DegradedEvalConfig {
        DegradedEvalConfig {
            base: EvalConfig {
                w: 0.5,
                sweep: crate::threshold::AttackSweep::up_to(ds_max),
            },
            min_coverage,
        }
    }

    #[test]
    fn full_coverage_matches_clean_path_exactly() {
        let (train, test) = population(12, 150);
        let masks = full_masks(12, 150);
        let clean = FeatureDataset::from_series(&train, &test, FeatureKind::TcpConnections);
        let degraded = DegradedDataset::from_masked_series(
            &train,
            &test,
            &masks,
            &masks,
            FeatureKind::TcpConnections,
        )
        .unwrap();
        let cfg = config(clean.max_observed(), 0.0);
        let a = evaluate_policy(&clean, &p99(), &cfg.base);
        let b = evaluate_policy_degraded(&degraded, &p99(), &cfg).unwrap();
        assert_eq!(b.status_counts(), (12, 0, 0));
        for (ua, ub) in a.users.iter().zip(&b.users) {
            let pb = ub.perf.expect("all hosts evaluated");
            assert_eq!(ua, &pb, "degraded path must reproduce clean results");
        }
        assert_eq!(a.outcome.thresholds, b.outcome.thresholds);
        assert!((a.mean_utility() - b.mean_utility()).abs() < 1e-15);
    }

    #[test]
    fn dark_host_is_excluded_but_reported() {
        let (train, test) = population(6, 100);
        let mut train_masks = full_masks(6, 100);
        train_masks[3] = vec![false; 100];
        let test_masks = full_masks(6, 100);
        let ds = DegradedDataset::from_masked_series(
            &train,
            &test,
            &train_masks,
            &test_masks,
            FeatureKind::TcpConnections,
        )
        .unwrap();
        assert!(ds.train[3].is_none());
        let eval = evaluate_policy_degraded(&ds, &p99(), &config(2000.0, 0.0)).unwrap();
        assert_eq!(eval.status_counts(), (5, 0, 1));
        assert_eq!(eval.users[3].status, HostStatus::Dark);
        assert!(eval.users[3].perf.is_none());
        assert_eq!(eval.users[3].train_coverage, 0.0);
        assert_eq!(eval.evaluated_hosts, vec![0, 1, 2, 4, 5]);
        assert!(eval.mean_utility().is_finite());
    }

    #[test]
    fn coverage_floor_excludes_thin_hosts() {
        let (train, test) = population(5, 100);
        let mut test_masks = full_masks(5, 100);
        // Host 2 keeps only 10% of its test windows.
        for (w, cov) in test_masks[2].iter_mut().enumerate() {
            *cov = w % 10 == 0;
        }
        let train_masks = full_masks(5, 100);
        let ds = DegradedDataset::from_masked_series(
            &train,
            &test,
            &train_masks,
            &test_masks,
            FeatureKind::TcpConnections,
        )
        .unwrap();
        let eval = evaluate_policy_degraded(&ds, &p99(), &config(2000.0, 0.5)).unwrap();
        assert_eq!(eval.users[2].status, HostStatus::LowCoverage);
        assert!(eval.users[2].perf.is_none());
        assert!((eval.users[2].test_coverage - 0.1).abs() < 1e-12);
        // Floor at zero: same host is scored on what it sent.
        let eval0 = evaluate_policy_degraded(&ds, &p99(), &config(2000.0, 0.0)).unwrap();
        assert_eq!(eval0.users[2].status, HostStatus::Evaluated);
        assert!(eval0.users[2].perf.is_some());
    }

    #[test]
    fn host_exactly_at_floor_is_evaluated() {
        // The floor is inclusive: a host whose coverage equals
        // `min_coverage` in *both* weeks is configured and scored. 100
        // windows with every other window kept gives coverage exactly 0.5
        // (no floating-point slack needed: 50/100 is exact in binary).
        let (train, test) = population(4, 100);
        let half: Vec<bool> = (0..100).map(|w| w % 2 == 0).collect();
        let mut train_masks = full_masks(4, 100);
        let mut test_masks = full_masks(4, 100);
        train_masks[1] = half.clone();
        test_masks[1] = half;
        let ds = DegradedDataset::from_masked_series(
            &train,
            &test,
            &train_masks,
            &test_masks,
            FeatureKind::TcpConnections,
        )
        .unwrap();
        assert_eq!(ds.train_coverage[1], 0.5);
        assert_eq!(ds.test_coverage[1], 0.5);
        let eval = evaluate_policy_degraded(&ds, &p99(), &config(2000.0, 0.5)).unwrap();
        assert_eq!(
            eval.users[1].status,
            HostStatus::Evaluated,
            "coverage == floor must clear an inclusive floor"
        );
        assert!(eval.users[1].perf.is_some());
        assert!(eval.evaluated_hosts.contains(&1));
        // One window fewer and the same host drops below the floor.
        let mut thin = full_masks(4, 100);
        thin[1] = (0..100).map(|w| w % 2 == 0 && w != 0).collect();
        let ds_thin = DegradedDataset::from_masked_series(
            &train,
            &test,
            &thin,
            &full_masks(4, 100),
            FeatureKind::TcpConnections,
        )
        .unwrap();
        assert_eq!(ds_thin.train_coverage[1], 0.49);
        let eval_thin =
            evaluate_policy_degraded(&ds_thin, &p99(), &config(2000.0, 0.5)).unwrap();
        assert_eq!(eval_thin.users[1].status, HostStatus::LowCoverage);
    }

    #[test]
    fn one_thin_week_is_enough_to_demote() {
        // The Evaluated -> LowCoverage transition fires when *either* week
        // is thin, even with the other at full coverage — train-week and
        // test-week loss are each independently disqualifying.
        let (train, test) = population(5, 100);
        let thin: Vec<bool> = (0..100).map(|w| w % 5 == 0).collect(); // 20%

        // Thin test week only.
        let mut test_masks = full_masks(5, 100);
        test_masks[2] = thin.clone();
        let ds = DegradedDataset::from_masked_series(
            &train,
            &test,
            &full_masks(5, 100),
            &test_masks,
            FeatureKind::TcpConnections,
        )
        .unwrap();
        let eval = evaluate_policy_degraded(&ds, &p99(), &config(2000.0, 0.5)).unwrap();
        assert_eq!(eval.users[2].status, HostStatus::LowCoverage);
        assert_eq!(eval.users[2].train_coverage, 1.0);
        assert!(eval.users[2].perf.is_none());

        // Thin train week only: same demotion.
        let mut train_masks = full_masks(5, 100);
        train_masks[2] = thin;
        let ds = DegradedDataset::from_masked_series(
            &train,
            &test,
            &train_masks,
            &full_masks(5, 100),
            FeatureKind::TcpConnections,
        )
        .unwrap();
        let eval = evaluate_policy_degraded(&ds, &p99(), &config(2000.0, 0.5)).unwrap();
        assert_eq!(eval.users[2].status, HostStatus::LowCoverage);
        assert_eq!(eval.users[2].test_coverage, 1.0);
        assert!(eval.users[2].perf.is_none());
        // The demoted host is excluded from configuration, not from the
        // report: every other host is still scored.
        assert_eq!(eval.status_counts(), (4, 1, 0));
    }

    #[test]
    fn all_dark_population_is_an_error_not_a_panic() {
        let (train, test) = population(3, 50);
        let dark = vec![vec![false; 50]; 3];
        let full = full_masks(3, 50);
        let ds = DegradedDataset::from_masked_series(
            &train,
            &test,
            &dark,
            &full,
            FeatureKind::TcpConnections,
        )
        .unwrap();
        assert_eq!(
            evaluate_policy_degraded(&ds, &p99(), &config(100.0, 0.0)).unwrap_err(),
            DegradedError::NoEvaluableHosts
        );
    }

    #[test]
    fn mask_shape_mismatch_is_detected() {
        let (train, test) = population(2, 40);
        let mut masks = full_masks(2, 40);
        masks[1] = vec![true; 39];
        let err = DegradedDataset::from_masked_series(
            &train,
            &test,
            &masks,
            &full_masks(2, 40),
            FeatureKind::TcpConnections,
        )
        .unwrap_err();
        assert_eq!(
            err,
            DegradedError::MaskShapeMismatch {
                user: 1,
                windows: 40,
                mask: 39
            }
        );
    }

    #[test]
    fn coverage_accounting_sums_consistently() {
        let (train, test) = population(4, 200);
        let mut test_masks = full_masks(4, 200);
        for (u, mask) in test_masks.iter_mut().enumerate() {
            for (w, cov) in mask.iter_mut().enumerate() {
                *cov = (w + u) % 4 != 0;
            }
        }
        let ds = DegradedDataset::from_masked_series(
            &train,
            &test,
            &full_masks(4, 200),
            &test_masks,
            FeatureKind::TcpConnections,
        )
        .unwrap();
        for u in 0..4 {
            let kept = test_masks[u].iter().filter(|&&c| c).count();
            assert_eq!(ds.test_counts[u].len(), kept);
            assert!((ds.test_coverage[u] - kept as f64 / 200.0).abs() < 1e-12);
        }
    }

    #[test]
    fn score_source_exact_arm_matches_batch_scoring() {
        let counts: Vec<u64> = (0..300u64).map(|i| (i * 17) % 83).collect();
        let d = EmpiricalDist::from_counts(&counts);
        let sweep = AttackSweep::up_to(200.0);
        let w = 0.4;
        let t = 70.0;
        let perf = score_source(&QuantileSource::Exact(d.clone()), t, &sweep, w);
        // The batch closure's formulas, inlined.
        assert_eq!(perf.fp, d.exceedance(t));
        assert_eq!(perf.fn_rate, sweep.mean_fn(&d, t));
        assert_eq!(perf.utility, utility_of(w, perf.fp, perf.fn_rate));
        let tally = counts.iter().filter(|&&c| c as f64 > t).count() as u64;
        assert_eq!(perf.false_alarms, tally);
    }

    #[test]
    fn score_source_sketch_arm_stays_within_rank_bound() {
        let counts: Vec<u64> = (0..2000u64).map(|i| (i * 29) % 1223).collect();
        let d = EmpiricalDist::from_counts(&counts);
        let sweep = AttackSweep::up_to(1500.0);
        let src = QuantileSource::sketch_from_counts(0.01, &counts);
        let t = d.quantile_discrete(0.95);
        let exact = score_source(&QuantileSource::Exact(d), t, &sweep, 0.5);
        let sketched = score_source(&src, t, &sweep, 0.5);
        let eps = 0.01 + 1.0 / counts.len() as f64;
        assert!((exact.fp - sketched.fp).abs() <= eps);
        assert!((exact.fn_rate - sketched.fn_rate).abs() <= eps);
        assert!((exact.utility - sketched.utility).abs() <= eps);
    }
}
