//! Streaming train-vs-live drift tracking with a poisoning guard.
//!
//! The paper fits thresholds once (train week *n*, test week *n+1*) and
//! notes — without operationalising it — that per-host profiles drift
//! across weeks and that a resourceful attacker can sit below a stale
//! threshold. This module is the detection side of threshold
//! *maintenance*: a per-host [`DriftTracker`] watches the live stream of
//! window counts the daemon already ingests and compares the tail-onset
//! region of the live distribution against the training baseline.
//!
//! Design points:
//!
//! * **Tail-onset comparison.** Alarms live in the extreme tail, but the
//!   extreme tail of a short live window is pure noise. The tracker
//!   therefore compares a *tail-onset* quantile (default q90) of a
//!   sliding live window against the same quantile of the training
//!   distribution, smoothed with an EWMA — a shift there predicts a shift
//!   in the alarm quantile without needing a week of data.
//! * **Hysteresis.** One hot bin must not trigger a refit: divergence has
//!   to persist for [`DriftConfig::trigger_after`] consecutive
//!   evaluations, and a cooling streak resets the count. Once drift
//!   *has* latched, it stays latched until [`DriftTracker::reset`] (the
//!   rollout that consumed it completed).
//! * **Poisoning guard.** The "boiling frog" variant of the paper's
//!   mimicry attacker inflates a host's baseline a little at a time so a
//!   naive refit learns the attack as normal. Legitimate drift wanders;
//!   this attack is *monotone by construction*. The guard latches a host
//!   as suspect when the smoothed onset rises without a single meaningful
//!   decrease for [`DriftConfig::poison_run`] evaluations *and* the total
//!   inflation exceeds [`DriftConfig::poison_ratio`]. A suspect tracker
//!   refuses to hand out a refit window ([`DriftTracker::refit_dist`]
//!   returns `None`), and the caller falls back to the host's *group*
//!   threshold from the partial-diversity policy — the paper's own
//!   observation that group thresholds resist single-host manipulation.
//!
//! Everything here is pure per-host state driven by `observe` calls, so
//! two deliveries of the same per-host stream produce bit-identical
//! verdicts regardless of how hosts interleave.

use std::collections::VecDeque;

use tailstats::{EmpiricalDist, Ewma, KllSketch, QuantileSource};

/// Tunables for a [`DriftTracker`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Tail-onset quantile compared between train and live (the region
    /// just below where alarm thresholds live).
    pub onset_q: f64,
    /// Sliding live window length, in bins.
    pub window: usize,
    /// Relative divergence of the smoothed live onset from the training
    /// onset that marks one evaluation "hot".
    pub hot: f64,
    /// Consecutive hot evaluations required to latch
    /// [`DriftState::Drifted`].
    pub trigger_after: u32,
    /// Consecutive cool evaluations that clear an unlatched hot streak.
    pub cool_after: u32,
    /// EWMA smoothing factor for the live onset series.
    pub alpha: f64,
    /// Poisoning guard: live/train onset ratio above which a sustained
    /// monotone rise marks the window suspect.
    pub poison_ratio: f64,
    /// Poisoning guard: cumulative raw-onset increases, uninterrupted by
    /// any decrease, required (together with `poison_ratio`) to latch
    /// suspicion. Must exceed `window`: an abrupt benign step change
    /// produces at most `window` consecutive increases while the sliding
    /// window fills, whereas a boiling-frog ramp keeps climbing.
    pub poison_run: u32,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            onset_q: 0.90,
            window: 48,
            hot: 0.25,
            trigger_after: 8,
            cool_after: 4,
            alpha: 0.2,
            poison_ratio: 1.5,
            poison_run: 72,
        }
    }
}

/// Where a tracker currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftState {
    /// Live onset tracks the training onset.
    Stable,
    /// Divergence observed but not yet persistent enough to act on.
    Heating,
    /// Persistent divergence: a refit is warranted (latched until
    /// [`DriftTracker::reset`]).
    Drifted,
}

/// Per-host, per-feature streaming drift tracker.
#[derive(Debug, Clone)]
pub struct DriftTracker {
    cfg: DriftConfig,
    train_onset: f64,
    recent: VecDeque<u64>,
    ewma: Ewma,
    smoothed: Option<f64>,
    hot_streak: u32,
    cool_streak: u32,
    state: DriftState,
    // Poisoning guard state.
    inflate_run: u32,
    last_onset: f64,
    suspect: bool,
    // Live window frozen at the moment drift latched — the refit input.
    trigger_window: Option<Vec<u64>>,
    bins: u64,
}

impl DriftTracker {
    /// Build a tracker for one host from its training distribution.
    pub fn new(train: &EmpiricalDist, cfg: DriftConfig) -> Self {
        Self::with_onset(train.quantile(cfg.onset_q), cfg)
    }

    /// Build a tracker from either quantile backend. The exact arm reads
    /// the same `quantile(onset_q)` as [`new`](Self::new), so it is
    /// bit-identical; the sketch arm reads the baseline off the summary,
    /// letting a fleet-scale daemon track drift without stored samples.
    pub fn from_source(train: &QuantileSource, cfg: DriftConfig) -> Self {
        Self::with_onset(train.quantile(cfg.onset_q), cfg)
    }

    fn with_onset(train_onset: f64, cfg: DriftConfig) -> Self {
        Self {
            train_onset,
            recent: VecDeque::with_capacity(cfg.window.max(1)),
            ewma: Ewma::new(cfg.alpha),
            smoothed: None,
            hot_streak: 0,
            cool_streak: 0,
            state: DriftState::Stable,
            inflate_run: 0,
            last_onset: 0.0,
            suspect: false,
            trigger_window: None,
            bins: 0,
            cfg,
        }
    }

    /// Feed one live bin (window count). Returns the tracker state after
    /// absorbing it.
    pub fn observe(&mut self, count: u64) -> DriftState {
        self.bins += 1;
        if self.recent.len() == self.cfg.window.max(1) {
            self.recent.pop_front();
        }
        self.recent.push_back(count);
        if self.recent.len() < self.cfg.window.max(1) {
            return self.state; // window not yet full: no evaluation
        }

        let counts: Vec<u64> = self.recent.iter().copied().collect();
        let live_onset = EmpiricalDist::from_counts(&counts).quantile(self.cfg.onset_q);
        let smoothed = self.ewma.observe(live_onset);
        let prev = self.smoothed.replace(smoothed);

        // Poisoning guard: a monotone (never meaningfully decreasing)
        // rise of the *raw* live onset, sustained long enough and far
        // enough above the baseline, is the boiling-frog signature.
        // Legitimate regime changes wander — their raw quantile series
        // has real decreases that keep resetting the run — whereas a
        // ratchet attack is non-decreasing by construction. The raw
        // series is used deliberately: the EWMA would smooth any
        // sustained rise into monotonicity and flag benign drift too.
        // A plateau neither extends nor resets the run: an abrupt
        // (benign) step change yields at most `window` consecutive
        // increases while the window fills, then plateaus — which is why
        // `poison_run` must exceed `window` to separate the two.
        if prev.is_some() {
            let eps = self.last_onset.abs().max(1.0) * 1e-9;
            if live_onset > self.last_onset + eps {
                self.inflate_run += 1;
            } else if live_onset < self.last_onset - eps {
                self.inflate_run = 0;
            }
        }
        self.last_onset = live_onset;
        let denom = self.train_onset.max(1e-9);
        if self.inflate_run >= self.cfg.poison_run && smoothed / denom >= self.cfg.poison_ratio {
            self.suspect = true;
        }

        // Hysteresis over the relative divergence score.
        let score = self.score_of(smoothed);
        if score.abs() >= self.cfg.hot {
            self.hot_streak += 1;
            self.cool_streak = 0;
            if self.hot_streak >= self.cfg.trigger_after && self.state != DriftState::Drifted {
                self.state = DriftState::Drifted;
                self.trigger_window = Some(counts);
            } else if self.state == DriftState::Stable {
                self.state = DriftState::Heating;
            }
        } else {
            self.cool_streak += 1;
            if self.cool_streak >= self.cfg.cool_after {
                self.hot_streak = 0;
                if self.state == DriftState::Heating {
                    self.state = DriftState::Stable;
                }
            }
        }
        self.state
    }

    fn score_of(&self, smoothed: f64) -> f64 {
        (smoothed - self.train_onset) / self.train_onset.max(1.0)
    }

    /// Signed relative divergence of the smoothed live onset from the
    /// training onset (positive = live runs hotter than training). Zero
    /// until the first full window has been observed.
    pub fn score(&self) -> f64 {
        self.smoothed.map_or(0.0, |s| self.score_of(s))
    }

    /// Current state.
    pub fn state(&self) -> DriftState {
        self.state
    }

    /// Whether the poisoning guard has latched this host as suspect.
    pub fn suspect(&self) -> bool {
        self.suspect
    }

    /// Live bins observed so far.
    pub fn bins(&self) -> u64 {
        self.bins
    }

    /// The refit input: the live window frozen when drift latched.
    /// `None` while stable — and, deliberately, `None` for a suspect
    /// host: a window flagged by the poisoning guard must not be learned
    /// from, and the caller falls back to the host's group threshold.
    pub fn refit_dist(&self) -> Option<EmpiricalDist> {
        if self.suspect {
            return None;
        }
        self.trigger_window
            .as_ref()
            .map(|w| EmpiricalDist::from_counts(w))
    }

    /// Sketch-backed variant of [`refit_dist`](Self::refit_dist): the
    /// frozen trigger window streamed into a fresh [`KllSketch`] with
    /// budget `eps`. Subject to the same poisoning-guard refusal — a
    /// suspect host gets `None`.
    pub fn refit_source(&self, eps: f64) -> Option<QuantileSource> {
        if self.suspect {
            return None;
        }
        self.trigger_window.as_ref().map(|w| {
            let mut s = KllSketch::new(eps);
            s.extend_from_counts(w);
            QuantileSource::Sketch(s)
        })
    }

    /// Clear the drift latch and guard state after a rollout consumed
    /// this tracker's verdict (the live window keeps streaming).
    pub fn reset(&mut self) {
        self.state = DriftState::Stable;
        self.hot_streak = 0;
        self.cool_streak = 0;
        self.inflate_run = 0;
        self.suspect = false;
        self.trigger_window = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train(level: u64) -> EmpiricalDist {
        // 100 bins of mild noise around `level`.
        let counts: Vec<u64> = (0..100).map(|i| level + (i % 7)).collect();
        EmpiricalDist::from_counts(&counts)
    }

    fn cfg() -> DriftConfig {
        DriftConfig {
            window: 16,
            trigger_after: 4,
            cool_after: 2,
            poison_run: 24,
            ..DriftConfig::default()
        }
    }

    #[test]
    fn stable_stream_never_triggers() {
        let mut t = DriftTracker::new(&train(100), cfg());
        for i in 0..200u64 {
            t.observe(100 + (i % 7));
        }
        assert_eq!(t.state(), DriftState::Stable);
        assert!(!t.suspect());
        assert!(t.score().abs() < 0.1, "score {}", t.score());
    }

    #[test]
    fn one_hot_bin_does_not_latch() {
        let mut t = DriftTracker::new(&train(100), cfg());
        for i in 0..40u64 {
            t.observe(100 + (i % 7));
        }
        // One wild window then back to normal: hysteresis must absorb it.
        t.observe(100_000);
        for i in 0..40u64 {
            t.observe(100 + (i % 7));
        }
        assert_ne!(t.state(), DriftState::Drifted);
    }

    #[test]
    fn sustained_downward_drift_latches_and_is_not_suspect() {
        let mut t = DriftTracker::new(&train(100), cfg());
        for i in 0..30u64 {
            t.observe(100 + (i % 7));
        }
        for i in 0..60u64 {
            t.observe(50 + (i % 5));
        }
        assert_eq!(t.state(), DriftState::Drifted);
        assert!(!t.suspect(), "deflation is drift, not poisoning");
        assert!(t.score() < -0.2);
        let refit = t.refit_dist().expect("benign drift hands out a refit window");
        assert!(refit.quantile(0.99) < 70.0);
    }

    #[test]
    fn monotone_inflation_latches_suspect_and_refuses_refit() {
        let mut t = DriftTracker::new(&train(100), cfg());
        for i in 0..30u64 {
            t.observe(100 + (i % 7));
        }
        // Boiling frog: ratchet up ~1% per bin to ~2.5x baseline.
        let mut level = 100f64;
        for _ in 0..120 {
            level *= 1.01;
            t.observe(level as u64);
        }
        assert_eq!(t.state(), DriftState::Drifted, "inflation is drift too");
        assert!(t.suspect(), "monotone inflation must latch the guard");
        assert!(t.refit_dist().is_none(), "suspect windows are not learned from");
    }

    #[test]
    fn wandering_drift_is_not_flagged_as_poisoning() {
        let mut t = DriftTracker::new(&train(100), cfg());
        for i in 0..30u64 {
            t.observe(100 + (i % 7));
        }
        // Legitimate regime change: the level runs hot and cool in
        // blocks longer than the tracker window (think diurnal load),
        // so the raw onset series has real decreases that keep breaking
        // any monotone run.
        for block in 0..6u64 {
            let level = if block % 2 == 0 { 180 } else { 130 };
            for i in 0..20u64 {
                t.observe(level + (i % 5));
            }
        }
        assert!(!t.suspect(), "non-monotone rise must not latch the guard");
    }

    #[test]
    fn reset_clears_latch_and_guard() {
        let mut t = DriftTracker::new(&train(100), cfg());
        for i in 0..30u64 {
            t.observe(100 + (i % 7));
        }
        let mut level = 100f64;
        for _ in 0..120 {
            level *= 1.01;
            t.observe(level as u64);
        }
        assert!(t.suspect());
        t.reset();
        assert_eq!(t.state(), DriftState::Stable);
        assert!(!t.suspect());
        assert!(t.refit_dist().is_none());
    }

    #[test]
    fn from_source_exact_arm_matches_new_bitwise() {
        let d = train(100);
        let src = QuantileSource::Exact(d.clone());
        let stream: Vec<u64> = (0..120u64).map(|i| 100 + (i * 31 % 41)).collect();
        let mut a = DriftTracker::new(&d, cfg());
        let mut b = DriftTracker::from_source(&src, cfg());
        for &c in &stream {
            assert_eq!(a.observe(c), b.observe(c));
        }
        assert_eq!(a.score().to_bits(), b.score().to_bits());
    }

    #[test]
    fn refit_source_streams_trigger_window_and_honours_guard() {
        let mut t = DriftTracker::new(&train(100), cfg());
        for i in 0..30u64 {
            t.observe(100 + (i % 7));
        }
        for i in 0..60u64 {
            t.observe(50 + (i % 5));
        }
        assert_eq!(t.state(), DriftState::Drifted);
        let exact = t.refit_dist().expect("benign drift refits");
        let sketched = t.refit_source(0.001).expect("benign drift refits");
        // Tight eps on a 16-bin window: the sketch is uncompacted and
        // answers identically to the exact refit.
        assert_eq!(sketched.quantile(0.99), exact.quantile(0.99));
        assert_eq!(sketched.len(), exact.len() as u64);

        // Suspect hosts are refused by both forms.
        let mut p = DriftTracker::new(&train(100), cfg());
        for i in 0..30u64 {
            p.observe(100 + (i % 7));
        }
        let mut level = 100f64;
        for _ in 0..120 {
            level *= 1.01;
            p.observe(level as u64);
        }
        assert!(p.suspect());
        assert!(p.refit_dist().is_none());
        assert!(p.refit_source(0.001).is_none());
    }

    #[test]
    fn determinism_same_stream_same_verdicts() {
        let stream: Vec<u64> = (0..150u64).map(|i| 100 + (i * 37 % 53)).collect();
        let run = |s: &[u64]| {
            let mut t = DriftTracker::new(&train(100), cfg());
            for &c in s {
                t.observe(c);
            }
            (t.state(), t.suspect(), t.score().to_bits())
        };
        assert_eq!(run(&stream), run(&stream));
    }
}
