//! Incremental per-host window state: apply, merge, and conversion into
//! the degraded-mode evaluation types.
//!
//! Batch experiments hand [`FeatureDataset`](crate::eval::FeatureDataset)
//! a complete week of windows per host. A long-running evaluation daemon
//! cannot: windows arrive in partial batches, out of phase across hosts,
//! interrupted by crashes and restarts. This module provides the state
//! object that makes streaming accumulation equivalent to the batch path:
//!
//! * [`WindowAccumulator`] — a sparse, ordered `window → count` map with
//!   idempotent [`insert`](WindowAccumulator::insert) (a window observed
//!   twice — e.g. replayed from a write-ahead log after an unacknowledged
//!   delivery — keeps its first value) and commutative-per-window
//!   [`merge`](WindowAccumulator::merge);
//! * [`degraded_dataset`] — assembles per-host train/test accumulators
//!   into a [`DegradedDataset`], so whatever subset of windows survived
//!   crashes, shedding and quarantine is evaluated with the exact coverage
//!   accounting PR 2 introduced.
//!
//! The pinned equivalence: accumulating every window of a series and
//! calling [`degraded_dataset`] reproduces
//! [`DegradedDataset::from_masked_series`] with full masks bit-for-bit,
//! and therefore (at a zero coverage floor) the clean batch evaluation.

use std::collections::BTreeMap;

use flowtab::FeatureKind;
use tailstats::{EmpiricalDist, KllSketch, QuantileSource};

use crate::degraded::{DegradedDataset, DegradedError};

/// A sparse accumulator of per-window feature counts for one host and one
/// week. Windows are keyed by index; iteration order is always ascending,
/// so everything derived from an accumulator is deterministic regardless
/// of arrival order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WindowAccumulator {
    windows: BTreeMap<u32, u64>,
}

impl WindowAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one window's count. Returns `true` when the window was new;
    /// a window already present keeps its original value (idempotent
    /// re-apply, the property crash-recovery replay relies on).
    pub fn insert(&mut self, window: u32, count: u64) -> bool {
        use std::collections::btree_map::Entry;
        match self.windows.entry(window) {
            Entry::Vacant(v) => {
                v.insert(count);
                true
            }
            Entry::Occupied(_) => false,
        }
    }

    /// Merge another accumulator in (e.g. combining shard-local state).
    /// For windows present on both sides, `self` wins — consistent with
    /// [`insert`](WindowAccumulator::insert)'s first-write-wins rule.
    pub fn merge(&mut self, other: &Self) {
        for (&w, &c) in &other.windows {
            self.insert(w, c);
        }
    }

    /// Number of windows recorded.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Fraction of an `n_windows`-wide week that has been recorded.
    /// An empty week (`n_windows == 0`) counts as fully covered, matching
    /// [`DegradedDataset`]'s convention.
    pub fn coverage(&self, n_windows: usize) -> f64 {
        if n_windows == 0 {
            1.0
        } else {
            self.windows.len().min(n_windows) as f64 / n_windows as f64
        }
    }

    /// The coverage mask over an `n_windows`-wide week.
    pub fn mask(&self, n_windows: usize) -> Vec<bool> {
        let mut m = vec![false; n_windows];
        for &w in self.windows.keys() {
            if let Some(slot) = m.get_mut(w as usize) {
                *slot = true;
            }
        }
        m
    }

    /// Recorded counts in ascending window order (the covered-window
    /// count vector degraded evaluation consumes).
    pub fn counts(&self) -> Vec<u64> {
        self.windows.values().copied().collect()
    }

    /// Recorded `(window, count)` pairs in ascending window order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.windows.iter().map(|(&w, &c)| (w, c))
    }

    /// Rebuild from `(window, count)` pairs (snapshot load). Duplicate
    /// windows keep the first occurrence.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u32, u64)>) -> Self {
        let mut acc = Self::new();
        for (w, c) in pairs {
            acc.insert(w, c);
        }
        acc
    }

    /// Empirical distribution over the recorded windows; `None` when no
    /// window has been recorded (a dark week).
    pub fn dist(&self) -> Option<EmpiricalDist> {
        if self.windows.is_empty() {
            None
        } else {
            Some(EmpiricalDist::from_counts(&self.counts()))
        }
    }
}

/// The bounded-memory analogue of [`WindowAccumulator`] for fleet-scale
/// runs: counts stream into a deterministic [`KllSketch`] instead of a
/// per-window map, while a compact bitmap over window indices preserves
/// the accumulator contract the daemon relies on — idempotent
/// first-write-wins [`insert`](SketchAccumulator::insert) (so WAL replay
/// after a crash cannot double-count a window) and exact coverage
/// accounting. Unlike `WindowAccumulator` the original per-window counts
/// are *not* recoverable; only rank/tail queries (through
/// [`source`](SketchAccumulator::source)) are supported, which is all
/// threshold fitting needs.
#[derive(Debug, Clone, PartialEq)]
pub struct SketchAccumulator {
    /// Window-index bitmap: bit `w` set iff window `w` was recorded.
    seen: Vec<u64>,
    /// Number of set bits in `seen` (windows recorded).
    n_seen: u64,
    sketch: KllSketch,
}

impl SketchAccumulator {
    /// An empty accumulator with rank-error budget `eps` (see
    /// [`KllSketch::new`] for the accepted range).
    pub fn new(eps: f64) -> Self {
        Self {
            seen: Vec::new(),
            n_seen: 0,
            sketch: KllSketch::new(eps),
        }
    }

    /// Wrap an already-built sketch plus its window bitmap (snapshot
    /// load). `n_seen` is recounted from the bitmap.
    pub fn from_parts(seen: Vec<u64>, sketch: KllSketch) -> Self {
        let n_seen = seen.iter().map(|w| w.count_ones() as u64).sum();
        Self {
            seen,
            n_seen,
            sketch,
        }
    }

    /// Record one window's count. Returns `true` when the window was new;
    /// a window already present is ignored entirely (idempotent re-apply —
    /// the count does not enter the sketch a second time).
    pub fn insert(&mut self, window: u32, count: u64) -> bool {
        let slot = (window / 64) as usize;
        let bit = 1u64 << (window % 64);
        if slot >= self.seen.len() {
            self.seen.resize(slot + 1, 0);
        }
        if self.seen[slot] & bit != 0 {
            return false;
        }
        self.seen[slot] |= bit;
        self.n_seen += 1;
        self.sketch.insert(count);
        true
    }

    /// Number of windows recorded.
    pub fn len(&self) -> usize {
        self.n_seen as usize
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.n_seen == 0
    }

    /// Fraction of an `n_windows`-wide week that has been recorded, with
    /// the same empty-week convention as
    /// [`WindowAccumulator::coverage`].
    pub fn coverage(&self, n_windows: usize) -> f64 {
        if n_windows == 0 {
            1.0
        } else {
            (self.n_seen as usize).min(n_windows) as f64 / n_windows as f64
        }
    }

    /// Whether a particular window has been recorded.
    pub fn contains(&self, window: u32) -> bool {
        let slot = (window / 64) as usize;
        self.seen
            .get(slot)
            .is_some_and(|&w| w & (1u64 << (window % 64)) != 0)
    }

    /// Borrow the underlying sketch.
    pub fn sketch(&self) -> &KllSketch {
        &self.sketch
    }

    /// Borrow the window bitmap (snapshot encode).
    pub fn seen_words(&self) -> &[u64] {
        &self.seen
    }

    /// Quantile source over the recorded windows; `None` when no window
    /// has been recorded (a dark week), mirroring
    /// [`WindowAccumulator::dist`].
    pub fn source(&self) -> Option<QuantileSource> {
        if self.is_empty() {
            None
        } else {
            Some(QuantileSource::Sketch(self.sketch.clone()))
        }
    }
}

impl IntoIterator for &WindowAccumulator {
    type Item = (u32, u64);
    type IntoIter = std::vec::IntoIter<(u32, u64)>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter().collect::<Vec<_>>().into_iter()
    }
}

/// Assemble per-host `(train, test)` accumulators into a
/// [`DegradedDataset`] over an `n_windows`-wide week, ready for
/// [`evaluate_policy_degraded`](crate::evaluate_policy_degraded).
///
/// Hosts with an empty week come out as dark exactly as they would from
/// [`DegradedDataset::from_masked_series`] with an all-false mask.
pub fn degraded_dataset(
    feature: FeatureKind,
    n_windows: usize,
    hosts: &[(&WindowAccumulator, &WindowAccumulator)],
) -> Result<DegradedDataset, DegradedError> {
    if hosts.is_empty() {
        return Err(DegradedError::EmptyPopulation);
    }
    let n = hosts.len();
    let mut train = Vec::with_capacity(n);
    let mut test = Vec::with_capacity(n);
    let mut test_counts = Vec::with_capacity(n);
    let mut train_coverage = Vec::with_capacity(n);
    let mut test_coverage = Vec::with_capacity(n);
    for (tr, te) in hosts {
        train.push(tr.dist());
        test.push(te.dist());
        test_counts.push(te.counts());
        train_coverage.push(tr.coverage(n_windows));
        test_coverage.push(te.coverage(n_windows));
    }
    Ok(DegradedDataset {
        feature,
        train,
        test,
        test_counts,
        train_coverage,
        test_coverage,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degraded::{evaluate_policy_degraded, DegradedEvalConfig};
    use crate::eval::EvalConfig;
    use crate::{Grouping, Policy, ThresholdHeuristic};
    use flowtab::{FeatureCounts, FeatureSeries, Windowing};

    fn series(n_windows: usize, gen: impl Fn(usize) -> u64) -> FeatureSeries {
        let mut s = FeatureSeries::zeros(Windowing::FIFTEEN_MIN, n_windows);
        for (w, c) in s.windows.iter_mut().enumerate() {
            *c = FeatureCounts::default();
            *c.get_mut(FeatureKind::TcpConnections) = gen(w);
        }
        s
    }

    fn accumulate(s: &FeatureSeries, keep: impl Fn(usize) -> bool) -> WindowAccumulator {
        let mut acc = WindowAccumulator::new();
        for (w, &c) in s.feature(FeatureKind::TcpConnections).iter().enumerate() {
            if keep(w) {
                acc.insert(w as u32, c);
            }
        }
        acc
    }

    #[test]
    fn insert_is_idempotent_first_write_wins() {
        let mut acc = WindowAccumulator::new();
        assert!(acc.insert(3, 10));
        assert!(!acc.insert(3, 99), "re-apply must be a no-op");
        assert_eq!(acc.counts(), vec![10]);
        assert_eq!(acc.len(), 1);
    }

    #[test]
    fn counts_are_window_ordered_regardless_of_arrival() {
        let mut a = WindowAccumulator::new();
        for w in [5u32, 1, 9, 0, 3] {
            a.insert(w, u64::from(w) * 10);
        }
        assert_eq!(a.counts(), vec![0, 10, 30, 50, 90]);
        assert_eq!(a.mask(10), vec![
            true, true, false, true, false, true, false, false, false, true
        ]);
    }

    #[test]
    fn merge_matches_sequential_apply() {
        let s = series(64, |w| (w as u64 * 7) % 23);
        let full = accumulate(&s, |_| true);
        let even = accumulate(&s, |w| w % 2 == 0);
        let odd = accumulate(&s, |w| w % 2 == 1);
        let mut merged = even.clone();
        merged.merge(&odd);
        assert_eq!(merged, full);
        // Merge order is irrelevant.
        let mut other = odd;
        other.merge(&even);
        assert_eq!(other, full);
    }

    #[test]
    fn roundtrips_through_pairs() {
        let s = series(40, |w| w as u64 % 11);
        let acc = accumulate(&s, |w| w % 3 != 0);
        let back = WindowAccumulator::from_pairs(acc.iter());
        assert_eq!(back, acc);
    }

    #[test]
    fn full_accumulation_matches_masked_series_path() {
        let n = 6;
        let windows = 96;
        let train: Vec<FeatureSeries> = (0..n)
            .map(|i| series(windows, move |w| (w as u64 % 17) * (1 + i as u64)))
            .collect();
        let test: Vec<FeatureSeries> = (0..n)
            .map(|i| series(windows, move |w| ((w as u64 + 3) % 17) * (1 + i as u64)))
            .collect();
        // Host 2 loses every third test window; host 4 is fully dark in
        // training.
        let keep_test = |u: usize, w: usize| u != 2 || w % 3 != 0;
        let keep_train = |u: usize, _w: usize| u != 4;

        let train_masks: Vec<Vec<bool>> = (0..n)
            .map(|u| (0..windows).map(|w| keep_train(u, w)).collect())
            .collect();
        let test_masks: Vec<Vec<bool>> = (0..n)
            .map(|u| (0..windows).map(|w| keep_test(u, w)).collect())
            .collect();
        let expect = DegradedDataset::from_masked_series(
            &train,
            &test,
            &train_masks,
            &test_masks,
            FeatureKind::TcpConnections,
        )
        .unwrap();

        let train_accs: Vec<WindowAccumulator> = (0..n)
            .map(|u| accumulate(&train[u], |w| keep_train(u, w)))
            .collect();
        let test_accs: Vec<WindowAccumulator> = (0..n)
            .map(|u| accumulate(&test[u], |w| keep_test(u, w)))
            .collect();
        let pairs: Vec<_> = train_accs.iter().zip(&test_accs).collect();
        let hosts: Vec<(&WindowAccumulator, &WindowAccumulator)> =
            pairs.iter().map(|(a, b)| (*a, *b)).collect();
        let got = degraded_dataset(FeatureKind::TcpConnections, windows, &hosts).unwrap();

        assert_eq!(got.train, expect.train);
        assert_eq!(got.test, expect.test);
        assert_eq!(got.test_counts, expect.test_counts);
        assert_eq!(got.train_coverage, expect.train_coverage);
        assert_eq!(got.test_coverage, expect.test_coverage);

        // And the evaluations agree exactly.
        let policy = Policy {
            grouping: Grouping::FullDiversity,
            heuristic: ThresholdHeuristic::P99,
        };
        let cfg = DegradedEvalConfig {
            base: EvalConfig {
                w: 0.5,
                sweep: crate::threshold::AttackSweep::up_to(500.0),
            },
            min_coverage: 0.0,
        };
        let a = evaluate_policy_degraded(&expect, &policy, &cfg).unwrap();
        let b = evaluate_policy_degraded(&got, &policy, &cfg).unwrap();
        assert_eq!(a.outcome.thresholds, b.outcome.thresholds);
        assert_eq!(a.users, b.users);
    }

    #[test]
    fn empty_population_is_rejected() {
        assert_eq!(
            degraded_dataset(FeatureKind::TcpConnections, 10, &[]).unwrap_err(),
            DegradedError::EmptyPopulation
        );
    }

    #[test]
    fn sketch_accumulator_first_write_wins_and_tracks_coverage() {
        let mut acc = SketchAccumulator::new(0.01);
        assert!(acc.insert(3, 10));
        assert!(!acc.insert(3, 99), "re-apply must be a no-op");
        assert!(acc.insert(70, 20));
        assert_eq!(acc.len(), 2);
        assert!(acc.contains(3) && acc.contains(70) && !acc.contains(4));
        assert_eq!(acc.coverage(100), 0.02);
        // The replayed count never entered the sketch.
        let src = acc.source().expect("non-empty");
        assert_eq!(src.len(), 2);
        assert_eq!(src.max(), 20.0);
    }

    #[test]
    fn sketch_accumulator_matches_window_accumulator_when_uncompacted() {
        let s = series(64, |w| (w as u64 * 13) % 29);
        let exact = accumulate(&s, |w| w % 5 != 0);
        let mut sk = SketchAccumulator::new(0.001);
        for (w, &c) in s
            .feature(FeatureKind::TcpConnections)
            .iter()
            .enumerate()
        {
            if w % 5 != 0 {
                sk.insert(w as u32, c);
            }
        }
        assert_eq!(sk.len(), exact.len());
        assert_eq!(sk.coverage(64), exact.coverage(64));
        let d = exact.dist().expect("non-empty");
        let src = sk.source().expect("non-empty");
        for q in [0.0, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(src.quantile_discrete(q), d.quantile_discrete(q));
        }
    }

    #[test]
    fn sketch_accumulator_roundtrips_parts() {
        let mut acc = SketchAccumulator::new(0.05);
        for w in 0..200u32 {
            acc.insert(w, u64::from(w) % 17);
        }
        let back =
            SketchAccumulator::from_parts(acc.seen_words().to_vec(), acc.sketch().clone());
        assert_eq!(back, acc);
        assert_eq!(back.len(), 200);
    }

    #[test]
    fn coverage_of_empty_week_is_total() {
        let acc = WindowAccumulator::new();
        assert_eq!(acc.coverage(0), 1.0);
        assert_eq!(acc.coverage(10), 0.0);
        assert!(acc.dist().is_none());
    }
}
