//! Property-based tests of policy configuration and evaluation.

use proptest::prelude::*;

use flowtab::{FeatureCounts, FeatureKind, FeatureSeries, Windowing};
use hids_core::{
    eval::evaluate_policy, EvalConfig, FeatureDataset, Grouping, PartialMethod, Policy,
    PolicyBundle, ThresholdHeuristic,
};

/// Arbitrary small population of count series (train ≈ test with noise).
fn arb_population() -> impl Strategy<Value = (Vec<FeatureSeries>, Vec<FeatureSeries>)> {
    proptest::collection::vec(
        (1u64..2000, proptest::collection::vec(0u64..100, 30..80)),
        2..10,
    )
    .prop_map(|users| {
        let mk = |scaled: &[(u64, Vec<u64>)], shift: usize| -> Vec<FeatureSeries> {
            scaled
                .iter()
                .map(|(scale, raw)| {
                    let mut s = FeatureSeries::zeros(Windowing::FIFTEEN_MIN, raw.len());
                    for (w, c) in s.windows.iter_mut().enumerate() {
                        let v = raw[(w + shift) % raw.len()] * scale / 10;
                        *c = FeatureCounts::default();
                        *c.get_mut(FeatureKind::TcpConnections) = v;
                    }
                    s
                })
                .collect()
        };
        (mk(&users, 0), mk(&users, 7))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The per-user utility is exactly `1 − w·FN − (1−w)·FP`, and all
    /// reported rates live in [0, 1], under every grouping.
    #[test]
    fn evaluation_identities((train, test) in arb_population(), w in 0.0f64..1.0) {
        let ds = FeatureDataset::from_series(&train, &test, FeatureKind::TcpConnections);
        let config = EvalConfig { w, sweep: ds.default_sweep() };
        for grouping in [
            Grouping::Homogeneous,
            Grouping::FullDiversity,
            Grouping::Partial(PartialMethod::EIGHT_PARTIAL),
        ] {
            let eval = evaluate_policy(
                &ds,
                &Policy { grouping, heuristic: ThresholdHeuristic::P99 },
                &config,
            );
            for u in &eval.users {
                prop_assert!((0.0..=1.0).contains(&u.fp));
                prop_assert!((0.0..=1.0).contains(&u.fn_rate));
                let expect = 1.0 - (w * u.fn_rate + (1.0 - w) * u.fp);
                prop_assert!((u.utility - expect).abs() < 1e-12);
            }
            // Homogeneous means one distinct threshold.
            if grouping == Grouping::Homogeneous {
                prop_assert!(eval.users.windows(2).all(|p| p[0].threshold == p[1].threshold));
            }
        }
    }

    /// Full-diversity thresholds equal the per-user local computation, and
    /// every user's training FP under their own p99 threshold is ≤ 1%.
    #[test]
    fn full_diversity_is_local((train, test) in arb_population()) {
        let ds = FeatureDataset::from_series(&train, &test, FeatureKind::TcpConnections);
        let out = Policy {
            grouping: Grouping::FullDiversity,
            heuristic: ThresholdHeuristic::P99,
        }
        .configure(&ds.train);
        for (d, &t) in ds.train.iter().zip(&out.thresholds) {
            prop_assert_eq!(t, ThresholdHeuristic::P99.threshold(d));
            prop_assert!(d.exceedance(t) <= 0.0101, "train FP {}", d.exceedance(t));
        }
    }

    /// Bundles round-trip through text for any configured population.
    #[test]
    fn bundle_text_roundtrip((train, test) in arb_population(), version in any::<u32>()) {
        let ds = FeatureDataset::from_series(&train, &test, FeatureKind::TcpConnections);
        let out = Policy {
            grouping: Grouping::Partial(PartialMethod::EIGHT_PARTIAL),
            heuristic: ThresholdHeuristic::P99,
        }
        .configure(&ds.train);
        let bundle = PolicyBundle::from_outcome(version, FeatureKind::TcpConnections, &out);
        let parsed = PolicyBundle::from_text(&bundle.to_text()).expect("round trip");
        prop_assert_eq!(&parsed, &bundle);
        prop_assert_eq!(parsed.checksum(), bundle.checksum());
        prop_assert_eq!(bundle.deploy().len(), train.len());
    }

    /// Grouping assignments are a partition: every user gets exactly one
    /// group, group ids are dense-bounded, and heavier users never land in
    /// a *strictly lighter-only* band under QuantileBands.
    #[test]
    fn grouping_partitions((train, test) in arb_population(), k in 2usize..6) {
        let ds = FeatureDataset::from_series(&train, &test, FeatureKind::TcpConnections);
        let groups = Grouping::Partial(PartialMethod::QuantileBands { k }).assign(&ds.train);
        prop_assert_eq!(groups.len(), ds.train.len());
        prop_assert!(groups.iter().all(|&g| g < k));
        // Band 0 holds the heaviest users: its min q99 >= band k-1's max.
        let q99: Vec<f64> = ds.train.iter().map(|d| d.quantile(0.99)).collect();
        let band_min = |b: usize| {
            q99.iter()
                .zip(&groups)
                .filter(|(_, &g)| g == b)
                .map(|(q, _)| *q)
                .fold(f64::INFINITY, f64::min)
        };
        let band_max = |b: usize| {
            q99.iter()
                .zip(&groups)
                .filter(|(_, &g)| g == b)
                .map(|(q, _)| *q)
                .fold(f64::NEG_INFINITY, f64::max)
        };
        let last = *groups.iter().max().unwrap();
        if band_min(0).is_finite() && band_max(last).is_finite() && last > 0 {
            prop_assert!(band_min(0) >= band_max(last) - 1e-9);
        }
    }
}
