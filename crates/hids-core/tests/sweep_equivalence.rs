//! The batched sweep kernel must be *bit-identical* to the naive
//! per-candidate formulation it replaced: one `exceedance` query plus one
//! `AttackSweep::mean_fn` query per candidate threshold, and the
//! descending `>=`-argmax threshold pick. Property-tested over random
//! integer-lattice distributions (the fast path), real-valued samples (the
//! merge path), offset and wide-range lattices, and the degenerate shapes.

use proptest::prelude::*;

use hids_core::{AttackSweep, SweepTable, ThresholdHeuristic};
use tailstats::EmpiricalDist;

/// The pre-kernel reference: candidates are the distinct sample values
/// plus one past the maximum; each is scored independently.
fn naive_table(dist: &EmpiricalDist, sweep: &AttackSweep) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut thresholds: Vec<f64> = Vec::new();
    for &v in dist.samples() {
        if thresholds.last() != Some(&v) {
            thresholds.push(v);
        }
    }
    thresholds.push(dist.max() + 1.0);
    let fp = thresholds.iter().map(|&t| dist.exceedance(t)).collect();
    let mean_fn = thresholds.iter().map(|&t| sweep.mean_fn(dist, t)).collect();
    (thresholds, fp, mean_fn)
}

/// The pre-kernel argmax: scan candidates from the top, keeping ties at
/// the lowest threshold via `>=`.
fn naive_best(
    thresholds: &[f64],
    fp: &[f64],
    mean_fn: &[f64],
    score: impl Fn(f64, f64) -> f64,
) -> f64 {
    let mut best_t = f64::NAN;
    let mut best_s = f64::NEG_INFINITY;
    for i in (0..thresholds.len()).rev() {
        let s = score(fp[i], mean_fn[i]);
        if s >= best_s {
            best_s = s;
            best_t = thresholds[i];
        }
    }
    best_t
}

fn assert_bitwise_equal(dist: &EmpiricalDist, sweep: &AttackSweep) {
    let table = SweepTable::compute(dist, sweep);
    let (t, fp, mean_fn) = naive_table(dist, sweep);
    prop_assert_eq!(table.thresholds(), &t[..]);
    prop_assert_eq!(table.fp(), &fp[..]);
    prop_assert_eq!(table.mean_fn(), &mean_fn[..]);
    // And the argmax rewiring: ascending strict `>` equals the historical
    // descending `>=`, for both heuristic families' score shapes.
    let w = 0.4;
    let utility = |fp: f64, fnr: f64| 1.0 - (w * fnr + (1.0 - w) * fp);
    prop_assert_eq!(
        table.best_by(utility).to_bits(),
        naive_best(&t, &fp, &mean_fn, utility).to_bits()
    );
}

fn arb_sweep() -> impl Strategy<Value = AttackSweep> {
    (1.0f64..10_000.0, 2usize..300).prop_map(|(b_max, n)| AttackSweep::new(b_max, n))
}

/// A sweep guaranteed to contain non-integral attack sizes: the size grid
/// is `1 + (b_max − 1)·i/(n − 1)`, so an irrational-ish fractional `b_max`
/// over a coarse grid puts every interior size off the integer lattice.
/// This is the shape `AttackSweep::up_to` produces in practice, and the
/// one the lattice fast path's documented invariant used to be wrong for.
fn arb_fractional_sweep() -> impl Strategy<Value = AttackSweep> {
    (1u32..160_000, 2usize..60).prop_map(|(sixteenths, n)| {
        AttackSweep::new(1.0 + f64::from(sixteenths) / 16.0 + 0.03125, n)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Integer feature counts (the paper's data shape — exercises the
    /// lattice fast path).
    #[test]
    fn kernel_matches_naive_on_integer_counts(
        counts in proptest::collection::vec(0u64..5_000, 1..700),
        sweep in arb_sweep(),
    ) {
        let dist = EmpiricalDist::from_counts(&counts);
        assert_bitwise_equal(&dist, &sweep);
    }

    /// Arbitrary real-valued samples (exercises the merge fallback).
    #[test]
    fn kernel_matches_naive_on_real_samples(
        samples in proptest::collection::vec(0.0f64..1e4, 1..300),
        sweep in arb_sweep(),
    ) {
        let dist = EmpiricalDist::from_samples(samples);
        assert_bitwise_equal(&dist, &sweep);
    }

    /// Integer lattices far from zero: the count-table offset must not
    /// perturb anything.
    #[test]
    fn kernel_matches_naive_on_offset_lattice(
        base in 0u64..1_000_000_000,
        counts in proptest::collection::vec(0u64..500, 1..200),
        sweep in arb_sweep(),
    ) {
        let shifted: Vec<u64> = counts.iter().map(|&c| base + c).collect();
        let dist = EmpiricalDist::from_counts(&shifted);
        assert_bitwise_equal(&dist, &sweep);
    }

    /// Sparse integer values spanning a huge range (forces the lattice
    /// gate to reject and take the merge path on integral data).
    #[test]
    fn kernel_matches_naive_on_wide_range_integers(
        counts in proptest::collection::vec(0u64..1_000_000_000, 1..40),
        sweep in arb_sweep(),
    ) {
        let dist = EmpiricalDist::from_counts(&counts);
        assert_bitwise_equal(&dist, &sweep);
    }

    /// Degenerate shapes: a single sample, all-equal samples, and the
    /// minimal sweep (b_max = 1 collapses the size grid to {1, 1}).
    #[test]
    fn kernel_matches_naive_on_degenerate_inputs(
        value in 0u64..10_000,
        n_copies in 1usize..50,
        n_points in 2usize..20,
    ) {
        let dist = EmpiricalDist::from_counts(&vec![value; n_copies]);
        assert_bitwise_equal(&dist, &AttackSweep::new(1.0, n_points));
        assert_bitwise_equal(&dist, &AttackSweep::up_to(value as f64 + 1.0));
    }

    /// Explicitly fractional attack sizes over integer lattices: cuts
    /// `t − b` fall strictly between lattice points, so the fast path's
    /// `#{g < c} = #{g ≤ ⌈c⌉ − 1}` identity is exercised in its
    /// `⌊c⌋ = ⌈c⌉ − 1` branch at every candidate, including cuts at or
    /// below the lattice origin (the historical cast-saturation hazard).
    #[test]
    fn kernel_matches_naive_on_lattice_with_fractional_sizes(
        counts in proptest::collection::vec(0u64..2_000, 1..400),
        sweep in arb_fractional_sweep(),
    ) {
        let dist = EmpiricalDist::from_counts(&counts);
        assert_bitwise_equal(&dist, &sweep);
    }

    /// Mixed fractional thresholds AND fractional sizes: samples on a
    /// quarter-integer grid make the candidate thresholds themselves
    /// non-integral (merge path), while the sweep keeps the cuts
    /// fractional too — nothing in the pipeline is lattice-aligned.
    #[test]
    fn kernel_matches_naive_on_fractional_thresholds_and_sizes(
        quarters in proptest::collection::vec(0u64..40_000, 1..300),
        sweep in arb_fractional_sweep(),
    ) {
        let samples: Vec<f64> = quarters.iter().map(|&q| q as f64 / 4.0).collect();
        let dist = EmpiricalDist::from_samples(samples);
        assert_bitwise_equal(&dist, &sweep);
    }

    /// The heuristics built on the kernel agree with naive scoring end to
    /// end: UtilityMax and FMeasure pick exactly the naive argmax.
    #[test]
    fn heuristics_match_naive_argmax(
        counts in proptest::collection::vec(0u64..3_000, 2..400),
        w in 0.05f64..0.95,
        prevalence in 0.001f64..0.2,
        sweep in arb_sweep(),
    ) {
        let dist = EmpiricalDist::from_counts(&counts);
        let (t, fp, mean_fn) = naive_table(&dist, &sweep);

        let utility = ThresholdHeuristic::UtilityMax { w, sweep: sweep.clone() }
            .threshold(&dist);
        let naive_u = naive_best(&t, &fp, &mean_fn, |fp, fnr| {
            1.0 - (w * fnr + (1.0 - w) * fp)
        });
        prop_assert_eq!(utility.to_bits(), naive_u.to_bits());

        let fmeasure = ThresholdHeuristic::FMeasure { prevalence, sweep: sweep.clone() }
            .threshold(&dist);
        let naive_f = naive_best(&t, &fp, &mean_fn, |fpr, fn_rate| {
            let recall = 1.0 - fn_rate;
            let tp = prevalence * recall;
            let fp = (1.0 - prevalence) * fpr;
            if tp + fp == 0.0 {
                0.0
            } else {
                let precision = tp / (tp + fp);
                if precision + recall == 0.0 {
                    0.0
                } else {
                    2.0 * precision * recall / (precision + recall)
                }
            }
        });
        prop_assert_eq!(fmeasure.to_bits(), naive_f.to_bits());
    }
}

// Pinned counterexample shapes for the fractional-size lattice hazard:
// before the index math was made total, the fast path's correctness for
// cuts at or below the lattice origin depended on the skip predicate
// (an optimisation) rescuing a cast that would otherwise saturate
// `⌈t − b⌉ − lo ≤ 0` to slot 0 and count the samples *equal to* `lo` as
// strictly below it. These pins hold the hazard shapes in place even if
// the proptest strategies drift.

/// Fractional sizes whose cuts land at and below the lattice origin:
/// sizes {1, 1.5, 2, 2.5} against lo = 3 put cuts 0.5..=2.0 under the
/// origin for the lowest candidate.
#[test]
fn regression_fractional_cut_at_or_below_lattice_origin() {
    let dist = EmpiricalDist::from_counts(&[3, 4, 5]);
    assert_bitwise_equal(&dist, &AttackSweep::new(2.5, 4));
}

/// Integral size landing a cut *exactly on* the origin (t − b == lo):
/// `#{g < lo}` must be 0, not the multiplicity of `lo`.
#[test]
fn regression_integral_cut_exactly_on_origin() {
    let dist = EmpiricalDist::from_counts(&[5, 5, 5, 9]);
    // size grid {1, 2, 3, 4}: candidate t = 9 with b = 4 cuts at 5 = lo.
    assert_bitwise_equal(&dist, &AttackSweep::new(4.0, 4));
}

/// All-equal lattice (range 0, one interior slot) under fractional sizes.
#[test]
fn regression_all_equal_lattice_fractional_sizes() {
    let dist = EmpiricalDist::from_counts(&[9, 9, 9]);
    assert_bitwise_equal(&dist, &AttackSweep::new(1.25, 3));
}

/// A duplicated-value lattice with a sub-1-step fractional sweep: every
/// interior cut has `⌊c⌋ = ⌈c⌉ − 1` and oversized candidates clamp to
/// the "all below" slot.
#[test]
fn regression_duplicates_with_fractional_sizes() {
    let dist = EmpiricalDist::from_counts(&[0, 2, 2, 7]);
    assert_bitwise_equal(&dist, &AttackSweep::new(3.75, 5));
}
