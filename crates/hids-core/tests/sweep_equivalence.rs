//! The batched sweep kernel must be *bit-identical* to the naive
//! per-candidate formulation it replaced: one `exceedance` query plus one
//! `AttackSweep::mean_fn` query per candidate threshold, and the
//! descending `>=`-argmax threshold pick. Property-tested over random
//! integer-lattice distributions (the fast path), real-valued samples (the
//! merge path), offset and wide-range lattices, and the degenerate shapes.

use proptest::prelude::*;

use hids_core::{AttackSweep, SweepTable, ThresholdHeuristic};
use tailstats::EmpiricalDist;

/// The pre-kernel reference: candidates are the distinct sample values
/// plus one past the maximum; each is scored independently.
fn naive_table(dist: &EmpiricalDist, sweep: &AttackSweep) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut thresholds: Vec<f64> = Vec::new();
    for &v in dist.samples() {
        if thresholds.last() != Some(&v) {
            thresholds.push(v);
        }
    }
    thresholds.push(dist.max() + 1.0);
    let fp = thresholds.iter().map(|&t| dist.exceedance(t)).collect();
    let mean_fn = thresholds.iter().map(|&t| sweep.mean_fn(dist, t)).collect();
    (thresholds, fp, mean_fn)
}

/// The pre-kernel argmax: scan candidates from the top, keeping ties at
/// the lowest threshold via `>=`.
fn naive_best(
    thresholds: &[f64],
    fp: &[f64],
    mean_fn: &[f64],
    score: impl Fn(f64, f64) -> f64,
) -> f64 {
    let mut best_t = f64::NAN;
    let mut best_s = f64::NEG_INFINITY;
    for i in (0..thresholds.len()).rev() {
        let s = score(fp[i], mean_fn[i]);
        if s >= best_s {
            best_s = s;
            best_t = thresholds[i];
        }
    }
    best_t
}

fn assert_bitwise_equal(dist: &EmpiricalDist, sweep: &AttackSweep) {
    let table = SweepTable::compute(dist, sweep);
    let (t, fp, mean_fn) = naive_table(dist, sweep);
    prop_assert_eq!(table.thresholds(), &t[..]);
    prop_assert_eq!(table.fp(), &fp[..]);
    prop_assert_eq!(table.mean_fn(), &mean_fn[..]);
    // And the argmax rewiring: ascending strict `>` equals the historical
    // descending `>=`, for both heuristic families' score shapes.
    let w = 0.4;
    let utility = |fp: f64, fnr: f64| 1.0 - (w * fnr + (1.0 - w) * fp);
    prop_assert_eq!(
        table.best_by(utility).to_bits(),
        naive_best(&t, &fp, &mean_fn, utility).to_bits()
    );
}

fn arb_sweep() -> impl Strategy<Value = AttackSweep> {
    (1.0f64..10_000.0, 2usize..300).prop_map(|(b_max, n)| AttackSweep::new(b_max, n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Integer feature counts (the paper's data shape — exercises the
    /// lattice fast path).
    #[test]
    fn kernel_matches_naive_on_integer_counts(
        counts in proptest::collection::vec(0u64..5_000, 1..700),
        sweep in arb_sweep(),
    ) {
        let dist = EmpiricalDist::from_counts(&counts);
        assert_bitwise_equal(&dist, &sweep);
    }

    /// Arbitrary real-valued samples (exercises the merge fallback).
    #[test]
    fn kernel_matches_naive_on_real_samples(
        samples in proptest::collection::vec(0.0f64..1e4, 1..300),
        sweep in arb_sweep(),
    ) {
        let dist = EmpiricalDist::from_samples(samples);
        assert_bitwise_equal(&dist, &sweep);
    }

    /// Integer lattices far from zero: the count-table offset must not
    /// perturb anything.
    #[test]
    fn kernel_matches_naive_on_offset_lattice(
        base in 0u64..1_000_000_000,
        counts in proptest::collection::vec(0u64..500, 1..200),
        sweep in arb_sweep(),
    ) {
        let shifted: Vec<u64> = counts.iter().map(|&c| base + c).collect();
        let dist = EmpiricalDist::from_counts(&shifted);
        assert_bitwise_equal(&dist, &sweep);
    }

    /// Sparse integer values spanning a huge range (forces the lattice
    /// gate to reject and take the merge path on integral data).
    #[test]
    fn kernel_matches_naive_on_wide_range_integers(
        counts in proptest::collection::vec(0u64..1_000_000_000, 1..40),
        sweep in arb_sweep(),
    ) {
        let dist = EmpiricalDist::from_counts(&counts);
        assert_bitwise_equal(&dist, &sweep);
    }

    /// Degenerate shapes: a single sample, all-equal samples, and the
    /// minimal sweep (b_max = 1 collapses the size grid to {1, 1}).
    #[test]
    fn kernel_matches_naive_on_degenerate_inputs(
        value in 0u64..10_000,
        n_copies in 1usize..50,
        n_points in 2usize..20,
    ) {
        let dist = EmpiricalDist::from_counts(&vec![value; n_copies]);
        assert_bitwise_equal(&dist, &AttackSweep::new(1.0, n_points));
        assert_bitwise_equal(&dist, &AttackSweep::up_to(value as f64 + 1.0));
    }

    /// The heuristics built on the kernel agree with naive scoring end to
    /// end: UtilityMax and FMeasure pick exactly the naive argmax.
    #[test]
    fn heuristics_match_naive_argmax(
        counts in proptest::collection::vec(0u64..3_000, 2..400),
        w in 0.05f64..0.95,
        prevalence in 0.001f64..0.2,
        sweep in arb_sweep(),
    ) {
        let dist = EmpiricalDist::from_counts(&counts);
        let (t, fp, mean_fn) = naive_table(&dist, &sweep);

        let utility = ThresholdHeuristic::UtilityMax { w, sweep: sweep.clone() }
            .threshold(&dist);
        let naive_u = naive_best(&t, &fp, &mean_fn, |fp, fnr| {
            1.0 - (w * fnr + (1.0 - w) * fp)
        });
        prop_assert_eq!(utility.to_bits(), naive_u.to_bits());

        let fmeasure = ThresholdHeuristic::FMeasure { prevalence, sweep: sweep.clone() }
            .threshold(&dist);
        let naive_f = naive_best(&t, &fp, &mean_fn, |fpr, fn_rate| {
            let recall = 1.0 - fn_rate;
            let tp = prevalence * recall;
            let fp = (1.0 - prevalence) * fpr;
            if tp + fp == 0.0 {
                0.0
            } else {
                let precision = tp / (tp + fp);
                if precision + recall == 0.0 {
                    0.0
                } else {
                    2.0 * precision * recall / (precision + recall)
                }
            }
        });
        prop_assert_eq!(fmeasure.to_bits(), naive_f.to_bits());
    }
}
