//! Seeded UDP datagram faults for the wire-facing ingest plane.
//!
//! `fleetd::ingest` receives telemetry as unreliable datagrams, and the
//! network does to datagrams what it always does: loses them, delivers
//! them twice, flips their bytes in flight, and hands over truncated
//! fragments. This module injects exactly those four failure modes,
//! deterministically per `(seed, index)` — datagram `i` of a stream is
//! faulted identically no matter what happened to datagrams `0..i`, so a
//! sharded or resumed replay stays bit-identical.
//!
//! Deliberately **no reordering**: the ingest harness feeds the daemon
//! through the same stop-and-wait delivery loop as the synthetic path,
//! which requires per-host sequence order. Duplication is safe (the
//! daemon dedups by `seq`); reordering belongs to [`crate::batchfault`],
//! which attacks the console's resequencing path instead.

use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::Serialize;

use crate::subseed;

/// Knobs for datagram faults. All rates are probabilities in `[0, 1]`;
/// zero everywhere means `apply` passes every datagram through intact.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DatagramFaults {
    /// Probability a datagram is silently lost.
    pub drop_rate: f64,
    /// Probability a delivered datagram arrives twice.
    pub dup_rate: f64,
    /// Probability a delivered datagram has one byte bit-flipped.
    pub corrupt_rate: f64,
    /// Probability a delivered datagram loses a random-length tail.
    pub truncate_rate: f64,
}

impl DatagramFaults {
    /// No faults at all.
    pub fn none() -> Self {
        Self {
            drop_rate: 0.0,
            dup_rate: 0.0,
            corrupt_rate: 0.0,
            truncate_rate: 0.0,
        }
    }

    /// True when `apply` is the identity.
    pub fn is_none(&self) -> bool {
        self.drop_rate == 0.0
            && self.dup_rate == 0.0
            && self.corrupt_rate == 0.0
            && self.truncate_rate == 0.0
    }

    /// A profile scaled by one severity knob in `[0, 1]`, mirroring
    /// [`crate::FaultPlan::with_severity`]. Severity 0 is the identity;
    /// severity 1 is a badly misbehaving access network.
    pub fn with_severity(severity: f64) -> Self {
        let s = severity.clamp(0.0, 1.0);
        Self {
            drop_rate: 0.10 * s,
            dup_rate: 0.08 * s,
            corrupt_rate: 0.12 * s,
            truncate_rate: 0.08 * s,
        }
    }

    /// Fault datagram number `index` of the stream seeded by `seed`.
    /// Returns the 0, 1 or 2 copies that actually arrive (duplicates are
    /// byte-identical to their faulted original) and updates `log`.
    ///
    /// Determinism contract: the outcome depends only on
    /// `(self, seed, index, payload)` — never on other datagrams.
    pub fn apply(&self, payload: &[u8], seed: u64, index: u64, log: &mut DatagramFaultLog) -> Vec<Vec<u8>> {
        log.offered += 1;
        if self.is_none() {
            log.delivered += 1;
            return vec![payload.to_vec()];
        }
        let mut rng = StdRng::seed_from_u64(subseed(seed, index.wrapping_add(0xDA7A)));
        if self.drop_rate > 0.0 && rng.random_bool(self.drop_rate) {
            log.dropped += 1;
            return Vec::new();
        }
        let mut out = payload.to_vec();
        if self.corrupt_rate > 0.0 && !out.is_empty() && rng.random_bool(self.corrupt_rate) {
            let pos = rng.random_range(0..out.len());
            let bit: u8 = rng.random_range(0u8..8);
            out[pos] ^= 1 << bit;
            log.corrupted += 1;
        }
        if self.truncate_rate > 0.0 && out.len() > 1 && rng.random_bool(self.truncate_rate) {
            let cut = rng.random_range(1..out.len());
            out.truncate(cut);
            log.truncated += 1;
        }
        log.delivered += 1;
        if self.dup_rate > 0.0 && rng.random_bool(self.dup_rate) {
            log.duplicated += 1;
            log.delivered += 1;
            return vec![out.clone(), out];
        }
        vec![out]
    }
}

/// What the faulted network did to a datagram stream.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct DatagramFaultLog {
    /// Datagrams offered for transmission.
    pub offered: u64,
    /// Copies that arrived (duplicates count twice).
    pub delivered: u64,
    /// Datagrams silently lost.
    pub dropped: u64,
    /// Datagrams delivered twice.
    pub duplicated: u64,
    /// Datagrams with a flipped byte.
    pub corrupted: u64,
    /// Datagrams with a lost tail.
    pub truncated: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(seed: u64, faults: DatagramFaults) -> (Vec<Vec<u8>>, DatagramFaultLog) {
        let mut log = DatagramFaultLog::default();
        let mut arrived = Vec::new();
        for i in 0..400u64 {
            let payload = vec![i as u8; 40 + (i % 17) as usize];
            arrived.extend(faults.apply(&payload, seed, i, &mut log));
        }
        (arrived, log)
    }

    #[test]
    fn severity_zero_is_identity() {
        let faults = DatagramFaults::with_severity(0.0);
        assert!(faults.is_none());
        let (arrived, log) = drive(1, faults);
        assert_eq!(arrived.len(), 400);
        assert_eq!(log.delivered, 400);
        assert_eq!(log.dropped + log.duplicated + log.corrupted + log.truncated, 0);
    }

    #[test]
    fn same_seed_same_stream() {
        let faults = DatagramFaults::with_severity(1.0);
        let (a, log_a) = drive(42, faults);
        let (b, log_b) = drive(42, faults);
        assert_eq!(a, b);
        assert_eq!(log_a, log_b);
        let (c, _) = drive(43, faults);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn outcome_independent_of_neighbours() {
        // Datagram 123 gets the same fate whether or not 0..123 ran first.
        let faults = DatagramFaults::with_severity(0.7);
        let payload = vec![9u8; 64];
        let mut log = DatagramFaultLog::default();
        let alone = faults.apply(&payload, 5, 123, &mut log);
        let (_, _) = drive(5, faults);
        let mut log2 = DatagramFaultLog::default();
        let again = faults.apply(&payload, 5, 123, &mut log2);
        assert_eq!(alone, again);
    }

    #[test]
    fn severity_one_exercises_every_fault_class() {
        let (_, log) = drive(7, DatagramFaults::with_severity(1.0));
        assert!(log.dropped > 0);
        assert!(log.duplicated > 0);
        assert!(log.corrupted > 0);
        assert!(log.truncated > 0);
        assert!(log.dropped < log.offered, "most datagrams still get through");
    }

    #[test]
    fn duplicates_are_byte_identical() {
        let faults = DatagramFaults {
            dup_rate: 1.0,
            ..DatagramFaults::none()
        };
        let mut log = DatagramFaultLog::default();
        let copies = faults.apply(b"payload", 3, 0, &mut log);
        assert_eq!(copies.len(), 2);
        assert_eq!(copies[0], copies[1]);
        assert_eq!(copies[0], b"payload");
        assert_eq!(log.offered, 1);
        assert_eq!(log.delivered, 2);
    }

    #[test]
    fn accounting_conserves() {
        let (arrived, log) = drive(11, DatagramFaults::with_severity(0.5));
        assert_eq!(log.offered, 400);
        assert_eq!(arrived.len() as u64, log.delivered);
        assert_eq!(log.delivered, log.offered - log.dropped + log.duplicated);
    }
}
