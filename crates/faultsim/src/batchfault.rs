//! Delivery faults on alert-batch streams: duplication and reordering.
//!
//! Alert batches travel from end hosts to the central console over a WAN
//! that retransmits (duplicates) and races (reorders) messages. This
//! module rewrites a batch sequence the way such a network would, so
//! `itconsole`'s ingest path can be exercised against out-of-order and
//! repeated delivery without a network in the loop.
//!
//! Generic over the batch payload (`T: Clone`) — the console tests use
//! `Vec<Alert>`, the unit tests plain integers — and fully deterministic:
//! duplication decisions are drawn first (in input order), then one
//! adjacent-swap pass runs over the expanded stream.

use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::Serialize;

/// Knobs for delivery-path batch faults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BatchFaults {
    /// Per-batch probability of a duplicate delivery (copy inserted
    /// immediately after the original, as a retransmitting link would).
    pub dup_rate: f64,
    /// Per-adjacent-pair probability of swapping delivery order.
    pub reorder_rate: f64,
}

impl BatchFaults {
    /// In-order, exactly-once delivery.
    pub fn none() -> Self {
        Self {
            dup_rate: 0.0,
            reorder_rate: 0.0,
        }
    }

    /// True when `apply` is the identity.
    pub fn is_none(&self) -> bool {
        self.dup_rate == 0.0 && self.reorder_rate == 0.0
    }

    /// Rewrite `batches` as the faulty network would deliver them.
    pub fn apply<T: Clone>(&self, batches: &[T], seed: u64) -> (Vec<T>, BatchFaultLog) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut log = BatchFaultLog::default();
        let mut out: Vec<T> = Vec::with_capacity(batches.len());
        for b in batches {
            out.push(b.clone());
            if self.dup_rate > 0.0 && rng.random_bool(self.dup_rate) {
                out.push(b.clone());
                log.duplicated += 1;
            }
        }
        if self.reorder_rate > 0.0 {
            for i in 1..out.len() {
                if rng.random_bool(self.reorder_rate) {
                    out.swap(i - 1, i);
                    log.swaps += 1;
                }
            }
        }
        log.delivered = out.len() as u64;
        (out, log)
    }
}

/// What `BatchFaults::apply` did to one stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct BatchFaultLog {
    /// Batches in the delivered (output) stream.
    pub delivered: u64,
    /// Duplicate deliveries inserted.
    pub duplicated: u64,
    /// Adjacent swaps performed.
    pub swaps: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_identity() {
        let batches: Vec<u32> = (0..10).collect();
        let (out, log) = BatchFaults::none().apply(&batches, 5);
        assert_eq!(out, batches);
        assert_eq!(log.duplicated, 0);
        assert_eq!(log.swaps, 0);
        assert_eq!(log.delivered, 10);
    }

    #[test]
    fn deterministic_in_seed() {
        let batches: Vec<u32> = (0..50).collect();
        let f = BatchFaults {
            dup_rate: 0.3,
            reorder_rate: 0.3,
        };
        let (a, la) = f.apply(&batches, 1);
        let (b, lb) = f.apply(&batches, 1);
        assert_eq!(a, b);
        assert_eq!(la, lb);
        let (c, _) = f.apply(&batches, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn duplicates_preserve_multiset_plus_copies() {
        let batches: Vec<u32> = (0..40).collect();
        let f = BatchFaults {
            dup_rate: 0.5,
            reorder_rate: 0.5,
        };
        let (out, log) = f.apply(&batches, 9);
        assert_eq!(out.len() as u64, 40 + log.duplicated);
        assert_eq!(log.delivered, out.len() as u64);
        // Every original batch still present at least once.
        for v in &batches {
            assert!(out.contains(v), "lost batch {v}");
        }
        // Faults never *invent* batches.
        for v in &out {
            assert!(batches.contains(v));
        }
    }

    #[test]
    fn full_dup_rate_doubles_stream() {
        let batches: Vec<u32> = (0..7).collect();
        let f = BatchFaults {
            dup_rate: 1.0,
            reorder_rate: 0.0,
        };
        let (out, log) = f.apply(&batches, 0);
        assert_eq!(out.len(), 14);
        assert_eq!(log.duplicated, 7);
        assert_eq!(out[0], out[1]);
    }

    #[test]
    fn empty_stream_is_fine() {
        let f = BatchFaults {
            dup_rate: 1.0,
            reorder_rate: 1.0,
        };
        let (out, log) = f.apply(&Vec::<u32>::new(), 3);
        assert!(out.is_empty());
        assert_eq!(log.delivered, 0);
    }
}
