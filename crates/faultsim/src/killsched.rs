//! Seeded kill schedules for crash-recovery testing.
//!
//! The fleet daemon's headline correctness property is *kill-anywhere
//! determinism*: terminate the process at any batch or byte boundary,
//! restart it, and the final per-host results must be bit-identical to an
//! uninterrupted run. Proving that needs a way to die at *chosen, seeded*
//! points — including mid-record torn writes, the classic crash mode of an
//! append-only log on a real filesystem.
//!
//! A [`KillPoint`] names one such death:
//!
//! * [`KillPoint::AfterBatches`] — crash cleanly after the *n*-th batch is
//!   applied and logged, before its acknowledgement reaches the source
//!   (exercising at-least-once redelivery and duplicate suppression);
//! * [`KillPoint::AtWalByte`] — crash while appending the write-ahead-log
//!   record that crosses a cumulative byte offset, leaving `torn` bytes of
//!   the record on disk (exercising torn-tail truncation on recovery).
//!
//! [`kill_points`] derives an arbitrary number of points from a master
//! seed, alternating the two classes and scattering them uniformly over a
//! measured reference run — the same pattern as the other fault classes in
//! this crate: pure, replayable, uncorrelated across seeds.

use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::Serialize;

/// One scheduled process death.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum KillPoint {
    /// Crash after this many batches have been applied and logged in the
    /// current process lifetime, suppressing the final acknowledgement.
    AfterBatches(u64),
    /// Crash while appending the WAL record that would cross `offset`
    /// cumulative appended bytes (lifetime of the log, monotone across
    /// snapshot truncations), writing only the first `torn` bytes of the
    /// framed record. `torn == 0` is a clean record-boundary crash.
    AtWalByte {
        /// Cumulative appended-byte offset that triggers the crash.
        offset: u64,
        /// Bytes of the in-flight record actually written before death.
        torn: u32,
    },
    /// Crash immediately after the *n*-th rollout transition record
    /// (canary-start, promote, or rollback) has been made durable in the
    /// WAL, before the in-memory caller observes success. `1` dies right
    /// after canary start; in a single-rollout run `2` dies right after
    /// the promote/rollback decision — the epoch-boundary analogues of
    /// [`KillPoint::AfterBatches`].
    AfterRolloutEvents(u32),
    /// Crash immediately after the *n*-th operator-command record has
    /// been made durable and applied, before the operator is
    /// acknowledged. Together with [`KillPoint::AtWalByte`] offsets that
    /// land inside command frames (kills mid-command-record), this is the
    /// control-plane analogue of the rollout-event class: a recovered run
    /// must show the command either fully applied or not applied at all.
    AfterCommands(u32),
}

/// Largest torn-prefix length [`kill_points`] will schedule. Record frames
/// are headers (12 bytes) plus payload, so this covers cuts inside the
/// header, inside small payloads, and at awkward alignments.
pub const MAX_TORN_BYTES: u32 = 48;

/// Derive `n` kill points from `master_seed`, scattered over a run known
/// (from an uninterrupted reference execution) to apply `max_batches`
/// batches and append `max_wal_bytes` WAL bytes. Points alternate between
/// batch-boundary and torn-write deaths; the torn lengths include `0`
/// (clean boundary) and cuts inside the record header and payload.
///
/// Degenerate reference runs (zero batches or bytes) yield points that
/// can never fire, which is the correct behaviour: there is nothing to
/// kill.
pub fn kill_points(master_seed: u64, n: usize, max_batches: u64, max_wal_bytes: u64) -> Vec<KillPoint> {
    let mut rng = StdRng::seed_from_u64(crate::subseed(master_seed, 4));
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                let after = if max_batches == 0 {
                    u64::MAX
                } else {
                    rng.random_range(1..=max_batches)
                };
                KillPoint::AfterBatches(after)
            } else {
                let offset = if max_wal_bytes == 0 {
                    u64::MAX
                } else {
                    rng.random_range(0..max_wal_bytes)
                };
                let torn = rng.random_range(0..=MAX_TORN_BYTES);
                KillPoint::AtWalByte { offset, torn }
            }
        })
        .collect()
}

/// Derive `n` kill points for a run that performs a threshold rollout,
/// cycling through three classes: batch-boundary deaths, torn WAL writes,
/// and rollout-event-boundary deaths. `max_events` is the number of
/// rollout transition records the reference run journals (a single
/// rollout journals two: canary start and the promote/rollback decision),
/// so every epoch boundary is exercised by some seed.
pub fn rollout_kill_points(
    master_seed: u64,
    n: usize,
    max_batches: u64,
    max_wal_bytes: u64,
    max_events: u32,
) -> Vec<KillPoint> {
    let mut rng = StdRng::seed_from_u64(crate::subseed(master_seed, 7));
    (0..n)
        .map(|i| match i % 3 {
            0 => {
                let after = if max_batches == 0 {
                    u64::MAX
                } else {
                    rng.random_range(1..=max_batches)
                };
                KillPoint::AfterBatches(after)
            }
            1 => {
                let offset = if max_wal_bytes == 0 {
                    u64::MAX
                } else {
                    rng.random_range(0..max_wal_bytes)
                };
                let torn = rng.random_range(0..=MAX_TORN_BYTES);
                KillPoint::AtWalByte { offset, torn }
            }
            _ => {
                let after = if max_events == 0 {
                    u32::MAX
                } else {
                    rng.random_range(1..=max_events)
                };
                KillPoint::AfterRolloutEvents(after)
            }
        })
        .collect()
}

/// Derive `n` kill points for a run driven by operator commands, cycling
/// through three classes: batch-boundary deaths, torn WAL writes (whose
/// offsets land inside command records as well as batch records, because
/// every append shares one byte meter — the "kill mid-command-record"
/// class), and command-boundary deaths ("kill between apply and ack").
/// `max_commands` is the number of command records the reference run
/// journals; zero maxima yield points that can never fire.
pub fn command_kill_points(
    master_seed: u64,
    n: usize,
    max_batches: u64,
    max_wal_bytes: u64,
    max_commands: u32,
) -> Vec<KillPoint> {
    let mut rng = StdRng::seed_from_u64(crate::subseed(master_seed, 11));
    (0..n)
        .map(|i| match i % 3 {
            0 => {
                let after = if max_batches == 0 {
                    u64::MAX
                } else {
                    rng.random_range(1..=max_batches)
                };
                KillPoint::AfterBatches(after)
            }
            1 => {
                let offset = if max_wal_bytes == 0 {
                    u64::MAX
                } else {
                    rng.random_range(0..max_wal_bytes)
                };
                let torn = rng.random_range(0..=MAX_TORN_BYTES);
                KillPoint::AtWalByte { offset, torn }
            }
            _ => {
                let after = if max_commands == 0 {
                    u32::MAX
                } else {
                    rng.random_range(1..=max_commands)
                };
                KillPoint::AfterCommands(after)
            }
        })
        .collect()
}

/// One scheduled death in a multi-node cluster run.
///
/// A cluster has two distinct failure granularities: the whole simulated
/// process (coordinator + every node, sharing one WAL byte meter — the
/// [`KillPoint`] classes, which exercise torn cluster-journal records and
/// mid-batch node-WAL crashes), and a *single node* dying silently while
/// the rest of the cluster keeps running (which exercises heartbeat-timeout
/// detection, `Dark` accounting, and journaled rebalance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ClusterKillPoint {
    /// The whole process dies at a [`KillPoint`]; the harness restarts it
    /// and recovery replays every WAL plus the cluster journal.
    Process(KillPoint),
    /// One worker node dies silently at the given cumulative cluster tick
    /// (lifetime of the run, monotone across process restarts) and never
    /// comes back. The coordinator must notice via missed heartbeats.
    Node {
        /// The node that dies. Never node 0 in generated schedules, so a
        /// multi-node cluster always retains a survivor to rebalance onto.
        node: u32,
        /// Cumulative cluster tick at which the node stops executing.
        at_tick: u64,
    },
}

/// Derive `n` cluster kill points from `master_seed`, cycling through
/// three classes: silent node deaths (heartbeat-expiry coverage),
/// batch-boundary process deaths (mid-batch coverage), and torn-write
/// process deaths (mid-handoff coverage — offsets land inside cluster
/// journal records as well as node WAL records, because all writers share
/// one byte meter). `max_ticks`, `max_batches`, and `max_wal_bytes` come
/// from an uninterrupted reference run; zero maxima yield points that can
/// never fire. Node deaths pick victims from `1..n_nodes` so node 0
/// always survives; single-node clusters get unfireable node kills.
pub fn cluster_kill_points(
    master_seed: u64,
    n: usize,
    n_nodes: u32,
    max_batches: u64,
    max_wal_bytes: u64,
    max_ticks: u64,
) -> Vec<ClusterKillPoint> {
    let mut rng = StdRng::seed_from_u64(crate::subseed(master_seed, 9));
    (0..n)
        .map(|i| match i % 3 {
            0 => {
                let (node, at_tick) = if n_nodes < 2 || max_ticks == 0 {
                    (u32::MAX, u64::MAX)
                } else {
                    (
                        rng.random_range(1..n_nodes),
                        rng.random_range(1..=max_ticks),
                    )
                };
                ClusterKillPoint::Node { node, at_tick }
            }
            1 => {
                let after = if max_batches == 0 {
                    u64::MAX
                } else {
                    rng.random_range(1..=max_batches)
                };
                ClusterKillPoint::Process(KillPoint::AfterBatches(after))
            }
            _ => {
                let offset = if max_wal_bytes == 0 {
                    u64::MAX
                } else {
                    rng.random_range(0..max_wal_bytes)
                };
                let torn = rng.random_range(0..=MAX_TORN_BYTES);
                ClusterKillPoint::Process(KillPoint::AtWalByte { offset, torn })
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let a = kill_points(7, 24, 100, 10_000);
        let b = kill_points(7, 24, 100, 10_000);
        assert_eq!(a, b);
        let c = kill_points(8, 24, 100, 10_000);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn points_alternate_and_stay_in_range() {
        let pts = kill_points(42, 40, 64, 4096);
        assert_eq!(pts.len(), 40);
        for (i, p) in pts.iter().enumerate() {
            match (i % 2, p) {
                (0, KillPoint::AfterBatches(n)) => {
                    assert!((1..=64).contains(n), "point {i}: {p:?}")
                }
                (1, KillPoint::AtWalByte { offset, torn }) => {
                    assert!(*offset < 4096, "point {i}: {p:?}");
                    assert!(*torn <= MAX_TORN_BYTES, "point {i}: {p:?}");
                }
                _ => panic!("point {i} has the wrong class: {p:?}"),
            }
        }
    }

    #[test]
    fn torn_lengths_cover_boundary_and_midrecord() {
        let pts = kill_points(3, 200, 50, 100_000);
        let torns: Vec<u32> = pts
            .iter()
            .filter_map(|p| match p {
                KillPoint::AtWalByte { torn, .. } => Some(*torn),
                _ => None,
            })
            .collect();
        assert!(torns.iter().any(|&t| t == 0), "need a clean-boundary kill");
        assert!(torns.iter().any(|&t| t > 0), "need mid-record torn kills");
    }

    #[test]
    fn rollout_schedule_covers_all_three_classes() {
        let pts = rollout_kill_points(11, 12, 64, 4096, 2);
        assert_eq!(pts, rollout_kill_points(11, 12, 64, 4096, 2));
        let mut events = 0;
        for (i, p) in pts.iter().enumerate() {
            match (i % 3, p) {
                (0, KillPoint::AfterBatches(n)) => assert!((1..=64).contains(n)),
                (1, KillPoint::AtWalByte { offset, torn }) => {
                    assert!(*offset < 4096 && *torn <= MAX_TORN_BYTES)
                }
                (2, KillPoint::AfterRolloutEvents(n)) => {
                    assert!((1..=2).contains(n));
                    events += 1;
                }
                _ => panic!("point {i} has the wrong class: {p:?}"),
            }
        }
        assert_eq!(events, 4);
    }

    #[test]
    fn cluster_schedule_cycles_node_batch_and_torn_deaths() {
        let pts = cluster_kill_points(5, 12, 4, 64, 4096, 500);
        assert_eq!(pts, cluster_kill_points(5, 12, 4, 64, 4096, 500));
        for (i, p) in pts.iter().enumerate() {
            match (i % 3, p) {
                (0, ClusterKillPoint::Node { node, at_tick }) => {
                    assert!((1..4).contains(node), "point {i}: {p:?}");
                    assert!((1..=500).contains(at_tick), "point {i}: {p:?}");
                }
                (1, ClusterKillPoint::Process(KillPoint::AfterBatches(n))) => {
                    assert!((1..=64).contains(n), "point {i}: {p:?}")
                }
                (2, ClusterKillPoint::Process(KillPoint::AtWalByte { offset, torn })) => {
                    assert!(*offset < 4096 && *torn <= MAX_TORN_BYTES, "point {i}: {p:?}")
                }
                _ => panic!("point {i} has the wrong class: {p:?}"),
            }
        }
    }

    #[test]
    fn cluster_schedule_single_node_never_kills_the_only_node() {
        for p in cluster_kill_points(1, 9, 1, 10, 100, 50) {
            if let ClusterKillPoint::Node { node, at_tick } = p {
                assert_eq!(node, u32::MAX);
                assert_eq!(at_tick, u64::MAX);
            }
        }
    }

    #[test]
    fn command_schedule_covers_all_three_classes() {
        let pts = command_kill_points(13, 12, 64, 4096, 5);
        assert_eq!(pts, command_kill_points(13, 12, 64, 4096, 5));
        let mut commands = 0;
        for (i, p) in pts.iter().enumerate() {
            match (i % 3, p) {
                (0, KillPoint::AfterBatches(n)) => assert!((1..=64).contains(n)),
                (1, KillPoint::AtWalByte { offset, torn }) => {
                    assert!(*offset < 4096 && *torn <= MAX_TORN_BYTES)
                }
                (2, KillPoint::AfterCommands(n)) => {
                    assert!((1..=5).contains(n));
                    commands += 1;
                }
                _ => panic!("point {i} has the wrong class: {p:?}"),
            }
        }
        assert_eq!(commands, 4);
        // Degenerate maxima yield unfireable command kills.
        for p in command_kill_points(13, 3, 0, 0, 0) {
            if let KillPoint::AfterCommands(n) = p {
                assert_eq!(n, u32::MAX);
            }
        }
    }

    #[test]
    fn degenerate_reference_never_fires() {
        for p in kill_points(1, 8, 0, 0) {
            match p {
                KillPoint::AfterBatches(n) => assert_eq!(n, u64::MAX),
                KillPoint::AtWalByte { offset, .. } => assert_eq!(offset, u64::MAX),
                KillPoint::AfterRolloutEvents(_) | KillPoint::AfterCommands(_) => {
                    panic!("kill_points never schedules event or command kills")
                }
            }
        }
    }
}
