//! Seeded baseline-drift and baseline-poisoning injectors.
//!
//! The threshold-lifecycle experiments need two ways of bending a host's
//! live traffic away from its training baseline:
//!
//! * **benign drift** — the organic week-over-week behaviour change the
//!   paper observes: activity levels shift gradually, in either
//!   direction, and a stale threshold slowly stops fitting;
//! * **poisoning** — the "boiling-frog" variant of the paper's mimicry
//!   attacker: a compromised host ratchets its baseline *up* a little at
//!   a time so that a naive refit learns the inflated level as normal
//!   and raises the threshold the attacker will later hide under.
//!
//! Both are expressed as a [`RampInject`]: a linear scale ramp over a
//! window-index span, applied per `(window, count)` pair. The transform
//! is a pure function of `(ramp, window, count)` — no RNG in the data
//! path — so injected streams are bit-identical across runs, thread
//! counts, and crash/replay boundaries. Seeding enters only through
//! [`poisoned_hosts`] / [`drifted_hosts`], which pick *which* hosts a
//! schedule touches from the crate's master-seed discipline (per-class
//! SplitMix64 sub-streams, tags 5 and 6).

use std::collections::BTreeSet;

use rand::{rngs::StdRng, Rng, SeedableRng};

/// A linear scale ramp over a half-open window span.
///
/// Windows before `span.0` are untouched; windows in `[span.0, span.1)`
/// are scaled by the linear interpolation from `from` to `to` across the
/// span; windows at or past `span.1` stay at `to`. Scaled counts are
/// rounded to the nearest integer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RampInject {
    /// Half-open `[start, end)` window-index span of the ramp.
    pub span: (u32, u32),
    /// Scale factor at the start of the span.
    pub from: f64,
    /// Scale factor at the end of the span (and beyond).
    pub to: f64,
}

impl RampInject {
    /// The identity ramp: scales nothing.
    pub fn none() -> Self {
        Self { span: (0, 0), from: 1.0, to: 1.0 }
    }

    /// Scale factor at window `w`.
    pub fn scale_at(&self, w: u32) -> f64 {
        let (start, end) = self.span;
        if w < start || start >= end {
            if w >= end && start < end { self.to } else { 1.0 }
        } else if w >= end {
            self.to
        } else {
            let t = f64::from(w - start) / f64::from(end - start);
            self.from + (self.to - self.from) * t
        }
    }

    /// Apply the ramp to one `(window, count)` observation.
    pub fn apply(&self, w: u32, count: u64) -> u64 {
        let scaled = count as f64 * self.scale_at(w);
        if scaled <= 0.0 {
            0
        } else {
            scaled.round() as u64
        }
    }

    /// True when the ramp can never change a count.
    pub fn is_none(&self) -> bool {
        self.span.0 >= self.span.1 && (self.to - 1.0).abs() < f64::EPSILON
    }
}

/// Seeded choice of which hosts a *poisoning* schedule compromises:
/// `ceil(fraction · n_hosts)` distinct host ids drawn from the tag-6
/// sub-stream of `master_seed`.
pub fn poisoned_hosts(master_seed: u64, n_hosts: u32, fraction: f64) -> BTreeSet<u32> {
    pick_hosts(crate::subseed(master_seed, 6), n_hosts, fraction)
}

/// Seeded choice of which hosts a *benign drift* schedule touches, from
/// the independent tag-5 sub-stream (`fraction = 1.0` drifts the fleet).
pub fn drifted_hosts(master_seed: u64, n_hosts: u32, fraction: f64) -> BTreeSet<u32> {
    pick_hosts(crate::subseed(master_seed, 5), n_hosts, fraction)
}

fn pick_hosts(seed: u64, n_hosts: u32, fraction: f64) -> BTreeSet<u32> {
    let f = fraction.clamp(0.0, 1.0);
    let k = (f * f64::from(n_hosts)).ceil() as usize;
    let k = k.min(n_hosts as usize);
    if k == 0 || n_hosts == 0 {
        return BTreeSet::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Partial Fisher-Yates: the first k slots of a shuffled identity
    // permutation are a uniform k-subset.
    let mut ids: Vec<u32> = (0..n_hosts).collect();
    for i in 0..k {
        let j = rng.random_range(i..ids.len());
        ids.swap(i, j);
    }
    ids.truncate(k);
    ids.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_interpolates_linearly_and_saturates() {
        let r = RampInject { span: (10, 20), from: 1.0, to: 2.0 };
        assert_eq!(r.scale_at(0), 1.0);
        assert_eq!(r.scale_at(10), 1.0);
        assert!((r.scale_at(15) - 1.5).abs() < 1e-12);
        assert_eq!(r.scale_at(20), 2.0);
        assert_eq!(r.scale_at(1000), 2.0);
        assert_eq!(r.apply(15, 100), 150);
    }

    #[test]
    fn downward_ramp_models_benign_deflation() {
        let r = RampInject { span: (0, 100), from: 1.0, to: 0.5 };
        assert_eq!(r.apply(0, 200), 200);
        assert_eq!(r.apply(100, 200), 100);
        // Monotone non-increasing along the span.
        let mut last = u64::MAX;
        for w in 0..=100 {
            let c = r.apply(w, 200);
            assert!(c <= last);
            last = c;
        }
    }

    #[test]
    fn identity_ramp_is_none_and_changes_nothing() {
        let r = RampInject::none();
        assert!(r.is_none());
        for w in [0u32, 5, 1000] {
            assert_eq!(r.apply(w, 123), 123);
        }
    }

    #[test]
    fn host_picks_are_seeded_and_sized() {
        let a = poisoned_hosts(42, 20, 0.5);
        assert_eq!(a.len(), 10);
        assert_eq!(a, poisoned_hosts(42, 20, 0.5), "pure function of seed");
        assert_ne!(a, poisoned_hosts(43, 20, 0.5), "seeds must decorrelate");
        assert!(a.iter().all(|&h| h < 20));
        // Drift and poison picks come from independent sub-streams.
        assert_ne!(a, drifted_hosts(42, 20, 0.5));
        assert!(poisoned_hosts(1, 0, 1.0).is_empty());
        assert!(poisoned_hosts(1, 8, 0.0).is_empty());
        assert_eq!(drifted_hosts(9, 8, 1.0).len(), 8);
    }
}
