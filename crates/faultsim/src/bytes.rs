//! Byte-level pcap corruption.
//!
//! Models the on-disk failure modes seen in long-running capture archives:
//! bit rot (random flips), partial writes (truncated tails), filesystem
//! damage to record framing (forged `incl_len` fields) and clobbered global
//! headers (bad magic). The corruptor walks the classic-pcap record chain
//! with its own ~30-line parser so a bug in `netpkt` cannot mask itself:
//! the code under attack never participates in generating the attack.
//!
//! All corruption is driven by a single seeded stream in a fixed order
//! (forge lengths → flip bits → clobber magic → truncate), so a given
//! `(ByteFaults, seed, input)` triple always yields the identical corrupted
//! capture.

use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::Serialize;

/// Classic pcap magic, native byte order.
const MAGIC_NATIVE: u32 = 0xa1b2_c3d4;
/// Classic pcap magic, swapped byte order.
const MAGIC_SWAPPED: u32 = 0xd4c3_b2a1;
/// Global header length.
const GLOBAL_HEADER_LEN: usize = 24;
/// Record header length.
const RECORD_HEADER_LEN: usize = 16;

/// Knobs for byte-level capture corruption. All rates are probabilities
/// in `[0, 1]`; zero everywhere means `apply` is the identity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ByteFaults {
    /// Per-byte probability of flipping one random bit.
    pub bitflip_rate: f64,
    /// Probability of truncating the capture at a random point past the
    /// global header.
    pub truncate_prob: f64,
    /// Per-record probability of forging `incl_len` to an implausibly
    /// large value (breaking the record chain at that point).
    pub bad_length_rate: f64,
    /// Clobber the global-header magic (makes the whole capture
    /// unreadable to a strict reader).
    pub corrupt_magic: bool,
}

impl ByteFaults {
    /// No corruption at all.
    pub fn none() -> Self {
        Self {
            bitflip_rate: 0.0,
            truncate_prob: 0.0,
            bad_length_rate: 0.0,
            corrupt_magic: false,
        }
    }

    /// True when `apply` cannot alter its input.
    pub fn is_none(&self) -> bool {
        self.bitflip_rate == 0.0
            && self.truncate_prob == 0.0
            && self.bad_length_rate == 0.0
            && !self.corrupt_magic
    }

    /// Corrupt `capture` according to this schedule, deterministically in
    /// `seed`. Returns the corrupted bytes and an accounting log.
    pub fn apply(&self, capture: &[u8], seed: u64) -> (Vec<u8>, ByteFaultLog) {
        let mut out = capture.to_vec();
        let mut log = ByteFaultLog::default();
        if self.is_none() {
            return (out, log);
        }
        let mut rng = StdRng::seed_from_u64(seed);

        // Phase 1: walk the record chain of the *original* bytes and forge
        // lengths in the output, so one forgery does not derail the walk.
        if let Some(swapped) = read_magic(capture) {
            let mut pos = GLOBAL_HEADER_LEN;
            while pos + RECORD_HEADER_LEN <= capture.len() {
                let incl_len = read_u32(capture, pos + 8, swapped) as usize;
                log.records_walked += 1;
                if self.bad_length_rate > 0.0 && rng.random_bool(self.bad_length_rate) {
                    let forged: u32 = rng.random_range(0x0500_0000u32..0xffff_0000u32);
                    write_u32(&mut out, pos + 8, forged, swapped);
                    log.records_length_forged += 1;
                }
                match pos.checked_add(RECORD_HEADER_LEN + incl_len) {
                    Some(next) if next <= capture.len() => pos = next,
                    _ => break,
                }
            }
        }

        // Phase 2: bit rot. The magic word is spared unless `corrupt_magic`
        // asks for it explicitly, so the knobs stay independent.
        if self.bitflip_rate > 0.0 {
            for byte in out.iter_mut().skip(4) {
                if rng.random_bool(self.bitflip_rate) {
                    let bit: u8 = rng.random_range(0u8..8);
                    *byte ^= 1 << bit;
                    log.bits_flipped += 1;
                }
            }
        }

        // Phase 3: clobbered global header.
        if self.corrupt_magic && !out.is_empty() {
            out[0] ^= 0xff;
            log.magic_corrupted = true;
        }

        // Phase 4: partial write — lose a random-length tail.
        if self.truncate_prob > 0.0
            && out.len() > GLOBAL_HEADER_LEN + 1
            && rng.random_bool(self.truncate_prob)
        {
            let cut = rng.random_range(GLOBAL_HEADER_LEN + 1..out.len());
            out.truncate(cut);
            log.truncated_at = Some(cut);
        }

        (out, log)
    }
}

/// What `ByteFaults::apply` actually did to one capture.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ByteFaultLog {
    /// Records visited by the length-forgery walk.
    pub records_walked: u64,
    /// Records whose `incl_len` was forged.
    pub records_length_forged: u64,
    /// Individual bits flipped.
    pub bits_flipped: u64,
    /// Whether the global-header magic was clobbered.
    pub magic_corrupted: bool,
    /// Byte offset the capture was truncated at, if it was.
    pub truncated_at: Option<usize>,
}

impl ByteFaultLog {
    /// True when no corruption was actually performed.
    pub fn is_clean(&self) -> bool {
        self.records_length_forged == 0
            && self.bits_flipped == 0
            && !self.magic_corrupted
            && self.truncated_at.is_none()
    }
}

/// Returns `Some(swapped)` if `buf` opens with a classic pcap magic.
fn read_magic(buf: &[u8]) -> Option<bool> {
    if buf.len() < GLOBAL_HEADER_LEN {
        return None;
    }
    match u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) {
        MAGIC_NATIVE => Some(false),
        MAGIC_SWAPPED => Some(true),
        _ => None,
    }
}

fn read_u32(buf: &[u8], off: usize, swapped: bool) -> u32 {
    let raw = [buf[off], buf[off + 1], buf[off + 2], buf[off + 3]];
    if swapped {
        u32::from_be_bytes(raw)
    } else {
        u32::from_le_bytes(raw)
    }
}

fn write_u32(buf: &mut [u8], off: usize, value: u32, swapped: bool) {
    let raw = if swapped {
        value.to_be_bytes()
    } else {
        value.to_le_bytes()
    };
    buf[off..off + 4].copy_from_slice(&raw);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal valid little-endian capture: global header + `n` records of
    /// `body` bytes each.
    fn capture(n: usize, body: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_NATIVE.to_le_bytes());
        buf.extend_from_slice(&2u16.to_le_bytes());
        buf.extend_from_slice(&4u16.to_le_bytes());
        buf.extend_from_slice(&[0u8; 8]); // thiszone + sigfigs
        buf.extend_from_slice(&65535u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes()); // ethernet
        for i in 0..n {
            buf.extend_from_slice(&(1_200_000_000u32 + i as u32).to_le_bytes());
            buf.extend_from_slice(&0u32.to_le_bytes());
            buf.extend_from_slice(&(body as u32).to_le_bytes());
            buf.extend_from_slice(&(body as u32).to_le_bytes());
            buf.extend_from_slice(&vec![0xaa; body]);
        }
        buf
    }

    #[test]
    fn none_is_identity() {
        let cap = capture(4, 32);
        let (out, log) = ByteFaults::none().apply(&cap, 99);
        assert_eq!(out, cap);
        assert!(log.is_clean());
    }

    #[test]
    fn same_seed_same_bytes() {
        let cap = capture(8, 40);
        let faults = ByteFaults {
            bitflip_rate: 0.01,
            truncate_prob: 0.5,
            bad_length_rate: 0.3,
            corrupt_magic: false,
        };
        let (a, la) = faults.apply(&cap, 7);
        let (b, lb) = faults.apply(&cap, 7);
        assert_eq!(a, b);
        assert_eq!(la, lb);
        let (c, _) = faults.apply(&cap, 8);
        assert_ne!(a, c, "different seeds should corrupt differently");
    }

    #[test]
    fn length_forgery_walks_every_record() {
        let cap = capture(5, 16);
        let faults = ByteFaults {
            bad_length_rate: 1.0,
            ..ByteFaults::none()
        };
        let (out, log) = faults.apply(&cap, 3);
        assert_eq!(log.records_walked, 5);
        assert_eq!(log.records_length_forged, 5);
        // Every record's incl_len should now be implausibly large.
        for i in 0..5 {
            let off = GLOBAL_HEADER_LEN + i * (RECORD_HEADER_LEN + 16) + 8;
            let v = read_u32(&out, off, false);
            assert!(v >= 0x0500_0000, "record {i} incl_len {v:#x}");
        }
    }

    #[test]
    fn truncation_respects_header() {
        let cap = capture(6, 64);
        let faults = ByteFaults {
            truncate_prob: 1.0,
            ..ByteFaults::none()
        };
        for seed in 0..32 {
            let (out, log) = faults.apply(&cap, seed);
            let cut = log.truncated_at.expect("must truncate at prob 1");
            assert_eq!(out.len(), cut);
            assert!(cut > GLOBAL_HEADER_LEN);
            assert!(cut < cap.len());
        }
    }

    #[test]
    fn magic_corruption_flags_and_flips() {
        let cap = capture(1, 8);
        let faults = ByteFaults {
            corrupt_magic: true,
            ..ByteFaults::none()
        };
        let (out, log) = faults.apply(&cap, 0);
        assert!(log.magic_corrupted);
        assert_ne!(read_magic(&out), Some(false));
    }

    #[test]
    fn bitflips_spare_magic_word() {
        let cap = capture(2, 512);
        let faults = ByteFaults {
            bitflip_rate: 1.0,
            ..ByteFaults::none()
        };
        let (out, log) = faults.apply(&cap, 11);
        assert_eq!(out[..4], cap[..4], "magic must survive bit rot phase");
        assert_eq!(log.bits_flipped, (cap.len() - 4) as u64);
    }

    #[test]
    fn garbage_input_never_panics() {
        let faults = ByteFaults {
            bitflip_rate: 0.1,
            truncate_prob: 1.0,
            bad_length_rate: 1.0,
            corrupt_magic: true,
        };
        for len in [0usize, 3, 23, 24, 25, 100] {
            let junk = vec![0x5a; len];
            let (_, _) = faults.apply(&junk, 1);
        }
    }
}
