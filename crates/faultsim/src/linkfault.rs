//! Seeded link faults for the cluster wire: drops, duplicates, reorders,
//! and byte corruption of framed messages in flight.
//!
//! The cluster transport is an in-process simulation of a real
//! datacenter link, and real links lose frames, deliver them twice,
//! deliver them late, and flip bits. [`LinkSim`] applies those faults to
//! each transmitted frame from one seeded stream, so a lossy run is
//! exactly replayable from `(faults, seed)` — the property every other
//! fault class in this crate maintains. The receiving side's CRC framing
//! and resynchronizing decoder turn corruption into loss, and the
//! coordinator's ARQ retransmission turns loss into delay; the cluster
//! determinism contract (byte-identical final host table) must survive
//! the whole menu.

use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::Serialize;

/// Per-frame fault probabilities for one simulated link direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaults {
    /// Probability a frame vanishes entirely.
    pub drop_rate: f64,
    /// Probability a frame is delivered twice (second copy slightly
    /// later).
    pub dup_rate: f64,
    /// Probability a frame is held back extra ticks (arriving after
    /// frames sent later).
    pub reorder_rate: f64,
    /// Probability one byte of the frame is bit-flipped in flight.
    pub corrupt_rate: f64,
}

impl LinkFaults {
    /// A perfectly reliable link.
    pub fn none() -> Self {
        Self {
            drop_rate: 0.0,
            dup_rate: 0.0,
            reorder_rate: 0.0,
            corrupt_rate: 0.0,
        }
    }

    /// True when no fault can occur.
    pub fn is_none(&self) -> bool {
        self.drop_rate <= 0.0
            && self.dup_rate <= 0.0
            && self.reorder_rate <= 0.0
            && self.corrupt_rate <= 0.0
    }

    /// Scale a canonical fault mix by one severity knob in `[0, 1]`,
    /// mirroring [`crate::FaultPlan::with_severity`].
    pub fn with_severity(severity: f64) -> Self {
        let s = severity.clamp(0.0, 1.0);
        Self {
            drop_rate: 0.08 * s,
            dup_rate: 0.10 * s,
            reorder_rate: 0.10 * s,
            corrupt_rate: 0.05 * s,
        }
    }
}

/// What one link direction did to its traffic.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct LinkFaultLog {
    /// Frames offered for transmission.
    pub frames: u64,
    /// Frames dropped outright.
    pub dropped: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
    /// Frames held back for late delivery.
    pub reordered: u64,
    /// Frames with a byte corrupted in flight.
    pub corrupted: u64,
}

/// One seeded lossy link direction.
#[derive(Debug)]
pub struct LinkSim {
    faults: LinkFaults,
    rng: StdRng,
    /// Running fault accounting.
    pub log: LinkFaultLog,
}

impl LinkSim {
    /// A link with the given fault mix and seed (derive per-direction
    /// seeds with [`crate::subseed`]-style mixing at the call site so
    /// directions are uncorrelated).
    pub fn new(faults: LinkFaults, seed: u64) -> Self {
        Self {
            faults,
            rng: StdRng::seed_from_u64(seed),
            log: LinkFaultLog::default(),
        }
    }

    /// Transmit one frame: returns the scheduled delivery copies as
    /// `(extra_delay_ticks, bytes)` — empty when dropped, two entries
    /// when duplicated. The caller adds its base latency on top of the
    /// extra delay.
    pub fn transmit(&mut self, frame: &[u8]) -> Vec<(u64, Vec<u8>)> {
        self.log.frames += 1;
        if self.faults.is_none() {
            return vec![(0, frame.to_vec())];
        }
        if self.faults.drop_rate > 0.0 && self.rng.random_bool(self.faults.drop_rate) {
            self.log.dropped += 1;
            return Vec::new();
        }
        let mut delay = 0u64;
        if self.faults.reorder_rate > 0.0 && self.rng.random_bool(self.faults.reorder_rate) {
            self.log.reordered += 1;
            delay = self.rng.random_range(1..=3);
        }
        let mut bytes = frame.to_vec();
        if !bytes.is_empty()
            && self.faults.corrupt_rate > 0.0
            && self.rng.random_bool(self.faults.corrupt_rate)
        {
            self.log.corrupted += 1;
            let idx = self.rng.random_range(0..bytes.len());
            let bit = self.rng.random_range(0..8u32);
            bytes[idx] ^= 1 << bit;
        }
        let mut copies = vec![(delay, bytes)];
        if self.faults.dup_rate > 0.0 && self.rng.random_bool(self.faults.dup_rate) {
            self.log.duplicated += 1;
            // The duplicate is the *uncorrupted* original, arriving a
            // little later — the classic retransmit-on-spurious-timeout
            // artifact.
            copies.push((delay + self.rng.random_range(1..=2), frame.to_vec()));
        }
        copies
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(seed: u64, faults: LinkFaults) -> (Vec<Vec<(u64, Vec<u8>)>>, LinkFaultLog) {
        let mut link = LinkSim::new(faults, seed);
        let out: Vec<_> = (0..200u8).map(|i| link.transmit(&[i, i ^ 0x5A, 7])).collect();
        (out, link.log)
    }

    #[test]
    fn clean_link_is_the_identity_with_zero_delay() {
        let (out, log) = drive(1, LinkFaults::none());
        assert!(out.iter().all(|c| c.len() == 1 && c[0].0 == 0));
        assert_eq!(log.dropped + log.duplicated + log.reordered + log.corrupted, 0);
        assert_eq!(log.frames, 200);
    }

    #[test]
    fn faulty_link_replays_exactly_per_seed() {
        let faults = LinkFaults::with_severity(1.0);
        let (a, log_a) = drive(42, faults);
        let (b, log_b) = drive(42, faults);
        assert_eq!(a, b);
        assert_eq!(log_a, log_b);
        let (c, _) = drive(43, faults);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn severity_one_exercises_every_fault_class() {
        let (_, log) = drive(7, LinkFaults::with_severity(1.0));
        assert!(log.dropped > 0);
        assert!(log.duplicated > 0);
        assert!(log.reordered > 0);
        assert!(log.corrupted > 0);
        assert!(log.dropped < log.frames, "most frames still get through");
    }

    #[test]
    fn duplicates_preserve_the_original_bytes() {
        let faults = LinkFaults {
            dup_rate: 1.0,
            corrupt_rate: 1.0,
            ..LinkFaults::none()
        };
        let mut link = LinkSim::new(faults, 3);
        let copies = link.transmit(&[1, 2, 3, 4]);
        assert_eq!(copies.len(), 2);
        assert_eq!(copies[1].1, vec![1, 2, 3, 4], "dup is the clean original");
        assert_ne!(copies[0].1, vec![1, 2, 3, 4], "primary was corrupted");
        assert!(copies[1].0 > copies[0].0, "dup arrives later");
    }
}
