//! # faultsim — deterministic fault injection for the measurement pipeline
//!
//! The monoculture-HIDS reproduction assumes clean inputs end to end:
//! well-formed pcap captures, complete per-host telemetry, in-order alert
//! delivery. Real enterprise deployments get none of that — captures rot on
//! disk, agents crash mid-week, WAN links duplicate and reorder batches.
//! This crate produces *seeded, reproducible* versions of those failures so
//! the hardened pipeline can be driven through them in tests and chaos
//! experiments, and so any observed behaviour can be replayed exactly from
//! `(plan, seed)`.
//!
//! Three fault classes, one per module:
//!
//! * [`bytes`] — byte-level pcap corruption (bit flips, truncation, forged
//!   record lengths, bad magic), attacking `netpkt`'s capture readers;
//! * [`telemetry`] — per-host window loss and dropout/rejoin episodes,
//!   attacking `hids-core`'s evaluation layer;
//! * [`batchfault`] — duplication and reordering of alert batches in
//!   flight, attacking `itconsole`'s ingest path;
//! * [`killsched`] — seeded process-death schedules (batch-boundary kills
//!   and mid-record torn WAL writes), attacking `fleetd`'s crash recovery;
//! * [`driftfault`] — seeded baseline drift ramps and boiling-frog
//!   poisoning schedules, attacking the threshold-refit lifecycle;
//! * [`linkfault`] — seeded wire faults (frame drops, duplicates,
//!   reorders, byte corruption) plus silent node deaths, attacking
//!   `fleetd`'s cluster transport and heartbeat failure detector;
//! * [`datagram`] — per-datagram UDP faults (loss, duplication, byte
//!   corruption, truncation), attacking `fleetd`'s syslog/CEF and DNS
//!   ingest plane.
//!
//! A [`FaultPlan`] bundles all three behind a single master seed, deriving
//! an independent deterministic stream per class, and scales with a single
//! severity knob so experiments can sweep "corruption rate" as one axis.
//!
//! Everything here is pure: same plan + same input ⇒ bit-identical output,
//! on every platform, at any thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batchfault;
pub mod bytes;
pub mod datagram;
pub mod driftfault;
pub mod killsched;
pub mod linkfault;
pub mod telemetry;

pub use batchfault::{BatchFaultLog, BatchFaults};
pub use bytes::{ByteFaultLog, ByteFaults};
pub use datagram::{DatagramFaultLog, DatagramFaults};
pub use driftfault::{drifted_hosts, poisoned_hosts, RampInject};
pub use killsched::{
    cluster_kill_points, command_kill_points, kill_points, rollout_kill_points, ClusterKillPoint,
    KillPoint,
};
pub use linkfault::{LinkFaultLog, LinkFaults, LinkSim};
pub use telemetry::{TelemetryFaultLog, TelemetryFaults};

/// Derive an independent sub-seed for one fault class from a master seed.
///
/// SplitMix64 finalizer over `master ^ f(tag)`: cheap, stateless, and the
/// streams for distinct tags are uncorrelated for the generator sizes used
/// here.
pub(crate) fn subseed(master: u64, tag: u64) -> u64 {
    let mut z = master ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A complete seeded fault schedule covering every pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Master seed; each fault class derives its own stream from it.
    pub seed: u64,
    /// Byte-level pcap corruption.
    pub bytes: ByteFaults,
    /// Telemetry window loss and host dropout.
    pub telemetry: TelemetryFaults,
    /// Alert-batch duplication and reordering.
    pub batches: BatchFaults,
}

impl FaultPlan {
    /// A plan that injects nothing: every `apply` is the identity.
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            bytes: ByteFaults::none(),
            telemetry: TelemetryFaults::none(),
            batches: BatchFaults::none(),
        }
    }

    /// Scale a canonical fault mix by one severity knob in `[0, 1]`.
    ///
    /// `severity = 0` is [`FaultPlan::none`]; `severity = 1` is the
    /// harshest schedule the chaos acceptance tests exercise (≈20% of
    /// records corrupted, regular host dropouts, frequent batch faults).
    pub fn with_severity(seed: u64, severity: f64) -> Self {
        let s = severity.clamp(0.0, 1.0);
        Self {
            seed,
            bytes: ByteFaults {
                bitflip_rate: 0.002 * s,
                truncate_prob: 0.5 * s,
                bad_length_rate: 0.05 * s,
                corrupt_magic: false,
            },
            telemetry: TelemetryFaults {
                window_drop_rate: 0.10 * s,
                dropout_prob: 0.5 * s,
                dropout_max_windows: 96,
            },
            batches: BatchFaults {
                dup_rate: 0.15 * s,
                reorder_rate: 0.15 * s,
            },
        }
    }

    /// True when no fault class can alter its input.
    pub fn is_none(&self) -> bool {
        self.bytes.is_none() && self.telemetry.is_none() && self.batches.is_none()
    }

    /// Seed for the byte-corruption stream.
    pub fn bytes_seed(&self) -> u64 {
        subseed(self.seed, 1)
    }

    /// Seed for the telemetry-fault stream.
    pub fn telemetry_seed(&self) -> u64 {
        subseed(self.seed, 2)
    }

    /// Seed for the batch-fault stream.
    pub fn batches_seed(&self) -> u64 {
        subseed(self.seed, 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subseeds_differ_per_tag_and_master() {
        let a = subseed(42, 1);
        let b = subseed(42, 2);
        let c = subseed(43, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, subseed(42, 1), "subseed must be a pure function");
    }

    #[test]
    fn none_plan_is_none() {
        assert!(FaultPlan::none(7).is_none());
        assert!(FaultPlan::with_severity(7, 0.0).is_none());
        assert!(!FaultPlan::with_severity(7, 0.2).is_none());
    }

    #[test]
    fn severity_is_clamped() {
        let over = FaultPlan::with_severity(1, 5.0);
        let one = FaultPlan::with_severity(1, 1.0);
        assert_eq!(over, one);
        let under = FaultPlan::with_severity(1, -3.0);
        assert!(under.is_none());
    }
}
