//! Telemetry faults: missing windows and host dropout/rejoin.
//!
//! The paper's evaluation assumes every host reports a feature count for
//! every 15-minute window of every week. Deployed agents do not: they get
//! rebooted, wedge under load, or lose their uplink for hours at a time.
//! This module turns those failure modes into per-host boolean *coverage
//! masks* (`true` = window observed) that the degraded-mode evaluator in
//! `hids-core` consumes.
//!
//! Two mechanisms compose:
//!
//! * **window drops** — i.i.d. per-window loss (collector-side packet
//!   loss, agent GC pauses);
//! * **dropout episodes** — a contiguous run of missing windows per
//!   affected host (crash + later rejoin), with seeded start and length.
//!
//! Masks are generated host-major in host order from one seeded stream, so
//! a `(TelemetryFaults, seed, n_hosts, n_windows)` tuple always yields the
//! identical schedule.

use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::Serialize;

/// Knobs for telemetry loss. Zero rates mean full coverage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TelemetryFaults {
    /// Per-window i.i.d. probability a host's window goes missing.
    pub window_drop_rate: f64,
    /// Per-host probability of one dropout episode (crash + rejoin).
    pub dropout_prob: f64,
    /// Maximum episode length in windows (96 = one day at 15 min).
    pub dropout_max_windows: usize,
}

impl TelemetryFaults {
    /// No telemetry loss.
    pub fn none() -> Self {
        Self {
            window_drop_rate: 0.0,
            dropout_prob: 0.0,
            dropout_max_windows: 0,
        }
    }

    /// True when `apply` always yields full coverage.
    pub fn is_none(&self) -> bool {
        self.window_drop_rate == 0.0 && (self.dropout_prob == 0.0 || self.dropout_max_windows == 0)
    }

    /// Generate per-host coverage masks (`masks[host][window]`,
    /// `true` = observed) plus an accounting log.
    pub fn apply(
        &self,
        n_hosts: usize,
        n_windows: usize,
        seed: u64,
    ) -> (Vec<Vec<bool>>, TelemetryFaultLog) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut log = TelemetryFaultLog::default();
        let mut masks = Vec::with_capacity(n_hosts);
        for _ in 0..n_hosts {
            let mut mask = vec![true; n_windows];
            if self.window_drop_rate > 0.0 {
                for covered in mask.iter_mut() {
                    if rng.random_bool(self.window_drop_rate) {
                        *covered = false;
                    }
                }
            }
            if self.dropout_prob > 0.0
                && self.dropout_max_windows > 0
                && n_windows > 0
                && rng.random_bool(self.dropout_prob)
            {
                let len = rng.random_range(1..=self.dropout_max_windows.min(n_windows));
                let start = rng.random_range(0..=n_windows - len);
                for covered in &mut mask[start..start + len] {
                    *covered = false;
                }
                log.dropout_episodes += 1;
            }
            log.windows_dropped += mask.iter().filter(|&&c| !c).count() as u64;
            log.hosts_fully_dark += u64::from(n_windows > 0 && mask.iter().all(|&c| !c));
            masks.push(mask);
        }
        log.windows_total = (n_hosts * n_windows) as u64;
        (masks, log)
    }
}

/// What `TelemetryFaults::apply` actually removed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct TelemetryFaultLog {
    /// Host×window cells in the schedule.
    pub windows_total: u64,
    /// Cells marked unobserved (drops and episodes combined).
    pub windows_dropped: u64,
    /// Dropout episodes injected.
    pub dropout_episodes: u64,
    /// Hosts left with zero coverage.
    pub hosts_fully_dark: u64,
}

impl TelemetryFaultLog {
    /// Fraction of host×window cells still observed.
    pub fn coverage(&self) -> f64 {
        if self.windows_total == 0 {
            1.0
        } else {
            1.0 - self.windows_dropped as f64 / self.windows_total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_gives_full_coverage() {
        let (masks, log) = TelemetryFaults::none().apply(5, 100, 1);
        assert_eq!(masks.len(), 5);
        assert!(masks.iter().all(|m| m.iter().all(|&c| c)));
        assert_eq!(log.windows_dropped, 0);
        assert_eq!(log.coverage(), 1.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let f = TelemetryFaults {
            window_drop_rate: 0.2,
            dropout_prob: 0.5,
            dropout_max_windows: 30,
        };
        let (a, la) = f.apply(20, 200, 9);
        let (b, lb) = f.apply(20, 200, 9);
        assert_eq!(a, b);
        assert_eq!(la, lb);
        let (c, _) = f.apply(20, 200, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn log_counts_match_masks() {
        let f = TelemetryFaults {
            window_drop_rate: 0.3,
            dropout_prob: 1.0,
            dropout_max_windows: 50,
        };
        let (masks, log) = f.apply(8, 300, 4);
        let dropped: u64 = masks
            .iter()
            .map(|m| m.iter().filter(|&&c| !c).count() as u64)
            .sum();
        assert_eq!(log.windows_dropped, dropped);
        assert_eq!(log.windows_total, 8 * 300);
        assert_eq!(log.dropout_episodes, 8);
        assert!(log.coverage() < 1.0);
    }

    #[test]
    fn episode_is_contiguous() {
        let f = TelemetryFaults {
            window_drop_rate: 0.0,
            dropout_prob: 1.0,
            dropout_max_windows: 40,
        };
        let (masks, _) = f.apply(10, 500, 77);
        for mask in masks {
            // Exactly one contiguous false run: count edges.
            let mut edges = 0;
            for w in mask.windows(2) {
                if w[0] != w[1] {
                    edges += 1;
                }
            }
            assert!(edges <= 2, "non-contiguous episode: {edges} edges");
        }
    }

    #[test]
    fn zero_windows_never_panics() {
        let f = TelemetryFaults {
            window_drop_rate: 0.5,
            dropout_prob: 1.0,
            dropout_max_windows: 10,
        };
        let (masks, log) = f.apply(3, 0, 2);
        assert!(masks.iter().all(|m| m.is_empty()));
        assert_eq!(log.coverage(), 1.0);
        assert_eq!(log.hosts_fully_dark, 0);
    }
}
