//! Cross-module determinism contract: a `FaultPlan` is a pure function of
//! its seed — replaying the same plan over the same inputs must reproduce
//! every corrupted byte, mask and batch exactly. The chaos experiments and
//! the acceptance tests rely on this to make failures replayable.

use faultsim::{BatchFaults, ByteFaults, FaultPlan, TelemetryFaults};
use proptest::prelude::*;

/// Build a small synthetic little-endian capture.
fn capture(records: usize) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&0xa1b2_c3d4u32.to_le_bytes());
    buf.extend_from_slice(&[2, 0, 4, 0]);
    buf.extend_from_slice(&[0u8; 8]);
    buf.extend_from_slice(&65535u32.to_le_bytes());
    buf.extend_from_slice(&1u32.to_le_bytes());
    for i in 0..records {
        buf.extend_from_slice(&(1_300_000_000u32 + i as u32).to_le_bytes());
        buf.extend_from_slice(&((i as u32) * 100).to_le_bytes());
        buf.extend_from_slice(&48u32.to_le_bytes());
        buf.extend_from_slice(&48u32.to_le_bytes());
        buf.extend_from_slice(&vec![i as u8; 48]);
    }
    buf
}

#[test]
fn plan_subseeds_are_distinct_streams() {
    let plan = FaultPlan::with_severity(0xDEAD_BEEF, 0.5);
    let seeds = [plan.bytes_seed(), plan.telemetry_seed(), plan.batches_seed()];
    assert_ne!(seeds[0], seeds[1]);
    assert_ne!(seeds[1], seeds[2]);
    assert_ne!(seeds[0], seeds[2]);
}

#[test]
fn severity_zero_plan_is_identity_everywhere() {
    let plan = FaultPlan::with_severity(1, 0.0);
    let cap = capture(6);
    let (bytes, blog) = plan.bytes.apply(&cap, plan.bytes_seed());
    assert_eq!(bytes, cap);
    assert!(blog.is_clean());
    let (masks, tlog) = plan.telemetry.apply(10, 96, plan.telemetry_seed());
    assert!(masks.iter().all(|m| m.iter().all(|&c| c)));
    assert_eq!(tlog.windows_dropped, 0);
    let stream: Vec<u32> = (0..20).collect();
    let (out, flog) = plan.batches.apply(&stream, plan.batches_seed());
    assert_eq!(out, stream);
    assert_eq!(flog.duplicated + flog.swaps, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Replaying any plan reproduces byte-identical outputs across all
    /// three fault classes.
    #[test]
    fn full_plan_replays_identically(seed in any::<u64>(), severity in 0.0f64..1.0) {
        let plan = FaultPlan::with_severity(seed, severity);
        let cap = capture(10);
        let stream: Vec<u32> = (0..30).collect();

        let run = |p: &FaultPlan| {
            let b = p.bytes.apply(&cap, p.bytes_seed());
            let t = p.telemetry.apply(12, 96, p.telemetry_seed());
            let f = p.batches.apply(&stream, p.batches_seed());
            (b, t, f)
        };
        let (b1, t1, f1) = run(&plan);
        let (b2, t2, f2) = run(&plan);
        prop_assert_eq!(b1, b2);
        prop_assert_eq!(t1, t2);
        prop_assert_eq!(f1, f2);
    }

    /// Byte corruption accounting stays consistent for arbitrary knobs.
    #[test]
    fn byte_log_consistent(
        seed in any::<u64>(),
        bitflip in 0.0f64..0.05,
        trunc in 0.0f64..1.0,
        badlen in 0.0f64..1.0,
    ) {
        let faults = ByteFaults {
            bitflip_rate: bitflip,
            truncate_prob: trunc,
            bad_length_rate: badlen,
            corrupt_magic: false,
        };
        let cap = capture(8);
        let (out, log) = faults.apply(&cap, seed);
        prop_assert!(log.records_length_forged <= log.records_walked);
        prop_assert!(out.len() <= cap.len());
        match log.truncated_at {
            Some(cut) => prop_assert_eq!(out.len(), cut),
            None => prop_assert_eq!(out.len(), cap.len()),
        }
    }

    /// Telemetry masks always agree with their log for arbitrary knobs.
    #[test]
    fn telemetry_log_consistent(
        seed in any::<u64>(),
        drop_rate in 0.0f64..1.0,
        dropout in 0.0f64..1.0,
        max_ep in 0usize..200,
        hosts in 0usize..20,
        windows in 0usize..300,
    ) {
        let faults = TelemetryFaults {
            window_drop_rate: drop_rate,
            dropout_prob: dropout,
            dropout_max_windows: max_ep,
        };
        let (masks, log) = faults.apply(hosts, windows, seed);
        prop_assert_eq!(masks.len(), hosts);
        let dropped: u64 = masks
            .iter()
            .map(|m| m.iter().filter(|&&c| !c).count() as u64)
            .sum();
        prop_assert_eq!(log.windows_dropped, dropped);
        prop_assert_eq!(log.windows_total, (hosts * windows) as u64);
        prop_assert!(log.coverage() >= 0.0 && log.coverage() <= 1.0);
    }

    /// Batch faults never lose or invent payloads.
    #[test]
    fn batch_multiset_preserved(
        seed in any::<u64>(),
        dup in 0.0f64..1.0,
        reorder in 0.0f64..1.0,
        n in 0usize..60,
    ) {
        let faults = BatchFaults { dup_rate: dup, reorder_rate: reorder };
        let stream: Vec<usize> = (0..n).collect();
        let (out, log) = faults.apply(&stream, seed);
        prop_assert_eq!(out.len() as u64, n as u64 + log.duplicated);
        let mut counts = vec![0u64; n];
        for v in &out {
            counts[*v] += 1;
        }
        prop_assert!(counts.iter().all(|&c| c >= 1) || n == 0);
    }
}
