//! Per-host alert batching.

use hids_core::Alert;

/// What to do with an alert whose window precedes the batch period
/// currently being filled (late delivery from a recovering agent, or a
/// duplicated message on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LatePolicy {
    /// Append the late alert to the current batch: nothing is lost, and
    /// the console can still attribute it by its window field.
    #[default]
    FoldIntoCurrent,
    /// Discard late alerts (count them in [`AlertBatcher::late_alerts`]).
    Drop,
}

/// Accumulates a host's alerts and releases them in periodic batches, the
/// way commercial HIDS agents ship to a management console.
///
/// Batches are cut on *window boundaries*: a batch covers
/// `batch_windows` consecutive windows and is released when the first
/// alert of a *later* batch period arrives (or on [`AlertBatcher::flush`]).
/// An alert for an earlier period — out-of-order delivery — never cuts a
/// batch and never rewinds the current period; it is handled per the
/// configured [`LatePolicy`] and counted.
#[derive(Debug)]
pub struct AlertBatcher {
    batch_windows: usize,
    current_period: Option<usize>,
    late_policy: LatePolicy,
    late_alerts: u64,
    pending: Vec<Alert>,
    ready: Vec<Vec<Alert>>,
}

impl AlertBatcher {
    /// Create a batcher that cuts a batch every `batch_windows` windows.
    ///
    /// # Panics
    /// Panics when `batch_windows` is zero.
    pub fn new(batch_windows: usize) -> Self {
        Self::with_late_policy(batch_windows, LatePolicy::default())
    }

    /// Like [`AlertBatcher::new`], choosing how late alerts are handled.
    ///
    /// # Panics
    /// Panics when `batch_windows` is zero.
    pub fn with_late_policy(batch_windows: usize, late_policy: LatePolicy) -> Self {
        assert!(batch_windows > 0, "batch period must be positive");
        Self {
            batch_windows,
            current_period: None,
            late_policy,
            late_alerts: 0,
            pending: Vec::new(),
            ready: Vec::new(),
        }
    }

    /// Add one alert. Alerts nominally arrive in window order per host;
    /// out-of-order (earlier-period) arrivals are tolerated per the
    /// [`LatePolicy`] instead of corrupting period tracking.
    pub fn push(&mut self, alert: Alert) {
        let period = alert.window / self.batch_windows;
        match self.current_period {
            Some(p) if p == period => {}
            Some(p) if period < p => {
                // Late delivery: never cut a batch, never rewind.
                self.late_alerts += 1;
                match self.late_policy {
                    LatePolicy::FoldIntoCurrent => self.pending.push(alert),
                    LatePolicy::Drop => {}
                }
                return;
            }
            Some(_) => {
                let batch = std::mem::take(&mut self.pending);
                if !batch.is_empty() {
                    self.ready.push(batch);
                }
                self.current_period = Some(period);
            }
            None => self.current_period = Some(period),
        }
        self.pending.push(alert);
    }

    /// Alerts that arrived for an already-closed batch period.
    pub fn late_alerts(&self) -> u64 {
        self.late_alerts
    }

    /// Take any complete batches.
    pub fn take_ready(&mut self) -> Vec<Vec<Alert>> {
        std::mem::take(&mut self.ready)
    }

    /// Flush everything, including the in-progress batch.
    pub fn flush(&mut self) -> Vec<Vec<Alert>> {
        let mut out = std::mem::take(&mut self.ready);
        let last = std::mem::take(&mut self.pending);
        if !last.is_empty() {
            out.push(last);
        }
        self.current_period = None;
        out
    }

    /// Alerts waiting in the current period.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtab::FeatureKind;

    fn alert(window: usize) -> Alert {
        Alert {
            user: 1,
            window,
            feature: FeatureKind::TcpConnections,
            observed: 100,
            threshold: 50.0,
        }
    }

    #[test]
    fn batches_cut_on_period_boundaries() {
        let mut b = AlertBatcher::new(4);
        for w in [0, 1, 3, 4, 5, 9] {
            b.push(alert(w));
        }
        let ready = b.take_ready();
        assert_eq!(ready.len(), 2);
        assert_eq!(ready[0].len(), 3); // windows 0,1,3 (period 0)
        assert_eq!(ready[1].len(), 2); // windows 4,5 (period 1)
        assert_eq!(b.pending_len(), 1); // window 9 (period 2) in progress
        let flushed = b.flush();
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0][0].window, 9);
    }

    #[test]
    fn quiet_hosts_ship_nothing() {
        let mut b = AlertBatcher::new(96);
        assert!(b.take_ready().is_empty());
        assert!(b.flush().is_empty());
    }

    #[test]
    fn single_period_all_in_one_batch() {
        let mut b = AlertBatcher::new(1000);
        for w in 0..10 {
            b.push(alert(w));
        }
        assert!(b.take_ready().is_empty(), "period not yet complete");
        let f = b.flush();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].len(), 10);
    }

    #[test]
    fn flush_resets_state() {
        let mut b = AlertBatcher::new(2);
        b.push(alert(0));
        b.flush();
        b.push(alert(100));
        let f = b.flush();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0][0].window, 100);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_rejected() {
        let _ = AlertBatcher::new(0);
    }

    /// Regression: an out-of-order alert from an earlier period used to cut
    /// a spurious batch *and* rewind `current_period`, after which the next
    /// in-order alert cut a second bogus batch. Late alerts must never cut.
    #[test]
    fn late_alert_does_not_cut_or_rewind() {
        let mut b = AlertBatcher::new(4);
        b.push(alert(8)); // period 2
        b.push(alert(9));
        b.push(alert(1)); // late: period 0, delivered out of order
        assert!(
            b.take_ready().is_empty(),
            "late alert must not cut a batch"
        );
        assert_eq!(b.late_alerts(), 1);
        b.push(alert(10)); // still period 2: must not cut either
        assert!(
            b.take_ready().is_empty(),
            "period tracking must not rewind on late alerts"
        );
        // The late alert rode along in the current batch by default.
        let f = b.flush();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].len(), 4);
        assert!(f[0].iter().any(|a| a.window == 1));
    }

    #[test]
    fn late_policy_drop_discards_but_counts() {
        let mut b = AlertBatcher::with_late_policy(4, LatePolicy::Drop);
        b.push(alert(8));
        b.push(alert(1)); // late
        b.push(alert(2)); // late
        assert_eq!(b.late_alerts(), 2);
        let f = b.flush();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].len(), 1, "dropped late alerts must not appear");
        assert_eq!(f[0][0].window, 8);
    }

    /// Ordered streams never register late alerts — the fix must not
    /// change the happy path.
    #[test]
    fn in_order_stream_has_no_late_alerts() {
        let mut b = AlertBatcher::new(4);
        for w in 0..40 {
            b.push(alert(w));
        }
        assert_eq!(b.late_alerts(), 0);
        let mut batches = b.take_ready();
        batches.extend(b.flush());
        assert_eq!(batches.len(), 10);
        assert!(batches.iter().all(|batch| batch.len() == 4));
    }

    /// A duplicated batch boundary (same period arriving twice around a
    /// later one) leaves batch count and totals sane.
    #[test]
    fn duplicate_period_after_advance_is_late() {
        let mut b = AlertBatcher::new(2);
        b.push(alert(0));
        b.push(alert(2)); // cuts period 0
        b.push(alert(0)); // duplicate delivery of window 0
        let ready = b.take_ready();
        assert_eq!(ready.len(), 1);
        assert_eq!(b.late_alerts(), 1);
        let f = b.flush();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].len(), 2); // window 2 + folded duplicate
    }
}
