//! Per-host alert batching.

use hids_core::Alert;

/// Accumulates a host's alerts and releases them in periodic batches, the
/// way commercial HIDS agents ship to a management console.
///
/// Batches are cut on *window boundaries*: a batch covers
/// `batch_windows` consecutive windows and is released when the first
/// alert of a later batch period arrives (or on [`AlertBatcher::flush`]).
#[derive(Debug)]
pub struct AlertBatcher {
    batch_windows: usize,
    current_period: Option<usize>,
    pending: Vec<Alert>,
    ready: Vec<Vec<Alert>>,
}

impl AlertBatcher {
    /// Create a batcher that cuts a batch every `batch_windows` windows.
    ///
    /// # Panics
    /// Panics when `batch_windows` is zero.
    pub fn new(batch_windows: usize) -> Self {
        assert!(batch_windows > 0, "batch period must be positive");
        Self {
            batch_windows,
            current_period: None,
            pending: Vec::new(),
            ready: Vec::new(),
        }
    }

    /// Add one alert (alerts must arrive in window order per host).
    pub fn push(&mut self, alert: Alert) {
        let period = alert.window / self.batch_windows;
        match self.current_period {
            Some(p) if p == period => {}
            Some(_) => {
                let batch = std::mem::take(&mut self.pending);
                if !batch.is_empty() {
                    self.ready.push(batch);
                }
                self.current_period = Some(period);
            }
            None => self.current_period = Some(period),
        }
        self.pending.push(alert);
    }

    /// Take any complete batches.
    pub fn take_ready(&mut self) -> Vec<Vec<Alert>> {
        std::mem::take(&mut self.ready)
    }

    /// Flush everything, including the in-progress batch.
    pub fn flush(&mut self) -> Vec<Vec<Alert>> {
        let mut out = std::mem::take(&mut self.ready);
        let last = std::mem::take(&mut self.pending);
        if !last.is_empty() {
            out.push(last);
        }
        self.current_period = None;
        out
    }

    /// Alerts waiting in the current period.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtab::FeatureKind;

    fn alert(window: usize) -> Alert {
        Alert {
            user: 1,
            window,
            feature: FeatureKind::TcpConnections,
            observed: 100,
            threshold: 50.0,
        }
    }

    #[test]
    fn batches_cut_on_period_boundaries() {
        let mut b = AlertBatcher::new(4);
        for w in [0, 1, 3, 4, 5, 9] {
            b.push(alert(w));
        }
        let ready = b.take_ready();
        assert_eq!(ready.len(), 2);
        assert_eq!(ready[0].len(), 3); // windows 0,1,3 (period 0)
        assert_eq!(ready[1].len(), 2); // windows 4,5 (period 1)
        assert_eq!(b.pending_len(), 1); // window 9 (period 2) in progress
        let flushed = b.flush();
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0][0].window, 9);
    }

    #[test]
    fn quiet_hosts_ship_nothing() {
        let mut b = AlertBatcher::new(96);
        assert!(b.take_ready().is_empty());
        assert!(b.flush().is_empty());
    }

    #[test]
    fn single_period_all_in_one_batch() {
        let mut b = AlertBatcher::new(1000);
        for w in 0..10 {
            b.push(alert(w));
        }
        assert!(b.take_ready().is_empty(), "period not yet complete");
        let f = b.flush();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].len(), 10);
    }

    #[test]
    fn flush_resets_state() {
        let mut b = AlertBatcher::new(2);
        b.push(alert(0));
        b.flush();
        b.push(alert(100));
        let f = b.flush();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0][0].window, 100);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_rejected() {
        let _ = AlertBatcher::new(0);
    }
}
