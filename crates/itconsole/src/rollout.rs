//! Console-side rollout planning: when to refit, what to propose, and
//! how an epoch history reads back to an operator.
//!
//! The daemon (`fleetd`) owns the *mechanics* of a threshold epoch —
//! canary shadow evaluation, health gates, WAL-journaled promote or
//! rollback. This module is the IT-console side that sits in front of
//! it and stays deliberately daemon-agnostic: it watches per-host drift
//! via [`hids_core::DriftTracker`], decides when the fleet has drifted
//! enough to justify a staged rollout, and builds the candidate
//! threshold set the daemon will soak. The split keeps the dependency
//! arrow pointing one way (the orchestration harness in `experiments`
//! glues planner to daemon) and means the planning logic is testable
//! without a WAL on disk.
//!
//! Poisoning-resistant refit: a host whose [`DriftTracker`] latched the
//! boiling-frog guard refuses to hand out a refit window, so the
//! planner falls back to that host's *group* threshold from the
//! partial-diversity policy — a single manipulated host cannot drag a
//! pooled group threshold far (the paper's own argument for grouping).
//! A suspect host with no group fallback is skipped outright: no
//! threshold beats a learned-from-the-attacker threshold.

use std::collections::BTreeMap;

use hids_core::{DriftConfig, DriftState, DriftTracker, PolicyOutcome, ThresholdHeuristic};
use tailstats::EmpiricalDist;

/// Per-host drift trackers for a whole fleet, keyed by host id.
///
/// Purely deterministic: verdicts depend only on each host's own stream,
/// never on how hosts interleave.
#[derive(Debug, Clone)]
pub struct FleetDriftMonitor {
    cfg: DriftConfig,
    trackers: BTreeMap<u32, DriftTracker>,
}

impl FleetDriftMonitor {
    /// An empty monitor; hosts are added with [`register_host`].
    ///
    /// [`register_host`]: FleetDriftMonitor::register_host
    pub fn new(cfg: DriftConfig) -> Self {
        Self {
            cfg,
            trackers: BTreeMap::new(),
        }
    }

    /// Start tracking a host against its training distribution. Re-registering
    /// an id replaces its tracker (fresh state).
    pub fn register_host(&mut self, host: u32, train: &EmpiricalDist) {
        self.trackers
            .insert(host, DriftTracker::new(train, self.cfg));
    }

    /// Feed one live window count for a host. Returns the tracker state
    /// after absorbing it, or `None` for an unregistered host (the caller
    /// decides whether that is an error).
    pub fn observe(&mut self, host: u32, count: u64) -> Option<DriftState> {
        self.trackers.get_mut(&host).map(|t| t.observe(count))
    }

    /// The host's tracker, if registered.
    pub fn tracker(&self, host: u32) -> Option<&DriftTracker> {
        self.trackers.get(&host)
    }

    /// Hosts whose drift latch has fired, ascending by id.
    pub fn drifted(&self) -> Vec<u32> {
        self.trackers
            .iter()
            .filter(|(_, t)| t.state() == DriftState::Drifted)
            .map(|(&h, _)| h)
            .collect()
    }

    /// Hosts latched as suspect by the poisoning guard, ascending by id.
    pub fn suspects(&self) -> Vec<u32> {
        self.trackers
            .iter()
            .filter(|(_, t)| t.suspect())
            .map(|(&h, _)| h)
            .collect()
    }

    /// Whether every registered host has latched drift (and at least one
    /// host is registered).
    pub fn all_drifted(&self) -> bool {
        !self.trackers.is_empty()
            && self
                .trackers
                .values()
                .all(|t| t.state() == DriftState::Drifted)
    }

    /// Number of registered hosts.
    pub fn len(&self) -> usize {
        self.trackers.len()
    }

    /// Whether no hosts are registered.
    pub fn is_empty(&self) -> bool {
        self.trackers.is_empty()
    }

    /// Clear every tracker's latch and guard after a rollout consumed the
    /// fleet's verdicts.
    pub fn reset_all(&mut self) {
        for t in self.trackers.values_mut() {
            t.reset();
        }
    }
}

/// The candidate threshold set a planner proposes for soaking, plus the
/// provenance of each host's value.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidatePlan {
    /// Proposed threshold per host.
    pub thresholds: BTreeMap<u32, f64>,
    /// Hosts whose threshold was refit from their own drifted window.
    pub refit_hosts: Vec<u32>,
    /// Suspect hosts that fell back to their group threshold.
    pub fallback_hosts: Vec<u32>,
    /// Suspect hosts with no group fallback available: excluded entirely.
    pub skipped_hosts: Vec<u32>,
}

/// Build a candidate threshold set from the monitor's current verdicts.
///
/// Every drifted host contributes: a refit from its frozen trigger
/// window when the tracker hands one out, else (poisoning suspect) the
/// host's entry in `group_fallback`, else it is skipped. Hosts that have
/// not drifted are left on their incumbent threshold (absent from the
/// plan) — the daemon's shadow evaluation only covers proposed hosts.
pub fn build_candidate(
    monitor: &FleetDriftMonitor,
    refit: &ThresholdHeuristic,
    group_fallback: &BTreeMap<u32, f64>,
) -> CandidatePlan {
    let mut plan = CandidatePlan {
        thresholds: BTreeMap::new(),
        refit_hosts: Vec::new(),
        fallback_hosts: Vec::new(),
        skipped_hosts: Vec::new(),
    };
    for &host in &monitor.drifted() {
        let Some(tracker) = monitor.tracker(host) else {
            continue;
        };
        if let Some(dist) = tracker.refit_dist() {
            plan.thresholds.insert(host, refit.threshold(&dist));
            plan.refit_hosts.push(host);
        } else if let Some(&t) = group_fallback.get(&host) {
            plan.thresholds.insert(host, t);
            plan.fallback_hosts.push(host);
        } else {
            plan.skipped_hosts.push(host);
        }
    }
    plan
}

/// Extract per-host group-fallback thresholds from a configured policy
/// outcome. `host_ids[i]` names the host that was user `i` when the
/// policy was configured.
pub fn fallback_from_outcome(host_ids: &[u32], outcome: &PolicyOutcome) -> BTreeMap<u32, f64> {
    host_ids
        .iter()
        .zip(&outcome.thresholds)
        .map(|(&h, &t)| (h, t))
        .collect()
}

/// A staged rollout proposal: the candidate set plus the soak span the
/// daemon should shadow-evaluate it over.
#[derive(Debug, Clone, PartialEq)]
pub struct RolloutProposal {
    /// First window (inclusive) of the canary soak.
    pub soak_start: u32,
    /// One past the last soak window; promotion takes effect here.
    pub soak_end: u32,
    /// The candidate thresholds and their provenance.
    pub plan: CandidatePlan,
}

/// Drives the fleet from drift verdicts to a staged rollout proposal.
#[derive(Debug, Clone)]
pub struct RolloutPlanner {
    monitor: FleetDriftMonitor,
    refit: ThresholdHeuristic,
    fallback: BTreeMap<u32, f64>,
    soak_span: u32,
}

impl RolloutPlanner {
    /// Build a planner over an already-registered monitor.
    ///
    /// `soak_span` is the number of windows a candidate soaks in canary
    /// before the health gates decide; it must be nonzero.
    pub fn new(
        monitor: FleetDriftMonitor,
        refit: ThresholdHeuristic,
        fallback: BTreeMap<u32, f64>,
        soak_span: u32,
    ) -> Self {
        Self {
            monitor,
            refit,
            fallback,
            soak_span: soak_span.max(1),
        }
    }

    /// Feed one live window count for a host.
    pub fn observe(&mut self, host: u32, count: u64) -> Option<DriftState> {
        self.monitor.observe(host, count)
    }

    /// The underlying monitor (for inspection).
    pub fn monitor(&self) -> &FleetDriftMonitor {
        &self.monitor
    }

    /// Propose a staged rollout starting at `now_window`, or `None` while
    /// the fleet has not fully drifted or no host yields a usable
    /// threshold.
    pub fn propose(&self, now_window: u32) -> Option<RolloutProposal> {
        if !self.monitor.all_drifted() {
            return None;
        }
        let plan = build_candidate(&self.monitor, &self.refit, &self.fallback);
        if plan.thresholds.is_empty() {
            return None;
        }
        Some(RolloutProposal {
            soak_start: now_window,
            soak_end: now_window.saturating_add(self.soak_span),
            plan,
        })
    }

    /// Acknowledge that a proposal was submitted to the daemon: clears
    /// every tracker's latch so the next drift episode starts fresh.
    pub fn mark_submitted(&mut self) {
        self.monitor.reset_all();
    }
}

/// One completed epoch, as reported back by whatever daemon ran it.
///
/// Deliberately plain data: the `experiments` harness converts the
/// daemon's own record type into this, keeping this crate free of a
/// `fleetd` dependency.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochSummary {
    /// Epoch number.
    pub epoch: u32,
    /// `None` = promoted; `Some(reason)` = rolled back.
    pub rolled_back: Option<String>,
    /// Soak windows actually shadow-evaluated.
    pub windows: u64,
    /// Soak windows expected (shortfall = shed or dark shards).
    pub expected_windows: u64,
    /// Alarms the incumbent thresholds raised over the soak span.
    pub incumbent_alarms: u64,
    /// Alarms the candidate thresholds would have raised.
    pub candidate_alarms: u64,
}

/// Export an epoch history into `reg`: `itc_rollout_*` counters by
/// outcome plus one `itconsole.rollout` event per epoch, in epoch order
/// (rollback events carry the gate's reason so the snapshot alone
/// explains *why* a candidate died).
pub fn export_history_metrics(history: &[EpochSummary], reg: &mut hids_metrics::Registry) {
    reg.register_counter(
        "itc_rollout_epochs_total",
        "Completed rollout epochs by outcome",
    );
    reg.register_counter(
        "itc_rollout_soak_windows_total",
        "Soak windows shadow-evaluated vs expected",
    );
    reg.register_counter(
        "itc_rollout_alarms_total",
        "Alarms raised over soak spans, by threshold set",
    );
    let mut promoted = 0u64;
    let mut rolled_back = 0u64;
    let mut operator = 0u64;
    for e in history {
        match &e.rolled_back {
            None => {
                promoted += 1;
                reg.event(
                    "itconsole.rollout",
                    "promoted",
                    &[("epoch", &e.epoch.to_string())],
                );
            }
            Some(reason) => {
                rolled_back += 1;
                // Operator-initiated rollbacks (the `force-rollback`
                // command) are a distinct signal from gate failures: one
                // is a human decision, the other an automated guardrail.
                if reason == "operator" {
                    operator += 1;
                }
                reg.event(
                    "itconsole.rollout",
                    "rolled_back",
                    &[("epoch", &e.epoch.to_string()), ("reason", reason)],
                );
            }
        }
        reg.counter_add(
            "itc_rollout_soak_windows_total",
            &[("kind", "evaluated")],
            e.windows,
        );
        reg.counter_add(
            "itc_rollout_soak_windows_total",
            &[("kind", "expected")],
            e.expected_windows,
        );
        reg.counter_add(
            "itc_rollout_alarms_total",
            &[("set", "incumbent")],
            e.incumbent_alarms,
        );
        reg.counter_add(
            "itc_rollout_alarms_total",
            &[("set", "candidate")],
            e.candidate_alarms,
        );
    }
    reg.counter_add(
        "itc_rollout_epochs_total",
        &[("outcome", "promoted")],
        promoted,
    );
    reg.counter_add(
        "itc_rollout_epochs_total",
        &[("outcome", "rolled_back")],
        rolled_back,
    );
    reg.counter_add(
        "itc_rollout_epochs_total",
        &[("outcome", "rolled_back_operator")],
        operator,
    );
}

/// Render an epoch history as the operator-facing report: one line per
/// epoch, deterministic byte-for-byte for a given input.
pub fn render_history(history: &[EpochSummary]) -> String {
    let mut out = String::new();
    for e in history {
        let verdict = match &e.rolled_back {
            None => "promoted".to_string(),
            Some(reason) => format!("rolled-back [{reason}]"),
        };
        out.push_str(&format!(
            "epoch {}: {} (soak {}/{} windows, incumbent alarms {}, candidate alarms {})\n",
            e.epoch, verdict, e.windows, e.expected_windows, e.incumbent_alarms, e.candidate_alarms,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train(level: u64) -> EmpiricalDist {
        let counts: Vec<u64> = (0..100).map(|i| level + (i % 7)).collect();
        EmpiricalDist::from_counts(&counts)
    }

    fn cfg() -> DriftConfig {
        DriftConfig {
            window: 16,
            trigger_after: 4,
            cool_after: 2,
            poison_run: 24,
            ..DriftConfig::default()
        }
    }

    fn feed_stable(m: &mut FleetDriftMonitor, host: u32, n: u64) {
        for i in 0..n {
            m.observe(host, 100 + (i % 7));
        }
    }

    fn feed_drift_down(m: &mut FleetDriftMonitor, host: u32, n: u64) {
        for i in 0..n {
            m.observe(host, 50 + (i % 5));
        }
    }

    fn feed_poison_ramp(m: &mut FleetDriftMonitor, host: u32, n: u64) {
        let mut level = 100f64;
        for _ in 0..n {
            level *= 1.01;
            m.observe(host, level as u64);
        }
    }

    #[test]
    fn monitor_aggregates_per_host_verdicts() {
        let mut m = FleetDriftMonitor::new(cfg());
        for h in 0..3u32 {
            m.register_host(h, &train(100));
        }
        assert_eq!(m.len(), 3);
        feed_stable(&mut m, 0, 60);
        feed_drift_down(&mut m, 1, 60);
        feed_poison_ramp(&mut m, 2, 120);
        assert_eq!(m.drifted(), vec![1, 2]);
        assert_eq!(m.suspects(), vec![2]);
        assert!(!m.all_drifted(), "host 0 is still stable");
        assert!(m.observe(99, 5).is_none(), "unregistered host");
    }

    #[test]
    fn candidate_refits_benign_hosts_and_falls_back_for_suspects() {
        let mut m = FleetDriftMonitor::new(cfg());
        m.register_host(1, &train(100));
        m.register_host(2, &train(100));
        m.register_host(3, &train(100));
        feed_drift_down(&mut m, 1, 60);
        feed_poison_ramp(&mut m, 2, 120);
        feed_poison_ramp(&mut m, 3, 120);
        let fallback: BTreeMap<u32, f64> = [(2u32, 77.5)].into_iter().collect();
        let plan = build_candidate(&m, &ThresholdHeuristic::P99, &fallback);
        assert_eq!(plan.refit_hosts, vec![1]);
        assert_eq!(plan.fallback_hosts, vec![2]);
        assert_eq!(plan.skipped_hosts, vec![3], "suspect without fallback is dropped");
        assert_eq!(plan.thresholds.get(&2), Some(&77.5));
        let refit = plan.thresholds[&1];
        assert!(
            refit < 70.0,
            "refit follows the drifted-down window, got {refit}"
        );
        assert!(!plan.thresholds.contains_key(&3));
    }

    #[test]
    fn fallback_from_outcome_maps_user_order_to_host_ids() {
        let outcome = PolicyOutcome {
            groups: vec![0, 0, 1],
            thresholds: vec![10.0, 10.0, 20.0],
            group_thresholds: vec![10.0, 20.0],
        };
        let map = fallback_from_outcome(&[7, 3, 9], &outcome);
        assert_eq!(map[&7], 10.0);
        assert_eq!(map[&3], 10.0);
        assert_eq!(map[&9], 20.0);
    }

    #[test]
    fn planner_proposes_only_when_all_hosts_drifted() {
        let mut m = FleetDriftMonitor::new(cfg());
        m.register_host(0, &train(100));
        m.register_host(1, &train(100));
        let mut p = RolloutPlanner::new(m, ThresholdHeuristic::P99, BTreeMap::new(), 8);
        for i in 0..60u64 {
            p.observe(0, 50 + (i % 5));
        }
        assert!(p.propose(200).is_none(), "host 1 has not drifted yet");
        for i in 0..60u64 {
            p.observe(1, 50 + (i % 5));
        }
        let prop = p.propose(200).expect("fleet fully drifted");
        assert_eq!(prop.soak_start, 200);
        assert_eq!(prop.soak_end, 208);
        assert_eq!(
            prop.plan.thresholds.keys().copied().collect::<Vec<_>>(),
            vec![0, 1]
        );
        p.mark_submitted();
        assert!(p.propose(208).is_none(), "latches cleared after submission");
    }

    #[test]
    fn all_suspect_fleet_with_no_fallback_proposes_nothing() {
        let mut m = FleetDriftMonitor::new(cfg());
        m.register_host(0, &train(100));
        feed_poison_ramp(&mut m, 0, 120);
        let p = RolloutPlanner::new(m, ThresholdHeuristic::P99, BTreeMap::new(), 8);
        assert!(p.propose(0).is_none(), "no usable thresholds, no rollout");
    }

    #[test]
    fn history_renders_deterministically() {
        let history = vec![
            EpochSummary {
                epoch: 1,
                rolled_back: None,
                windows: 24,
                expected_windows: 24,
                incumbent_alarms: 3,
                candidate_alarms: 2,
            },
            EpochSummary {
                epoch: 2,
                rolled_back: Some("alarm-drop".to_string()),
                windows: 24,
                expected_windows: 24,
                incumbent_alarms: 9,
                candidate_alarms: 0,
            },
        ];
        let text = render_history(&history);
        assert_eq!(
            text,
            "epoch 1: promoted (soak 24/24 windows, incumbent alarms 3, candidate alarms 2)\n\
             epoch 2: rolled-back [alarm-drop] (soak 24/24 windows, incumbent alarms 9, candidate alarms 0)\n"
        );
        assert_eq!(render_history(&history), text);
    }
}
