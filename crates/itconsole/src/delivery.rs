//! Bounded, retrying batch delivery from hosts to a central sink.
//!
//! Host agents cannot assume the uplink is up: batches must queue locally,
//! retry with backoff, and — because agent memory is finite — eventually
//! drop, *with accounting*, rather than grow without bound. This module
//! implements that discipline over a virtual clock so every schedule is
//! deterministic and replayable in tests: the caller advances time with
//! [`DeliveryQueue::tick`] and attempts transmission with
//! [`DeliveryQueue::pump`], passing a sink that reports per-batch success
//! (a closure over `CentralConsole::ingest_batch` in the alert pipeline, a
//! scripted link in the chaos tests, `fleetd`'s backpressure-aware
//! `Daemon::offer` in the streaming-daemon pipeline).
//!
//! The queue is generic over its payload: anything implementing
//! [`Payload`] (which just reports how many accounting *units* — alerts,
//! windows — a batch carries) can be shipped. `Vec<Alert>` is the original
//! instantiation; `fleetd::WindowBatch` is the second.
//!
//! Retry schedule: attempt `k` (1-based) failing re-arms the batch after
//! `backoff_base << (k - 1)` ticks (exponential, saturating at
//! `u64::MAX` once the shift outgrows the word — large attempt budgets
//! must degrade into "retry never", not a wrapped-to-zero hot loop),
//! until `max_attempts` is exhausted and the batch is dropped. Queue order is FIFO; a failing head
//! does not block delivery of due batches behind it.
//!
//! With [`DeliveryConfig::jitter_seed`] set, the schedule switches to
//! *decorrelated jitter* (`delay = uniform(base, prev_delay * 3)`, capped
//! at the exponential maximum): a fleet of hosts that all lost the link
//! at once no longer retries in synchronized waves that re-flatten the
//! console. The jitter stream is a seeded counter RNG owned by the queue,
//! so a given `(seed, offer/pump/tick history)` replays to the identical
//! schedule — chaos and daemon experiment CSVs stay byte-reproducible.

use std::collections::VecDeque;

use hids_core::Alert;
use serde::{Deserialize, Serialize};

/// A deliverable batch: reports how many accounting units it carries, so
/// loss counters can speak the caller's language (alerts lost, windows
/// lost) without the queue knowing the payload type.
pub trait Payload {
    /// Accounting units in this batch.
    fn units(&self) -> u64;
}

impl Payload for Vec<Alert> {
    fn units(&self) -> u64 {
        self.len() as u64
    }
}

/// Parameters of the host-side delivery queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliveryConfig {
    /// Maximum batches queued; further offers are rejected (and counted).
    pub capacity: usize,
    /// Delivery attempts per batch before it is dropped.
    pub max_attempts: u32,
    /// Backoff after the first failure, in ticks; doubles per attempt.
    pub backoff_base: u64,
    /// `Some(seed)` switches retry delays to seeded decorrelated jitter
    /// (`uniform(base, prev * 3)`, capped at the exponential maximum);
    /// `None` keeps the legacy pure-exponential schedule.
    pub jitter_seed: Option<u64>,
}

impl Default for DeliveryConfig {
    fn default() -> Self {
        Self {
            capacity: 64,
            max_attempts: 5,
            backoff_base: 1,
            jitter_seed: None,
        }
    }
}

/// Counters describing a queue's lifetime behaviour. "Units" are whatever
/// the payload type counts: alerts for `Vec<Alert>`, windows for the
/// daemon's window batches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliveryStats {
    /// Batches accepted into the queue.
    pub enqueued: u64,
    /// Batches delivered to the sink.
    pub delivered: u64,
    /// Failed attempts that were re-armed for retry.
    pub retries: u64,
    /// Batches rejected because the queue was full.
    pub rejected_batches: u64,
    /// Units inside rejected batches.
    pub rejected_units: u64,
    /// Batches dropped after exhausting every attempt.
    pub expired_batches: u64,
    /// Units inside expired batches.
    pub expired_units: u64,
    /// Batches removed by [`DeliveryQueue::acknowledge`] — delivered work
    /// confirmed out-of-band (the ARQ path, where the sink fires frames at
    /// a lossy wire and success is only known when an ack comes back).
    pub acknowledged: u64,
    /// Batches removed by [`DeliveryQueue::evict`] — withdrawn by the
    /// caller (e.g. a shard handoff re-routing a host), accounted by the
    /// caller under its own taxonomy.
    pub evicted_batches: u64,
    /// Units inside evicted batches.
    pub evicted_units: u64,
    /// Highest queue occupancy observed.
    pub queue_high_water: usize,
}

impl DeliveryStats {
    /// Batches lost for any reason (rejected at the door or expired).
    pub fn dropped_batches(&self) -> u64 {
        self.rejected_batches + self.expired_batches
    }

    /// Units lost for any reason.
    pub fn dropped_units(&self) -> u64 {
        self.rejected_units + self.expired_units
    }

    /// Export these stats into `reg` under the `itc_delivery_*` families,
    /// labelled with the owning queue's name. The batch counters obey
    /// `enqueued = delivered + expired + len` once the queue is idle —
    /// the conservation law the metrics suite asserts.
    pub fn export_metrics(&self, reg: &mut hids_metrics::Registry, queue: &str) {
        reg.register_counter(
            "itc_delivery_batches_total",
            "Alert batches by delivery disposition",
        );
        reg.register_counter(
            "itc_delivery_units_total",
            "Alert units inside dropped batches, by reason",
        );
        reg.register_counter("itc_delivery_retries_total", "Failed attempts re-armed");
        reg.register_gauge(
            "itc_delivery_queue_high_water",
            "Highest queue occupancy observed",
        );
        let q = &[("queue", queue)][..];
        let with = |disp: &'static str| {
            let mut v = vec![("queue", queue)];
            v.push(("disposition", disp));
            v
        };
        reg.counter_add("itc_delivery_batches_total", &with("enqueued"), self.enqueued);
        reg.counter_add(
            "itc_delivery_batches_total",
            &with("delivered"),
            self.delivered,
        );
        reg.counter_add(
            "itc_delivery_batches_total",
            &with("rejected"),
            self.rejected_batches,
        );
        reg.counter_add(
            "itc_delivery_batches_total",
            &with("expired"),
            self.expired_batches,
        );
        reg.counter_add(
            "itc_delivery_units_total",
            &with("rejected"),
            self.rejected_units,
        );
        reg.counter_add(
            "itc_delivery_units_total",
            &with("expired"),
            self.expired_units,
        );
        reg.counter_add(
            "itc_delivery_batches_total",
            &with("acknowledged"),
            self.acknowledged,
        );
        reg.counter_add(
            "itc_delivery_batches_total",
            &with("evicted"),
            self.evicted_batches,
        );
        reg.counter_add(
            "itc_delivery_units_total",
            &with("evicted"),
            self.evicted_units,
        );
        reg.counter_add("itc_delivery_retries_total", q, self.retries);
        reg.gauge_set(
            "itc_delivery_queue_high_water",
            q,
            self.queue_high_water as i64,
        );
    }
}

#[derive(Debug)]
struct PendingBatch<B> {
    batch: B,
    attempts: u32,
    next_attempt: u64,
    prev_backoff: u64,
}

/// `base << shift`, saturating at `u64::MAX` instead of shifting bits out
/// (or panicking on shift ≥ 64). Exponential backoff with a generous
/// `max_attempts` (64 and up) walks the shift amount past what `u64` can
/// hold; a saturated delay just means "retry at the end of time", which
/// the expiry path then turns into a normal drop-with-accounting.
fn sat_shl(base: u64, shift: u32) -> u64 {
    if base == 0 {
        return 0;
    }
    base.checked_shl(shift)
        .filter(|&v| v >> shift == base)
        .unwrap_or(u64::MAX)
}

/// SplitMix64: one 64-bit output per counter increment. Small, seedable,
/// and stateless beyond the counter — exactly what a replayable retry
/// schedule needs (the vendored `rand` stub has no small seeded RNG).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A bounded FIFO of payload batches with deterministic retry/backoff over
/// a virtual clock.
#[derive(Debug)]
pub struct DeliveryQueue<B: Payload = Vec<Alert>> {
    config: DeliveryConfig,
    queue: VecDeque<PendingBatch<B>>,
    stats: DeliveryStats,
    now: u64,
    jitter_state: u64,
}

impl<B: Payload> DeliveryQueue<B> {
    /// Create an empty queue at tick 0.
    ///
    /// # Panics
    /// Panics when `capacity` or `max_attempts` is zero.
    pub fn new(config: DeliveryConfig) -> Self {
        assert!(config.capacity > 0, "queue capacity must be positive");
        assert!(config.max_attempts > 0, "need at least one attempt");
        Self {
            jitter_state: config.jitter_seed.unwrap_or(0),
            config,
            queue: VecDeque::new(),
            stats: DeliveryStats::default(),
            now: 0,
        }
    }

    /// Offer a batch. Returns `false` (and accounts the loss) when the
    /// queue is at capacity. Empty batches are accepted and count as
    /// delivered work like any other.
    pub fn offer(&mut self, batch: B) -> bool {
        if self.queue.len() >= self.config.capacity {
            self.stats.rejected_batches += 1;
            self.stats.rejected_units += batch.units();
            return false;
        }
        self.queue.push_back(PendingBatch {
            batch,
            attempts: 0,
            next_attempt: self.now,
            prev_backoff: 0,
        });
        self.stats.enqueued += 1;
        self.stats.queue_high_water = self.stats.queue_high_water.max(self.queue.len());
        true
    }

    /// Advance the virtual clock by `ticks` (saturating: once backoff
    /// delays saturate, "the end of time" is a reachable clock value).
    pub fn tick(&mut self, ticks: u64) {
        self.now = self.now.saturating_add(ticks);
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Attempt delivery of every batch whose retry timer has expired, in
    /// FIFO order. `sink` returns whether one batch was accepted; a batch
    /// that fails is re-armed with exponential backoff or, once out of
    /// attempts, dropped with accounting. Returns batches delivered.
    pub fn pump<F: FnMut(&B) -> bool>(&mut self, mut sink: F) -> usize {
        let mut delivered = 0;
        let mut keep: VecDeque<PendingBatch<B>> = VecDeque::with_capacity(self.queue.len());
        while let Some(mut p) = self.queue.pop_front() {
            if p.next_attempt > self.now {
                keep.push_back(p);
                continue;
            }
            if sink(&p.batch) {
                self.stats.delivered += 1;
                delivered += 1;
                continue;
            }
            p.attempts += 1;
            if p.attempts >= self.config.max_attempts {
                self.stats.expired_batches += 1;
                self.stats.expired_units += p.batch.units();
            } else {
                self.stats.retries += 1;
                let delay = self.backoff_delay(p.attempts, p.prev_backoff);
                p.prev_backoff = delay;
                // A saturated delay must not wrap the clock: MAX is "never
                // due again", and the attempt budget still bounds the
                // batch's lifetime.
                p.next_attempt = self.now.saturating_add(delay);
                keep.push_back(p);
            }
        }
        self.queue = keep;
        delivered
    }

    /// The delay before retry attempt `attempts + 1`. Legacy schedule:
    /// `base << (attempts - 1)`, saturating at `u64::MAX` (a plain shift
    /// silently drops bits — collapsing the delay to 0 and turning
    /// backoff into a hot retry loop — once `attempts` outgrows the
    /// width; `max_attempts ≥ 65` even makes the shift amount itself
    /// overflow). Jittered: `uniform(base, prev * 3)` clamped to the
    /// legacy maximum, so jitter never waits longer than the worst
    /// exponential delay would.
    fn backoff_delay(&mut self, attempts: u32, prev_backoff: u64) -> u64 {
        let base = self.config.backoff_base;
        let exp = sat_shl(base, attempts - 1);
        if self.config.jitter_seed.is_none() {
            return exp;
        }
        let cap = sat_shl(base, self.config.max_attempts.saturating_sub(1));
        let hi = prev_backoff.max(base).saturating_mul(3).min(cap);
        let span = hi.saturating_sub(base).saturating_add(1);
        base.saturating_add(splitmix64(&mut self.jitter_state) % span)
    }

    /// Remove every queued batch matching `pred`, counting each as
    /// acknowledged. This is the ARQ (automatic-repeat-request) delivery
    /// path: when the sink is a lossy wire, `pump`'s sink fires a frame
    /// and returns `false` — transmission, not delivery — so the batch
    /// stays armed for a backed-off retransmit. A confirmation arriving
    /// out-of-band (an ack frame) calls this to retire the batch. Returns
    /// how many were removed (0 when the ack raced an expiry; >1 only if
    /// the caller enqueued duplicates).
    pub fn acknowledge<F: FnMut(&B) -> bool>(&mut self, mut pred: F) -> usize {
        let mut kept: VecDeque<PendingBatch<B>> = VecDeque::with_capacity(self.queue.len());
        let mut removed = 0usize;
        while let Some(p) = self.queue.pop_front() {
            if pred(&p.batch) {
                self.stats.acknowledged += 1;
                removed += 1;
            } else {
                kept.push_back(p);
            }
        }
        self.queue = kept;
        removed
    }

    /// Remove every queued batch matching `pred` *without* counting it as
    /// delivered — the batch is withdrawn, not completed (e.g. a shard
    /// handoff invalidating in-flight work for a re-routed host; the
    /// caller re-drives the host from its journaled assignment). The
    /// removal is still visible in [`DeliveryStats::evicted_batches`] so
    /// the queue's conservation law (`enqueued = delivered + acknowledged
    /// + expired + evicted + len` once idle) keeps holding.
    pub fn evict<F: FnMut(&B) -> bool>(&mut self, mut pred: F) -> usize {
        let mut kept: VecDeque<PendingBatch<B>> = VecDeque::with_capacity(self.queue.len());
        let mut removed = 0usize;
        while let Some(p) = self.queue.pop_front() {
            if pred(&p.batch) {
                self.stats.evicted_batches += 1;
                self.stats.evicted_units += p.batch.units();
                removed += 1;
            } else {
                kept.push_back(p);
            }
        }
        self.queue = kept;
        removed
    }

    /// Batches currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> DeliveryStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtab::FeatureKind;

    fn batch(n: usize) -> Vec<Alert> {
        (0..n)
            .map(|w| Alert {
                user: 0,
                window: w,
                feature: FeatureKind::TcpConnections,
                observed: 10,
                threshold: 5.0,
            })
            .collect()
    }

    #[test]
    fn happy_path_delivers_fifo() {
        let mut q = DeliveryQueue::new(DeliveryConfig::default());
        assert!(q.offer(batch(1)));
        assert!(q.offer(batch(2)));
        let mut sizes = Vec::new();
        let n = q.pump(|b| {
            sizes.push(b.len());
            true
        });
        assert_eq!(n, 2);
        assert_eq!(sizes, vec![1, 2]);
        assert!(q.is_empty());
        assert_eq!(q.stats().delivered, 2);
        assert_eq!(q.stats().dropped_batches(), 0);
    }

    #[test]
    fn full_queue_rejects_with_accounting() {
        let mut q = DeliveryQueue::new(DeliveryConfig {
            capacity: 2,
            ..DeliveryConfig::default()
        });
        assert!(q.offer(batch(1)));
        assert!(q.offer(batch(1)));
        assert!(!q.offer(batch(3)));
        let s = q.stats();
        assert_eq!(s.rejected_batches, 1);
        assert_eq!(s.rejected_units, 3);
        assert_eq!(s.queue_high_water, 2);
    }

    #[test]
    fn backoff_is_exponential_and_deterministic() {
        let mut q = DeliveryQueue::new(DeliveryConfig {
            capacity: 4,
            max_attempts: 4,
            backoff_base: 2,
            jitter_seed: None,
        });
        q.offer(batch(1));
        // Attempt 1 at t=0 fails -> re-armed for t=2.
        assert_eq!(q.pump(|_| false), 0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pump(|_| true), 0, "not due yet");
        q.tick(1); // t=1: still not due
        assert_eq!(q.pump(|_| true), 0);
        q.tick(1); // t=2: due; attempt 2 fails -> re-armed for t=2+4=6.
        assert_eq!(q.pump(|_| false), 0);
        q.tick(3); // t=5
        assert_eq!(q.pump(|_| true), 0);
        q.tick(1); // t=6: attempt 3 succeeds.
        assert_eq!(q.pump(|_| true), 1);
        assert!(q.is_empty());
        assert_eq!(q.stats().retries, 2);
    }

    #[test]
    fn batch_expires_after_max_attempts() {
        let mut q = DeliveryQueue::new(DeliveryConfig {
            capacity: 4,
            max_attempts: 3,
            backoff_base: 1,
            jitter_seed: None,
        });
        q.offer(batch(5));
        for _ in 0..10 {
            q.pump(|_| false);
            q.tick(10);
        }
        assert!(q.is_empty());
        let s = q.stats();
        assert_eq!(s.expired_batches, 1);
        assert_eq!(s.expired_units, 5);
        assert_eq!(s.retries, 2, "attempts 1 and 2 re-armed, 3 expired");
    }

    #[test]
    fn failing_head_does_not_block_later_batches() {
        let mut q = DeliveryQueue::new(DeliveryConfig {
            capacity: 4,
            max_attempts: 10,
            backoff_base: 100,
            jitter_seed: None,
        });
        q.offer(batch(1)); // this one the sink rejects
        q.offer(batch(2)); // this one it accepts
        let n = q.pump(|b| b.len() == 2);
        assert_eq!(n, 1);
        assert_eq!(q.len(), 1, "failed head re-armed, tail delivered");
    }

    #[test]
    fn link_outage_then_recovery_loses_nothing_within_budget() {
        let mut q = DeliveryQueue::new(DeliveryConfig {
            capacity: 16,
            max_attempts: 8,
            backoff_base: 1,
            jitter_seed: None,
        });
        for _ in 0..10 {
            q.offer(batch(2));
        }
        // Link down for a few pump/tick rounds (within attempt budget).
        for _ in 0..3 {
            q.pump(|_| false);
            q.tick(200);
        }
        // Link restored: everything still queued arrives.
        q.pump(|_| true);
        let s = q.stats();
        assert_eq!(s.delivered, 10);
        assert_eq!(s.dropped_batches(), 0);
    }

    #[test]
    fn generic_payloads_account_their_own_units() {
        struct Windows(u64);
        impl Payload for Windows {
            fn units(&self) -> u64 {
                self.0
            }
        }
        let mut q: DeliveryQueue<Windows> = DeliveryQueue::new(DeliveryConfig {
            capacity: 1,
            max_attempts: 1,
            backoff_base: 1,
            jitter_seed: None,
        });
        assert!(q.offer(Windows(24)));
        assert!(!q.offer(Windows(7)), "capacity 1");
        q.pump(|_| false); // single attempt -> expires
        let s = q.stats();
        assert_eq!(s.rejected_units, 7);
        assert_eq!(s.expired_units, 24);
        assert_eq!(s.dropped_units(), 31);
    }

    /// Drive one batch through failing attempts against an always-down
    /// sink, measuring the re-arm delay before each of `rounds` retries
    /// (ticking the clock one unit at a time and watching the attempt
    /// counters to see exactly when the batch came due).
    fn observed_delays(config: DeliveryConfig, rounds: u32) -> Vec<u64> {
        let mut q = DeliveryQueue::new(config);
        q.offer(batch(1));
        q.pump(|_| false); // attempt 1, at t=0
        let mut delays = Vec::new();
        for _ in 0..rounds {
            if q.is_empty() {
                break;
            }
            let start = q.now();
            let before = q.stats().retries + q.stats().expired_batches;
            loop {
                q.tick(1);
                q.pump(|_| false);
                if q.stats().retries + q.stats().expired_batches > before {
                    break;
                }
                assert!(q.now() - start < 1 << 12, "batch never became due");
            }
            delays.push(q.now() - start);
        }
        delays
    }

    #[test]
    fn jittered_delays_stay_within_bounds_and_replay_exactly() {
        let config = DeliveryConfig {
            capacity: 4,
            max_attempts: 6,
            backoff_base: 2,
            jitter_seed: Some(42),
        };
        let delays = observed_delays(config, 5);
        assert_eq!(delays.len(), 5);
        let cap = config.backoff_base << (config.max_attempts - 1);
        for (i, &d) in delays.iter().enumerate() {
            assert!(
                (config.backoff_base..=cap).contains(&d),
                "attempt {i} delay {d} outside [base, cap]"
            );
        }
        // Same seed, same history: byte-identical schedule.
        assert_eq!(observed_delays(config, 5), delays);
        // A different seed decorrelates the schedule.
        let other = observed_delays(
            DeliveryConfig {
                jitter_seed: Some(43),
                ..config
            },
            5,
        );
        assert_ne!(other, delays, "seeds 42 and 43 chose identical jitter");
    }

    #[test]
    fn huge_attempt_budget_saturates_instead_of_overflowing() {
        // With max_attempts = 64 the raw schedule wants `base << 63` (and
        // the jitter cap `base << 63` too): for any base >= 2 the old
        // plain shift silently dropped the high bits, collapsing delays
        // to 0. The saturated schedule must stay monotone, never panic,
        // and still expire the batch with full accounting.
        for jitter_seed in [None, Some(7)] {
            let mut q = DeliveryQueue::new(DeliveryConfig {
                capacity: 2,
                max_attempts: 64,
                backoff_base: u64::MAX / 2,
                jitter_seed,
            });
            q.offer(batch(3));
            let mut rounds = 0u32;
            while !q.is_empty() {
                q.pump(|_| false);
                q.tick(u64::MAX);
                rounds += 1;
                assert!(rounds <= 70, "batch must expire within max_attempts");
            }
            let s = q.stats();
            assert_eq!(s.expired_batches, 1);
            assert_eq!(s.expired_units, 3);
            assert_eq!(s.retries, 63);
        }
    }

    #[test]
    fn saturated_exponential_delay_is_never_due_before_the_horizon() {
        // base << (attempts - 1) overflows at attempt 3 for this base;
        // the delay must pin to u64::MAX (unreachable except by a
        // saturated clock), not wrap to something small.
        let mut q = DeliveryQueue::new(DeliveryConfig {
            capacity: 2,
            max_attempts: 8,
            backoff_base: u64::MAX / 2,
            jitter_seed: None,
        });
        q.offer(batch(1));
        q.pump(|_| false); // attempt 1: re-armed for now + MAX/2
        q.tick(u64::MAX / 2);
        q.pump(|_| false); // attempt 2: delay saturates to MAX
        q.tick(u64::MAX / 4);
        assert_eq!(
            q.pump(|_| true),
            0,
            "a saturated delay must not wrap into the near future"
        );
        assert_eq!(q.len(), 1);
        q.tick(u64::MAX); // clock saturates at the horizon: now due
        assert_eq!(q.pump(|_| true), 1);
    }

    #[test]
    fn sat_shl_matches_plain_shift_in_range_and_saturates_out_of_range() {
        assert_eq!(sat_shl(1, 0), 1);
        assert_eq!(sat_shl(2, 10), 2 << 10);
        assert_eq!(sat_shl(1, 63), 1 << 63);
        assert_eq!(sat_shl(2, 63), u64::MAX);
        assert_eq!(sat_shl(1, 64), u64::MAX);
        assert_eq!(sat_shl(u64::MAX, 1), u64::MAX);
        assert_eq!(sat_shl(0, 70), 0, "zero base shifts to zero at any amount");
        assert_eq!(sat_shl(0, 63), 0);
    }

    #[test]
    fn acknowledge_retires_queued_batches_as_delivered_work() {
        let mut q = DeliveryQueue::new(DeliveryConfig {
            capacity: 8,
            max_attempts: 10,
            backoff_base: 4,
            jitter_seed: None,
        });
        q.offer(batch(1));
        q.offer(batch(2));
        // ARQ discipline: the sink transmits and reports false; both
        // batches stay queued awaiting confirmation.
        assert_eq!(q.pump(|_| false), 0);
        assert_eq!(q.len(), 2);
        // The ack for the size-2 batch arrives out-of-band.
        assert_eq!(q.acknowledge(|b| b.len() == 2), 1);
        assert_eq!(q.len(), 1);
        let s = q.stats();
        assert_eq!(s.acknowledged, 1);
        assert_eq!(s.delivered, 0, "sink never reported synchronous success");
        // An ack for a batch no longer queued is a no-op.
        assert_eq!(q.acknowledge(|b| b.len() == 2), 0);
    }

    #[test]
    fn evict_withdraws_without_delivery_accounting() {
        let mut q = DeliveryQueue::new(DeliveryConfig {
            capacity: 8,
            max_attempts: 10,
            backoff_base: 4,
            jitter_seed: None,
        });
        q.offer(batch(3));
        q.offer(batch(1));
        assert_eq!(q.evict(|b| b.len() == 3), 1);
        let s = q.stats();
        assert_eq!(s.evicted_batches, 1);
        assert_eq!(s.evicted_units, 3);
        assert_eq!(s.acknowledged, 0);
        assert_eq!(s.delivered, 0);
        assert_eq!(q.len(), 1);
        // Conservation once idle: enqueued = delivered + acknowledged +
        // expired + evicted + len.
        assert_eq!(
            s.enqueued,
            s.delivered + s.acknowledged + s.expired_batches + s.evicted_batches + q.len() as u64
        );
    }

    #[test]
    fn arq_retransmit_schedule_survives_huge_attempt_budgets() {
        // The wire-path shape of the PR 5 saturating-shift regression: an
        // ARQ queue whose sink always returns false (fire at a black-holed
        // link) with max_attempts >= 64 walks the backoff shift past the
        // u64 width. The schedule must saturate — never wrap to a hot
        // loop, never panic — and finally expire the batch with full
        // accounting.
        for jitter_seed in [None, Some(0xC1)] {
            let mut q = DeliveryQueue::new(DeliveryConfig {
                capacity: 4,
                max_attempts: 96,
                backoff_base: 3,
                jitter_seed,
            });
            q.offer(batch(2));
            let mut rounds = 0u32;
            while !q.is_empty() {
                q.pump(|_| false);
                q.tick(u64::MAX);
                rounds += 1;
                assert!(rounds <= 100, "batch must expire within max_attempts");
            }
            let s = q.stats();
            assert_eq!(s.expired_batches, 1);
            assert_eq!(s.retries, 95);
            assert_eq!(s.acknowledged, 0);
        }
    }

    #[test]
    fn jitter_none_preserves_the_legacy_exponential_schedule() {
        let config = DeliveryConfig {
            capacity: 4,
            max_attempts: 5,
            backoff_base: 2,
            jitter_seed: None,
        };
        assert_eq!(observed_delays(config, 4), vec![2, 4, 8, 16]);
    }
}
