//! Alert coalescing and rate limiting.
//!
//! The operators in the paper's survey triage alarms by hand; commercial
//! consoles therefore collapse repeated identical alerts ("TCP threshold
//! exceeded on host 12, 40×") into one line with a count, and rate-limit
//! pathological reporters. This module implements both stages between the
//! raw ingest path and the operator queue.

use flowtab::FeatureKind;
use hids_core::Alert;
use serde::{Deserialize, Serialize};

/// A coalesced alert line as an operator sees it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoalescedAlert {
    /// Host that raised the alerts.
    pub user: u32,
    /// Feature exceeded.
    pub feature: FeatureKind,
    /// First window of the run.
    pub first_window: usize,
    /// Last window of the run.
    pub last_window: usize,
    /// Alerts collapsed into this line.
    pub count: u64,
    /// Largest observed excess over the threshold.
    pub max_excess: f64,
}

/// Collapse consecutive same-(user, feature) alerts whose windows fall
/// within `gap` of the previous one into single lines.
///
/// Input must be sorted by window per (user, feature) stream — the order
/// detectors naturally produce. Distinct users/features interleave freely.
pub fn coalesce(alerts: &[Alert], gap: usize) -> Vec<CoalescedAlert> {
    let mut open: Vec<CoalescedAlert> = Vec::new();
    let mut out: Vec<CoalescedAlert> = Vec::new();
    for a in alerts {
        let slot = open
            .iter_mut()
            .find(|c| c.user == a.user && c.feature == a.feature);
        match slot {
            Some(c) if a.window <= c.last_window + gap => {
                c.last_window = a.window.max(c.last_window);
                c.count += 1;
                c.max_excess = c.max_excess.max(a.excess());
            }
            Some(c) => {
                out.push(*c);
                *c = line_of(a);
            }
            None => open.push(line_of(a)),
        }
    }
    out.extend(open);
    out.sort_by_key(|c| (c.first_window, c.user, c.feature.index()));
    out
}

fn line_of(a: &Alert) -> CoalescedAlert {
    CoalescedAlert {
        user: a.user,
        feature: a.feature,
        first_window: a.window,
        last_window: a.window,
        count: 1,
        max_excess: a.excess(),
    }
}

/// Per-host token-bucket rate limiter for alert lines.
///
/// Hosts whose detectors misfire (e.g. a stale threshold after a usage
/// change) can flood the console; the limiter drops their excess lines
/// and reports how many were suppressed — itself a useful triage signal.
#[derive(Debug)]
pub struct RateLimiter {
    capacity: f64,
    refill_per_window: f64,
    /// `(tokens, last_window)` per user id.
    buckets: std::collections::HashMap<u32, (f64, usize)>,
    suppressed: u64,
}

impl RateLimiter {
    /// Allow bursts of `capacity` lines, refilling `refill_per_window`
    /// tokens per window of elapsed trace time.
    ///
    /// # Panics
    /// Panics on non-positive parameters.
    pub fn new(capacity: f64, refill_per_window: f64) -> Self {
        assert!(capacity > 0.0 && refill_per_window > 0.0);
        Self {
            capacity,
            refill_per_window,
            buckets: std::collections::HashMap::new(),
            suppressed: 0,
        }
    }

    /// Offer one line; returns true when it passes.
    pub fn admit(&mut self, user: u32, window: usize) -> bool {
        let (tokens, last) = self
            .buckets
            .entry(user)
            .or_insert((self.capacity, window));
        let elapsed = window.saturating_sub(*last) as f64;
        *tokens = (*tokens + elapsed * self.refill_per_window).min(self.capacity);
        *last = window.max(*last);
        if *tokens >= 1.0 {
            *tokens -= 1.0;
            true
        } else {
            self.suppressed += 1;
            false
        }
    }

    /// Lines dropped so far.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alert(user: u32, window: usize, observed: u64) -> Alert {
        Alert {
            user,
            window,
            feature: FeatureKind::TcpConnections,
            observed,
            threshold: 100.0,
        }
    }

    #[test]
    fn consecutive_runs_collapse() {
        let alerts = vec![
            alert(1, 10, 150),
            alert(1, 11, 200),
            alert(1, 12, 120),
            alert(1, 50, 500), // far later: new line
        ];
        let lines = coalesce(&alerts, 1);
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].count, 3);
        assert_eq!(lines[0].first_window, 10);
        assert_eq!(lines[0].last_window, 12);
        assert_eq!(lines[0].max_excess, 100.0);
        assert_eq!(lines[1].count, 1);
        assert_eq!(lines[1].max_excess, 400.0);
    }

    #[test]
    fn gap_tolerance_bridges_holes() {
        let alerts = vec![alert(1, 10, 150), alert(1, 13, 150)];
        assert_eq!(coalesce(&alerts, 1).len(), 2);
        assert_eq!(coalesce(&alerts, 3).len(), 1);
    }

    #[test]
    fn users_and_features_kept_separate() {
        let mut alerts = vec![alert(1, 10, 150), alert(2, 10, 150)];
        alerts.push(Alert {
            feature: FeatureKind::UdpConnections,
            ..alert(1, 10, 150)
        });
        let lines = coalesce(&alerts, 5);
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn empty_input() {
        assert!(coalesce(&[], 1).is_empty());
    }

    #[test]
    fn rate_limiter_allows_burst_then_throttles() {
        let mut rl = RateLimiter::new(3.0, 0.5);
        assert!(rl.admit(1, 0));
        assert!(rl.admit(1, 0));
        assert!(rl.admit(1, 0));
        assert!(!rl.admit(1, 0), "burst exhausted");
        assert_eq!(rl.suppressed(), 1);
        // Two windows later: one token refilled.
        assert!(rl.admit(1, 2));
        assert!(!rl.admit(1, 2));
    }

    #[test]
    fn rate_limiter_per_user_buckets() {
        let mut rl = RateLimiter::new(1.0, 0.1);
        assert!(rl.admit(1, 0));
        assert!(rl.admit(2, 0), "other users unaffected");
        assert!(!rl.admit(1, 0));
    }

    #[test]
    fn tokens_cap_at_capacity() {
        let mut rl = RateLimiter::new(2.0, 1.0);
        assert!(rl.admit(1, 0));
        // Long quiet period must not bank unlimited tokens.
        assert!(rl.admit(1, 1000));
        assert!(rl.admit(1, 1000));
        assert!(!rl.admit(1, 1000));
    }
}
