//! The central alert console: concurrent ingestion and accounting.

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel::{bounded, Sender};
use flowtab::FeatureKind;
use hids_core::Alert;
use parking_lot::Mutex;

/// Aggregate statistics kept by the console.
#[derive(Debug, Default, Clone)]
pub struct ConsoleStats {
    /// Total alerts received.
    pub total_alerts: u64,
    /// Batches received.
    pub batches: u64,
    /// Alerts per user.
    pub per_user: HashMap<u32, u64>,
    /// Alerts per feature (dense by `FeatureKind::index`).
    pub per_feature: [u64; 6],
    /// Alerts per week (week = window / windows_per_week).
    pub per_week: HashMap<usize, u64>,
}

impl ConsoleStats {
    /// Mean alerts per user over `n_users` (users with zero alerts count).
    pub fn mean_alerts_per_user(&self, n_users: usize) -> f64 {
        if n_users == 0 {
            0.0
        } else {
            self.total_alerts as f64 / n_users as f64
        }
    }

    /// The noisiest users, descending, up to `k`.
    pub fn top_talkers(&self, k: usize) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = self.per_user.iter().map(|(&u, &c)| (u, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }
}

/// A thread-safe central console.
///
/// Hosts (or host threads) submit alert batches either directly with
/// [`CentralConsole::ingest_batch`] or through a channel from
/// [`CentralConsole::spawn_ingestor`]. All accounting is behind a
/// `parking_lot::Mutex`, which is plenty for the alert volumes a 350-host
/// enterprise produces.
#[derive(Debug, Default)]
pub struct CentralConsole {
    stats: Arc<Mutex<ConsoleStats>>,
    windows_per_week: usize,
}

impl CentralConsole {
    /// Create a console; `windows_per_week` drives per-week accounting
    /// (672 for 15-minute windows).
    pub fn new(windows_per_week: usize) -> Self {
        Self {
            stats: Arc::new(Mutex::new(ConsoleStats::default())),
            windows_per_week: windows_per_week.max(1),
        }
    }

    /// Ingest one batch of alerts.
    pub fn ingest_batch(&self, batch: &[Alert]) {
        let mut stats = self.stats.lock();
        stats.batches += 1;
        for alert in batch {
            stats.total_alerts += 1;
            *stats.per_user.entry(alert.user).or_default() += 1;
            stats.per_feature[alert.feature.index()] += 1;
            *stats
                .per_week
                .entry(alert.window / self.windows_per_week)
                .or_default() += 1;
        }
    }

    /// Spawn an ingestion worker fed by a bounded channel; returns the
    /// sender and the worker handle. Dropping all senders stops the worker.
    pub fn spawn_ingestor(&self, capacity: usize) -> (Sender<Vec<Alert>>, std::thread::JoinHandle<()>) {
        let (tx, rx) = bounded::<Vec<Alert>>(capacity);
        let stats = Arc::clone(&self.stats);
        let wpw = self.windows_per_week;
        let handle = std::thread::spawn(move || {
            for batch in rx {
                let mut stats = stats.lock();
                stats.batches += 1;
                for alert in &batch {
                    stats.total_alerts += 1;
                    *stats.per_user.entry(alert.user).or_default() += 1;
                    stats.per_feature[alert.feature.index()] += 1;
                    *stats.per_week.entry(alert.window / wpw).or_default() += 1;
                }
            }
        });
        (tx, handle)
    }

    /// Snapshot the current statistics.
    pub fn stats(&self) -> ConsoleStats {
        self.stats.lock().clone()
    }

    /// Alerts attributed to one feature.
    pub fn alerts_for(&self, feature: FeatureKind) -> u64 {
        self.stats.lock().per_feature[feature.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alert(user: u32, window: usize, feature: FeatureKind) -> Alert {
        Alert {
            user,
            window,
            feature,
            observed: 10,
            threshold: 5.0,
        }
    }

    #[test]
    fn accounting_by_user_feature_week() {
        let console = CentralConsole::new(672);
        console.ingest_batch(&[
            alert(1, 10, FeatureKind::TcpConnections),
            alert(1, 700, FeatureKind::UdpConnections),
            alert(2, 10, FeatureKind::TcpConnections),
        ]);
        let stats = console.stats();
        assert_eq!(stats.total_alerts, 3);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.per_user[&1], 2);
        assert_eq!(stats.per_user[&2], 1);
        assert_eq!(console.alerts_for(FeatureKind::TcpConnections), 2);
        assert_eq!(stats.per_week[&0], 2);
        assert_eq!(stats.per_week[&1], 1);
        assert!((stats.mean_alerts_per_user(3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn concurrent_ingestion_loses_nothing() {
        let console = CentralConsole::new(672);
        let (tx, handle) = console.spawn_ingestor(64);
        let mut senders = Vec::new();
        for host in 0..8u32 {
            let tx = tx.clone();
            senders.push(std::thread::spawn(move || {
                for w in 0..100usize {
                    tx.send(vec![alert(host, w, FeatureKind::DnsConnections)])
                        .unwrap();
                }
            }));
        }
        drop(tx);
        for s in senders {
            s.join().unwrap();
        }
        handle.join().unwrap();
        let stats = console.stats();
        assert_eq!(stats.total_alerts, 800);
        assert_eq!(stats.batches, 800);
        assert_eq!(stats.per_user.len(), 8);
        assert!(stats.per_user.values().all(|&c| c == 100));
    }

    #[test]
    fn top_talkers_ordering() {
        let console = CentralConsole::new(672);
        for (user, n) in [(5u32, 3usize), (1, 10), (9, 7)] {
            for w in 0..n {
                console.ingest_batch(&[alert(user, w, FeatureKind::TcpSyn)]);
            }
        }
        let top = console.stats().top_talkers(2);
        assert_eq!(top, vec![(1, 10), (9, 7)]);
    }

    #[test]
    fn empty_console() {
        let console = CentralConsole::new(672);
        let stats = console.stats();
        assert_eq!(stats.total_alerts, 0);
        assert_eq!(stats.mean_alerts_per_user(350), 0.0);
        assert!(stats.top_talkers(5).is_empty());
    }
}
