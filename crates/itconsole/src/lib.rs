//! # itconsole — the centralized IT operations side of the system
//!
//! The paper's HIDS deployment model has every end host batching alerts to
//! a central console, which is also where the homogeneous policy computes
//! its global threshold and where operators triage false positives (their
//! survey: operators care most about the alarm volume reaching them —
//! Table 3). This crate implements that operational layer:
//!
//! * [`batch`] — per-host alert batching (hosts ship periodically, not per
//!   alert);
//! * [`console`] — a thread-safe central aggregator with live per-user /
//!   per-feature / per-week accounting, fed concurrently by host threads;
//! * [`compliance`] — the audit an IT department runs to check deployed
//!   thresholds against policy (the "easier to check compliance" argument
//!   for monocultures, §1);
//! * [`coalesce`](mod@coalesce) — alert coalescing and per-host rate limiting (the
//!   console-side hygiene commercial products apply before the operator
//!   queue);
//! * [`delivery`] — the host-side bounded queue that ships batches over an
//!   unreliable console link with deterministic retry/backoff and drop
//!   accounting;
//! * [`sentinel`] — "best user" identification (Table 2) and a simple
//!   collaborative-detection scheme over sentinel alarms (§7 future work);
//! * [`rollout`] — drift-aware threshold lifecycle planning: fleet drift
//!   monitoring, poisoning-resistant candidate refit with group-threshold
//!   fallback, and the operator-facing epoch history report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod coalesce;
pub mod compliance;
pub mod console;
pub mod delivery;
pub mod rollout;
pub mod sentinel;
pub mod triage;

pub use batch::{AlertBatcher, LatePolicy};
pub use coalesce::{coalesce, CoalescedAlert, RateLimiter};
pub use compliance::{audit, ComplianceReport, Deviation};
pub use console::{CentralConsole, ConsoleStats};
pub use delivery::{DeliveryConfig, DeliveryQueue, DeliveryStats, Payload};
pub use rollout::{
    build_candidate, export_history_metrics, fallback_from_outcome, render_history, CandidatePlan,
    EpochSummary, FleetDriftMonitor, RolloutPlanner, RolloutProposal,
};
pub use sentinel::{
    best_users, sentinel_consensus, sentinel_consensus_degraded, DegradedConsensus, SentinelConfig,
};
pub use triage::{simulate_week, TriageConfig, TriageOutcome};
