//! Policy-compliance audit.
//!
//! System administrators in the paper's survey favoured monocultures partly
//! because "it is easier to check compliance for a large pool of employees
//! when homogeneous configurations are used". This module makes that check
//! explicit — and equally mechanical for diversity policies, which is part
//! of the paper's rebuttal: compliance under grouping is a table lookup.

use flowtab::FeatureKind;
use hids_core::{Detector, PolicyOutcome};
use serde::{Deserialize, Serialize};

/// One host whose deployed configuration deviates from policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Deviation {
    /// Host index within the audited population.
    pub user_index: usize,
    /// Feature whose threshold deviates.
    pub feature: FeatureKind,
    /// Threshold the policy assigns.
    pub expected: f64,
    /// Threshold actually deployed (`None` = feature unmonitored).
    pub deployed: Option<f64>,
}

/// Result of auditing a population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComplianceReport {
    /// Hosts audited.
    pub audited: usize,
    /// All deviations found.
    pub deviations: Vec<Deviation>,
}

impl ComplianceReport {
    /// True when every host matches policy.
    pub fn compliant(&self) -> bool {
        self.deviations.is_empty()
    }

    /// Fraction of hosts with at least one deviation.
    pub fn deviation_rate(&self) -> f64 {
        if self.audited == 0 {
            return 0.0;
        }
        let mut users: Vec<usize> = self.deviations.iter().map(|d| d.user_index).collect();
        users.sort_unstable();
        users.dedup();
        users.len() as f64 / self.audited as f64
    }
}

/// Audit deployed detectors against a policy outcome for one feature.
///
/// Tolerance is absolute: |deployed − expected| ≤ `tolerance` passes
/// (thresholds are counts; 0.0 demands exactness).
pub fn audit(
    detectors: &[Detector],
    outcome: &PolicyOutcome,
    feature: FeatureKind,
    tolerance: f64,
) -> ComplianceReport {
    assert_eq!(
        detectors.len(),
        outcome.thresholds.len(),
        "one detector per policy threshold"
    );
    let mut deviations = Vec::new();
    for (i, (det, &expected)) in detectors.iter().zip(&outcome.thresholds).enumerate() {
        match det.threshold(feature) {
            Some(t) if (t - expected).abs() <= tolerance => {}
            deployed => deviations.push(Deviation {
                user_index: i,
                feature,
                expected,
                deployed,
            }),
        }
    }
    ComplianceReport {
        audited: detectors.len(),
        deviations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(thresholds: Vec<f64>) -> PolicyOutcome {
        let groups = (0..thresholds.len()).collect();
        PolicyOutcome {
            groups,
            group_thresholds: thresholds.clone(),
            thresholds,
        }
    }

    fn deploy(thresholds: &[f64]) -> Vec<Detector> {
        thresholds
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let mut d = Detector::new(i as u32);
                d.set_threshold(FeatureKind::TcpConnections, t);
                d
            })
            .collect()
    }

    #[test]
    fn compliant_population_passes() {
        let out = outcome(vec![10.0, 20.0, 30.0]);
        let dets = deploy(&[10.0, 20.0, 30.0]);
        let report = audit(&dets, &out, FeatureKind::TcpConnections, 0.0);
        assert!(report.compliant());
        assert_eq!(report.deviation_rate(), 0.0);
    }

    #[test]
    fn drifted_threshold_detected() {
        let out = outcome(vec![10.0, 20.0]);
        let dets = deploy(&[10.0, 25.0]);
        let report = audit(&dets, &out, FeatureKind::TcpConnections, 1.0);
        assert!(!report.compliant());
        assert_eq!(report.deviations.len(), 1);
        assert_eq!(report.deviations[0].user_index, 1);
        assert_eq!(report.deviations[0].deployed, Some(25.0));
        assert!((report.deviation_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unmonitored_feature_is_a_deviation() {
        let out = outcome(vec![10.0]);
        let dets = vec![Detector::new(0)]; // nothing configured
        let report = audit(&dets, &out, FeatureKind::TcpConnections, 10.0);
        assert_eq!(report.deviations.len(), 1);
        assert_eq!(report.deviations[0].deployed, None);
    }

    #[test]
    fn tolerance_allows_rounding() {
        let out = outcome(vec![100.0]);
        let dets = deploy(&[100.4]);
        assert!(audit(&dets, &out, FeatureKind::TcpConnections, 0.5).compliant());
        assert!(!audit(&dets, &out, FeatureKind::TcpConnections, 0.1).compliant());
    }
}
