//! Operator triage simulation.
//!
//! Table 3 matters because *people* handle the alarms: the paper's
//! operators "attach a lot more importance to low false positive rates"
//! precisely because each alarm costs analyst minutes. This module turns a
//! weekly alarm stream into operational metrics — backlog growth, time to
//! triage, and the fraction of alarms handled within an SLA — given an
//! analyst team's capacity.

use serde::{Deserialize, Serialize};

/// Triage team parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TriageConfig {
    /// Alarms one analyst can investigate per working hour.
    pub alarms_per_analyst_hour: f64,
    /// Analysts on shift.
    pub analysts: usize,
    /// Working hours per day (alarms arriving off-shift queue up).
    pub shift_hours_per_day: f64,
    /// SLA: an alarm should be looked at within this many hours of arrival.
    pub sla_hours: f64,
}

impl Default for TriageConfig {
    fn default() -> Self {
        Self {
            alarms_per_analyst_hour: 6.0,
            analysts: 2,
            shift_hours_per_day: 8.0,
            sla_hours: 24.0,
        }
    }
}

/// Outcome of simulating one week of triage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TriageOutcome {
    /// Alarms that arrived.
    pub arrived: u64,
    /// Alarms triaged within the week.
    pub handled: u64,
    /// Alarms still queued at week's end.
    pub backlog: u64,
    /// Mean waiting time (hours) of handled alarms.
    pub mean_wait_hours: f64,
    /// Fraction of handled alarms triaged within the SLA.
    pub within_sla: f64,
}

/// Simulate a week of triage over per-window alarm counts.
///
/// `alarms_per_window[w]` is the number of alarms arriving in window `w`
/// (windows of `window_secs`); processing happens FIFO during shift hours
/// (the first `shift_hours_per_day` of each day).
pub fn simulate_week(
    alarms_per_window: &[u64],
    window_secs: f64,
    config: &TriageConfig,
) -> TriageOutcome {
    let windows_per_hour = 3600.0 / window_secs;
    let capacity_per_window =
        config.alarms_per_analyst_hour * config.analysts as f64 / windows_per_hour;

    let mut queue: std::collections::VecDeque<(usize, u64)> = std::collections::VecDeque::new();
    let mut arrived = 0u64;
    let mut handled = 0u64;
    let mut wait_sum_hours = 0.0f64;
    let mut within_sla = 0u64;
    let mut capacity_carry = 0.0f64;

    for (w, &n) in alarms_per_window.iter().enumerate() {
        if n > 0 {
            queue.push_back((w, n));
            arrived += n;
        }
        // On shift?
        let hour_of_day = (w as f64 / windows_per_hour) % 24.0;
        if hour_of_day >= config.shift_hours_per_day {
            continue;
        }
        capacity_carry += capacity_per_window;
        while capacity_carry >= 1.0 {
            let Some(front) = queue.front_mut() else {
                // Idle capacity does not bank across an empty queue.
                capacity_carry = 0.0;
                break;
            };
            let take = (capacity_carry.floor() as u64).min(front.1);
            let wait_hours = (w - front.0) as f64 / windows_per_hour;
            handled += take;
            wait_sum_hours += wait_hours * take as f64;
            if wait_hours <= config.sla_hours {
                within_sla += take;
            }
            front.1 -= take;
            capacity_carry -= take as f64;
            if front.1 == 0 {
                queue.pop_front();
            }
            if take == 0 {
                break;
            }
        }
    }

    let backlog = queue.iter().map(|(_, n)| n).sum();
    TriageOutcome {
        arrived,
        handled,
        backlog,
        mean_wait_hours: if handled == 0 {
            0.0
        } else {
            wait_sum_hours / handled as f64
        },
        within_sla: if handled == 0 {
            1.0
        } else {
            within_sla as f64 / handled as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: f64 = 900.0; // 15-min windows, 4 per hour

    fn cfg(analysts: usize) -> TriageConfig {
        TriageConfig {
            alarms_per_analyst_hour: 4.0,
            analysts,
            shift_hours_per_day: 8.0,
            sla_hours: 4.0,
        }
    }

    #[test]
    fn light_load_fully_handled() {
        // 1 alarm per working-hour window, one analyst: capacity 1/window.
        let mut alarms = vec![0u64; 672];
        for slot in alarms.iter_mut().take(32) {
            *slot = 1; // first 8 hours of Monday
        }
        let out = simulate_week(&alarms, W, &cfg(1));
        assert_eq!(out.arrived, 32);
        assert_eq!(out.handled, 32);
        assert_eq!(out.backlog, 0);
        assert!(out.within_sla > 0.99);
        assert!(out.mean_wait_hours < 1.0);
    }

    #[test]
    fn overload_builds_backlog() {
        // A flood: 100 alarms every window all week vs tiny capacity.
        let alarms = vec![100u64; 672];
        let out = simulate_week(&alarms, W, &cfg(1));
        assert_eq!(out.arrived, 67_200);
        assert!(out.backlog > 60_000, "backlog {}", out.backlog);
        assert!(out.within_sla < 0.15, "sla {}", out.within_sla);
    }

    #[test]
    fn more_analysts_cut_waits() {
        let mut alarms = vec![0u64; 672];
        for (w, a) in alarms.iter_mut().enumerate() {
            *a = u64::from(w % 8 == 0); // steady trickle incl. nights
        }
        let one = simulate_week(&alarms, W, &cfg(1));
        let four = simulate_week(&alarms, W, &cfg(4));
        assert!(four.mean_wait_hours <= one.mean_wait_hours);
        assert!(four.backlog <= one.backlog);
        assert!(four.within_sla >= one.within_sla);
    }

    #[test]
    fn night_alarms_wait_for_the_shift() {
        // One alarm at 23:00 Monday (window 92): first triage opportunity
        // is Tuesday 00:00-08:00 shift; wait ≥ 1 hour.
        let mut alarms = vec![0u64; 672];
        alarms[92] = 1;
        let out = simulate_week(&alarms, W, &cfg(1));
        assert_eq!(out.handled, 1);
        assert!(out.mean_wait_hours >= 1.0, "wait {}", out.mean_wait_hours);
    }

    #[test]
    fn empty_week() {
        let out = simulate_week(&vec![0u64; 672], W, &TriageConfig::default());
        assert_eq!(out.arrived, 0);
        assert_eq!(out.handled, 0);
        assert_eq!(out.within_sla, 1.0);
    }
}
