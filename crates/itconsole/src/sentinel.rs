//! Sentinel users and collaborative detection.
//!
//! Diversity makes some users naturally better detectors of a given attack
//! type: those whose thresholds for the relevant feature are lowest
//! ("best suited to catch stealthy behaviours", paper §5 / Table 2). The
//! paper's future-work section proposes letting such sentinels warn
//! everyone else; [`sentinel_consensus`] implements the simplest version —
//! an advisory fires when enough sentinels alarm in the same window.

use serde::{Deserialize, Serialize};

/// Collaborative-detection parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SentinelConfig {
    /// How many of the lowest-threshold users act as sentinels.
    pub n_sentinels: usize,
    /// Minimum sentinels alarming in one window to raise an advisory.
    pub quorum: usize,
}

impl Default for SentinelConfig {
    fn default() -> Self {
        Self {
            n_sentinels: 10,
            quorum: 3,
        }
    }
}

/// The `k` users with the lowest thresholds (the paper's "best users" per
/// alarm type, Table 2). Returns user indices, most sensitive first; ties
/// break by index for determinism.
pub fn best_users(thresholds: &[f64], k: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..thresholds.len()).collect();
    order.sort_by(|&a, &b| thresholds[a].total_cmp(&thresholds[b]).then(a.cmp(&b)));
    order.truncate(k);
    order
}

/// Overlap between two best-user lists (the paper's observation that the
/// best TCP detectors and best UDP detectors barely overlap).
pub fn overlap(a: &[usize], b: &[usize]) -> usize {
    a.iter().filter(|x| b.contains(x)).count()
}

/// Run sentinel consensus over a test week.
///
/// `alarm_matrix[user][window]` is true when that user's detector fired in
/// that window. Returns the windows in which at least `quorum` of the
/// sentinels fired — the advisories broadcast to the rest of the fleet.
pub fn sentinel_consensus(
    alarm_matrix: &[Vec<bool>],
    thresholds: &[f64],
    config: &SentinelConfig,
) -> Vec<usize> {
    assert_eq!(alarm_matrix.len(), thresholds.len());
    if alarm_matrix.is_empty() {
        return Vec::new();
    }
    let sentinels = best_users(thresholds, config.n_sentinels);
    let n_windows = alarm_matrix.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut advisories = Vec::new();
    for w in 0..n_windows {
        let firing = sentinels
            .iter()
            .filter(|&&u| alarm_matrix[u].get(w).copied().unwrap_or(false))
            .count();
        if firing >= config.quorum {
            advisories.push(w);
        }
    }
    advisories
}

/// Sentinel consensus over a test week with partial telemetry and
/// delivery loss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedConsensus {
    /// Windows where a quorum of *reporting* sentinels alarmed.
    pub advisories: Vec<usize>,
    /// Windows where fewer than `quorum` sentinels reported at all —
    /// consensus was structurally impossible there, which operators need
    /// to see as a coverage gap, not as "no attack".
    pub blind_windows: Vec<usize>,
    /// Sentinel-window reports lost to telemetry/delivery faults.
    pub reports_missing: u64,
}

/// [`sentinel_consensus`] under partial coverage.
///
/// `coverage[user][window]` marks whether that user's report for that
/// window actually reached the console (the complement of what the
/// delivery queue and telemetry faults lost). The quorum is counted over
/// the sentinels that *reported*; windows where even full agreement could
/// not reach quorum are returned separately as blind.
pub fn sentinel_consensus_degraded(
    alarm_matrix: &[Vec<bool>],
    coverage: &[Vec<bool>],
    thresholds: &[f64],
    config: &SentinelConfig,
) -> DegradedConsensus {
    assert_eq!(alarm_matrix.len(), thresholds.len());
    assert_eq!(alarm_matrix.len(), coverage.len());
    let mut out = DegradedConsensus {
        advisories: Vec::new(),
        blind_windows: Vec::new(),
        reports_missing: 0,
    };
    if alarm_matrix.is_empty() {
        return out;
    }
    let sentinels = best_users(thresholds, config.n_sentinels);
    let n_windows = alarm_matrix.iter().map(|r| r.len()).max().unwrap_or(0);
    for w in 0..n_windows {
        let mut reporting = 0usize;
        let mut firing = 0usize;
        for &u in &sentinels {
            let covered = coverage[u].get(w).copied().unwrap_or(false);
            if !covered {
                out.reports_missing += 1;
                continue;
            }
            reporting += 1;
            if alarm_matrix[u].get(w).copied().unwrap_or(false) {
                firing += 1;
            }
        }
        if reporting < config.quorum {
            out.blind_windows.push(w);
        } else if firing >= config.quorum {
            out.advisories.push(w);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_users_are_lowest_thresholds() {
        let t = vec![50.0, 5.0, 500.0, 1.0, 20.0];
        assert_eq!(best_users(&t, 3), vec![3, 1, 4]);
        assert_eq!(best_users(&t, 10), vec![3, 1, 4, 0, 2]);
    }

    #[test]
    fn ties_break_deterministically() {
        let t = vec![10.0, 10.0, 10.0];
        assert_eq!(best_users(&t, 2), vec![0, 1]);
    }

    #[test]
    fn overlap_counts_shared_users() {
        assert_eq!(overlap(&[1, 2, 3], &[3, 4, 5]), 1);
        assert_eq!(overlap(&[1, 2], &[1, 2]), 2);
        assert_eq!(overlap(&[], &[1]), 0);
    }

    #[test]
    fn consensus_requires_quorum_of_sentinels() {
        // 5 users; users 0,1,2 have the lowest thresholds (sentinels).
        let thresholds = vec![1.0, 2.0, 3.0, 100.0, 200.0];
        // Window 0: users 0,1 alarm (quorum 2 met).
        // Window 1: only user 0 alarms.
        // Window 2: users 3,4 alarm (non-sentinels: ignored).
        let alarms = vec![
            vec![true, true, false],
            vec![true, false, false],
            vec![false, false, false],
            vec![false, false, true],
            vec![false, false, true],
        ];
        let config = SentinelConfig {
            n_sentinels: 3,
            quorum: 2,
        };
        assert_eq!(sentinel_consensus(&alarms, &thresholds, &config), vec![0]);
    }

    #[test]
    fn collaborative_detection_catches_what_heavy_users_miss() {
        // A stealthy attack in window 1 alarms the three light users only;
        // the advisory still covers the heavy users who saw nothing.
        let thresholds = vec![5.0, 6.0, 7.0, 5000.0, 9000.0];
        let alarms = vec![
            vec![false, true],
            vec![false, true],
            vec![false, true],
            vec![false, false],
            vec![false, false],
        ];
        let advisories =
            sentinel_consensus(&alarms, &thresholds, &SentinelConfig::default());
        assert_eq!(advisories, vec![1]);
    }

    #[test]
    fn ragged_rows_handled() {
        let thresholds = vec![1.0, 2.0];
        let alarms = vec![vec![true, true, true], vec![true]];
        let config = SentinelConfig {
            n_sentinels: 2,
            quorum: 2,
        };
        assert_eq!(sentinel_consensus(&alarms, &thresholds, &config), vec![0]);
    }

    #[test]
    fn empty_population() {
        let advisories = sentinel_consensus(&[], &[], &SentinelConfig::default());
        assert!(advisories.is_empty());
    }

    #[test]
    fn degraded_matches_clean_under_full_coverage() {
        let thresholds = vec![1.0, 2.0, 3.0, 100.0, 200.0];
        let alarms = vec![
            vec![true, true, false],
            vec![true, false, false],
            vec![false, true, false],
            vec![false, false, true],
            vec![false, false, true],
        ];
        let full = vec![vec![true; 3]; 5];
        let config = SentinelConfig {
            n_sentinels: 3,
            quorum: 2,
        };
        let clean = sentinel_consensus(&alarms, &thresholds, &config);
        let degraded = sentinel_consensus_degraded(&alarms, &full, &thresholds, &config);
        assert_eq!(degraded.advisories, clean);
        assert!(degraded.blind_windows.is_empty());
        assert_eq!(degraded.reports_missing, 0);
    }

    #[test]
    fn quorum_counts_only_reporting_sentinels() {
        let thresholds = vec![1.0, 2.0, 3.0];
        // Window 0: all three fire but sentinel 2's report is lost —
        // quorum of 2 still reached by the two that reported.
        // Window 1: two fire, but one of them is dark: only one report
        // fires -> no advisory, and 2 sentinels still report (not blind).
        let alarms = vec![vec![true, true], vec![true, true], vec![true, false]];
        let coverage = vec![vec![true, true], vec![true, false], vec![false, true]];
        let config = SentinelConfig {
            n_sentinels: 3,
            quorum: 2,
        };
        let out = sentinel_consensus_degraded(&alarms, &coverage, &thresholds, &config);
        assert_eq!(out.advisories, vec![0]);
        assert!(out.blind_windows.is_empty());
        assert_eq!(out.reports_missing, 2);
    }

    #[test]
    fn blind_windows_reported_not_silent() {
        let thresholds = vec![1.0, 2.0, 3.0];
        let alarms = vec![vec![true; 4], vec![true; 4], vec![true; 4]];
        let mut coverage = vec![vec![true; 4]; 3];
        // Window 2: every sentinel's report lost.
        for c in &mut coverage {
            c[2] = false;
        }
        let config = SentinelConfig {
            n_sentinels: 3,
            quorum: 2,
        };
        let out = sentinel_consensus_degraded(&alarms, &coverage, &thresholds, &config);
        assert_eq!(out.advisories, vec![0, 1, 3]);
        assert_eq!(out.blind_windows, vec![2]);
        assert_eq!(out.reports_missing, 3);
    }
}
