//! # hids-metrics — deterministic fleet observability primitives
//!
//! Counters, gauges, fixed-bucket histograms and a bounded structured
//! event ring, designed around one non-negotiable property: a merged
//! metrics snapshot is a **pure function of the work performed**, never
//! of scheduling. The workspace's headline determinism contract (CSVs
//! byte-identical at any `--threads` setting) extends to observability:
//! `repro ... --metrics-out` must produce byte-identical Prometheus text
//! at `--threads 1`, `4` and `32`.
//!
//! Three design rules make that hold:
//!
//! * **Integer-only accumulation.** Counters and histogram buckets are
//!   `u64`, gauges are `i64`; sums of integers are associative and
//!   commutative, so per-shard registries merged in *any* order agree.
//!   Wall-clock durations — inherently nondeterministic — are quarantined
//!   in a separate *volatile* section ([`Registry::volatile_add`]) that
//!   the deterministic snapshot omits by default.
//! * **Stable key order.** Families and label sets live in `BTreeMap`s;
//!   rendering walks them in sorted order, so the byte layout of a
//!   snapshot does not depend on insertion order.
//! * **Sharded registries, deterministic merge.** Parallel workers each
//!   own a private [`Registry`] and the owner merges them in a fixed
//!   (input, not completion) order via [`Registry::merge`]. Counter and
//!   histogram merges commute; event rings concatenate in merge order,
//!   which the caller fixes.
//!
//! The rendered snapshot is Prometheus text exposition format (families
//! sorted by name, label sets sorted lexicographically), followed by the
//! event ring as `# event` comment lines — still a valid Prometheus
//! scrape body, so one file serves both machine ingestion and operator
//! eyeballs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod events;
mod histogram;
mod registry;
mod render;

pub use events::{Event, EventRing};
pub use histogram::Histogram;
pub use registry::{MetricKind, Registry};
pub use render::RenderOptions;
