//! Prometheus text exposition of a registry.
//!
//! Families render in `BTreeMap` (lexicographic) order, series within a
//! family in canonical-label order, so the output is byte-identical for
//! equal registries. Events append as `# event …` comment lines — still
//! a valid scrape body, since `#` lines that are not `HELP`/`TYPE` are
//! comments to a Prometheus parser.

use std::fmt::Write as _;

use crate::registry::{MetricKind, Registry};

/// Controls which sections of the registry render.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenderOptions {
    /// Include the quarantined nondeterministic (wall-clock) section.
    /// Off by default: the default render is the deterministic snapshot
    /// the byte-identity contract applies to.
    pub include_volatile: bool,
    /// Include trailing `# event` lines.
    pub include_events: bool,
}

impl Default for RenderOptions {
    fn default() -> Self {
        Self {
            include_volatile: false,
            include_events: true,
        }
    }
}

impl RenderOptions {
    /// The deterministic default: no volatile section, events included.
    pub fn deterministic() -> Self {
        Self::default()
    }

    /// Everything, volatile timings included — for human inspection, not
    /// for byte-comparison.
    pub fn full() -> Self {
        Self {
            include_volatile: true,
            include_events: true,
        }
    }
}

impl Registry {
    /// Render the registry as Prometheus exposition text.
    pub fn render(&self, opts: RenderOptions) -> String {
        let mut out = String::new();
        for (name, kind, help, _bounds) in self.families_iter() {
            let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
            let _ = writeln!(out, "# TYPE {name} {}", kind.as_str());
            match kind {
                MetricKind::Counter => {
                    if let Some(series) = self.counter_series(name) {
                        for (labels, v) in series {
                            let _ = writeln!(out, "{name}{labels} {v}");
                        }
                    }
                }
                MetricKind::Gauge => {
                    if let Some(series) = self.gauge_series(name) {
                        for (labels, v) in series {
                            let _ = writeln!(out, "{name}{labels} {v}");
                        }
                    }
                }
                MetricKind::Histogram => {
                    if let Some(series) = self.histogram_series(name) {
                        for (labels, h) in series {
                            let cumulative = h.cumulative();
                            let n_bounds = h.bounds().len();
                            for (i, &le) in h.bounds().iter().enumerate() {
                                let _ = writeln!(
                                    out,
                                    "{name}_bucket{} {}",
                                    with_label(labels, "le", &le.to_string()),
                                    cumulative[i]
                                );
                            }
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {}",
                                with_label(labels, "le", "+Inf"),
                                cumulative[n_bounds]
                            );
                            let _ = writeln!(out, "{name}_sum{labels} {}", h.sum());
                            let _ = writeln!(out, "{name}_count{labels} {}", h.count());
                        }
                    }
                }
            }
        }
        if opts.include_volatile {
            for (name, help, series) in self.volatile_iter() {
                let _ = writeln!(
                    out,
                    "# HELP {name} {} (volatile: excluded from deterministic snapshot)",
                    escape_help(help)
                );
                let _ = writeln!(out, "# TYPE {name} untyped");
                for (labels, v) in series {
                    let _ = writeln!(out, "{name}{labels} {v}");
                }
            }
        }
        if opts.include_events {
            let ring = self.events();
            if ring.total() > 0 {
                let _ = writeln!(
                    out,
                    "# events total={} dropped={}",
                    ring.total(),
                    ring.dropped()
                );
                for ev in ring.events() {
                    let _ = write!(out, "# event {} {} {}", ev.seq, ev.scope, ev.name);
                    for (k, v) in &ev.fields {
                        let _ = write!(out, " {k}={:?}", v);
                    }
                    out.push('\n');
                }
            }
        }
        out
    }
}

/// Escape a help string for a single `# HELP` line.
fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Append `extra="value"` to an already-rendered label set.
fn with_label(rendered: &str, key: &str, value: &str) -> String {
    if rendered.is_empty() {
        format!("{{{key}=\"{value}\"}}")
    } else {
        // rendered ends with '}': splice before it.
        format!("{},{key}=\"{value}\"}}", &rendered[..rendered.len() - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Registry {
        let mut r = Registry::new();
        r.register_counter("fleet_applied_total", "Batches applied");
        r.register_gauge("fleet_queue_depth", "Live queue depth");
        r.register_histogram("fleet_batch_span", "Window span per batch", &[1, 8]);
        r.counter_add("fleet_applied_total", &[("shard", "0")], 7);
        r.counter_add("fleet_applied_total", &[("shard", "1")], 3);
        r.gauge_set("fleet_queue_depth", &[], 4);
        r.histogram_observe("fleet_batch_span", &[], 1);
        r.histogram_observe("fleet_batch_span", &[], 9);
        r.volatile_add("sweep_wall_nanos", &[], 123.5);
        r.event("fleetd.wal", "torn_tail_truncated", &[("bytes", "17")]);
        r
    }

    #[test]
    fn renders_sorted_families_and_series() {
        let text = sample().render(RenderOptions::deterministic());
        let expected = "\
# HELP fleet_applied_total Batches applied
# TYPE fleet_applied_total counter
fleet_applied_total{shard=\"0\"} 7
fleet_applied_total{shard=\"1\"} 3
# HELP fleet_batch_span Window span per batch
# TYPE fleet_batch_span histogram
fleet_batch_span_bucket{le=\"1\"} 1
fleet_batch_span_bucket{le=\"8\"} 1
fleet_batch_span_bucket{le=\"+Inf\"} 2
fleet_batch_span_sum 10
fleet_batch_span_count 2
# HELP fleet_queue_depth Live queue depth
# TYPE fleet_queue_depth gauge
fleet_queue_depth 4
# events total=1 dropped=0
# event 0 fleetd.wal torn_tail_truncated bytes=\"17\"
";
        assert_eq!(text, expected);
    }

    #[test]
    fn deterministic_render_excludes_volatile() {
        let text = sample().render(RenderOptions::deterministic());
        assert!(!text.contains("sweep_wall_nanos"));
        let full = sample().render(RenderOptions::full());
        assert!(full.contains("sweep_wall_nanos 123.5"));
    }

    #[test]
    fn render_is_stable_under_shard_merge_order() {
        let mut shard0 = Registry::new();
        shard0.counter_add("work_total", &[("k", "a")], 1);
        let mut shard1 = Registry::new();
        shard1.counter_add("work_total", &[("k", "b")], 2);

        let mut merged_a = Registry::new();
        merged_a.merge(&shard0);
        merged_a.merge(&shard1);
        let mut merged_b = Registry::new();
        merged_b.merge(&shard1);
        merged_b.merge(&shard0);
        let opts = RenderOptions {
            include_events: false,
            ..RenderOptions::deterministic()
        };
        assert_eq!(merged_a.render(opts), merged_b.render(opts));
    }

    #[test]
    fn histogram_bucket_labels_compose_with_series_labels() {
        let mut r = Registry::new();
        r.register_histogram("h", "", &[5]);
        r.histogram_observe("h", &[("shard", "2")], 4);
        let text = r.render(RenderOptions::deterministic());
        assert!(text.contains("h_bucket{shard=\"2\",le=\"5\"} 1"));
        assert!(text.contains("h_sum{shard=\"2\"} 4"));
    }
}
