//! Fixed-bucket integer histograms.

/// A cumulative-on-render histogram over fixed `u64` bucket bounds.
///
/// Bounds are inclusive upper edges (`le` in Prometheus terms) plus an
/// implicit `+Inf` bucket; counts and the sum are integers, so merging
/// two histograms (bucket-wise addition) commutes exactly — the property
/// the deterministic snapshot rests on. Observations are whatever integer
/// quantity the caller chooses: batch sizes, queue depths, retry counts,
/// window spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Inclusive upper bounds, strictly ascending. May be empty (then
    /// only the `+Inf` bucket exists).
    bounds: Vec<u64>,
    /// `counts[i]` = observations with `value <= bounds[i]` and
    /// `> bounds[i-1]` (non-cumulative storage; cumulated at render).
    /// One extra slot at the end for `+Inf`.
    counts: Vec<u64>,
    /// Sum of all observed values (saturating: a ledger, not a checksum).
    sum: u64,
}

impl Histogram {
    /// Create an empty histogram over `bounds` (deduplicated, sorted).
    pub fn new(bounds: &[u64]) -> Self {
        let mut b = bounds.to_vec();
        b.sort_unstable();
        b.dedup();
        let n = b.len();
        Self {
            bounds: b,
            counts: vec![0; n + 1],
            sum: 0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Inclusive upper bounds (ascending, without `+Inf`).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Cumulative counts per bound, ending with the `+Inf` total — the
    /// shape Prometheus `_bucket` series carry.
    pub fn cumulative(&self) -> Vec<u64> {
        let mut running = 0;
        self.counts
            .iter()
            .map(|&c| {
                running += c;
                running
            })
            .collect()
    }

    /// Add another histogram's observations into this one.
    ///
    /// # Panics
    /// Panics when the bucket bounds disagree — merging histograms of the
    /// same family with different layouts is a wiring bug, not a runtime
    /// condition to paper over.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "histogram merge requires identical bucket bounds"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum = self.sum.saturating_add(other.sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_inclusive_buckets() {
        let mut h = Histogram::new(&[1, 10, 100]);
        for v in [0, 1, 2, 10, 11, 100, 101, 5000] {
            h.observe(v);
        }
        assert_eq!(h.cumulative(), vec![2, 4, 6, 8]);
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 0 + 1 + 2 + 10 + 11 + 100 + 101 + 5000);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = Histogram::new(&[2, 4]);
        let mut b = Histogram::new(&[2, 4]);
        for v in [1, 3, 5] {
            a.observe(v);
        }
        for v in [2, 4, 6, 8] {
            b.observe(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 7);
    }

    #[test]
    fn unsorted_duplicate_bounds_are_canonicalised() {
        let h = Histogram::new(&[10, 1, 10, 5]);
        assert_eq!(h.bounds(), &[1, 5, 10]);
    }

    #[test]
    #[should_panic(expected = "identical bucket bounds")]
    fn mismatched_merge_panics() {
        let mut a = Histogram::new(&[1]);
        a.merge(&Histogram::new(&[2]));
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let mut h = Histogram::new(&[]);
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }
}
